// Shared CLI conventions for the lw-* tools (lw-trace, lw-report).
//
// Every tool:
//   --version      prints "<tool> <version>" to stdout, exits 0
//   --help / -h    prints usage to stdout, exits 0
// and follows the exit-code contract:
//   0  success (including --help/--version)
//   1  findings — the tool ran correctly and found something to report
//      (trace violations, diff mismatches, history drift)
//   2  usage errors or unreadable/unparseable input
//
// Tools call handle_standard_flags() first, before any subcommand parsing,
// so `lw-trace --version` works without a subcommand or input file.
#pragma once

#include <cstdio>
#include <cstring>
#include <optional>

#include "util/version.h"

namespace lw::cli {

/// Standard exit codes (see the contract above).
inline constexpr int kExitOk = 0;
inline constexpr int kExitFindings = 1;
inline constexpr int kExitUsage = 2;

/// Scans the full argv for --version / --help / -h and handles them:
/// returns the process exit code to use, or nullopt to continue into
/// normal parsing. `print_usage` writes the tool's usage text to the given
/// stream (stdout here; the tool reuses it on stderr for usage errors).
inline std::optional<int> handle_standard_flags(
    int argc, char** argv, const char* tool,
    void (*print_usage)(std::FILE*)) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s %s\n", tool, kVersionString);
      return kExitOk;
    }
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      return kExitOk;
    }
  }
  return std::nullopt;
}

}  // namespace lw::cli
