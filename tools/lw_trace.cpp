// lw-trace: offline analyzer for JSONL event traces (--trace/--trace-out).
//
// Subcommands:
//   stats <file>                 event counts per layer.event, time span,
//                                run segments, distinct lineages
//   follow <file> <lineage-id>   every packet event of one lineage, in
//                                order: the packet's hop-by-hop journey
//   incidents <file> [--json]    fold the trace into labeled detection
//                                incidents (same IncidentBuilder the live
//                                runs use), per run segment
//   diff <file-a> <file-b>       first byte-level divergence plus
//                                per-event-count deltas
//   check <file> [--gamma=N]     lint the trace against the invariants in
//                                forensics/check.h; exit 1 on violations
//   export-perfetto <file> [--out=FILE]
//                                convert to Chrome trace-event JSON for
//                                ui.perfetto.dev / chrome://tracing (one
//                                track per node x layer, spans as nestable
//                                async slices, lineage flow arrows)
//
// Exit codes: 0 ok, 1 findings (check violations, diff mismatch, unknown
// lineage), 2 usage or unreadable/unparseable input — the shared lw-*
// contract (see tools/cli_util.h). --version and --help exit 0.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cli_util.h"
#include "forensics/check.h"
#include "forensics/incident.h"
#include "forensics/perfetto.h"
#include "forensics/trace_reader.h"

namespace {

using lw::LineageId;
using lw::NodeId;
using lw::forensics::CheckIssue;
using lw::forensics::CheckOptions;
using lw::forensics::Incident;
using lw::forensics::IncidentBuilder;
using lw::forensics::TraceFormatError;
using lw::forensics::TraceRecord;

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: lw-trace <command> ...\n"
      "  stats <file>                per-event counts and trace overview\n"
      "  follow <file> <lineage-id>  one packet lineage, hop by hop\n"
      "  incidents <file> [--json]   labeled detection incidents\n"
      "  diff <file-a> <file-b>      compare two traces\n"
      "  check <file> [--gamma=N]    lint trace invariants\n"
      "  export-perfetto <file> [--out=FILE]\n"
      "                              Chrome trace-event JSON (Perfetto)\n"
      "  --version | --help\n");
}

int usage() {
  print_usage(stderr);
  return lw::cli::kExitUsage;
}

std::vector<TraceRecord> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lw-trace: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  try {
    return lw::forensics::read_trace(in);
  } catch (const TraceFormatError& e) {
    std::fprintf(stderr, "lw-trace: %s:%zu: %s\n", path.c_str(), e.line(),
                 e.what());
    std::exit(2);
  }
}

// ---- stats ----

int cmd_stats(const std::string& path) {
  const std::vector<TraceRecord> records = load(path);
  std::size_t runs = 0;
  std::uint64_t events = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  std::map<std::string, std::uint64_t> per_event;
  std::set<LineageId> lineages;
  std::set<NodeId> nodes;
  for (const TraceRecord& r : records) {
    if (r.is_run_header) {
      ++runs;
      continue;
    }
    ++events;
    if (!any || r.t < t_min) t_min = r.t;
    if (!any || r.t > t_max) t_max = r.t;
    any = true;
    ++per_event[r.layer + "." + r.name];
    if (r.has_packet) lineages.insert(r.lineage);
    nodes.insert(r.node);
  }
  std::printf("%s\n", path.c_str());
  std::printf("  run segments      %zu\n", runs);
  std::printf("  events            %llu\n",
              static_cast<unsigned long long>(events));
  if (any) std::printf("  time span         [%.6f, %.6f] s\n", t_min, t_max);
  std::printf("  nodes seen        %zu\n", nodes.size());
  std::printf("  packet lineages   %zu\n", lineages.size());
  std::printf("  events by kind:\n");
  for (const auto& [name, count] : per_event) {
    std::printf("    %-20s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}

// ---- follow ----

int cmd_follow(const std::string& path, const std::string& id_text) {
  char* end = nullptr;
  const LineageId lineage = std::strtoull(id_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "lw-trace: bad lineage id '%s'\n", id_text.c_str());
    return 2;
  }
  const std::vector<TraceRecord> records = load(path);
  const std::vector<TraceRecord> chain =
      lw::forensics::lineage_chain(records, lineage);
  if (chain.empty()) {
    std::fprintf(stderr, "lw-trace: lineage %llu not found in %s\n",
                 static_cast<unsigned long long>(lineage), path.c_str());
    return 1;
  }
  std::set<NodeId> hops;
  for (const TraceRecord& r : chain) {
    std::printf("%s\n", lw::forensics::describe(r).c_str());
    hops.insert(r.node);
  }
  std::printf("-- %zu events across %zu nodes, t=[%.6f, %.6f]\n", chain.size(),
              hops.size(), chain.front().t, chain.back().t);
  return 0;
}

// ---- incidents ----

/// One run segment's worth of trace, folded independently: incidents never
/// bleed across run headers.
struct Segment {
  std::string point;
  std::uint64_t seed = 0;
  std::vector<Incident> incidents;
};

std::vector<Segment> fold_incidents(const std::vector<TraceRecord>& records) {
  std::vector<Segment> segments;
  auto builder = std::make_unique<IncidentBuilder>();
  Segment current;  // implicit first segment for header-less traces
  bool saw_events = false;
  auto flush = [&] {
    if (saw_events) {
      current.incidents = builder->build();
      segments.push_back(std::move(current));
    }
    builder = std::make_unique<IncidentBuilder>();
    saw_events = false;
  };
  for (const TraceRecord& r : records) {
    if (r.is_run_header) {
      flush();
      current = Segment{r.point, r.run_seed, {}};
      continue;
    }
    saw_events = true;
    if (r.kind_known) builder->on_event(r.to_event());
  }
  flush();
  return segments;
}

void print_incident_text(const Incident& inc) {
  std::printf("  accused %-4u %-9s %s  def=%s  guards=%zu [", inc.accused,
              inc.ground_truth_malicious ? "MALICIOUS"
              : inc.framed              ? "FRAMED"
                                        : "honest",
              inc.isolated() ? "ISOLATED" : "detected",
              lw::obs::to_string(inc.defense), inc.accusing_guards.size());
  for (std::size_t i = 0; i < inc.accusing_guards.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ",", inc.accusing_guards[i]);
  }
  std::printf("]  sus(fab/drop/anom)=%llu/%llu/%llu det=%llu alerts=%llu "
              "iso=%llu",
              static_cast<unsigned long long>(inc.suspicions_fabrication),
              static_cast<unsigned long long>(inc.suspicions_drop),
              static_cast<unsigned long long>(inc.suspicions_anomaly),
              static_cast<unsigned long long>(inc.detections),
              static_cast<unsigned long long>(inc.alerts),
              static_cast<unsigned long long>(inc.isolations));
  std::printf("  peak_malc=%.9g", inc.peak_malc);
  if (inc.first_malicious_act >= 0.0) {
    std::printf("  first_act=%.6f", inc.first_malicious_act);
  }
  if (inc.first_detection >= 0.0) {
    std::printf("  first_detection=%.6f", inc.first_detection);
  }
  if (inc.first_isolation >= 0.0) {
    std::printf("  first_isolation=%.6f", inc.first_isolation);
  }
  if (inc.detection_latency() >= 0.0) {
    std::printf("  latency=%.6f", inc.detection_latency());
  }
  if (inc.framed && !inc.framers.empty()) {
    std::printf("  framers=[");
    for (std::size_t i = 0; i < inc.framers.size(); ++i) {
      std::printf("%s%u", i == 0 ? "" : ",", inc.framers[i]);
    }
    std::printf("]");
  }
  std::printf("  %s\n", inc.ground_truth_malicious ? "TRUE-POSITIVE"
              : inc.framed                         ? "FRAMED"
                                                   : "FALSE-POSITIVE");
}

void print_incident_json(const Incident& inc, bool last) {
  std::printf(
      "    {\"accused\":%u,\"label\":\"%s\",\"def\":\"%s\","
      "\"malicious\":%s,\"isolated\":%s",
      inc.accused, inc.label(), lw::obs::to_string(inc.defense),
      inc.ground_truth_malicious ? "true" : "false",
      inc.isolated() ? "true" : "false");
  std::printf(",\"framers\":[");
  for (std::size_t i = 0; i < inc.framers.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ",", inc.framers[i]);
  }
  std::printf("]");
  std::printf(",\"guards\":[");
  for (std::size_t i = 0; i < inc.accusing_guards.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ",", inc.accusing_guards[i]);
  }
  std::printf("],\"suspicions_fabrication\":%llu,\"suspicions_drop\":%llu"
              ",\"suspicions_anomaly\":%llu",
              static_cast<unsigned long long>(inc.suspicions_fabrication),
              static_cast<unsigned long long>(inc.suspicions_drop),
              static_cast<unsigned long long>(inc.suspicions_anomaly));
  std::printf(",\"detections\":%llu,\"alerts\":%llu,\"isolations\":%llu",
              static_cast<unsigned long long>(inc.detections),
              static_cast<unsigned long long>(inc.alerts),
              static_cast<unsigned long long>(inc.isolations));
  std::printf(",\"peak_malc\":%.9g", inc.peak_malc);
  std::printf(",\"first_malicious_act\":%.6f,\"first_detection\":%.6f",
              inc.first_malicious_act, inc.first_detection);
  std::printf(",\"first_isolation\":%.6f,\"detection_latency\":%.6f}%s\n",
              inc.first_isolation, inc.detection_latency(), last ? "" : ",");
}

int cmd_incidents(const std::string& path, bool json) {
  const std::vector<Segment> segments = fold_incidents(load(path));
  if (json) {
    std::printf("[\n");
    for (std::size_t s = 0; s < segments.size(); ++s) {
      const Segment& segment = segments[s];
      std::printf("  {\"point\":\"%s\",\"seed\":%llu,\"incidents\":[\n",
                  segment.point.c_str(),
                  static_cast<unsigned long long>(segment.seed));
      for (std::size_t i = 0; i < segment.incidents.size(); ++i) {
        print_incident_json(segment.incidents[i],
                            i + 1 == segment.incidents.size());
      }
      std::printf("  ]}%s\n", s + 1 == segments.size() ? "" : ",");
    }
    std::printf("]\n");
    return 0;
  }
  for (const Segment& segment : segments) {
    const auto summary = IncidentBuilder::summarize(segment.incidents);
    std::printf("== run point=%s seed=%llu ==\n", segment.point.c_str(),
                static_cast<unsigned long long>(segment.seed));
    for (const Incident& inc : segment.incidents) print_incident_text(inc);
    std::printf(
        "  %llu incident(s), %llu isolated, %llu TP / %llu FP "
        "(precision %.3f)",
        static_cast<unsigned long long>(summary.incidents),
        static_cast<unsigned long long>(summary.isolated_incidents),
        static_cast<unsigned long long>(summary.true_positives),
        static_cast<unsigned long long>(summary.false_positives),
        summary.precision());
    if (summary.framed_accusations > 0) {
      std::printf(", %llu framed (%llu isolated)",
                  static_cast<unsigned long long>(summary.framed_accusations),
                  static_cast<unsigned long long>(summary.framed_isolations));
    }
    if (summary.latency_samples > 0) {
      std::printf(", mean detection latency %.6f s over %llu",
                  summary.mean_detection_latency,
                  static_cast<unsigned long long>(summary.latency_samples));
    }
    std::printf("\n");
  }
  return 0;
}

// ---- diff ----

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  std::ifstream a(path_a);
  std::ifstream b(path_b);
  if (!a || !b) {
    std::fprintf(stderr, "lw-trace: cannot read %s\n",
                 (!a ? path_a : path_b).c_str());
    return 2;
  }
  std::string line_a;
  std::string line_b;
  std::size_t line_no = 0;
  std::size_t first_divergence = 0;
  std::map<std::string, std::int64_t> deltas;
  auto tally = [&deltas](const std::string& line, std::size_t no, int sign) {
    TraceRecord record;
    try {
      if (lw::forensics::parse_trace_line(line, no, &record) &&
          !record.is_run_header) {
        deltas[record.layer + "." + record.name] += sign;
      }
    } catch (const TraceFormatError&) {
      deltas["(unparseable)"] += sign;
    }
  };
  while (true) {
    const bool more_a = static_cast<bool>(std::getline(a, line_a));
    const bool more_b = static_cast<bool>(std::getline(b, line_b));
    if (!more_a && !more_b) break;
    ++line_no;
    if (more_a) tally(line_a, line_no, +1);
    if (more_b) tally(line_b, line_no, -1);
    if (first_divergence == 0 && (!more_a || !more_b || line_a != line_b)) {
      first_divergence = line_no;
      std::printf("first divergence at line %zu:\n", line_no);
      std::printf("  a: %s\n", more_a ? line_a.c_str() : "<end of file>");
      std::printf("  b: %s\n", more_b ? line_b.c_str() : "<end of file>");
    }
  }
  if (first_divergence == 0) {
    std::printf("traces identical (%zu lines)\n", line_no);
    return 0;
  }
  std::printf("event-count deltas (a minus b):\n");
  bool any_delta = false;
  for (const auto& [name, delta] : deltas) {
    if (delta == 0) continue;
    any_delta = true;
    std::printf("  %-20s %+lld\n", name.c_str(),
                static_cast<long long>(delta));
  }
  if (!any_delta) std::printf("  (same event counts; contents differ)\n");
  return 1;
}

// ---- check ----

int cmd_check(const std::string& path, int gamma) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lw-trace: cannot read %s\n", path.c_str());
    return 2;
  }
  // Parse line by line so a corrupted line becomes a finding (invariant 5)
  // instead of aborting the lint.
  std::vector<TraceRecord> records;
  std::vector<CheckIssue> issues;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceRecord record;
    try {
      if (lw::forensics::parse_trace_line(line, line_no, &record)) {
        records.push_back(std::move(record));
      }
    } catch (const TraceFormatError& e) {
      issues.push_back({line_no, e.what()});
    }
  }
  CheckOptions options;
  options.gamma = gamma;
  std::vector<CheckIssue> lint = lw::forensics::check_trace(records, options);
  issues.insert(issues.end(), lint.begin(), lint.end());
  for (const CheckIssue& issue : issues) {
    std::printf("%s:%zu: %s\n", path.c_str(), issue.line,
                issue.message.c_str());
  }
  if (!issues.empty()) {
    std::printf("%zu violation(s)\n", issues.size());
    return 1;
  }
  std::printf("OK: %zu records, no violations\n", records.size());
  return 0;
}

// ---- export-perfetto ----

int cmd_export_perfetto(const std::string& path, const std::string& out_path) {
  const std::vector<TraceRecord> records = load(path);
  if (out_path.empty() || out_path == "-") {
    lw::forensics::export_perfetto(records, std::cout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "lw-trace: cannot write %s\n", out_path.c_str());
    return 2;
  }
  lw::forensics::export_perfetto(records, out);
  std::fprintf(stderr, "lw-trace: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (auto code = lw::cli::handle_standard_flags(argc, argv, "lw-trace",
                                                 print_usage)) {
    return *code;
  }
  if (argc < 2) return usage();
  const std::string command = argv[1];

  std::vector<std::string> positional;
  bool json = false;
  int gamma = 3;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--gamma=", 0) == 0) {
      gamma = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "lw-trace: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (command == "stats" && positional.size() == 1) {
    return cmd_stats(positional[0]);
  }
  if (command == "follow" && positional.size() == 2) {
    return cmd_follow(positional[0], positional[1]);
  }
  if (command == "incidents" && positional.size() == 1) {
    return cmd_incidents(positional[0], json);
  }
  if (command == "diff" && positional.size() == 2) {
    return cmd_diff(positional[0], positional[1]);
  }
  if (command == "check" && positional.size() == 1) {
    return cmd_check(positional[0], gamma);
  }
  if (command == "export-perfetto" && positional.size() == 1) {
    return cmd_export_perfetto(positional[0], out_path);
  }
  return usage();
}
