// lw-report: renders the benches' machine output (bench_hotpath --json
// rows or any sweep bench's --json document) into markdown perf reports,
// diffs two runs, and maintains the BENCH_history.json regression ledger.
//
// Subcommands:
//   render <file> [--title=T]       one run -> markdown report
//   diff <file-a> <file-b> [--wall-tolerance=0.10]
//                                   compare run B against run A: exact
//                                   match required for deterministic
//                                   counters, relative threshold for
//                                   wall-clock metrics; exit 1 on any
//                                   regression
//   record <file> --history=H --label=L
//                                   append the run's deterministic metrics
//                                   as a new labeled entry of history file
//                                   H (created if missing)
//   check <file> --history=H        compare the run against H's newest
//                                   entry; exit 1 on deterministic drift
//
// Exit codes: 0 ok, 1 findings (diff regressions, history drift), 2 usage
// or unreadable/unparseable input — the same contract as lw-trace (see
// tools/cli_util.h).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.h"
#include "report/report.h"
#include "util/json.h"

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: lw-report <command> ...\n"
      "  render <file> [--title=T]                 run JSON -> markdown\n"
      "  diff <a> <b> [--wall-tolerance=0.10]      compare two runs\n"
      "  record <file> --history=H --label=L       append history entry\n"
      "  check <file> --history=H                  check vs newest entry\n"
      "  --version | --help\n"
      "accepts bench row arrays (bench_hotpath --json) and sweep JSON\n"
      "(any sweep bench with --json); --series runs carry queue/memory\n"
      "high-water metrics into the report.\n");
}

int usage_error() {
  print_usage(stderr);
  return lw::cli::kExitUsage;
}

/// Reads a whole file; exits 2 when unreadable.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lw-report: cannot read %s\n", path.c_str());
    std::exit(lw::cli::kExitUsage);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses a run file into cases; exits 2 on malformed input.
std::vector<lw::report::CaseMetrics> load_cases(const std::string& path) {
  const std::string text = slurp(path);
  try {
    return lw::report::parse_cases(lw::util::JsonValue::parse(text));
  } catch (const lw::util::JsonParseError& e) {
    std::fprintf(stderr, "lw-report: %s:%zu: %s\n", path.c_str(), e.offset(),
                 e.what());
    std::exit(lw::cli::kExitUsage);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lw-report: %s: %s\n", path.c_str(), e.what());
    std::exit(lw::cli::kExitUsage);
  }
}

/// --key=value lookup over the remaining args; empty when absent.
std::string flag_value(int argc, char** argv, int from, const char* flag) {
  const std::string prefix = std::string("--") + flag + "=";
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

int cmd_render(const std::string& path, const std::string& title) {
  const auto cases = load_cases(path);
  std::fputs(lw::report::render_markdown(
                 cases, title.empty() ? "Perf report: " + path : title)
                 .c_str(),
             stdout);
  return lw::cli::kExitOk;
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             const std::string& tolerance_text) {
  lw::report::DiffOptions options;
  if (!tolerance_text.empty()) {
    char* end = nullptr;
    options.wall_tolerance = std::strtod(tolerance_text.c_str(), &end);
    if (end == tolerance_text.c_str() || *end != '\0' ||
        options.wall_tolerance < 0.0) {
      std::fprintf(stderr, "lw-report: bad --wall-tolerance \"%s\"\n",
                   tolerance_text.c_str());
      return lw::cli::kExitUsage;
    }
  }
  const lw::report::DiffReport report =
      lw::report::diff_cases(load_cases(path_a), load_cases(path_b), options);
  std::fputs(report.markdown.c_str(), stdout);
  return report.regressions == 0 ? lw::cli::kExitOk : lw::cli::kExitFindings;
}

int cmd_record(const std::string& path, const std::string& history_path,
               const std::string& label) {
  if (history_path.empty() || label.empty()) {
    std::fprintf(stderr,
                 "lw-report: record needs --history=FILE and --label=TEXT\n");
    return lw::cli::kExitUsage;
  }
  std::string history;
  {
    std::ifstream in(history_path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      history = buffer.str();
    }
  }
  std::string updated;
  try {
    updated = lw::report::history_append(history, label, load_cases(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lw-report: %s: %s\n", history_path.c_str(),
                 e.what());
    return lw::cli::kExitUsage;
  }
  std::ofstream out(history_path);
  if (!out) {
    std::fprintf(stderr, "lw-report: cannot write %s\n",
                 history_path.c_str());
    return lw::cli::kExitUsage;
  }
  out << updated << "\n";
  std::fprintf(stderr, "recorded entry \"%s\" in %s\n", label.c_str(),
               history_path.c_str());
  return lw::cli::kExitOk;
}

int cmd_check(const std::string& path, const std::string& history_path) {
  if (history_path.empty()) {
    std::fprintf(stderr, "lw-report: check needs --history=FILE\n");
    return lw::cli::kExitUsage;
  }
  std::string history;
  {
    std::ifstream in(history_path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      history = buffer.str();
    }
  }
  lw::report::HistoryCheck check;
  try {
    check = lw::report::history_check(history, load_cases(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lw-report: %s: %s\n", history_path.c_str(),
                 e.what());
    return lw::cli::kExitUsage;
  }
  std::fputs(check.message.c_str(), stderr);
  return check.ok ? lw::cli::kExitOk : lw::cli::kExitFindings;
}

}  // namespace

int main(int argc, char** argv) {
  if (auto code = lw::cli::handle_standard_flags(argc, argv, "lw-report",
                                                 print_usage)) {
    return *code;
  }
  if (argc < 2) return usage_error();
  const std::string command = argv[1];
  if (command == "render" && argc >= 3) {
    return cmd_render(argv[2], flag_value(argc, argv, 3, "title"));
  }
  if (command == "diff" && argc >= 4) {
    return cmd_diff(argv[2], argv[3],
                    flag_value(argc, argv, 4, "wall-tolerance"));
  }
  if (command == "record" && argc >= 3) {
    return cmd_record(argv[2], flag_value(argc, argv, 3, "history"),
                      flag_value(argc, argv, 3, "label"));
  }
  if (command == "check" && argc >= 3) {
    return cmd_check(argv[2], flag_value(argc, argv, 3, "history"));
  }
  return usage_error();
}
