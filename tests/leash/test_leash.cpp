// Temporal packet leashes: unit semantics and the comparative story the
// LITEWORP paper tells against them.
#include <gtest/gtest.h>

#include "leash/leash.h"
#include "scenario/runner.h"

namespace lw::leash {
namespace {

LeashParams params_for_test() {
  LeashParams params;
  params.enabled = true;
  params.range = 30.0;
  params.bandwidth_bps = 40000.0;
  params.sync_error = 1e-6;
  params.processing_slack = 1e-6;
  return params;
}

pkt::Packet stamped_packet(double ts) {
  pkt::Packet p;
  p.type = pkt::PacketType::kData;
  p.payload_bytes = 32;
  p.leash_timestamp = ts;
  return p;
}

TEST(LeashChecker, AcceptsInRangeTransmission) {
  LeashChecker checker(params_for_test());
  pkt::Packet p = stamped_packet(10.0);
  const double duration = p.wire_size() * 8.0 / 40000.0;
  const double prop = 25.0 / 3.0e8;  // 25 m away
  EXPECT_TRUE(checker.check(p, 10.0 + duration + prop));
  EXPECT_NEAR(checker.implied_distance(p, 10.0 + duration + prop), 25.0, 1.0);
}

TEST(LeashChecker, RejectsReplayedStaleStamp) {
  LeashChecker checker(params_for_test());
  pkt::Packet p = stamped_packet(10.0);
  const double duration = p.wire_size() * 8.0 / 40000.0;
  // A relay retransmits the frame one frame-time later: the stamp is one
  // whole serialization behind, i.e. thousands of kilometers of "flight".
  EXPECT_FALSE(checker.check(p, 10.0 + 2 * duration + 1e-4));
  EXPECT_EQ(checker.stats().rejected, 1u);
}

TEST(LeashChecker, UnstampedFrameFailsClosed) {
  LeashChecker checker(params_for_test());
  pkt::Packet p;
  p.type = pkt::PacketType::kData;
  EXPECT_FALSE(checker.check(p, 1.0));
}

TEST(LeashChecker, DisabledAcceptsEverything) {
  LeashParams params = params_for_test();
  params.enabled = false;
  LeashChecker checker(params);
  pkt::Packet p;  // not even stamped
  EXPECT_TRUE(checker.check(p, 123.0));
  EXPECT_EQ(checker.stats().checked, 0u);
}

TEST(LeashChecker, SyncErrorWidensTheBudget) {
  // High-power shortcut: 90 m of real flight on a fresh stamp.
  pkt::Packet p = stamped_packet(10.0);
  const double duration = p.wire_size() * 8.0 / 40000.0;
  const Time rx = 10.0 + duration + 90.0 / 3.0e8;

  LeashParams tight = params_for_test();
  tight.sync_error = 0.0;
  tight.processing_slack = 0.0;
  LeashChecker perfect_clocks(tight);
  EXPECT_FALSE(perfect_clocks.check(p, rx))
      << "perfect clocks catch the 3x-range shortcut";

  LeashChecker realistic(params_for_test());  // 1 us sync: ~300 m slack
  EXPECT_TRUE(realistic.check(p, rx))
      << "microsecond-level sync cannot see 60 m of extra flight";
}

TEST(GeographicalLeash, AcceptsNearbyRejectsFar) {
  LeashParams params = params_for_test();
  params.mode = LeashMode::kGeographical;
  params.location_error = 5.0;
  LeashChecker checker(params);
  checker.set_own_position(0.0, 0.0);

  pkt::Packet near = stamped_packet(1.0);
  near.leash_located = true;
  near.leash_x = 20.0;
  near.leash_y = 0.0;
  EXPECT_TRUE(checker.check(near, 2.0));

  pkt::Packet far = near;
  far.leash_x = 90.0;  // relayed from 3x range: 90 > 30 + 2*5
  EXPECT_FALSE(checker.check(far, 2.0));

  pkt::Packet unlocated = stamped_packet(1.0);
  EXPECT_FALSE(checker.check(unlocated, 2.0)) << "fails closed";
}

TEST(GeographicalLeash, StopsHighPowerWithoutTightClocks) {
  // The temporal leash needs sub-microsecond sync to see a 3x-range
  // shortcut; the geographical one sees 90 m of distance trivially.
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 60;
  config.seed = 23;
  config.duration = 400.0;
  config.malicious_count = 1;
  config.attack.mode = attack::WormholeMode::kHighPower;
  config.defense.name = "leash";
  config.defense.leash.mode = LeashMode::kGeographical;
  config.finalize();
  auto result = scenario::run_experiment(config);

  auto undefended = config;
  undefended.defense.name = "none";
  undefended.finalize();
  auto baseline = scenario::run_experiment(undefended);

  // The leash tolerates 2x the localization error beyond nominal range, so
  // marginal (~34 m) shortcuts survive; every LONG shortcut must die.
  ASSERT_GT(baseline.wormhole_routes, 20u) << "attack never fired";
  EXPECT_LT(result.wormhole_routes, baseline.wormhole_routes / 5)
      << "the geographic bound must collapse the shortcut count";
}

TEST(GeographicalLeash, StillBlindToInsiderTunnel) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 60;
  config.seed = 21;
  config.duration = 400.0;
  config.malicious_count = 2;
  config.attack.mode = attack::WormholeMode::kOutOfBand;
  config.defense.name = "leash";
  config.defense.leash.mode = LeashMode::kGeographical;
  config.finalize();
  auto result = scenario::run_experiment(config);
  EXPECT_GT(result.wormhole_routes, 0u)
      << "insiders stamp fresh truthful locations at both tunnel ends";
}

// ---- End-to-end comparison: the paper's argument in Section 2 ----

scenario::ExperimentConfig comparison_config(attack::WormholeMode mode,
                                             std::size_t malicious,
                                             std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 60;
  config.seed = seed;
  config.duration = 400.0;
  config.malicious_count = malicious;
  config.attack.mode = mode;
  config.defense.name = "none";  // backends enabled per test
  config.finalize();
  return config;
}

TEST(LeashEndToEnd, StopsReplayWormhole) {
  auto config = comparison_config(attack::WormholeMode::kRelay, 1, 25);
  config.defense.name = "leash";
  config.finalize();
  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.wormhole_routes, 0u)
      << "replayed frames carry stale stamps";
}

TEST(LeashEndToEnd, BlindToInsiderTunnel) {
  // The paper's core argument: colluding insiders re-stamp at each end,
  // so the leash sees nothing — while LITEWORP isolates them.
  auto leash_only = comparison_config(attack::WormholeMode::kOutOfBand, 2, 21);
  leash_only.defense.name = "leash";
  leash_only.finalize();
  auto leash_result = scenario::run_experiment(leash_only);
  EXPECT_GT(leash_result.wormhole_routes, 0u)
      << "the tunnel must sail through the leash";
  EXPECT_GT(leash_result.data_dropped_malicious, 0u);

  auto liteworp = comparison_config(attack::WormholeMode::kOutOfBand, 2, 21);
  liteworp.defense.name = "liteworp";
  liteworp.finalize();
  auto liteworp_result = scenario::run_experiment(liteworp);
  EXPECT_EQ(liteworp_result.malicious_isolated, 2u);
  EXPECT_LT(liteworp_result.data_dropped_malicious,
            leash_result.data_dropped_malicious);
}

TEST(LeashEndToEnd, HarmlessForHonestTraffic) {
  auto config = comparison_config(attack::WormholeMode::kOutOfBand, 0, 33);
  config.defense.name = "leash";
  config.finalize();
  auto result = scenario::run_experiment(config);
  const double delivery = static_cast<double>(result.data_delivered) /
                          static_cast<double>(result.data_originated);
  EXPECT_GT(delivery, 0.85) << "leash checks must not drop honest frames";
}

}  // namespace
}  // namespace lw::leash
