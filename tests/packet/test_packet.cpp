// Packet model: wire sizes, flow keys, auth payloads, factory.
#include <gtest/gtest.h>

#include <set>

#include "packet/packet.h"

namespace lw::pkt {
namespace {

TEST(Packet, WireSizeBaseHeader) {
  Packet p;
  p.type = PacketType::kRouteRequest;
  EXPECT_EQ(p.wire_size(), WireSizes::kBaseHeader);
}

TEST(Packet, WireSizeGrowsWithRoute) {
  Packet p;
  p.type = PacketType::kRouteRequest;
  p.route = {1, 2, 3};
  EXPECT_EQ(p.wire_size(),
            WireSizes::kBaseHeader + 3 * WireSizes::kPerRouteHop);
}

TEST(Packet, WireSizeDataIncludesPayload) {
  Packet p;
  p.type = PacketType::kData;
  p.route = {1, 2};
  p.payload_bytes = 32;
  EXPECT_EQ(p.wire_size(),
            WireSizes::kBaseHeader + 2 * WireSizes::kPerRouteHop + 32);
}

TEST(Packet, WireSizeHelloReplyHasTag) {
  Packet p;
  p.type = PacketType::kHelloReply;
  EXPECT_EQ(p.wire_size(), WireSizes::kBaseHeader + WireSizes::kAuthTag);
}

TEST(Packet, WireSizeNeighborListPerMember) {
  Packet p;
  p.type = PacketType::kNeighborList;
  p.neighbor_list = {1, 2, 3, 4};
  p.alert_auth.resize(4);
  EXPECT_EQ(p.wire_size(), WireSizes::kBaseHeader +
                               4 * WireSizes::kPerNeighbor +
                               4 * WireSizes::kPerAlertAuth);
}

TEST(Packet, ControlFramesFixedSize) {
  Packet ack;
  ack.type = PacketType::kAck;
  ack.route = {1, 2, 3, 4, 5};  // must be ignored
  EXPECT_EQ(ack.wire_size(), WireSizes::kAckFrame);
  Packet rts;
  rts.type = PacketType::kRts;
  EXPECT_EQ(rts.wire_size(), WireSizes::kRtsFrame);
  Packet cts;
  cts.type = PacketType::kCts;
  EXPECT_EQ(cts.wire_size(), WireSizes::kCtsFrame);
}

TEST(Packet, FlowKeyIdentifiesEndToEndPacket) {
  Packet a;
  a.type = PacketType::kRouteRequest;
  a.origin = 7;
  a.seq = 42;
  Packet b = a;
  b.tx_node = 99;  // link-layer fields must not matter
  b.announced_prev_hop = 3;
  EXPECT_EQ(a.flow_key(), b.flow_key());
}

TEST(Packet, FlowKeyDistinguishesTypes) {
  Packet req;
  req.type = PacketType::kRouteRequest;
  req.origin = 7;
  req.seq = 42;
  Packet rep = req;
  rep.type = PacketType::kRouteReply;
  EXPECT_NE(req.flow_key(), rep.flow_key());
}

TEST(Packet, FlowKeyHashSpreads) {
  std::set<std::size_t> hashes;
  std::hash<FlowKey> hasher;
  for (NodeId origin = 0; origin < 20; ++origin) {
    for (SeqNo seq = 0; seq < 20; ++seq) {
      hashes.insert(hasher(FlowKey{origin, seq, 4}));
    }
  }
  EXPECT_GT(hashes.size(), 395u);  // essentially no collisions on 400 keys
}

TEST(Packet, AuthPayloadCoversNeighborList) {
  Packet a;
  a.type = PacketType::kNeighborList;
  a.origin = 3;
  a.seq = 1;
  a.neighbor_list = {5, 6};
  Packet b = a;
  b.neighbor_list = {5, 7};
  EXPECT_NE(a.auth_payload(), b.auth_payload())
      << "tampering with the list must break authentication";
}

TEST(Packet, AuthPayloadCoversAlertFields) {
  Packet a;
  a.type = PacketType::kAlert;
  a.origin = 3;
  a.seq = 1;
  a.accused = 9;
  a.accusing_guard = 3;
  Packet b = a;
  b.accused = 10;
  EXPECT_NE(a.auth_payload(), b.auth_payload());
}

TEST(Packet, AuthPayloadIgnoresLinkFields) {
  Packet a;
  a.type = PacketType::kAlert;
  a.origin = 3;
  a.accused = 9;
  a.accusing_guard = 3;
  Packet b = a;
  b.claimed_tx = 77;
  b.ttl = 1;
  EXPECT_EQ(a.auth_payload(), b.auth_payload())
      << "relayed alerts must still verify";
}

TEST(PacketFactory, UidsUnique) {
  PacketFactory factory;
  std::set<PacketUid> uids;
  for (int i = 0; i < 1000; ++i) {
    uids.insert(factory.make(PacketType::kData).uid);
  }
  EXPECT_EQ(uids.size(), 1000u);
}

TEST(PacketFactory, ForwardCopyKeepsFlowFreshUid) {
  PacketFactory factory;
  Packet original = factory.make(PacketType::kRouteRequest);
  original.origin = 4;
  original.seq = 9;
  Packet copy = factory.forward_copy(original);
  EXPECT_NE(copy.uid, original.uid);
  EXPECT_EQ(copy.flow_key(), original.flow_key());
}

TEST(Packet, IsWatchedControl) {
  EXPECT_TRUE(is_watched_control(PacketType::kRouteRequest));
  EXPECT_TRUE(is_watched_control(PacketType::kRouteReply));
  EXPECT_FALSE(is_watched_control(PacketType::kData));
  EXPECT_FALSE(is_watched_control(PacketType::kAlert));
  EXPECT_FALSE(is_watched_control(PacketType::kHello));
  EXPECT_FALSE(is_watched_control(PacketType::kAck));
  EXPECT_FALSE(is_watched_control(PacketType::kRouteError));
}

TEST(Packet, DescribeMentionsKeyFields) {
  Packet p;
  p.type = PacketType::kRouteReply;
  p.origin = 12;
  p.seq = 34;
  p.route = {1, 2, 12};
  std::string text = p.describe();
  EXPECT_NE(text.find("REP"), std::string::npos);
  EXPECT_NE(text.find("origin=12"), std::string::npos);
  EXPECT_NE(text.find("seq=34"), std::string::npos);
}

}  // namespace
}  // namespace lw::pkt
