// FaultPlan validation: every rejection path produces an actionable
// std::invalid_argument, both directly and through
// ExperimentConfig::validate() (the path every runner takes).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fault/plan.h"
#include "scenario/config.h"

namespace lw {
namespace {

/// Returns the rejection message, or "" if the plan validated.
std::string rejection(const fault::FaultPlan& plan, std::size_t nodes) {
  try {
    plan.validate(nodes);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

void expect_rejects(const fault::FaultPlan& plan, std::size_t nodes,
                    const std::string& needle) {
  const std::string message = rejection(plan, nodes);
  EXPECT_FALSE(message.empty()) << "plan unexpectedly validated";
  EXPECT_NE(message.find(needle), std::string::npos)
      << "message \"" << message << "\" lacks \"" << needle << "\"";
}

TEST(FaultPlanValidate, EmptyPlanAlwaysValidates) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(rejection(plan, 10), "");
  EXPECT_EQ(rejection(plan, 0), "");  // empty plan, empty network: fine
}

TEST(FaultPlanValidate, NonEmptyPlanOnEmptyNetwork) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 0, .at = 1.0});
  expect_rejects(plan, 0, "empty network");
}

TEST(FaultPlanValidate, CrashNodeOutOfRange) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 10, .at = 1.0});
  expect_rejects(plan, 10, "only has nodes 0..9");
}

TEST(FaultPlanValidate, CrashNegativeTime) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 1, .at = -0.5});
  expect_rejects(plan, 10, "negative crash time");
}

TEST(FaultPlanValidate, RecoveryNotAfterCrash) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 1, .at = 10.0, .recover_at = 10.0});
  expect_rejects(plan, 10, "not after its crash");
}

TEST(FaultPlanValidate, OverlappingCrashWindowsSameNode) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 3, .at = 10.0, .recover_at = 50.0});
  plan.crashes.push_back({.node = 3, .at = 40.0, .recover_at = 90.0});
  expect_rejects(plan, 10, "overlap on node 3");
}

TEST(FaultPlanValidate, PermanentCrashOverlapsEverythingLater) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 3, .at = 10.0});  // never recovers
  plan.crashes.push_back({.node = 3, .at = 500.0, .recover_at = 600.0});
  expect_rejects(plan, 10, "overlap on node 3");
}

TEST(FaultPlanValidate, DisjointCrashWindowsValidate) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 3, .at = 10.0, .recover_at = 50.0});
  plan.crashes.push_back({.node = 3, .at = 50.0, .recover_at = 90.0});
  plan.crashes.push_back({.node = 4, .at = 20.0, .recover_at = 60.0});
  EXPECT_EQ(rejection(plan, 10), "");
}

TEST(FaultPlanValidate, LinkNodeOutOfRange) {
  fault::FaultPlan plan;
  plan.links.push_back({.a = 1, .b = 12, .from = 0.0, .until = 5.0});
  expect_rejects(plan, 10, "references node 12");
}

TEST(FaultPlanValidate, LinkSelfLoop) {
  fault::FaultPlan plan;
  plan.links.push_back({.a = 4, .b = 4, .from = 0.0, .until = 5.0});
  expect_rejects(plan, 10, "connects node 4 to itself");
}

TEST(FaultPlanValidate, LinkEmptyWindow) {
  fault::FaultPlan plan;
  plan.links.push_back({.a = 1, .b = 2, .from = 5.0, .until = 5.0});
  expect_rejects(plan, 10, "empty or negative window");
}

TEST(FaultPlanValidate, LinkExtraLossOutOfRange) {
  fault::FaultPlan plan;
  plan.links.push_back(
      {.a = 1, .b = 2, .from = 0.0, .until = 5.0, .extra_loss = 1.5});
  expect_rejects(plan, 10, "must be in (0, 1]");
}

TEST(FaultPlanValidate, FramingVictimOutOfRange) {
  fault::FaultPlan plan;
  plan.framings.push_back({.victim = 10, .guards = 1, .start = 0.0});
  expect_rejects(plan, 10, "references node 10");
}

TEST(FaultPlanValidate, FramingZeroGuards) {
  fault::FaultPlan plan;
  plan.framings.push_back({.victim = 2, .guards = 0, .start = 0.0});
  expect_rejects(plan, 10, "zero guards");
}

TEST(FaultPlanValidate, FramingNegativeStart) {
  fault::FaultPlan plan;
  plan.framings.push_back({.victim = 2, .guards = 1, .start = -1.0});
  expect_rejects(plan, 10, "negative start time");
}

TEST(FaultPlanValidate, FramingNoAlerts) {
  fault::FaultPlan plan;
  plan.framings.push_back(
      {.victim = 2, .guards = 1, .start = 0.0, .alerts_per_guard = 0});
  expect_rejects(plan, 10, "at least one alert");
}

TEST(FaultPlanValidate, FramingNegativeGap) {
  fault::FaultPlan plan;
  plan.framings.push_back({.victim = 2,
                           .guards = 1,
                           .start = 0.0,
                           .alerts_per_guard = 2,
                           .gap = -5.0});
  expect_rejects(plan, 10, "negative alert gap");
}

TEST(FaultPlanValidate, CorruptionNodeOutOfRange) {
  fault::FaultPlan plan;
  plan.corruptions.push_back({.node = 11, .from = 0.0, .until = 5.0});
  expect_rejects(plan, 10, "references node 11");
}

TEST(FaultPlanValidate, CorruptionEmptyWindow) {
  fault::FaultPlan plan;
  plan.corruptions.push_back({.node = 2, .from = 7.0, .until = 3.0});
  expect_rejects(plan, 10, "empty or negative window");
}

TEST(FaultPlanValidate, CorruptionBadProbability) {
  fault::FaultPlan plan;
  plan.corruptions.push_back(
      {.node = 2, .from = 0.0, .until = 5.0, .probability = 0.0});
  expect_rejects(plan, 10, "must be in (0, 1]");
}

TEST(FaultPlanValidate, BadHardeningKnobs) {
  fault::FaultPlan plan;
  plan.crashes.push_back({.node = 1, .at = 1.0});
  plan.neighbor_age_timeout = 0.0;
  expect_rejects(plan, 10, "neighbor_age_timeout");
  plan.neighbor_age_timeout = 120.0;
  plan.neighbor_age_sweep_interval = -1.0;
  expect_rejects(plan, 10, "neighbor_age_sweep_interval");
}

// The runner path: a bad plan dies inside ExperimentConfig::validate()
// before any network is built, with the FaultPlan prefix intact.
TEST(ExperimentConfigValidate, RejectsBadFaultPlan) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 20;
  config.fault.crashes.push_back({.node = 20, .at = 1.0});
  config.finalize();
  try {
    config.validate();
    FAIL() << "bad fault plan passed ExperimentConfig::validate()";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("FaultPlan:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("node 20"), std::string::npos);
  }
}

// Late joiners extend the valid id range: ids in
// [node_count, node_count + late_joiners) are addressable fault targets.
TEST(ExperimentConfigValidate, LateJoinerIdsAreValidTargets) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 20;
  config.late_joiners = 2;
  config.fault.crashes.push_back({.node = 21, .at = 300.0});
  config.finalize();
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace lw
