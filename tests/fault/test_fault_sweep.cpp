// Sweep-harness hardening: cooperative cancellation (SIGINT path
// included) leaves complete, parseable partial output; the per-replica
// wall-clock watchdog turns stuck runs into failed replicas; faulted
// sweeps stay bit-identical across thread counts.
#include <gtest/gtest.h>

#include <csignal>
#include <string>

#include "bench/bench_common.h"
#include "scenario/sweep.h"
#include "sim/simulator.h"

namespace lw {
namespace {

scenario::ExperimentConfig quick_config() {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 16;
  config.duration = 30.0;
  config.malicious_count = 0;
  config.oracle_discovery = true;
  return config;
}

/// Structural JSON sanity: braces/brackets balance outside strings and
/// the document is one complete object. (No general parser in-tree; this
/// is exactly the "partial output is not torn" property we guarantee.)
void expect_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced close in JSON";
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0) << "truncated JSON";
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
}

TEST(SweepCancellation, SkipsUnstartedJobsAndKeepsOutputParseable) {
  std::sig_atomic_t cancel = 0;
  scenario::SweepSpec spec;
  spec.base = quick_config();
  spec.points.push_back({"only", nullptr, 0});
  spec.runs = 4;
  spec.base_seed = 300;
  spec.threads = 1;
  spec.cancel = &cancel;
  spec.progress = [&cancel](std::size_t done, std::size_t) {
    if (done >= 1) cancel = 1;  // "SIGINT" right after the first job
  };

  const auto result = scenario::run_sweep(spec);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.jobs_skipped, 3u);
  ASSERT_EQ(result.points.size(), 1u);
  const auto& point = result.points[0];
  ASSERT_EQ(point.replicas.size(), 4u);
  EXPECT_FALSE(point.replicas[0].failed);
  EXPECT_GT(point.replicas[0].data_originated, 0u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(point.replicas[i].failed);
    EXPECT_EQ(point.replicas[i].fail_reason, "cancelled");
  }
  // The completed replica still aggregates; the skipped ones are counted
  // out, not averaged in as zeros.
  EXPECT_EQ(point.aggregate.runs, 1);
  EXPECT_EQ(point.aggregate.failed_runs, 3);

  const std::string json = scenario::to_json(result);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"interrupted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_skipped\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fail_reason\":\"cancelled\""), std::string::npos);
}

TEST(SweepCancellation, RealSigintFollowsTheSamePath) {
  bench::detail::g_cancel = 0;
  bench::detail::install_cancel_handlers();
  std::signal(SIGINT, bench::detail::handle_cancel_signal);

  scenario::SweepSpec spec;
  spec.base = quick_config();
  spec.points.push_back({"only", nullptr, 0});
  spec.runs = 3;
  spec.base_seed = 310;
  spec.threads = 1;
  spec.cancel = &bench::detail::g_cancel;
  spec.progress = [](std::size_t done, std::size_t) {
    if (done == 1) std::raise(SIGINT);  // delivered to this process
  };

  const auto result = scenario::run_sweep(spec);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.jobs_skipped, 2u);
  expect_balanced_json(scenario::to_json(result));

  bench::detail::g_cancel = 0;
  std::signal(SIGINT, SIG_DFL);
}

TEST(SweepWatchdog, RunTimeoutMarksStuckReplicaFailed) {
  scenario::SweepSpec spec;
  spec.base = quick_config();
  spec.base.duration = 1e9;  // would run (virtually) forever
  spec.points.push_back({"stuck", nullptr, 0});
  spec.runs = 1;
  spec.base_seed = 320;
  spec.threads = 1;
  spec.run_timeout_seconds = 0.2;

  const auto result = scenario::run_sweep(spec);
  EXPECT_FALSE(result.interrupted);
  ASSERT_EQ(result.points[0].replicas.size(), 1u);
  const auto& replica = result.points[0].replicas[0];
  EXPECT_TRUE(replica.failed);
  EXPECT_NE(replica.fail_reason.find("timeout"), std::string::npos)
      << replica.fail_reason;
  EXPECT_EQ(result.points[0].aggregate.runs, 0);
  EXPECT_EQ(result.points[0].aggregate.failed_runs, 1);

  const std::string json = scenario::to_json(result);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"failed\":true"), std::string::npos);
}

TEST(SweepWatchdog, RunExperimentThrowsWallClockTimeout) {
  auto config = quick_config();
  config.duration = 1e9;
  try {
    scenario::run_experiment(config, 0.1);
    FAIL() << "a 1e9 s run finished inside 0.1 wall seconds?";
  } catch (const sim::WallClockTimeout& timeout) {
    EXPECT_DOUBLE_EQ(timeout.limit_seconds, 0.1);
    EXPECT_GT(timeout.reached, 0.0);
  }
}

TEST(FaultDeterminism, FaultedSweepIsBitIdenticalAcrossThreads) {
  scenario::SweepSpec spec;
  spec.base = quick_config();
  spec.base.node_count = 20;
  spec.base.duration = 100.0;
  spec.base.oracle_discovery = false;  // dynamic join needs the real path
  spec.base.obs.trace = true;
  spec.base.obs.counters = true;
  spec.base.obs.forensics = true;
  spec.runs = 2;
  spec.base_seed = 330;
  spec.points.push_back(
      {"churn", [](scenario::ExperimentConfig& c) {
         c.fault.crashes.push_back({.node = 2, .at = 40.0, .recover_at = 70.0});
         c.fault.links.push_back(
             {.a = 3, .b = 4, .from = 30.0, .until = 60.0, .extra_loss = 1.0});
         c.fault.neighbor_age_timeout = 20.0;
         c.fault.neighbor_age_sweep_interval = 5.0;
       },
       0});
  spec.points.push_back(
      {"frame", [](scenario::ExperimentConfig& c) {
         c.fault.framings.push_back({.victim = 5, .guards = 2, .start = 50.0});
         c.fault.corruptions.push_back(
             {.node = 6, .from = 20.0, .until = 90.0, .probability = 0.5});
       },
       0});

  spec.threads = 1;
  const auto serial = scenario::run_sweep(spec);
  spec.threads = 4;
  const auto parallel = scenario::run_sweep(spec);

  EXPECT_EQ(scenario::to_json(serial), scenario::to_json(parallel));
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    ASSERT_EQ(serial.points[p].replicas.size(),
              parallel.points[p].replicas.size());
    for (std::size_t i = 0; i < serial.points[p].replicas.size(); ++i) {
      EXPECT_EQ(serial.points[p].replicas[i].trace_jsonl,
                parallel.points[p].replicas[i].trace_jsonl)
          << "point " << p << " replica " << i;
    }
    // The faulted runs actually injected something (the determinism claim
    // would be vacuous over empty traces).
    EXPECT_NE(serial.points[p].replicas[0].trace_jsonl.find("\"flt\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace lw
