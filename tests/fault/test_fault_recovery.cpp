// Tier-1 fault behavior: a crashed node is silent while down, re-enters
// through dynamic join on recovery (regaining first- and second-hop
// state, becoming guardable again), detection survives churn, framing
// below gamma never isolates, and corrupted frames die at HMAC.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "forensics/check.h"
#include "forensics/trace_reader.h"
#include "scenario/network.h"
#include "scenario/runner.h"

namespace lw {
namespace {

scenario::ExperimentConfig base_config(std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 25;
  config.seed = seed;
  config.duration = 250.0;
  config.malicious_count = 0;
  return config;
}

/// Crash node 3 over [40, 100) with fast neighbor aging so its peers
/// expire it while it is down and must re-authenticate it afterwards.
void add_crash(scenario::ExperimentConfig& config) {
  config.fault.crashes.push_back({.node = 3, .at = 40.0, .recover_at = 100.0});
  config.fault.neighbor_age_timeout = 30.0;
  config.fault.neighbor_age_sweep_interval = 5.0;
}

TEST(FaultRecovery, RecoveredNodeRegainsTwoHopNeighbors) {
  auto config = base_config(201);
  add_crash(config);
  config.finalize();
  config.validate();
  scenario::Network network(std::move(config));
  network.run();

  const scenario::Node& rebooted = network.node(3);
  EXPECT_TRUE(rebooted.alive());
  ASSERT_GT(rebooted.table().neighbor_count(), 0u)
      << "recovered node never re-authenticated anyone";
  // Second-hop knowledge came back too: the node holds the neighbor list
  // of at least one first-hop neighbor (the guard precondition).
  bool has_second_hop = false;
  for (NodeId peer : rebooted.table().neighbors()) {
    if (rebooted.table().has_list_of(peer)) has_second_hop = true;
  }
  EXPECT_TRUE(has_second_hop)
      << "recovered node has first hops but no second-hop lists";
  // The recovery-latency sample closed, and quickly (well inside the
  // 150 s the node was back up).
  ASSERT_EQ(rebooted.recovery_latencies().size(), 1u);
  EXPECT_GT(rebooted.recovery_latencies()[0], 0.0);
  EXPECT_LT(rebooted.recovery_latencies()[0], 100.0);
  EXPECT_EQ(network.fault_crashes(), 1u);
  EXPECT_EQ(network.fault_recoveries(), 1u);
}

TEST(FaultRecovery, RecoveredNodeIsGuardableAgain) {
  auto config = base_config(202);
  add_crash(config);
  config.finalize();
  config.validate();
  scenario::Network network(std::move(config));
  network.run();

  // Some live graph neighbor re-admitted node 3 (so it can watch node 3's
  // links again), and the fault host would pick guards for it once more.
  bool readmitted = false;
  for (NodeId peer : network.graph().neighbors(3)) {
    if (network.node(peer).table().is_active_neighbor(3)) readmitted = true;
  }
  EXPECT_TRUE(readmitted)
      << "no neighbor re-authenticated the recovered node";
  EXPECT_FALSE(network.framing_guards(3, 1).empty())
      << "recovered node has no eligible guards";
}

TEST(FaultRecovery, CrashedRadioIsSilentAndTracePassesLint) {
  auto config = base_config(203);
  add_crash(config);
  config.obs.trace = true;
  const int gamma = config.defense.liteworp.detection_confidence;
  config.finalize();
  config.validate();
  scenario::Network network(std::move(config));
  network.run();

  std::istringstream in(network.trace_jsonl());
  const auto records = forensics::read_trace(in);
  ASSERT_FALSE(records.empty());
  // The trace carries the fault ground truth...
  const auto crash_count = std::count_if(
      records.begin(), records.end(), [](const forensics::TraceRecord& r) {
        return r.kind_known && r.kind == obs::EventKind::kFltCrash;
      });
  EXPECT_EQ(crash_count, 1);
  // ...no transmission from node 3 inside its down window...
  for (const auto& record : records) {
    if (record.kind_known && record.kind == obs::EventKind::kPhyTx &&
        record.node == 3) {
      EXPECT_FALSE(record.t >= 40.0 && record.t < 100.0)
          << "crashed node transmitted at t=" << record.t;
    }
  }
  // ...and the full linter (including the crash-silence and gamma-defense
  // invariants) finds nothing to complain about.
  const auto issues = forensics::check_trace(records, {.gamma = gamma});
  for (const auto& issue : issues) {
    ADD_FAILURE() << "line " << issue.line << ": " << issue.message;
  }
}

TEST(FaultRecovery, WormholeSpawnedAfterRecoveryIsDetected) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 50;
  config.seed = 204;
  config.duration = 600.0;
  config.malicious_count = 2;
  config.attack.start_time = 120.0;
  config.finalize();

  // Learn the seed's attacker ids from a fault-free twin (the pick
  // depends only on seed and topology config), then crash an honest node
  // through the pre-attack window.
  NodeId honest = kInvalidNode;
  {
    scenario::Network probe(config);
    for (NodeId id = 0; id < static_cast<NodeId>(config.node_count); ++id) {
      const auto& bad = probe.malicious_ids();
      if (std::find(bad.begin(), bad.end(), id) == bad.end()) {
        honest = id;
        break;
      }
    }
  }
  ASSERT_NE(honest, kInvalidNode);
  config.fault.crashes.push_back(
      {.node = honest, .at = 30.0, .recover_at = 70.0});
  config.fault.neighbor_age_timeout = 30.0;
  config.fault.neighbor_age_sweep_interval = 5.0;

  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.nodes_crashed, 1u);
  EXPECT_EQ(result.nodes_recovered, 1u);
  EXPECT_EQ(result.malicious_isolated, 2u)
      << "wormhole spawned after the churn settled must still be caught";
  EXPECT_EQ(result.false_isolations, 0u);
}

/// First node with at least `wanted` eligible (honest, alive, deployed)
/// guards in a fault-free twin of `config` — so the framing tests target
/// a victim whose neighborhood can actually carry the collusion.
NodeId pick_victim(scenario::ExperimentConfig config, std::size_t wanted) {
  config.fault = {};
  config.finalize();
  config.validate();
  scenario::Network probe(std::move(config));
  for (NodeId id = 0; id < static_cast<NodeId>(probe.size()); ++id) {
    if (probe.framing_guards(id, wanted).size() >= wanted) return id;
  }
  return kInvalidNode;
}

TEST(FaultFraming, BelowGammaNeverIsolates) {
  auto config = base_config(205);
  const auto gamma =
      static_cast<std::size_t>(config.defense.liteworp.detection_confidence);
  ASSERT_GE(gamma, 2u);
  const NodeId victim = pick_victim(config, gamma + 2);
  ASSERT_NE(victim, kInvalidNode);
  // Frame well after discovery settles: the compromised guards need the
  // victim's neighbor list to mint verifiable per-recipient alerts.
  config.fault.framings.push_back(
      {.victim = victim, .guards = gamma - 1, .start = 120.0});
  config.obs.forensics = true;

  auto result = scenario::run_experiment(config);
  EXPECT_GE(result.forensics.framed_accusations, 1u)
      << "the compromised guards never got an accusation on record";
  EXPECT_EQ(result.forensics.framed_isolations, 0u);
  EXPECT_EQ(result.false_isolations, 0u)
      << "fewer than gamma framers must never isolate anyone";
}

TEST(FaultFraming, AtOrAboveGammaCanIsolateTheVictim) {
  auto config = base_config(206);
  const auto gamma =
      static_cast<std::size_t>(config.defense.liteworp.detection_confidence);
  // gamma+1 framers: even a compromised guard hears gamma *other* guards,
  // so somebody in the neighborhood must cross the bar.
  const NodeId victim = pick_victim(config, gamma + 2);
  ASSERT_NE(victim, kInvalidNode);
  config.fault.framings.push_back(
      {.victim = victim, .guards = gamma + 1, .start = 120.0});
  config.obs.forensics = true;

  auto result = scenario::run_experiment(config);
  EXPECT_GT(result.false_isolations, 0u)
      << "gamma+1 colluding guards should overwhelm the threshold";
  EXPECT_GE(result.forensics.framed_isolations, 1u);
  // Forensics labels the incident as framed, not as an organic false
  // positive or a true detection.
  bool framed_incident = false;
  for (const auto& incident : result.incidents) {
    if (incident.accused == victim &&
        std::string(incident.label()) == "framed") {
      framed_incident = true;
      EXPECT_GE(incident.framers.size(), gamma);
    }
  }
  EXPECT_TRUE(framed_incident);
}

TEST(FaultCorruption, CorruptedFramesDieAtHmacNotInParsers) {
  auto config = base_config(207);
  config.fault.corruptions.push_back(
      {.node = 4, .from = 10.0, .until = 240.0, .probability = 1.0});

  // Every frame arriving at node 4 is corrupted for nearly the whole run:
  // the run must complete (no parser crash), convict nobody, and the rest
  // of the network keeps moving data.
  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.false_isolations, 0u);
  EXPECT_GT(result.data_originated, 0u);
  EXPECT_GT(result.data_delivered, 0u);
}

}  // namespace
}  // namespace lw
