// Span/forensics ground-truth agreement plus invariant-8 unit coverage.
//
// The load-bearing claim: every isolation incident the forensic folder
// labels has exactly one enclosing alert-round span in the trace — the
// span layer and the incident layer agree on what a detection was.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "forensics/check.h"
#include "forensics/trace_reader.h"
#include "scenario/runner.h"

namespace lw::forensics {
namespace {

lw::scenario::ExperimentConfig span_config() {
  auto config = lw::scenario::ExperimentConfig::table2_defaults();
  config.node_count = 25;
  config.seed = 99;
  // Long enough for gamma corroboration to isolate both colluders.
  config.duration = 600.0;
  config.malicious_count = 2;
  config.obs.trace = true;
  config.obs.counters = true;
  config.obs.spans = true;
  config.obs.forensics = true;
  config.obs.trace_layers = lw::obs::parse_layer_mask("nbr,route,mon,atk");
  return config;
}

std::vector<TraceRecord> parse_all(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

TEST(SpanEnclosure, EveryIsolationIncidentHasExactlyOneAlertRound) {
  const lw::scenario::RunResult result =
      lw::scenario::run_experiment(span_config());
  ASSERT_FALSE(result.trace_jsonl.empty());
  const std::vector<TraceRecord> records = parse_all(result.trace_jsonl);

  // Alert-round spans by accused (the span's node is the accused), and the
  // monitor events that are allowed to open one.
  std::map<NodeId, int> rounds;
  std::map<NodeId, int> monitor_mentions;
  for (const TraceRecord& r : records) {
    if (r.is_span && r.name == "begin" && r.span_kind == "alert_round") {
      ++rounds[r.node];
    }
    if (!r.is_span && r.kind_known &&
        (r.kind == lw::obs::EventKind::kMonSuspicion ||
         r.kind == lw::obs::EventKind::kMonDetection ||
         r.kind == lw::obs::EventKind::kMonAlert)) {
      ++monitor_mentions[r.peer];
    }
  }
  // Forensic incidents that reached isolation.
  ASSERT_FALSE(result.incidents.empty());
  int isolated = 0;
  for (const auto& incident : result.incidents) {
    if (!incident.isolated()) continue;
    ++isolated;
    EXPECT_EQ(rounds[incident.accused], 1)
        << "accused " << incident.accused
        << " must have exactly one enclosing alert-round span";
  }
  ASSERT_GT(isolated, 0) << "scenario must isolate its colluders";
  // Rounds open at first *suspicion* (earlier than the forensic labeling
  // bar, which needs a local detection) — but never without any monitor
  // event naming the accused, and never twice.
  for (const auto& [accused, count] : rounds) {
    EXPECT_EQ(count, 1) << "accused " << accused;
    EXPECT_GT(monitor_mentions[accused], 0)
        << "alert round without a monitor event naming accused " << accused;
  }
}

TEST(SpanEnclosure, TraceWithSpansPassesTheLinter) {
  const lw::scenario::RunResult result =
      lw::scenario::run_experiment(span_config());
  const std::vector<CheckIssue> issues =
      check_trace(parse_all(result.trace_jsonl));
  for (const CheckIssue& issue : issues) {
    ADD_FAILURE() << "line " << issue.line << ": " << issue.message;
  }
}

// ---- Invariant 8 unit tests on hand-written traces ----

std::vector<CheckIssue> lint(const std::string& text) {
  return check_trace(parse_all(text));
}

TEST(SpanBalance, BalancedNestedSpansPass) {
  EXPECT_TRUE(lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
                   "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n"
                   "{\"t\":1.5,\"layer\":\"span\",\"event\":\"begin\","
                   "\"span\":\"alibi_window\",\"sid\":2,\"node\":4,"
                   "\"parent\":1}\n"
                   "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
                   "\"span\":\"alibi_window\",\"sid\":2,\"node\":4,"
                   "\"dur\":0.5,\"outcome\":\"cleared\"}\n"
                   "{\"t\":3.0,\"layer\":\"span\",\"event\":\"end\","
                   "\"span\":\"route_session\",\"sid\":1,\"node\":3,"
                   "\"dur\":2.0,\"outcome\":\"established\"}\n")
                  .empty());
}

TEST(SpanBalance, FlagsEndWithoutBegin) {
  const auto issues =
      lint("{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"route_session\",\"sid\":7,\"node\":3,"
           "\"dur\":1.0,\"outcome\":\"established\"}\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("without an open span.begin"),
            std::string::npos);
}

TEST(SpanBalance, FlagsBeginWithoutEnd) {
  const auto issues =
      lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("no matching span.end"),
            std::string::npos);
}

TEST(SpanBalance, FlagsDuplicateSid) {
  const auto issues =
      lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n"
           "{\"t\":1.5,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":4}\n"
           "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3,"
           "\"dur\":1.0,\"outcome\":\"established\"}\n");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("duplicate span sid"), std::string::npos);
}

TEST(SpanBalance, FlagsUnknownSpanKind) {
  const auto issues =
      lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"coffee_break\",\"sid\":1,\"node\":3}\n"
           "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"coffee_break\",\"sid\":1,\"node\":3,"
           "\"dur\":1.0,\"outcome\":\"established\"}\n");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("unknown span kind"), std::string::npos);
}

TEST(SpanBalance, FlagsParentNotOpen) {
  const auto issues =
      lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"alibi_window\",\"sid\":2,\"node\":4,\"parent\":1}\n"
           "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"alibi_window\",\"sid\":2,\"node\":4,"
           "\"dur\":1.0,\"outcome\":\"cleared\"}\n");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("that is not open"), std::string::npos);
}

TEST(SpanBalance, FlagsParentEndingBeforeChild) {
  const auto issues =
      lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n"
           "{\"t\":1.5,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"alibi_window\",\"sid\":2,\"node\":4,\"parent\":1}\n"
           "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3,"
           "\"dur\":1.0,\"outcome\":\"established\"}\n"
           "{\"t\":3.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"alibi_window\",\"sid\":2,\"node\":4,"
           "\"dur\":1.5,\"outcome\":\"cleared\"}\n");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("still open (not enclosed)"),
            std::string::npos);
}

TEST(SpanBalance, FlagsDurationMismatch) {
  const auto issues =
      lint("{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n"
           "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3,"
           "\"dur\":5.0,\"outcome\":\"established\"}\n");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("does not match"), std::string::npos);
}

TEST(SpanBalance, RunHeaderFlagsDanglingSpans) {
  const auto issues =
      lint("{\"run\":{\"point\":\"a\",\"seed\":1}}\n"
           "{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n"
           "{\"run\":{\"point\":\"b\",\"seed\":2}}\n"
           "{\"t\":1.0,\"layer\":\"span\",\"event\":\"begin\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3}\n"
           "{\"t\":2.0,\"layer\":\"span\",\"event\":\"end\","
           "\"span\":\"route_session\",\"sid\":1,\"node\":3,"
           "\"dur\":1.0,\"outcome\":\"established\"}\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 2u);
  EXPECT_NE(issues[0].message.find("no matching span.end"),
            std::string::npos);
}

}  // namespace
}  // namespace lw::forensics
