// IncidentBuilder: folding monitor/attack events into labeled incidents,
// ground-truth cross-checking on real runs, and live-vs-offline agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "forensics/incident.h"
#include "forensics/trace_reader.h"
#include "scenario/runner.h"

namespace lw::forensics {
namespace {

obs::Event mon_event(obs::EventKind kind, Time t, NodeId guard, NodeId accused,
                     double value = 0.0, std::uint8_t detail = 0) {
  obs::Event event;
  event.t = t;
  event.kind = kind;
  event.node = guard;
  event.peer = accused;
  event.value = value;
  event.detail = detail;
  return event;
}

obs::Event atk_event(obs::EventKind kind, Time t, NodeId actor) {
  obs::Event event;
  event.t = t;
  event.kind = kind;
  event.node = actor;
  return event;
}

TEST(IncidentBuilder, SuspicionAloneIsNotAnIncident) {
  IncidentBuilder builder;
  builder.on_event(mon_event(obs::EventKind::kMonSuspicion, 1.0, 2, 9, 1.0));
  EXPECT_TRUE(builder.build().empty());
}

TEST(IncidentBuilder, DetectionOpensALabeledIncident) {
  IncidentBuilder builder;
  builder.on_event(atk_event(obs::EventKind::kAtkSpawn, 0.0, 9));
  builder.on_event(atk_event(obs::EventKind::kAtkDrop, 5.0, 9));
  builder.on_event(mon_event(obs::EventKind::kMonSuspicion, 6.0, 2, 9, 1.0,
                             obs::kSuspicionDrop));
  builder.on_event(mon_event(obs::EventKind::kMonSuspicion, 7.0, 2, 9, 2.0,
                             obs::kSuspicionFabrication));
  builder.on_event(mon_event(obs::EventKind::kMonDetection, 8.0, 2, 9, 2.0));

  const std::vector<Incident> incidents = builder.build();
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& inc = incidents.front();
  EXPECT_EQ(inc.accused, 9u);
  EXPECT_TRUE(inc.ground_truth_malicious);
  EXPECT_DOUBLE_EQ(inc.first_malicious_act, 5.0);
  EXPECT_DOUBLE_EQ(inc.first_suspicion, 6.0);
  EXPECT_DOUBLE_EQ(inc.first_detection, 8.0);
  EXPECT_EQ(inc.suspicions_drop, 1u);
  EXPECT_EQ(inc.suspicions_fabrication, 1u);
  EXPECT_EQ(inc.detections, 1u);
  EXPECT_DOUBLE_EQ(inc.peak_malc, 2.0);
  EXPECT_FALSE(inc.isolated());
  EXPECT_LT(inc.detection_latency(), 0.0) << "no isolation yet";
}

TEST(IncidentBuilder, IsolationLatencyAndDistinctGuards) {
  IncidentBuilder builder;
  builder.on_event(atk_event(obs::EventKind::kAtkTunnel, 50.0, 4));
  builder.on_event(mon_event(obs::EventKind::kMonDetection, 60.0, 1, 4));
  builder.on_event(mon_event(obs::EventKind::kMonAlert, 61.0, 1, 4));
  builder.on_event(mon_event(obs::EventKind::kMonAlert, 62.0, 7, 4));
  builder.on_event(mon_event(obs::EventKind::kMonAlert, 62.5, 7, 4));  // dup
  builder.on_event(mon_event(obs::EventKind::kMonAlert, 63.0, 3, 4));
  builder.on_event(mon_event(obs::EventKind::kMonIsolation, 64.0, 5, 4, 3.0));

  const std::vector<Incident> incidents = builder.build();
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& inc = incidents.front();
  EXPECT_TRUE(inc.ground_truth_malicious);
  EXPECT_TRUE(inc.isolated());
  EXPECT_EQ(inc.alerts, 4u);
  EXPECT_EQ(inc.accusing_guards, (std::vector<NodeId>{1, 3, 7}));
  EXPECT_DOUBLE_EQ(inc.detection_latency(), 14.0);
}

TEST(IncidentBuilder, HonestAccusedIsAFalsePositive) {
  IncidentBuilder builder;
  builder.on_event(atk_event(obs::EventKind::kAtkSpawn, 0.0, 9));
  builder.on_event(mon_event(obs::EventKind::kMonDetection, 8.0, 2, 3));
  const std::vector<Incident> incidents = builder.build();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_FALSE(incidents.front().ground_truth_malicious);

  const ForensicsSummary summary = IncidentBuilder::summarize(incidents);
  EXPECT_EQ(summary.false_positives, 1u);
  EXPECT_EQ(summary.true_positives, 0u);
  EXPECT_DOUBLE_EQ(summary.precision(), 0.0);
}

TEST(IncidentBuilder, TimelineIsCappedButCounted) {
  IncidentBuilder builder;
  for (int i = 0; i < 300; ++i) {
    builder.on_event(mon_event(obs::EventKind::kMonSuspicion,
                               static_cast<Time>(i), 2, 9,
                               static_cast<double>(i)));
  }
  builder.on_event(mon_event(obs::EventKind::kMonDetection, 301.0, 2, 9));
  const std::vector<Incident> incidents = builder.build();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents.front().timeline.size(), Incident::kTimelineCap);
  EXPECT_EQ(incidents.front().timeline_total, 301u);
}

// ---- End-to-end: labels vs ground truth on a real isolating run ----

scenario::ExperimentConfig forensic_config() {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 25;
  config.seed = 99;
  config.duration = 600.0;
  config.malicious_count = 2;
  config.obs.trace = true;
  config.obs.forensics = true;
  return config;
}

TEST(ForensicsEndToEnd, IncidentLabelsMatchGroundTruthExactly) {
  scenario::Network network(forensic_config());
  network.run();

  const std::vector<NodeId>& truth = network.malicious_ids();
  const std::vector<Incident> incidents = network.incidents();
  ASSERT_FALSE(incidents.empty());

  // Zero mislabels: an incident is marked malicious exactly when the
  // accused is in the network's own attacker list.
  for (const Incident& inc : incidents) {
    const bool actually_malicious =
        std::find(truth.begin(), truth.end(), inc.accused) != truth.end();
    EXPECT_EQ(inc.ground_truth_malicious, actually_malicious)
        << "accused " << inc.accused;
  }

  // At this horizon the attackers are isolated; latency must be measured
  // from the first malicious act (after attack start), so it is positive
  // and within the run.
  const ForensicsSummary summary = network.forensics_summary();
  EXPECT_TRUE(summary.enabled);
  ASSERT_GT(summary.isolated_incidents, 0u) << "run too short to isolate";
  ASSERT_GT(summary.latency_samples, 0u);
  EXPECT_GT(summary.mean_detection_latency, 0.0);
  EXPECT_LT(summary.mean_detection_latency, forensic_config().duration);
  for (const Incident& inc : incidents) {
    if (!inc.isolated() || !inc.ground_truth_malicious) continue;
    EXPECT_GE(inc.first_malicious_act,
              forensic_config().attack.start_time);
    EXPECT_GT(static_cast<int>(inc.accusing_guards.size()), 0);
  }
}

TEST(ForensicsEndToEnd, OfflineFoldOfTraceMatchesLiveIncidents) {
  scenario::Network network(forensic_config());
  network.run();
  const std::vector<Incident> live = network.incidents();
  const std::string trace = network.trace_jsonl();
  ASSERT_FALSE(trace.empty());

  // Re-derive the incidents from nothing but the trace bytes, exactly the
  // way `lw-trace incidents` does.
  std::istringstream in(trace);
  IncidentBuilder offline;
  for (const TraceRecord& record : read_trace(in)) {
    if (!record.is_run_header && record.kind_known) {
      offline.on_event(record.to_event());
    }
  }
  const std::vector<Incident> replayed = offline.build();

  ASSERT_EQ(replayed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replayed[i].accused, live[i].accused);
    EXPECT_EQ(replayed[i].ground_truth_malicious,
              live[i].ground_truth_malicious);
    EXPECT_EQ(replayed[i].accusing_guards, live[i].accusing_guards);
    EXPECT_EQ(replayed[i].detections, live[i].detections);
    EXPECT_EQ(replayed[i].alerts, live[i].alerts);
    EXPECT_EQ(replayed[i].isolations, live[i].isolations);
    EXPECT_EQ(replayed[i].suspicions_fabrication,
              live[i].suspicions_fabrication);
    EXPECT_EQ(replayed[i].suspicions_drop, live[i].suspicions_drop);
    // Timestamps pass through the writer's %.9f formatting, so the offline
    // values are nanosecond-quantized.
    EXPECT_NEAR(replayed[i].first_malicious_act, live[i].first_malicious_act,
                1e-9);
    EXPECT_NEAR(replayed[i].first_isolation, live[i].first_isolation, 1e-9);
  }
}

TEST(ForensicsEndToEnd, RunResultCarriesTheSummary) {
  const scenario::RunResult result =
      scenario::run_experiment(forensic_config());
  EXPECT_TRUE(result.forensics.enabled);
  EXPECT_EQ(result.forensics.incidents, result.incidents.size());

  // Forensics off: summary disabled, incident list empty.
  auto off = forensic_config();
  off.obs.forensics = false;
  const scenario::RunResult plain = scenario::run_experiment(off);
  EXPECT_FALSE(plain.forensics.enabled);
  EXPECT_TRUE(plain.incidents.empty());
}

}  // namespace
}  // namespace lw::forensics
