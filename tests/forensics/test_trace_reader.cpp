// Trace reader round-trips, lineage chains, and the `check` invariant
// linter — including that it passes the golden fixture and fails
// hand-corrupted variants of it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "forensics/check.h"
#include "forensics/trace_reader.h"
#include "obs/trace_writer.h"
#include "packet/packet.h"

namespace lw::forensics {
namespace {

std::vector<TraceRecord> parse_all(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

// ---- Round-trip through the writer ----

TEST(TraceReader, RoundTripsAPacketEvent) {
  std::ostringstream out;
  obs::TraceWriter writer(out);
  pkt::Packet packet;
  packet.type = pkt::PacketType::kData;
  packet.origin = 11;
  packet.seq = 42;
  packet.lineage = 987654321;
  obs::Event event;
  event.t = 1.25;
  event.kind = obs::EventKind::kRouteForward;
  event.node = 5;
  event.peer = 6;
  event.packet = &packet;
  writer.on_event(event);

  const std::vector<TraceRecord> records = parse_all(out.str());
  ASSERT_EQ(records.size(), 1u);
  const TraceRecord& r = records.front();
  EXPECT_FALSE(r.is_run_header);
  EXPECT_TRUE(r.kind_known);
  EXPECT_EQ(r.kind, obs::EventKind::kRouteForward);
  EXPECT_DOUBLE_EQ(r.t, 1.25);
  EXPECT_EQ(r.node, 5u);
  EXPECT_EQ(r.peer, 6u);
  ASSERT_TRUE(r.has_packet);
  EXPECT_EQ(r.pkt_type, "DATA");
  EXPECT_EQ(r.origin, 11u);
  EXPECT_EQ(r.seq, 42u);
  EXPECT_EQ(r.lineage, 987654321u);
}

TEST(TraceReader, RoundTripsSuspicionDetail) {
  std::ostringstream out;
  obs::TraceWriter writer(out);
  obs::Event event;
  event.t = 2.0;
  event.kind = obs::EventKind::kMonSuspicion;
  event.node = 1;
  event.peer = 9;
  event.value = 3.0;
  event.detail = obs::kSuspicionDrop;
  writer.on_event(event);

  const std::vector<TraceRecord> records = parse_all(out.str());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().suspicion, "drop");
  EXPECT_EQ(records.front().to_event().detail, obs::kSuspicionDrop);
}

TEST(TraceReader, ParsesRunHeaders) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"run\":{\"point\":\"gamma=3\",\"seed\":17}}\n"
      "{\"t\":0.5,\"layer\":\"nbr\",\"event\":\"hello\",\"node\":3}\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].is_run_header);
  EXPECT_EQ(records[0].point, "gamma=3");
  EXPECT_EQ(records[0].run_seed, 17u);
  EXPECT_FALSE(records[1].is_run_header);
  EXPECT_EQ(records[1].kind, obs::EventKind::kNbrHello);
}

TEST(TraceReader, UnknownEventNameParsesButIsFlagged) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"mon\",\"event\":\"bogus\",\"node\":1}\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records.front().kind_known);
}

TEST(TraceReader, MalformedLinesThrowWithLineNumbers) {
  EXPECT_THROW(parse_all("{\"t\":1,\"layer\":\"mon\"}\n"), TraceFormatError);
  EXPECT_THROW(parse_all("not json\n"), TraceFormatError);
  EXPECT_THROW(
      parse_all("{\"t\":1,\"layer\":\"mon\",\"event\":\"alert\",\"bad\":1}\n"),
      TraceFormatError);
  try {
    parse_all(
        "{\"t\":1,\"layer\":\"nbr\",\"event\":\"hello\",\"node\":1}\n"
        "garbage\n");
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(TraceReader, LineageChainFiltersAndPreservesOrder) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"route\",\"event\":\"forward\",\"node\":1,"
      "\"peer\":2,\"pkt\":\"DATA\",\"origin\":1,\"seq\":1,\"lin\":10}\n"
      "{\"t\":2,\"layer\":\"route\",\"event\":\"forward\",\"node\":9,"
      "\"peer\":4,\"pkt\":\"DATA\",\"origin\":9,\"seq\":1,\"lin\":11}\n"
      "{\"t\":3,\"layer\":\"route\",\"event\":\"deliver\",\"node\":3,"
      "\"pkt\":\"DATA\",\"origin\":1,\"seq\":1,\"lin\":10}\n");
  const std::vector<TraceRecord> chain = lineage_chain(records, 10);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].kind, obs::EventKind::kRouteForward);
  EXPECT_EQ(chain[1].kind, obs::EventKind::kRouteDeliver);
}

// ---- The invariant linter ----

TEST(CheckTrace, CleanSyntheticTracePasses) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"route\",\"event\":\"forward\",\"node\":1,"
      "\"peer\":2,\"pkt\":\"DATA\",\"origin\":1,\"seq\":1,\"lin\":10}\n"
      "{\"t\":2,\"layer\":\"route\",\"event\":\"deliver\",\"node\":3,"
      "\"pkt\":\"DATA\",\"origin\":1,\"seq\":1,\"lin\":10}\n");
  EXPECT_TRUE(check_trace(records).empty());
}

TEST(CheckTrace, FlagsBackwardsTimestamps) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":5,\"layer\":\"nbr\",\"event\":\"hello\",\"node\":1}\n"
      "{\"t\":4,\"layer\":\"nbr\",\"event\":\"hello\",\"node\":2}\n");
  const std::vector<CheckIssue> issues = check_trace(records);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues.front().line, 2u);
}

TEST(CheckTrace, RunHeaderResetsTheClock) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":5,\"layer\":\"nbr\",\"event\":\"hello\",\"node\":1}\n"
      "{\"run\":{\"point\":\"b\",\"seed\":2}}\n"
      "{\"t\":0,\"layer\":\"nbr\",\"event\":\"hello\",\"node\":1}\n");
  EXPECT_TRUE(check_trace(records).empty());
}

TEST(CheckTrace, FlagsDeliveryWithoutForward) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":2,\"layer\":\"route\",\"event\":\"deliver\",\"node\":3,"
      "\"pkt\":\"DATA\",\"origin\":1,\"seq\":1,\"lin\":10}\n");
  const std::vector<CheckIssue> issues = check_trace(records);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().message.find("lineage 10"), std::string::npos);
}

TEST(CheckTrace, FlagsIsolationWithTooFewDistinctGuards) {
  // Two alerts, one guard: both the claimed count (3) and gamma (3) fail.
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"mon\",\"event\":\"alert\",\"node\":4,"
      "\"peer\":9}\n"
      "{\"t\":2,\"layer\":\"mon\",\"event\":\"alert\",\"node\":4,"
      "\"peer\":9}\n"
      "{\"t\":3,\"layer\":\"mon\",\"event\":\"isolation\",\"node\":5,"
      "\"peer\":9,\"value\":3}\n");
  const std::vector<CheckIssue> issues = check_trace(records);
  EXPECT_EQ(issues.size(), 2u);
}

TEST(CheckTrace, AcceptsLegitimateIsolation) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"mon\",\"event\":\"alert\",\"node\":1,"
      "\"peer\":9}\n"
      "{\"t\":2,\"layer\":\"mon\",\"event\":\"alert\",\"node\":2,"
      "\"peer\":9}\n"
      "{\"t\":3,\"layer\":\"mon\",\"event\":\"alert\",\"node\":3,"
      "\"peer\":9}\n"
      "{\"t\":4,\"layer\":\"mon\",\"event\":\"isolation\",\"node\":5,"
      "\"peer\":9,\"value\":3}\n");
  EXPECT_TRUE(check_trace(records).empty());
}

TEST(CheckTrace, FlagsForwardToIsolatedPeer) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"mon\",\"event\":\"alert\",\"node\":1,"
      "\"peer\":9}\n"
      "{\"t\":2,\"layer\":\"mon\",\"event\":\"alert\",\"node\":2,"
      "\"peer\":9}\n"
      "{\"t\":3,\"layer\":\"mon\",\"event\":\"alert\",\"node\":3,"
      "\"peer\":9}\n"
      "{\"t\":4,\"layer\":\"mon\",\"event\":\"isolation\",\"node\":5,"
      "\"peer\":9,\"value\":3}\n"
      "{\"t\":5,\"layer\":\"route\",\"event\":\"forward\",\"node\":5,"
      "\"peer\":9,\"pkt\":\"DATA\",\"origin\":5,\"seq\":1,\"lin\":77}\n");
  const std::vector<CheckIssue> issues = check_trace(records);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().message.find("after isolating"),
            std::string::npos);
}

TEST(CheckTrace, FlagsUnknownEventNames) {
  const std::vector<TraceRecord> records = parse_all(
      "{\"t\":1,\"layer\":\"mon\",\"event\":\"bogus\",\"node\":1}\n");
  const std::vector<CheckIssue> issues = check_trace(records);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().message.find("unknown event"), std::string::npos);
}

// ---- The golden fixture ----

std::string golden_path() {
  return std::string(LW_GOLDEN_DIR) + "/golden_trace.jsonl";
}

std::vector<TraceRecord> load_golden() {
  std::ifstream in(golden_path());
  EXPECT_TRUE(in) << "missing fixture " << golden_path();
  return read_trace(in);
}

TEST(CheckTrace, GoldenFixtureIsClean) {
  const std::vector<TraceRecord> records = load_golden();
  ASSERT_FALSE(records.empty());
  const std::vector<CheckIssue> issues = check_trace(records);
  for (const CheckIssue& issue : issues) {
    ADD_FAILURE() << golden_path() << ":" << issue.line << ": "
                  << issue.message;
  }
}

TEST(CheckTrace, HandCorruptedGoldenFixtureFails) {
  // Retarget every delivery to a lineage that never appears in a forward:
  // the tampered trace must be rejected.
  std::vector<TraceRecord> records = load_golden();
  bool corrupted = false;
  for (TraceRecord& record : records) {
    if (record.kind_known && record.kind == obs::EventKind::kRouteDeliver) {
      record.lineage = 0xDEADBEEF;
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "fixture contains no deliveries";
  EXPECT_FALSE(check_trace(records).empty());
}

TEST(CheckTrace, ReorderedGoldenFixtureFails) {
  std::vector<TraceRecord> records = load_golden();
  ASSERT_GT(records.size(), 10u);
  std::swap(records[4].t, records[5].t);
  // Only a genuine reorder counts (equal timestamps swap to a no-op).
  if (records[4].t == records[5].t) {
    records[5].t = records[4].t - 1.0;
  }
  EXPECT_FALSE(check_trace(records).empty());
}

}  // namespace
}  // namespace lw::forensics
