// Discrete-event engine: ordering, ties, cancellation, horizons.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace lw::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule(5.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1.0, [&] { ++ran; });
  sim.schedule(10.0, [&] { ++ran; });
  sim.run_until(5.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilResumesMonotonically) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  sim.schedule(7.0, [&] { times.push_back(sim.now()); });
  sim.run_until(5.0);
  sim.run_until(10.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 7.0}));
}

TEST(Simulator, EventAtExactHorizonRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule(5.0, [&] { ran = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-0.1, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(2.0, [] {});
  sim.run_until(2.0);
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  EventHandle handle = sim.schedule_cancellable(1.0, [&] { ran = true; });
  handle.cancel();
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterExecutionIsHarmless) {
  Simulator sim;
  int runs = 0;
  EventHandle handle = sim.schedule_cancellable(1.0, [&] { ++runs; });
  sim.run_all();
  handle.cancel();
  sim.run_all();
  EXPECT_EQ(runs, 1);
}

TEST(Simulator, DefaultHandleIsInvalid) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // must not crash
}

TEST(Simulator, ExecutedCountsOnlyRunEvents) {
  Simulator sim;
  auto handle = sim.schedule_cancellable(1.0, [] {});
  sim.schedule(2.0, [] {});
  handle.cancel();
  sim.run_all();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.0, [&] { order.push_back(2); });
  });
  sim.schedule(1.0, [&] { order.push_back(3); });
  sim.run_all();
  // The zero-delay event shares the timestamp but was scheduled later, so
  // it runs after the already-queued same-time event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, PendingCountsCancelledEventsUntilPopped) {
  // Cancellation is lazy: the event stays queued (and counted by
  // pending()) until the run loop pops and skips it.
  Simulator sim;
  auto handle = sim.schedule_cancellable(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  handle.cancel();
  EXPECT_EQ(sim.pending(), 2u) << "lazy cancellation keeps the slot";
  sim.run_until(1.5);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.executed(), 0u) << "the cancelled event did not run";
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, MaxPendingTracksTheHighWaterMark) {
  Simulator sim;
  EXPECT_EQ(sim.max_pending(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.schedule(static_cast<double>(i + 1), [] {});
  }
  EXPECT_EQ(sim.max_pending(), 5u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.max_pending(), 5u) << "high-water mark survives the drain";
  // Scheduling from inside a handler can push the mark higher.
  sim.schedule(10.0, [&] {
    for (int i = 0; i < 7; ++i) {
      sim.schedule(1.0, [] {});
    }
  });
  sim.run_all();
  EXPECT_EQ(sim.max_pending(), 7u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Time last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    double t = static_cast<double>((i * 7919) % 1000) / 10.0;
    sim.schedule(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run_all();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed(), 10000u);
}

TEST(SimulatorFanout, InterleavesExactlyLikeSeparateSchedules) {
  // Mirror runs: one schedules every event individually, one fuses a
  // subset into fan-out batches. Execution order, clock values, executed()
  // and pending() must be indistinguishable.
  auto drive = [](Simulator& sim, bool fused, std::vector<int>& order) {
    // Foreign events straddling the batch's time range.
    sim.schedule(1.0, [&] { order.push_back(100); });
    sim.schedule(2.5, [&] { order.push_back(250); });
    sim.schedule(4.0, [&] { order.push_back(400); });
    // The broadcast: out-of-order times, including a tie at 2.5 that must
    // lose to the earlier-scheduled foreign event.
    if (fused) sim.fanout_begin();
    auto add = [&](Time when, int tag) {
      if (fused) {
        sim.fanout_add(when, [&order, tag] { order.push_back(tag); });
      } else {
        sim.schedule_at(when, [&order, tag] { order.push_back(tag); });
      }
    };
    add(3.0, 300);
    add(0.5, 50);
    add(2.5, 251);
    add(5.0, 500);
    if (fused) sim.fanout_commit();
    EXPECT_EQ(sim.pending(), 7u);
  };

  std::vector<int> plain_order;
  std::vector<int> fused_order;
  Simulator plain;
  Simulator fused;
  drive(plain, false, plain_order);
  drive(fused, true, fused_order);
  EXPECT_EQ(plain.run_until(2.75), fused.run_until(2.75));
  EXPECT_EQ(plain.pending(), fused.pending());
  EXPECT_EQ(plain.run_all(), fused.run_all());
  EXPECT_EQ(plain_order, fused_order);
  EXPECT_EQ(fused_order,
            (std::vector<int>{50, 100, 250, 251, 300, 400, 500}));
  EXPECT_EQ(plain.executed(), fused.executed());
  EXPECT_EQ(fused.pending(), 0u);
}

TEST(SimulatorFanout, ItemsCanScheduleAndNestFanouts) {
  // A chained batch item starts a new broadcast (the relay pattern):
  // the inner fan-out must land in order even while the outer chain is
  // mid-flight, and events scheduled by items preempt later items.
  Simulator sim;
  std::vector<int> order;
  sim.fanout_begin();
  sim.fanout_add(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.5, [&] { order.push_back(2); });  // before item at 2.0
    sim.fanout_begin();
    sim.fanout_add(2.5, [&] { order.push_back(4); });
    sim.fanout_add(1.25, [&] { order.push_back(15); });
    sim.fanout_commit();
  });
  sim.fanout_add(2.0, [&] { order.push_back(3); });
  sim.fanout_commit();
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 15, 2, 3, 4}));
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(SimulatorFanout, EmptyAndSingleItemBatchesAreHarmless) {
  Simulator sim;
  int runs = 0;
  sim.fanout_begin();
  sim.fanout_commit();  // no receivers in range
  EXPECT_EQ(sim.pending(), 0u);
  sim.fanout_begin();
  sim.fanout_add(1.0, [&] { ++runs; });
  sim.fanout_commit();
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorFanout, HorizonSplitsABatch) {
  Simulator sim;
  std::vector<int> order;
  sim.fanout_begin();
  for (int i = 1; i <= 5; ++i) {
    sim.fanout_add(static_cast<Time>(i), [&order, i] { order.push_back(i); });
  }
  sim.fanout_commit();
  EXPECT_EQ(sim.run_until(3.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.run_all(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SimulatorFanout, BatchesRecycleWithoutGrowth) {
  // Steady-state broadcasts reuse the batch slab: interleaved begin/commit
  // cycles (one live at a time, as in the PHY) never grow past the high
  // water of concurrently live batches.
  Simulator sim;
  int runs = 0;
  for (int round = 0; round < 100; ++round) {
    sim.fanout_begin();
    for (int i = 0; i < 8; ++i) {
      sim.fanout_add(sim.now() + 0.1 * (i + 1), [&] { ++runs; });
    }
    sim.fanout_commit();
    sim.run_all();
  }
  EXPECT_EQ(runs, 800);
}

}  // namespace
}  // namespace lw::sim
