// Field placement and unit-disc graph properties.
#include <gtest/gtest.h>

#include <algorithm>

#include "topology/disc_graph.h"
#include "topology/field.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace lw::topo {
namespace {

TEST(Field, SideForDensityMatchesFormula) {
  // N_B = pi r^2 N / side^2  =>  side = r sqrt(pi N / N_B).
  double side = field_side_for_density(100, 30.0, 8.0);
  EXPECT_NEAR(side, 30.0 * std::sqrt(kPi * 100 / 8.0), 1e-9);
  // Re-derive the target density from the side.
  double density = 100.0 / (side * side);
  EXPECT_NEAR(kPi * 30.0 * 30.0 * density, 8.0, 1e-9);
}

TEST(Field, SideScalesWithSqrtN) {
  double s20 = field_side_for_density(20, 30.0, 8.0);
  double s80 = field_side_for_density(80, 30.0, 8.0);
  EXPECT_NEAR(s80 / s20, 2.0, 1e-9);
}

TEST(Field, InvalidArgumentsThrow) {
  EXPECT_THROW(field_side_for_density(0, 30.0, 8.0), std::invalid_argument);
  EXPECT_THROW(field_side_for_density(10, -1.0, 8.0), std::invalid_argument);
  EXPECT_THROW(field_side_for_density(10, 30.0, 0.0), std::invalid_argument);
}

TEST(Field, UniformPlacementStaysInBounds) {
  Rng rng(3);
  Field field{120.0, 80.0};
  auto positions = place_uniform(field, 500, rng);
  ASSERT_EQ(positions.size(), 500u);
  for (const auto& p : positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, field.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, field.height);
  }
}

TEST(Field, GridPlacementRegular) {
  Field field{100.0, 100.0};
  auto positions = place_grid(field, 4, 4);
  ASSERT_EQ(positions.size(), 16u);
  EXPECT_DOUBLE_EQ(positions[0].x, 12.5);
  EXPECT_DOUBLE_EQ(positions[0].y, 12.5);
  EXPECT_DOUBLE_EQ(positions[5].x, 37.5);
  EXPECT_DOUBLE_EQ(positions[5].y, 37.5);
}

TEST(Field, LinePlacementSpacing) {
  auto positions = place_line(5, 25.0);
  ASSERT_EQ(positions.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(positions[i].x, 25.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(positions[i].y, 0.0);
  }
}

DiscGraph line_graph(std::size_t n, double spacing, double range) {
  return DiscGraph(place_line(n, spacing), range);
}

TEST(DiscGraph, AdjacencySymmetric) {
  Rng rng(5);
  Field field{150.0, 150.0};
  DiscGraph graph(place_uniform(field, 60, rng), 30.0);
  for (NodeId a = 0; a < graph.size(); ++a) {
    for (NodeId b : graph.neighbors(a)) {
      EXPECT_TRUE(graph.is_neighbor(b, a));
    }
  }
}

TEST(DiscGraph, AdjacencyMatchesDistance) {
  Rng rng(6);
  Field field{100.0, 100.0};
  DiscGraph graph(place_uniform(field, 40, rng), 25.0);
  for (NodeId a = 0; a < graph.size(); ++a) {
    for (NodeId b = 0; b < graph.size(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(graph.is_neighbor(a, b), graph.distance(a, b) <= 25.0);
    }
  }
}

TEST(DiscGraph, LineChainStructure) {
  DiscGraph graph = line_graph(5, 20.0, 25.0);
  EXPECT_TRUE(graph.is_neighbor(0, 1));
  EXPECT_FALSE(graph.is_neighbor(0, 2));
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(2), 2u);
  EXPECT_TRUE(graph.connected());
}

TEST(DiscGraph, HopDistanceOnChain) {
  DiscGraph graph = line_graph(6, 20.0, 25.0);
  EXPECT_EQ(graph.hop_distance(0, 5).value(), 5u);
  EXPECT_EQ(graph.hop_distance(0, 0).value(), 0u);
  EXPECT_EQ(graph.hop_distance(2, 4).value(), 2u);
}

TEST(DiscGraph, DisconnectedComponents) {
  std::vector<Position> positions = {{0, 0}, {10, 0}, {500, 0}, {510, 0}};
  DiscGraph graph(positions, 20.0);
  EXPECT_FALSE(graph.connected());
  EXPECT_FALSE(graph.hop_distance(0, 2).has_value());
  EXPECT_TRUE(graph.shortest_path(0, 2).empty());
}

TEST(DiscGraph, ShortestPathEndpoints) {
  DiscGraph graph = line_graph(6, 20.0, 25.0);
  auto path = graph.shortest_path(1, 4);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 1u);
  EXPECT_EQ(path.back(), 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(graph.is_neighbor(path[i], path[i + 1]));
  }
}

TEST(DiscGraph, ShortestPathIsShortest) {
  // Random graph: BFS path length must equal hop_distance for all pairs.
  Rng rng(8);
  Field field{120.0, 120.0};
  DiscGraph graph(place_uniform(field, 30, rng), 35.0);
  for (NodeId a = 0; a < graph.size(); ++a) {
    for (NodeId b = 0; b < graph.size(); ++b) {
      auto hops = graph.hop_distance(a, b);
      auto path = graph.shortest_path(a, b);
      if (hops) {
        EXPECT_EQ(path.size(), *hops + 1);
      } else {
        EXPECT_TRUE(path.empty());
      }
    }
  }
}

TEST(DiscGraph, AverageDegreeNearTarget) {
  Rng rng(9);
  double side = field_side_for_density(400, 30.0, 8.0);
  Field field{side, side};
  DiscGraph graph(place_uniform(field, 400, rng), 30.0);
  // Border effects pull the average below the bulk target.
  EXPECT_GT(graph.average_degree(), 5.5);
  EXPECT_LT(graph.average_degree(), 9.5);
}

TEST(DiscGraph, GuardsOfLinkMatchDefinition) {
  Rng rng(10);
  Field field{100.0, 100.0};
  DiscGraph graph(place_uniform(field, 40, rng), 30.0);
  for (NodeId from = 0; from < graph.size(); ++from) {
    for (NodeId to : graph.neighbors(from)) {
      auto guards = graph.guards_of_link(from, to);
      // The sender guards its own outgoing link.
      EXPECT_NE(std::find(guards.begin(), guards.end(), from), guards.end());
      // The receiver never guards its own incoming link.
      EXPECT_EQ(std::find(guards.begin(), guards.end(), to), guards.end());
      for (NodeId g : guards) {
        if (g == from) continue;
        EXPECT_TRUE(graph.is_neighbor(g, from));
        EXPECT_TRUE(graph.is_neighbor(g, to));
      }
    }
  }
}

TEST(DiscGraph, GuardCountTracksLensArea) {
  // Statistical check of Section 5.1: the expected guard count of a random
  // link is ~0.51 N_B (allow a wide tolerance; border effects bite).
  Rng rng(11);
  double side = field_side_for_density(600, 30.0, 10.0);
  Field field{side, side};
  DiscGraph graph(place_uniform(field, 600, rng), 30.0);
  double total_guards = 0.0;
  std::size_t links = 0;
  for (NodeId from = 0; from < graph.size(); ++from) {
    for (NodeId to : graph.neighbors(from)) {
      // guards_of_link includes the sender; the analysis counts third
      // parties plus the sender as well (it guards its own link).
      total_guards += static_cast<double>(graph.guards_of_link(from, to).size());
      ++links;
    }
  }
  double avg_guards = total_guards / static_cast<double>(links);
  double nb = graph.average_degree();
  EXPECT_GT(avg_guards, 0.35 * nb);
  EXPECT_LT(avg_guards, 0.75 * nb);
}

TEST(DiscGraph, InvalidRangeThrows) {
  EXPECT_THROW(DiscGraph({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(SpatialIndex, GridAdjacencyMatchesBruteForceOnRandomFields) {
  // The spatial index is a pure accelerator: across many random
  // deployments (varying size, density, and aspect ratio) the grid-built
  // adjacency must equal the all-pairs O(N^2) answer exactly, and every
  // candidate list must come back in ascending id order (the property the
  // byte-identical delivery schedule rests on).
  Rng rng(20240806);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(2, 60));
    const double range = rng.uniform(5.0, 40.0);
    const Field field{rng.uniform(20.0, 300.0), rng.uniform(20.0, 300.0)};
    auto positions = place_uniform(field, n, rng);
    DiscGraph graph(positions, range);

    for (NodeId a = 0; a < n; ++a) {
      // Brute-force reference adjacency for node a.
      std::vector<NodeId> expected;
      for (NodeId b = 0; b < n; ++b) {
        if (b == a) continue;
        const double dx = positions[a].x - positions[b].x;
        const double dy = positions[a].y - positions[b].y;
        if (std::sqrt(dx * dx + dy * dy) <= range) expected.push_back(b);
      }
      EXPECT_EQ(graph.neighbors(a), expected)
          << "trial " << trial << " node " << a << " (n=" << n
          << ", range=" << range << ")";
    }
  }
}

TEST(SpatialIndex, QueryReturnsAscendingSuperset) {
  Rng rng(7);
  const Field field{150.0, 90.0};
  auto positions = place_uniform(field, 300, rng);
  SpatialIndex index(positions, 25.0);
  std::vector<NodeId> candidates;
  for (int probe = 0; probe < 100; ++probe) {
    const Position center{rng.uniform(-20.0, 170.0), rng.uniform(-20.0, 110.0)};
    const double radius = rng.uniform(0.0, 60.0);
    index.query(center, radius, candidates);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end())
        << "duplicate candidate";
    // Superset property: every node actually inside the disc is returned.
    for (NodeId id = 0; id < positions.size(); ++id) {
      const double dx = positions[id].x - center.x;
      const double dy = positions[id].y - center.y;
      if (std::sqrt(dx * dx + dy * dy) <= radius) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       id))
            << "probe " << probe << " missed node " << id;
      }
    }
  }
}

TEST(DiscGraph, OutOfRangeNodeThrows) {
  DiscGraph graph = line_graph(3, 10.0, 15.0);
  EXPECT_THROW((void)graph.shortest_path(0, 7), std::out_of_range);
}

}  // namespace
}  // namespace lw::topo
