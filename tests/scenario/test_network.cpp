// Scenario wiring: topology constraints, determinism, config handling.
#include <gtest/gtest.h>

#include "scenario/runner.h"

namespace lw::scenario {
namespace {

TEST(Config, TableTwoDefaults) {
  auto config = ExperimentConfig::table2_defaults();
  EXPECT_EQ(config.node_count, 100u);
  EXPECT_DOUBLE_EQ(config.radio_range, 30.0);
  EXPECT_DOUBLE_EQ(config.target_neighbors, 8.0);
  EXPECT_DOUBLE_EQ(config.phy.bandwidth_bps, 40000.0);
  EXPECT_DOUBLE_EQ(config.routing.route_timeout, 50.0);
  EXPECT_DOUBLE_EQ(config.traffic.destination_change_rate, 1.0 / 200.0);
  EXPECT_DOUBLE_EQ(config.attack.start_time, 50.0);
  EXPECT_DOUBLE_EQ(config.duration, 2000.0);
  EXPECT_EQ(config.defense.name, "liteworp");
}

TEST(Config, FinalizeOrdersPhases) {
  auto config = ExperimentConfig::table2_defaults();
  config.traffic.start_time = 0.0;  // silly value
  config.attack.start_time = 1.0;
  config.finalize();
  EXPECT_GE(config.traffic.start_time, config.phy.collision_free_until);
  EXPECT_GE(config.attack.start_time, config.traffic.start_time);
}

TEST(Config, SummaryMentionsKeyParameters) {
  auto config = ExperimentConfig::table2_defaults();
  std::string text = config.summary();
  EXPECT_NE(text.find("30 m"), std::string::npos);
  EXPECT_NE(text.find("40 kbps"), std::string::npos);
  EXPECT_NE(text.find("out-of-band"), std::string::npos);
}

TEST(Network, TopologyIsConnectedWithSeparatedAttackers) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 50;
  config.seed = 17;
  config.duration = 1.0;
  config.malicious_count = 2;
  config.finalize();
  Network net(config);
  EXPECT_TRUE(net.graph().connected());
  ASSERT_EQ(net.malicious_ids().size(), 2u);
  auto hops = net.graph().hop_distance(net.malicious_ids()[0],
                                       net.malicious_ids()[1]);
  ASSERT_TRUE(hops.has_value());
  EXPECT_GE(*hops, 3u) << "paper: colluders more than 2 hops apart";
}

TEST(Network, DensityNearTarget) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 100;
  config.seed = 1;
  config.duration = 1.0;
  config.finalize();
  Network net(config);
  EXPECT_GT(net.average_degree(), 5.0);
  EXPECT_LT(net.average_degree(), 11.0);
}

TEST(Network, ZeroMaliciousIsClean) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 30;
  config.seed = 4;
  config.duration = 120.0;
  config.malicious_count = 0;
  config.finalize();
  RunResult result = run_experiment(config);
  EXPECT_EQ(result.malicious_count, 0u);
  EXPECT_EQ(result.data_dropped_malicious, 0u);
  EXPECT_EQ(result.wormhole_routes, 0u);
  EXPECT_TRUE(result.all_isolated) << "vacuously true";
}

TEST(Network, DeterministicForSameSeed) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 40;
  config.seed = 12;
  config.duration = 200.0;
  config.finalize();
  RunResult a = run_experiment(config);
  RunResult b = run_experiment(config);
  EXPECT_EQ(a.data_originated, b.data_originated);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.data_dropped_malicious, b.data_dropped_malicious);
  EXPECT_EQ(a.routes_established, b.routes_established);
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.local_detections, b.local_detections);
}

TEST(Network, DifferentSeedsDiffer) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 40;
  config.duration = 200.0;
  config.seed = 12;
  config.finalize();
  RunResult a = run_experiment(config);
  config.seed = 13;
  RunResult b = run_experiment(config);
  EXPECT_NE(a.frames_transmitted, b.frames_transmitted);
}

TEST(Runner, CumulativeSeriesShape) {
  std::vector<Time> times{10.0, 20.0, 20.0, 90.0};
  auto series = cumulative_series(times, 100.0, 25.0);
  ASSERT_EQ(series.size(), 5u);  // t = 0, 25, 50, 75, 100
  EXPECT_DOUBLE_EQ(series[0].value, 0.0);
  EXPECT_DOUBLE_EQ(series[1].value, 3.0);
  EXPECT_DOUBLE_EQ(series[4].value, 4.0);
}

TEST(Runner, AverageRunsAggregates) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 30;
  config.duration = 150.0;
  config.malicious_count = 0;
  config.finalize();
  Aggregate agg = average_runs(config, 2, 100);
  EXPECT_EQ(agg.runs, 2);
  EXPECT_GT(agg.data_originated, 0.0);
  EXPECT_DOUBLE_EQ(agg.detection_probability, 1.0) << "nothing to miss";
  EXPECT_DOUBLE_EQ(agg.fraction_dropped, 0.0);
}

TEST(Network, ExplicitPositionsHonored) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 4;
  config.positions = std::vector<topo::Position>{
      {0, 0}, {20, 0}, {40, 0}, {60, 0}};
  config.malicious_count = 0;
  config.traffic.data_rate = 0.0;
  config.duration = 1.0;
  config.finalize();
  Network net(config);
  EXPECT_DOUBLE_EQ(net.graph().position(2).x, 40.0);
  EXPECT_TRUE(net.graph().is_neighbor(0, 1));
  EXPECT_FALSE(net.graph().is_neighbor(0, 2));
}

TEST(Network, ExplicitPositionsSizeMismatchThrows) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 5;
  config.positions = std::vector<topo::Position>{{0, 0}, {20, 0}};
  config.malicious_count = 0;
  config.finalize();
  EXPECT_THROW(Network net(config), std::invalid_argument);
}

TEST(Network, ExplicitMaliciousNodesHonored) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 6;
  config.positions = std::vector<topo::Position>{
      {0, 0}, {20, 0}, {40, 0}, {60, 0}, {10, 20}, {50, 20}};
  config.malicious_count = 2;
  config.malicious_nodes = {4, 5};
  config.traffic.data_rate = 0.0;
  config.duration = 1.0;
  config.finalize();
  Network net(config);
  EXPECT_EQ(net.malicious_ids(), (std::vector<NodeId>{4, 5}));
}

TEST(Network, ExplicitMaliciousOutOfBoundsThrows) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 4;
  config.positions = std::vector<topo::Position>{
      {0, 0}, {20, 0}, {40, 0}, {60, 0}};
  config.malicious_count = 1;
  config.malicious_nodes = {9};
  config.finalize();
  EXPECT_THROW(Network net(config), std::invalid_argument);
}

TEST(Network, RunUntilIsMonotonic) {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 20;
  config.seed = 6;
  config.duration = 100.0;
  config.finalize();
  Network net(config);
  net.run_until(30.0);
  const auto mid = net.metrics().data_originated;
  net.run_until(100.0);
  EXPECT_GE(net.metrics().data_originated, mid);
}

}  // namespace
}  // namespace lw::scenario
