// Sweep engine: thread-count invariance, one-code-path aggregation,
// machine-readable output, config validation.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "scenario/sweep.h"

namespace lw::scenario {
namespace {

ExperimentConfig small_config() {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 30;
  config.duration = 100.0;
  config.malicious_count = 2;
  config.finalize();
  return config;
}

SweepSpec two_point_spec(int threads) {
  SweepSpec spec;
  spec.base = small_config();
  spec.points.push_back(
      {"M=0", [](ExperimentConfig& c) { c.malicious_count = 0; }, 0});
  spec.points.push_back({"M=2", nullptr, 0});
  spec.runs = 4;
  spec.base_seed = 7;
  spec.threads = threads;
  return spec;
}

void expect_same_aggregate(const Aggregate& a, const Aggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.data_originated, b.data_originated);
  EXPECT_EQ(a.data_dropped_malicious, b.data_dropped_malicious);
  EXPECT_EQ(a.fraction_dropped, b.fraction_dropped);
  EXPECT_EQ(a.fraction_dropped_sem, b.fraction_dropped_sem);
  EXPECT_EQ(a.routes_established, b.routes_established);
  EXPECT_EQ(a.wormhole_routes, b.wormhole_routes);
  EXPECT_EQ(a.fraction_wormhole_routes, b.fraction_wormhole_routes);
  EXPECT_EQ(a.fraction_wormhole_routes_sem, b.fraction_wormhole_routes_sem);
  EXPECT_EQ(a.false_isolations, b.false_isolations);
  EXPECT_EQ(a.detection_probability, b.detection_probability);
  EXPECT_EQ(a.detection_probability_sem, b.detection_probability_sem);
  ASSERT_EQ(a.mean_isolation_latency.has_value(),
            b.mean_isolation_latency.has_value());
  if (a.mean_isolation_latency) {
    EXPECT_EQ(*a.mean_isolation_latency, *b.mean_isolation_latency);
  }
  EXPECT_EQ(a.runs_fully_isolated, b.runs_fully_isolated);
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  SweepResult serial = run_sweep(two_point_spec(1));
  SweepResult threaded = run_sweep(two_point_spec(4));

  ASSERT_EQ(serial.points.size(), 2u);
  ASSERT_EQ(threaded.points.size(), 2u);
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    SCOPED_TRACE(serial.points[p].label);
    EXPECT_EQ(serial.points[p].label, threaded.points[p].label);
    expect_same_aggregate(serial.points[p].aggregate,
                          threaded.points[p].aggregate);
    ASSERT_EQ(serial.points[p].replicas.size(), 4u);
    ASSERT_EQ(threaded.points[p].replicas.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      const RunResult& a = serial.points[p].replicas[i];
      const RunResult& b = threaded.points[p].replicas[i];
      EXPECT_EQ(a.seed, 7u + i) << "seeds assigned by grid index";
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.data_originated, b.data_originated);
      EXPECT_EQ(a.data_delivered, b.data_delivered);
      EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
      EXPECT_EQ(a.local_detections, b.local_detections);
      EXPECT_EQ(a.drop_times, b.drop_times);
    }
  }
}

TEST(Sweep, ProgressReportsEveryJobOnce) {
  SweepSpec spec = two_point_spec(2);
  spec.runs = 2;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  std::size_t last_total = 0;
  spec.progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    last_done = done;
    last_total = total;
  };
  run_sweep(spec);
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(last_done, 4u);
  EXPECT_EQ(last_total, 4u);
}

TEST(Sweep, AverageRunsMatchesAcrossThreadCounts) {
  auto config = small_config();
  config.malicious_count = 0;
  Aggregate serial = average_runs(config, 3, 11, 1);
  Aggregate threaded = average_runs(config, 3, 11, 3);
  expect_same_aggregate(serial, threaded);
  EXPECT_GT(serial.data_originated, 0.0);
}

TEST(Sweep, SeedOffsetShiftsReplicaSeeds) {
  SweepSpec spec;
  spec.base = small_config();
  spec.base.malicious_count = 0;
  spec.base.duration = 30.0;
  spec.points.push_back({"shifted", nullptr, 100});
  spec.runs = 2;
  spec.base_seed = 5;
  SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points[0].replicas.size(), 2u);
  EXPECT_EQ(result.points[0].replicas[0].seed, 105u);
  EXPECT_EQ(result.points[0].replicas[1].seed, 106u);
}

TEST(Aggregate, ReduceMatchesHandComputedMeanAndSem) {
  // fraction_dropped per run: 0.1, 0.2, 0.3 -> mean 0.2, sample sd 0.1,
  // SEM 0.1/sqrt(3). detection: 0.5, 1.0, 1.0 over 2 malicious each.
  std::vector<RunResult> results(3);
  for (std::size_t i = 0; i < 3; ++i) {
    results[i].data_originated = 100;
    results[i].data_dropped_malicious = 10 * (i + 1);
    results[i].routes_established = 10;
    results[i].wormhole_routes = i;
    results[i].malicious_count = 2;
    results[i].malicious_isolated = i == 0 ? 1 : 2;
  }
  results[1].isolation_latency = 20.0;
  results[2].isolation_latency = 40.0;

  Aggregate agg = Aggregate::reduce(results);
  EXPECT_EQ(agg.runs, 3);
  EXPECT_DOUBLE_EQ(agg.data_originated, 100.0);
  EXPECT_DOUBLE_EQ(agg.data_dropped_malicious, 20.0);
  EXPECT_DOUBLE_EQ(agg.fraction_dropped, 0.2);
  EXPECT_NEAR(agg.fraction_dropped_sem, 0.1 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(agg.routes_established, 10.0);
  EXPECT_DOUBLE_EQ(agg.wormhole_routes, 1.0);
  EXPECT_DOUBLE_EQ(agg.fraction_wormhole_routes, 0.1);
  // detection values 0.5, 1.0, 1.0: mean 5/6, sample variance
  // ((1/3)^2 + (1/6)^2 + (1/6)^2) / 2 = 1/12, SEM sqrt(1/12/3) = 1/6.
  EXPECT_NEAR(agg.detection_probability, 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(agg.detection_probability_sem, 1.0 / 6.0, 1e-12);
  ASSERT_TRUE(agg.mean_isolation_latency.has_value());
  EXPECT_DOUBLE_EQ(*agg.mean_isolation_latency, 30.0);
  EXPECT_EQ(agg.runs_fully_isolated, 2);
}

TEST(Aggregate, ReduceEmptyIsZeroRuns) {
  Aggregate agg = Aggregate::reduce({});
  EXPECT_EQ(agg.runs, 0);
  EXPECT_DOUBLE_EQ(agg.data_originated, 0.0);
  EXPECT_FALSE(agg.mean_isolation_latency.has_value());
}

TEST(Sweep, ToJsonRoundTripsLabelsAndCounters) {
  SweepResult result;
  result.wall_seconds = 1.5;
  result.threads_used = 2;
  result.points.resize(1);
  result.points[0].label = "gamma=\"3\"";
  result.points[0].replicas.resize(1);
  result.points[0].replicas[0].seed = 42;
  result.points[0].replicas[0].data_originated = 1234;
  result.points[0].replicas[0].wormhole_routes = 5;
  result.points[0].aggregate = Aggregate::reduce(result.points[0].replicas);

  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"label\":\"gamma=\\\"3\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"data_originated\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"wormhole_routes\":5"), std::string::npos);
  EXPECT_NE(json.find("\"mean_isolation_latency\":null"), std::string::npos);
  // Timing metadata must NOT leak into the JSON — it would break the
  // byte-identical-across-thread-counts guarantee.
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(json.find("cpu_seconds"), std::string::npos);
  // Aggregate of that single run: originated mean is numeric, not quoted.
  EXPECT_NE(json.find("\"runs\":1"), std::string::npos);
}

TEST(Sweep, RejectsEmptyAndNonPositiveSpecs) {
  SweepSpec spec;
  spec.base = small_config();
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);  // no points
  spec.points.push_back({"p", nullptr, 0});
  spec.runs = 0;
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);
}

TEST(Config, ValidateRejectsContradictions) {
  auto config = ExperimentConfig::table2_defaults();
  config.validate();  // defaults are sane

  auto late_with_oracle = config;
  late_with_oracle.late_joiners = 2;
  late_with_oracle.oracle_discovery = true;
  EXPECT_THROW(late_with_oracle.validate(), std::invalid_argument);

  auto mismatched_malicious = config;
  mismatched_malicious.malicious_count = 2;
  mismatched_malicious.malicious_nodes = {1, 2, 3};
  EXPECT_THROW(mismatched_malicious.validate(), std::invalid_argument);

  auto short_positions = config;
  short_positions.node_count = 5;
  short_positions.positions = std::vector<topo::Position>{{0, 0}, {10, 0}};
  EXPECT_THROW(short_positions.validate(), std::invalid_argument);

  auto too_many_attackers = config;
  too_many_attackers.malicious_count = too_many_attackers.node_count + 1;
  EXPECT_THROW(too_many_attackers.validate(), std::invalid_argument);

  auto bad_gamma = config;
  bad_gamma.defense.liteworp.detection_confidence = 0;
  EXPECT_THROW(bad_gamma.validate(), std::invalid_argument);
}

TEST(Config, RunExperimentFinalizesAndValidatesInternally) {
  // Deliberately skip finalize(): the silly phase ordering must be fixed
  // internally, and the run must succeed.
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 20;
  config.duration = 60.0;
  config.malicious_count = 0;
  config.traffic.start_time = 0.0;
  config.attack.start_time = 1.0;
  RunResult result = run_experiment(config);
  EXPECT_GE(result.attack_start, 0.0);
  EXPECT_EQ(result.malicious_count, 0u);

  // And a contradictory config is rejected up front.
  config.late_joiners = 1;
  config.oracle_discovery = true;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

TEST(Sweep, SweepRejectsContradictoryPointBeforeRunning) {
  SweepSpec spec;
  spec.base = small_config();
  spec.points.push_back({"bad", [](ExperimentConfig& c) {
                           c.late_joiners = 1;
                           c.oracle_discovery = true;
                         }, 0});
  spec.runs = 1;
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);
}

}  // namespace
}  // namespace lw::scenario
