// The five wormhole attack modes (Section 3), end to end: each mode must
// succeed against the unprotected baseline and be handled by LITEWORP as
// the paper claims (all but protocol deviation).
#include <gtest/gtest.h>

#include "attack/modes.h"
#include "scenario/runner.h"

namespace lw::attack {
namespace {

TEST(AttackTaxonomy, TableOneContents) {
  const auto& table = attack_mode_table();
  ASSERT_EQ(table.size(), 5u);
  EXPECT_EQ(table[0].min_compromised_nodes, 2);  // encapsulation
  EXPECT_EQ(table[1].min_compromised_nodes, 2);  // out-of-band
  EXPECT_EQ(table[2].min_compromised_nodes, 1);  // high power
  EXPECT_EQ(table[3].min_compromised_nodes, 1);  // relay
  EXPECT_EQ(table[4].min_compromised_nodes, 1);  // protocol deviation
  int detected = 0;
  for (const auto& row : table) {
    if (row.detected_by_liteworp) ++detected;
  }
  EXPECT_EQ(detected, 4) << "LITEWORP handles all but protocol deviation";
  EXPECT_FALSE(table[4].detected_by_liteworp);
}

TEST(AttackTaxonomy, ColluderRequirement) {
  EXPECT_TRUE(needs_colluders(WormholeMode::kEncapsulation));
  EXPECT_TRUE(needs_colluders(WormholeMode::kOutOfBand));
  EXPECT_FALSE(needs_colluders(WormholeMode::kHighPower));
  EXPECT_FALSE(needs_colluders(WormholeMode::kRelay));
  EXPECT_FALSE(needs_colluders(WormholeMode::kRushing));
}

scenario::ExperimentConfig attack_config(WormholeMode mode,
                                         std::size_t malicious,
                                         bool liteworp, std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 60;
  config.seed = seed;
  config.duration = 500.0;
  config.malicious_count = malicious;
  config.attack.mode = mode;
  config.attack.start_time = 50.0;
  config.defense.name = liteworp ? "liteworp" : "none";
  config.finalize();
  return config;
}

// ---- Modes 1 & 2: tunnel wormholes ----

class TunnelModes : public ::testing::TestWithParam<WormholeMode> {};

TEST_P(TunnelModes, BaselineEstablishesWormholeAndDropsTraffic) {
  auto result = scenario::run_experiment(
      attack_config(GetParam(), 2, /*liteworp=*/false, 21));
  EXPECT_GT(result.wormhole_routes, 0u)
      << "the tunnel must capture at least one route";
  EXPECT_GT(result.data_dropped_malicious, 20u);
  EXPECT_EQ(result.local_detections, 0u) << "baseline has no monitoring";
}

TEST_P(TunnelModes, LiteworpDetectsAndIsolates) {
  auto result = scenario::run_experiment(
      attack_config(GetParam(), 2, /*liteworp=*/true, 21));
  EXPECT_EQ(result.malicious_isolated, 2u);
  ASSERT_TRUE(result.isolation_latency.has_value());
  EXPECT_LT(*result.isolation_latency, 120.0);
  EXPECT_EQ(result.false_isolations, 0u);
  // Damage is bounded by the isolation latency.
  EXPECT_LT(result.fraction_dropped(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Tunnels, TunnelModes,
                         ::testing::Values(WormholeMode::kOutOfBand,
                                           WormholeMode::kEncapsulation));

TEST(TunnelModes, EncapsulationSlowerThanOutOfBand) {
  // The encapsulated tunnel pays per-hop latency; out-of-band is instant.
  // Both still win route races (they skip queueing at every relay).
  auto oob = scenario::run_experiment(
      attack_config(WormholeMode::kOutOfBand, 2, false, 22));
  auto encap = scenario::run_experiment(
      attack_config(WormholeMode::kEncapsulation, 2, false, 22));
  EXPECT_GT(oob.wormhole_routes + encap.wormhole_routes, 0u);
}

// ---- Mode 3: high-power transmission ----

TEST(HighPowerMode, BaselineShortcutsRoutes) {
  auto result = scenario::run_experiment(
      attack_config(WormholeMode::kHighPower, 1, false, 23));
  // Routes containing a physically impossible hop (beyond nominal range).
  EXPECT_GT(result.wormhole_routes, 0u);
  EXPECT_GT(result.data_dropped_malicious, 0u);
}

TEST(HighPowerMode, LiteworpRejectsFarSender) {
  auto result = scenario::run_experiment(
      attack_config(WormholeMode::kHighPower, 1, true, 23));
  // Far receivers reject the non-neighbor sender, so the shortcut never
  // enters a route.
  EXPECT_EQ(result.wormhole_routes, 0u);
  EXPECT_EQ(result.false_isolations, 0u);
  EXPECT_LT(result.fraction_dropped(), 0.05);
}

// ---- Mode 4: packet relay ----

TEST(RelayMode, BaselineCreatesFakeLink) {
  auto result = scenario::run_experiment(
      attack_config(WormholeMode::kRelay, 1, false, 25));
  EXPECT_GT(result.wormhole_replays, 0u) << "relay never fired";
  EXPECT_GT(result.wormhole_routes, 0u)
      << "some route must contain the fake victim-victim link";
}

TEST(RelayMode, LiteworpRejectsRelayedFrames) {
  auto result = scenario::run_experiment(
      attack_config(WormholeMode::kRelay, 1, true, 25));
  EXPECT_EQ(result.wormhole_routes, 0u)
      << "victims know they are not neighbors and reject the replay";
  EXPECT_EQ(result.false_isolations, 0u);
}

// ---- Mode 5: protocol deviation (rushing) ----

TEST(RushingMode, AttractsRoutesInBaseline) {
  auto result = scenario::run_experiment(
      attack_config(WormholeMode::kRushing, 1, false, 28));
  EXPECT_GT(result.routes_via_malicious, 0u);
  EXPECT_GT(result.data_dropped_malicious, 0u);
}

TEST(RushingMode, NotDetectedByLiteworp) {
  // The paper's stated limitation: rushing deviates only in timing, which
  // local monitoring cannot see.
  auto result = scenario::run_experiment(
      attack_config(WormholeMode::kRushing, 1, true, 28));
  EXPECT_EQ(result.malicious_isolated, 0u);
  EXPECT_GT(result.data_dropped_malicious, 0u)
      << "the rusher keeps dropping data unchallenged";
}

// ---- Dormancy ----

TEST(AttackTiming, NoDamageBeforeStartTime) {
  auto config = attack_config(WormholeMode::kOutOfBand, 2, false, 29);
  scenario::Network net(config);
  net.run_until(config.attack.start_time - 1.0);
  EXPECT_EQ(net.metrics().data_dropped_malicious, 0u);
  EXPECT_EQ(net.metrics().wormhole_routes, 0u);
}

}  // namespace
}  // namespace lw::attack
