// Failure injection: constant per-reception loss (the analysis' P_C knob)
// layered on top of real collisions, with no attacker present. LITEWORP
// must never convict an honest node at the analysis-supported loss rates,
// and the ablated strict check must be no better (it is the noisy one).
#include <gtest/gtest.h>

#include "scenario/runner.h"

namespace lw {
namespace {

scenario::ExperimentConfig lossy_config(double loss, std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 50;
  config.seed = seed;
  config.duration = 400.0;
  config.malicious_count = 0;
  config.phy.extra_loss_prob = loss;
  config.finalize();
  return config;
}

class LossSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LossSweep, NoFalseIsolationWithoutAttacker) {
  auto [loss, seed] = GetParam();
  auto result = scenario::run_experiment(
      lossy_config(loss, static_cast<std::uint64_t>(seed)));
  EXPECT_EQ(result.false_isolations, 0u)
      << "loss " << loss << ", seed " << seed << " (suspicions fab="
      << result.suspicions_fabrication << " drop=" << result.suspicions_drop
      << ")";
  // The network itself keeps functioning under injected loss (ARQ).
  EXPECT_GT(result.data_delivered, result.data_originated / 2)
      << "delivery collapsed at loss " << loss;
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, LossSweep,
    ::testing::Combine(::testing::Values(0.02, 0.05, 0.10),
                       ::testing::Values(81, 82, 83)));

TEST(FailureInjection, SuspicionsScaleWithLoss) {
  auto clean = scenario::run_experiment(lossy_config(0.0, 90));
  auto noisy = scenario::run_experiment(lossy_config(0.10, 90));
  // More loss -> more missed handoffs -> more (benign) suspicions. The
  // block window keeps them from becoming convictions (checked above).
  EXPECT_GE(noisy.suspicions_fabrication + noisy.suspicions_drop,
            clean.suspicions_fabrication + clean.suspicions_drop);
}

TEST(FailureInjection, StrictCheckIsTheNoisyOne) {
  auto relaxed_cfg = lossy_config(0.10, 91);
  auto strict_cfg = lossy_config(0.10, 91);
  strict_cfg.defense.liteworp.strict_link_check = true;
  auto relaxed = scenario::run_experiment(relaxed_cfg);
  auto strict = scenario::run_experiment(strict_cfg);
  EXPECT_GE(strict.false_suspicions, relaxed.false_suspicions)
      << "the flow-wide relaxation must never add noise";
  EXPECT_GT(strict.false_suspicions, 0u)
      << "at 10% loss the strict check should visibly misfire";
}

TEST(FailureInjection, DetectionSurvivesInjectedLoss) {
  auto config = lossy_config(0.10, 92);
  config.malicious_count = 2;
  config.duration = 500.0;
  config.finalize();
  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.malicious_isolated, 2u)
      << "a wormhole that cheats on every packet outruns 10% channel loss";
  EXPECT_EQ(result.false_isolations, 0u);
}

}  // namespace
}  // namespace lw
