// Steady-state allocation audit: after warm-up (discovery, route
// establishment, arena growth, metrics reservoir sizing) the per-event hot
// path — medium broadcast, MAC exchange, guard checks, routing forwards —
// must run entirely out of recycled pool-arena memory. A single stray
// `new` per frame at N=200 is ~10^5 mallocs over this window, so the
// assertion is exact: zero global allocations across the measured window.
//
// The counters come from the LW_COUNT_ALLOCS hook (util/alloc_count.h),
// whose operator new/delete replacements link in because this test
// references util::alloc_counts(). Sanitizer builds compile the hook to an
// inactive stub (the sanitizer owns the allocator), so the test skips
// there rather than asserting against counters that never move.
#include <gtest/gtest.h>

#include <cstdlib>

#include "scenario/network.h"
#include "util/alloc_count.h"

namespace lw::scenario {
namespace {

TEST(AllocSteadyState, ZeroAllocationsPostWarmUp) {
  if (!util::alloc_counting_active()) {
    GTEST_SKIP() << "allocation counting hook inactive in this build";
  }

  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 200;
  config.malicious_count = 2;
  config.duration = 700.0;
  config.seed = 7;
  config.finalize();

  Network net(config);

  // Warm-up: discovery, first waves of route discovery and data traffic,
  // attack onset, metrics reservoirs and arena chunks all reach their
  // steady footprint well before t = 500 s.
  net.run_until(500.0);

  const auto before = util::alloc_counts();
  if (std::getenv("LW_ALLOC_TRACE")) util::alloc_trace_arm(40);
  net.run_until(700.0);
  const auto after = util::alloc_counts();

  EXPECT_EQ(after.news - before.news, 0u)
      << "steady-state window performed " << (after.news - before.news)
      << " heap allocations (and " << (after.deletes - before.deletes)
      << " frees); the hot path must recycle through the pool arena";
}

}  // namespace
}  // namespace lw::scenario
