// Full-stack routing integration: discovery, reply, data delivery, cache
// reuse — first on an ideal channel, then with collisions enabled.
#include <gtest/gtest.h>

#include "scenario/network.h"
#include "scenario/runner.h"

namespace lw {
namespace {

scenario::ExperimentConfig quiet_config(std::size_t nodes,
                                        std::uint64_t seed) {
  scenario::ExperimentConfig config =
      scenario::ExperimentConfig::table2_defaults();
  config.node_count = nodes;
  config.seed = seed;
  config.malicious_count = 0;
  config.traffic.data_rate = 0.0;  // drive traffic manually
  config.oracle_discovery = true;
  config.finalize();
  return config;
}

TEST(RoutingStack, SingleDiscoveryIdealChannel) {
  scenario::ExperimentConfig config = quiet_config(25, 7);
  config.phy.collisions_enabled = false;
  scenario::Network net(config);

  net.run_until(10.0);
  net.node(0).routing().send_data(net.size() - 1, 32);
  net.run_until(40.0);

  EXPECT_GE(net.metrics().routes_established, 1u);
  EXPECT_EQ(net.metrics().data_delivered, 1u);
  EXPECT_EQ(net.metrics().data_dropped_no_route, 0u);
}

TEST(RoutingStack, SingleDiscoveryWithCollisions) {
  int delivered_runs = 0;
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    scenario::ExperimentConfig config = quiet_config(25, 100 + i);
    scenario::Network net(config);
    net.run_until(10.0);
    net.node(0).routing().send_data(net.size() - 1, 32);
    net.run_until(60.0);
    if (net.metrics().data_delivered == 1u) ++delivered_runs;
  }
  // A single discovery on an otherwise idle channel should essentially
  // always succeed.
  EXPECT_GE(delivered_runs, kRuns - 1);
}

TEST(RoutingStack, CachedRouteIsReused) {
  scenario::ExperimentConfig config = quiet_config(25, 7);
  config.phy.collisions_enabled = false;
  scenario::Network net(config);

  net.run_until(10.0);
  const NodeId dst = static_cast<NodeId>(net.size() - 1);
  net.node(0).routing().send_data(dst, 32);
  net.run_until(40.0);
  const std::uint64_t discoveries_after_first = net.metrics().discoveries;

  net.node(0).routing().send_data(dst, 32);
  net.run_until(45.0);
  EXPECT_EQ(net.metrics().discoveries, discoveries_after_first)
      << "second packet must reuse the cached route";
  EXPECT_EQ(net.metrics().data_delivered, 2u);
}

TEST(RoutingStack, SteadyTrafficDeliversMostPackets) {
  scenario::ExperimentConfig config = quiet_config(30, 11);
  config.traffic.data_rate = 1.0 / 10.0;
  config.finalize();
  scenario::Network net(config);
  net.run_until(300.0);

  const auto& m = net.metrics();
  ASSERT_GT(m.data_originated, 100u);
  const double delivery_ratio =
      static_cast<double>(m.data_delivered) /
      static_cast<double>(m.data_originated);
  EXPECT_GT(delivery_ratio, 0.75)
      << "delivered " << m.data_delivered << " of " << m.data_originated
      << " (no attacker, collisions on)";
  EXPECT_EQ(m.false_isolations, 0u)
      << "honest nodes were isolated without an attacker";
}

}  // namespace
}  // namespace lw
