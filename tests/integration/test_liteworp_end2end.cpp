// End-to-end reproduction properties of the paper's evaluation:
//   * every wormhole is detected and completely isolated (Sec 6, "100%
//     detection ... over a large range of scenarios");
//   * no honest node is ever isolated at the calibrated operating point;
//   * with LITEWORP the loss stops after isolation (Fig 8's flattening);
//   * baseline loss dwarfs protected loss (Fig 9's contrast).
#include <gtest/gtest.h>

#include "scenario/runner.h"

namespace lw {
namespace {

scenario::ExperimentConfig e2e_config(std::size_t nodes, std::uint64_t seed,
                                      bool liteworp,
                                      std::size_t malicious = 2) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = nodes;
  config.seed = seed;
  config.duration = 600.0;
  config.malicious_count = malicious;
  config.defense.name = liteworp ? "liteworp" : "none";
  config.finalize();
  return config;
}

/// Detection-and-no-false-alarm sweep across network sizes and seeds
/// (the paper's N in {20, 50, 100, 150}; 150 trimmed to keep CI fast).
/// gamma follows the coverage analysis: it must stay below the expected
/// guard count g ~= 0.59 N_B, so small fields (border-heavy, effective
/// N_B ~ 5) run with gamma = 2 — a node of degree 3 can never gather 3
/// distinct guards, in the simulation exactly as in the analysis.
class DetectionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DetectionSweep, EveryWormholeIsolatedNoFalsePositives) {
  auto [nodes, seed, gamma] = GetParam();
  auto config = e2e_config(static_cast<std::size_t>(nodes),
                           static_cast<std::uint64_t>(seed), true);
  config.defense.liteworp.detection_confidence = gamma;
  config.finalize();
  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.malicious_isolated, result.malicious_count)
      << nodes << " nodes, seed " << seed;
  EXPECT_TRUE(result.isolation_latency.has_value());
  EXPECT_EQ(result.false_isolations, 0u)
      << nodes << " nodes, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, DetectionSweep,
    ::testing::Values(std::make_tuple(20, 31, 2), std::make_tuple(20, 32, 2),
                      std::make_tuple(50, 33, 3), std::make_tuple(50, 34, 3),
                      std::make_tuple(100, 35, 3),
                      std::make_tuple(100, 36, 3)));

TEST(EndToEnd, LossStopsAfterIsolation) {
  auto result = scenario::run_experiment(e2e_config(60, 41, true));
  ASSERT_TRUE(result.isolation_latency.has_value());
  const Time settled =
      result.attack_start + *result.isolation_latency + 60.0;
  const auto before = stats::MetricsCollector::cumulative_at(
      result.drop_times, settled);
  const auto total = result.drop_times.size();
  // Fig 8's flattening: once routes through the wormhole die out, no
  // further packets are lost to it.
  EXPECT_EQ(total - before, 0u)
      << "drops continued long after isolation settled";
}

TEST(EndToEnd, BaselineLossGrowsUnbounded) {
  auto result = scenario::run_experiment(e2e_config(60, 41, false));
  ASSERT_GT(result.data_dropped_malicious, 0u);
  // Fig 8's baseline: drops keep accumulating in the second half too.
  const Time midpoint = result.attack_start +
                        (result.duration - result.attack_start) / 2;
  const auto first_half = stats::MetricsCollector::cumulative_at(
      result.drop_times, midpoint);
  EXPECT_GT(result.drop_times.size(), static_cast<std::size_t>(first_half))
      << "an undetected wormhole must keep eating traffic";
}

TEST(EndToEnd, ProtectedLossNegligibleVersusBaseline) {
  auto baseline = scenario::run_experiment(e2e_config(60, 42, false));
  auto protected_run = scenario::run_experiment(e2e_config(60, 42, true));
  ASSERT_GT(baseline.fraction_dropped(), 0.02);
  EXPECT_LT(protected_run.fraction_dropped(),
            baseline.fraction_dropped() / 4)
      << "paper: loss under LITEWORP is negligible compared to baseline";
}

TEST(EndToEnd, WormholeRoutesStopAccumulating) {
  auto baseline = scenario::run_experiment(e2e_config(60, 43, false));
  auto protected_run = scenario::run_experiment(e2e_config(60, 43, true));
  EXPECT_GT(baseline.wormhole_routes, protected_run.wormhole_routes);
  // After isolation no further wormhole routes can form.
  if (protected_run.isolation_latency) {
    const Time settled = protected_run.attack_start +
                         *protected_run.isolation_latency;
    for (Time t : protected_run.wormhole_route_times) {
      EXPECT_LE(t, settled + 1.0);
    }
  }
}

TEST(EndToEnd, FourColludersAllIsolated) {
  auto result = scenario::run_experiment(e2e_config(100, 44, true, 4));
  EXPECT_EQ(result.malicious_count, 4u);
  EXPECT_EQ(result.malicious_isolated, 4u);
  EXPECT_EQ(result.false_isolations, 0u);
}

TEST(EndToEnd, MoreColludersMoreBaselineDamage) {
  auto m2 = scenario::run_experiment(e2e_config(100, 45, false, 2));
  auto m4 = scenario::run_experiment(e2e_config(100, 45, false, 4));
  // Fig 9's trend; allow slack since a single seed is noisy.
  EXPECT_GT(m4.fraction_dropped(), m2.fraction_dropped() * 0.8);
  EXPECT_GT(m4.fraction_dropped(), 0.0);
}

TEST(EndToEnd, HigherGammaSlowerIsolation) {
  auto fast = e2e_config(60, 46, true);
  fast.defense.liteworp.detection_confidence = 2;
  fast.finalize();
  auto slow = e2e_config(60, 46, true);
  slow.defense.liteworp.detection_confidence = 6;
  slow.finalize();
  auto fast_result = scenario::run_experiment(fast);
  auto slow_result = scenario::run_experiment(slow);
  ASSERT_TRUE(fast_result.isolation_latency.has_value());
  if (slow_result.isolation_latency) {
    EXPECT_GE(*slow_result.isolation_latency,
              *fast_result.isolation_latency)
        << "fig 10: latency grows with the detection confidence index";
  }
  // (If gamma=6 fails to completely isolate, that is fig 10's detection
  // probability falling — also consistent with the paper.)
}

TEST(EndToEnd, AlertsComeFromMultipleGuards) {
  auto result = scenario::run_experiment(e2e_config(60, 47, true));
  EXPECT_GE(result.local_detections,
            static_cast<std::uint64_t>(
                e2e_config(60, 47, true).defense.liteworp.detection_confidence))
      << "complete isolation needs at least gamma alerting guards";
}

TEST(EndToEnd, BenignWormholeStillDetected) {
  // "A wormhole tunnel can actually be useful if used for forwarding all
  // the packets" — but LITEWORP still detects the control-plane lying.
  auto config = e2e_config(60, 48, true);
  config.attack.drop_data = false;
  config.finalize();
  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.data_dropped_malicious, 0u);
  EXPECT_EQ(result.malicious_isolated, result.malicious_count)
      << "fabricated control traffic is the evidence, not the data loss";
}

TEST(EndToEnd, NaivePrevHopCaughtByAdmissionInstead) {
  // The attacker that announces its colluder as previous hop never gets a
  // route at all: every receiver rejects the bogus announcement.
  auto config = e2e_config(60, 49, true);
  config.attack.smart_prev_hop = false;
  config.finalize();
  auto result = scenario::run_experiment(config);
  EXPECT_EQ(result.wormhole_routes, 0u);
  // Residual loss comes from pre-attack routes that legitimately pass
  // through the (then-honest) attackers and silently black-hole until the
  // flows move on — data drops are not watched, per the paper.
  EXPECT_LT(result.fraction_dropped(), 0.06);
}

}  // namespace
}  // namespace lw
