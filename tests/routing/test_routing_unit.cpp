// Unit-level routing behaviors driven through a fake environment:
// destination reply policy, congestion suppression, refusal beacons.
#include <gtest/gtest.h>

#include "routing/routing.h"
#include "tests/liteworp/fake_env.h"

namespace lw::routing {
namespace {

class RoutingUnitTest : public ::testing::Test {
 protected:
  RoutingUnitTest() : env_(/*id=*/5), routing_(env_, table_, {}, nullptr) {
    // Our neighbors 1 and 2 with lists covering the ids used below.
    table_.add_neighbor(1);
    table_.add_neighbor(2);
    table_.set_neighbor_list(1, {5, 9, 7});
    table_.set_neighbor_list(2, {5, 8});
  }

  pkt::Packet req_copy(pkt::NodeList route, NodeId claimed,
                       NodeId origin, SeqNo seq, NodeId dst) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.origin = origin;
    p.seq = seq;
    p.final_dst = dst;
    p.route = std::move(route);
    p.claimed_tx = claimed;
    p.announced_prev_hop = p.route.size() > 1 ? p.route[p.route.size() - 2]
                                              : kInvalidNode;
    return p;
  }

  test::FakeEnv env_;
  nbr::NeighborTable table_;
  OnDemandRouting routing_;
};

TEST_F(RoutingUnitTest, DestinationAnswersFirstCopy) {
  routing_.handle(req_copy({9, 1}, 1, 9, 1, /*dst=*/5));
  auto reps = env_.sent_of(pkt::PacketType::kRouteReply);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].route, (pkt::NodeList{9, 1, 5}));
  EXPECT_EQ(reps[0].link_dst, 1u);
}

TEST_F(RoutingUnitTest, DestinationIgnoresEqualOrLongerCopies) {
  routing_.handle(req_copy({9, 1}, 1, 9, 1, 5));
  routing_.handle(req_copy({9, 7, 2}, 2, 9, 1, 5));  // longer copy
  EXPECT_EQ(env_.sent_of(pkt::PacketType::kRouteReply).size(), 1u);
}

TEST_F(RoutingUnitTest, DestinationAnswersStrictlyShorterCopy) {
  routing_.handle(req_copy({9, 7, 1}, 1, 9, 1, 5));
  routing_.handle(req_copy({9, 2}, 2, 9, 1, 5));  // shorter: answer again
  auto reps = env_.sent_of(pkt::PacketType::kRouteReply);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[1].route.size(), 3u);
}

TEST_F(RoutingUnitTest, ForwardWaitsOutJitterThenTransmits) {
  routing_.handle(req_copy({9, 1}, 1, 9, 2, /*dst=*/42));
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kRouteRequest).empty())
      << "forward must be jittered, not instant";
  env_.simulator().run_all();
  auto reqs = env_.sent_of(pkt::PacketType::kRouteRequest);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].route.back(), 5u) << "we append ourselves";
  EXPECT_EQ(reqs[0].announced_prev_hop, 1u);
}

TEST_F(RoutingUnitTest, DuplicateCopiesSuppressThePendingForward) {
  routing_.handle(req_copy({9, 1}, 1, 9, 3, 42));
  routing_.handle(req_copy({9, 7, 1}, 1, 9, 3, 42));
  routing_.handle(req_copy({9, 8, 2}, 2, 9, 3, 42));
  env_.simulator().run_all();
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kRouteRequest).empty())
      << "two extra copies = the neighborhood is covered; forward cancelled";
}

TEST_F(RoutingUnitTest, CongestedNodeDoesNotForwardFloods) {
  env_.queue_depth = 64;  // deep MAC backlog
  routing_.handle(req_copy({9, 1}, 1, 9, 4, 42));
  env_.simulator().run_all();
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kRouteRequest).empty());
}

TEST_F(RoutingUnitTest, RefusedRepEmitsBeacon) {
  table_.add_neighbor(9);
  table_.revoke(9);
  // REP heading 8 -> 5 -> 9 (we must forward to revoked 9).
  pkt::Packet rep = env_.packet_factory().make(pkt::PacketType::kRouteReply);
  rep.origin = 8;
  rep.seq = 1;
  rep.final_dst = 7;
  rep.route = {7, 9, 5, 8};
  rep.link_dst = 5;
  rep.claimed_tx = 8;
  routing_.handle(rep);
  EXPECT_EQ(routing_.refused_next_hop_revoked(), 1u);
  auto beacons = env_.sent_of(pkt::PacketType::kRouteError);
  ASSERT_EQ(beacons.size(), 1u);
  EXPECT_EQ(beacons[0].broken_node, 9u);
  EXPECT_EQ(beacons[0].link_dst, kInvalidNode) << "local broadcast";
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kRouteReply).empty());
}

TEST_F(RoutingUnitTest, RefusedDataEmitsRoutedRerr) {
  table_.add_neighbor(9);
  table_.revoke(9);
  // DATA heading 8 -> 5 -> 9 toward destination 7, origin 4.
  pkt::Packet data = env_.packet_factory().make(pkt::PacketType::kData);
  data.origin = 4;
  data.seq = 1;
  data.final_dst = 7;
  data.route = {4, 8, 5, 9, 7};
  data.route_index = 1;
  data.link_dst = 5;
  data.claimed_tx = 8;
  routing_.handle(data);
  auto rerrs = env_.sent_of(pkt::PacketType::kRouteError);
  ASSERT_EQ(rerrs.size(), 1u);
  EXPECT_EQ(rerrs[0].link_dst, 8u) << "RERR travels back toward the source";
  EXPECT_EQ(rerrs[0].final_dst, 4u);
  EXPECT_EQ(rerrs[0].broken_node, 9u);
}

TEST_F(RoutingUnitTest, RerrAtSourceEvictsRoutes) {
  // We (node 5) are the source holding a route through node 9.
  routing_.cache().insert({5, 1, 9, 7}, env_.now());
  pkt::Packet rerr = env_.packet_factory().make(pkt::PacketType::kRouteError);
  rerr.origin = 1;
  rerr.seq = 2;
  rerr.final_dst = 5;
  rerr.route = {5, 1, 9, 7};
  rerr.broken_node = 9;
  rerr.link_dst = 5;
  rerr.claimed_tx = 1;
  routing_.handle(rerr);
  EXPECT_EQ(routing_.cache().lookup(7, env_.now()), nullptr);
}

}  // namespace
}  // namespace lw::routing
