// Route cache: insertion policy, idle timeout, eviction.
#include <gtest/gtest.h>

#include "routing/route_cache.h"

namespace lw::routing {
namespace {

TEST(RouteCache, InsertAndLookup) {
  RouteCache cache(50.0);
  EXPECT_TRUE(cache.insert({0, 1, 2}, 10.0));
  const Route* route = cache.lookup(2, 11.0);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->path, (pkt::NodeList{0, 1, 2}));
  EXPECT_EQ(route->hop_count(), 2u);
}

TEST(RouteCache, MissingDestination) {
  RouteCache cache(50.0);
  EXPECT_EQ(cache.lookup(9, 0.0), nullptr);
}

TEST(RouteCache, ShorterRouteReplaces) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 2, 3}, 10.0);
  EXPECT_TRUE(cache.insert({0, 5, 3}, 11.0));
  EXPECT_EQ(cache.lookup(3, 12.0)->hop_count(), 2u);
}

TEST(RouteCache, LongerRouteDoesNotReplaceLiveOne) {
  RouteCache cache(50.0);
  cache.insert({0, 5, 3}, 10.0);
  EXPECT_FALSE(cache.insert({0, 1, 2, 3}, 11.0));
  EXPECT_EQ(cache.lookup(3, 12.0)->hop_count(), 2u);
}

TEST(RouteCache, EqualLengthDoesNotReplace) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 3}, 10.0);
  EXPECT_FALSE(cache.insert({0, 2, 3}, 11.0));
  EXPECT_EQ(cache.lookup(3, 12.0)->path[1], 1u);
}

TEST(RouteCache, ExpiresAfterIdleTimeout) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 2}, 10.0);
  EXPECT_EQ(cache.lookup(2, 60.1), nullptr);
  EXPECT_EQ(cache.size(), 0u) << "expired entry erased lazily";
}

TEST(RouteCache, LookupRefreshesIdleTimeout) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 2}, 10.0);
  EXPECT_NE(cache.lookup(2, 50.0), nullptr);  // refresh at t=50
  EXPECT_NE(cache.lookup(2, 99.0), nullptr)
      << "active route must survive past the original expiry";
}

TEST(RouteCache, PeekDoesNotRefresh) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 2}, 10.0);
  EXPECT_NE(cache.peek(2, 50.0), nullptr);
  EXPECT_EQ(cache.peek(2, 61.0), nullptr)
      << "peek at t=50 must not extend the 10+50 expiry";
}

TEST(RouteCache, ExpiredRouteAlwaysReplaced) {
  RouteCache cache(50.0);
  cache.insert({0, 5, 3}, 10.0);
  // Longer route, but the short one has expired.
  EXPECT_TRUE(cache.insert({0, 1, 2, 3}, 70.0));
  EXPECT_EQ(cache.lookup(3, 71.0)->hop_count(), 3u);
}

TEST(RouteCache, EvictContaining) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 2}, 10.0);
  cache.insert({0, 1, 5}, 10.0);
  cache.insert({0, 7, 8}, 10.0);
  EXPECT_EQ(cache.evict_containing(1), 2u);
  EXPECT_EQ(cache.lookup(2, 11.0), nullptr);
  EXPECT_EQ(cache.lookup(5, 11.0), nullptr);
  EXPECT_NE(cache.lookup(8, 11.0), nullptr);
}

TEST(RouteCache, EvictDestination) {
  RouteCache cache(50.0);
  cache.insert({0, 1, 2}, 10.0);
  cache.evict_destination(2);
  EXPECT_EQ(cache.lookup(2, 11.0), nullptr);
}

TEST(RouteCache, TrivialRouteRejected) {
  RouteCache cache(50.0);
  EXPECT_THROW(cache.insert({3}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace lw::routing
