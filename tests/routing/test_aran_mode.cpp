// ARAN-style fastest-reply routing (Section 3.1): counters the
// packet-encapsulation wormhole as a by-product — but not the genuinely
// fast out-of-band channel.
#include <gtest/gtest.h>

#include "scenario/runner.h"

namespace lw::routing {
namespace {

scenario::ExperimentConfig aran_config(attack::WormholeMode mode,
                                       bool fastest, std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 60;
  config.seed = seed;
  config.duration = 400.0;
  config.malicious_count = 2;
  config.attack.mode = mode;
  // Realistic encapsulation latency: the tunneled packet physically rides
  // a multihop unicast path between the colluders. Comparable to a flood
  // hop so the Figure-1 race is meaningful.
  config.attack.encapsulation_per_hop_delay = 1.5;
  config.defense.name = "none";  // this is a routing-policy experiment
  config.routing.prefer_fastest_reply = fastest;
  config.finalize();
  return config;
}

TEST(AranFastestReply, BluntsEncapsulation) {
  // Shortest-hops selection falls for the hop-count lie even when the
  // tunneled REQ arrives LATE (the destination answers later-but-shorter
  // copies)...
  auto shortest = scenario::run_experiment(
      aran_config(attack::WormholeMode::kEncapsulation, false, 61));
  EXPECT_GT(shortest.wormhole_routes, 5u);
  // ...while first-reply-wins ignores the late liar (Section 3.1): both
  // captured routes and swallowed traffic drop sharply.
  auto fastest = scenario::run_experiment(
      aran_config(attack::WormholeMode::kEncapsulation, true, 61));
  EXPECT_LT(fastest.wormhole_routes, shortest.wormhole_routes);
  EXPECT_LT(fastest.data_dropped_malicious,
            shortest.data_dropped_malicious * 7 / 10)
      << "the slow tunnel must lose most of its traffic share";
}

TEST(AranFastestReply, ShortestHopsRewardsLateLiars) {
  // The essence of the vulnerability: under shortest-hops selection, a
  // tunnel that has already LOST every latency race (its copies arrive
  // well after the flood) still captures routes, because the destination
  // answers later-but-shorter claims. Tripling the (already losing)
  // tunnel latency barely moves the capture count.
  auto cfg_slow = aran_config(attack::WormholeMode::kEncapsulation, false, 61);
  cfg_slow.attack.encapsulation_per_hop_delay = 1.5;
  cfg_slow.finalize();
  auto slow = scenario::run_experiment(cfg_slow);
  auto cfg_mid = aran_config(attack::WormholeMode::kEncapsulation, false, 61);
  cfg_mid.attack.encapsulation_per_hop_delay = 0.5;
  cfg_mid.finalize();
  auto mid = scenario::run_experiment(cfg_mid);
  ASSERT_GT(mid.wormhole_routes, 5u);
  EXPECT_GT(slow.wormhole_routes * 2, mid.wormhole_routes)
      << "in the already-late regime the hop-count claim does the work";
}

TEST(AranFastestReply, DoesNotCounterOutOfBand) {
  // The out-of-band tunnel genuinely IS the fastest path: ARAN's choice
  // rewards it (Section 3.2).
  auto fastest = scenario::run_experiment(
      aran_config(attack::WormholeMode::kOutOfBand, true, 61));
  EXPECT_GT(fastest.wormhole_routes, 0u);
}

TEST(AranFastestReply, HonestNetworkStillRoutes) {
  auto config = aran_config(attack::WormholeMode::kOutOfBand, true, 62);
  config.malicious_count = 0;
  config.finalize();
  auto result = scenario::run_experiment(config);
  const double delivery = static_cast<double>(result.data_delivered) /
                          static_cast<double>(result.data_originated);
  EXPECT_GT(delivery, 0.85);
}

}  // namespace
}  // namespace lw::routing
