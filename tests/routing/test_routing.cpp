// On-demand routing protocol behaviour on small networks.
#include <gtest/gtest.h>

#include "scenario/network.h"

namespace lw::routing {
namespace {

/// True if `from` can still reach `to` with `avoid` removed from the graph.
bool reachable_avoiding(const topo::DiscGraph& graph, NodeId from, NodeId to,
                        NodeId avoid) {
  std::vector<bool> seen(graph.size(), false);
  std::vector<NodeId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    NodeId current = stack.back();
    stack.pop_back();
    if (current == to) return true;
    for (NodeId next : graph.neighbors(current)) {
      if (next == avoid || seen[next]) continue;
      seen[next] = true;
      stack.push_back(next);
    }
  }
  return false;
}

scenario::ExperimentConfig manual_config(std::size_t nodes,
                                         std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = nodes;
  config.seed = seed;
  config.malicious_count = 0;
  config.traffic.data_rate = 0.0;
  config.oracle_discovery = true;
  config.phy.collisions_enabled = false;
  config.finalize();
  return config;
}

TEST(Routing, EstablishedRouteFollowsRealLinks) {
  scenario::Network net(manual_config(30, 3));
  net.run_until(5.0);
  net.node(0).routing().send_data(29, 32);
  net.run_until(30.0);
  ASSERT_GE(net.metrics().routes_established, 1u);
  const Route* route = net.node(0).routing().cache().lookup(29, 30.0);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->path.front(), 0u);
  EXPECT_EQ(route->path.back(), 29u);
  for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
    EXPECT_TRUE(net.graph().is_neighbor(route->path[i], route->path[i + 1]));
  }
}

TEST(Routing, RouteIsShortestWithinJitterNoise) {
  scenario::Network net(manual_config(30, 3));
  net.run_until(5.0);
  net.node(0).routing().send_data(29, 32);
  net.run_until(30.0);
  const Route* route = net.node(0).routing().cache().lookup(29, 30.0);
  ASSERT_NE(route, nullptr);
  auto optimal = net.graph().hop_distance(0, 29);
  ASSERT_TRUE(optimal.has_value());
  // The destination answers the first and every shorter copy; with
  // collision-free flooding the cached route converges to optimal, or at
  // most one hop above it (jitter can starve an optimal branch).
  EXPECT_LE(route->hop_count(), *optimal + 1);
  EXPECT_GE(route->hop_count(), *optimal);
}

TEST(Routing, PendingQueueOverflowDropsAsNoRoute) {
  scenario::Network net(manual_config(20, 5));
  net.run_until(5.0);
  auto& routing = net.node(0).routing();
  // Unreachable destination id? All ids exist; instead revoke the only
  // path... simpler: flood the pending queue faster than discovery can
  // resolve (it resolves within ~2 s, so enqueue synchronously).
  const std::size_t limit = net.config().routing.pending_queue_limit;
  for (std::size_t i = 0; i < limit + 5; ++i) {
    routing.send_data(19, 32);
  }
  EXPECT_EQ(net.metrics().data_dropped_no_route, 5u);
  net.run_until(40.0);
  EXPECT_EQ(net.metrics().data_delivered, limit);
}

TEST(Routing, QueuedDataFlushedOnRouteEstablishment) {
  scenario::Network net(manual_config(20, 6));
  net.run_until(5.0);
  for (int i = 0; i < 5; ++i) net.node(0).routing().send_data(19, 32);
  net.run_until(40.0);
  EXPECT_EQ(net.metrics().data_delivered, 5u);
  EXPECT_EQ(net.metrics().discoveries, 1u)
      << "one flood serves all queued packets";
}

TEST(Routing, RevocationEvictsRoutesAndTriggersRerouting) {
  scenario::Network net(manual_config(30, 3));
  net.run_until(5.0);
  net.node(0).routing().send_data(29, 32);
  net.run_until(30.0);
  const Route* route = net.node(0).routing().cache().lookup(29, 30.0);
  ASSERT_NE(route, nullptr);
  ASSERT_GT(route->path.size(), 2u) << "need a multihop route";
  // Pick an intermediate hop whose removal does not disconnect the pair
  // (an articulation point cannot be routed around by any protocol).
  NodeId middle = kInvalidNode;
  for (std::size_t i = 1; i + 1 < route->path.size(); ++i) {
    if (reachable_avoiding(net.graph(), 0, 29, route->path[i])) {
      middle = route->path[i];
      break;
    }
  }
  if (middle == kInvalidNode) {
    GTEST_SKIP() << "every intermediate hop is an articulation point";
  }

  // Model the isolation end-state: every neighbor of `middle` revokes it
  // (this is what gamma alerts produce); the flood then routes around it.
  // The source also learns (it may itself be a neighbor, or hear a RERR).
  for (NodeId nb : net.graph().neighbors(middle)) {
    net.node(nb).table().revoke(middle);
    net.node(nb).routing().on_revoked(middle);
  }
  net.node(0).table().revoke(middle);
  net.node(0).routing().on_revoked(middle);
  EXPECT_EQ(net.node(0).routing().cache().lookup(29, 30.0), nullptr);

  // Next packet re-discovers around the revoked node.
  net.node(0).routing().send_data(29, 32);
  net.run_until(60.0);
  const Route* fresh = net.node(0).routing().cache().lookup(29, 60.0);
  ASSERT_NE(fresh, nullptr);
  for (NodeId hop : fresh->path) EXPECT_NE(hop, middle);
}

TEST(Routing, RouteErrorTearsDownStaleRoute) {
  scenario::Network net(manual_config(30, 3));
  net.run_until(5.0);
  net.node(0).routing().send_data(29, 32);
  net.run_until(30.0);
  const Route* route = net.node(0).routing().cache().lookup(29, 30.0);
  ASSERT_NE(route, nullptr);
  ASSERT_GE(route->path.size(), 4u) << "need >= 3 hops for a mid-route break";
  const std::vector<NodeId> path(route->path.begin(), route->path.end());
  // Pick a broken hop that (a) is not adjacent to the source — so the
  // source stays unaware and must learn via RERR — and (b) whose removal
  // keeps the pair connected.
  NodeId breaker = kInvalidNode;
  NodeId broken = kInvalidNode;
  for (std::size_t i = 2; i + 1 < path.size(); ++i) {
    if (!net.graph().is_neighbor(0, path[i]) &&
        reachable_avoiding(net.graph(), 0, 29, path[i])) {
      breaker = path[i - 1];
      broken = path[i];
      break;
    }
  }
  if (broken == kInvalidNode) {
    GTEST_SKIP() << "no suitable mid-route hop in this topology";
  }
  for (NodeId nb : net.graph().neighbors(broken)) {
    net.node(nb).table().revoke(broken);
    net.node(nb).routing().on_revoked(broken);
  }

  // Source keeps sending: the breaker refuses, sends a RERR, and the
  // source re-discovers a clean route.
  net.node(0).routing().send_data(29, 32);
  net.run_until(35.0);
  EXPECT_GE(net.node(0).routing().refused_next_hop_revoked() +
                net.node(breaker).routing().refused_next_hop_revoked(),
            1u);
  net.node(0).routing().send_data(29, 32);
  net.run_until(70.0);
  const Route* fresh = net.node(0).routing().cache().lookup(29, 70.0);
  ASSERT_NE(fresh, nullptr);
  for (std::size_t i = 0; i + 1 < fresh->path.size(); ++i) {
    EXPECT_FALSE(fresh->path[i] == breaker && fresh->path[i + 1] == broken)
        << "fresh route must avoid the broken link";
  }
}

TEST(Routing, DuplicateRequestsNotForwardedTwice) {
  scenario::Network net(manual_config(20, 8));
  net.run_until(5.0);
  net.node(0).routing().send_data(19, 32);
  net.run_until(40.0);
  // Every node forwards a given REQ at most once: total REQ transmissions
  // are bounded by the node count (origin + forwards), even though every
  // node hears several copies.
  const auto req_tx = net.medium().stats().tx_by_type[static_cast<std::size_t>(
      pkt::PacketType::kRouteRequest)];
  EXPECT_LE(req_tx, static_cast<std::uint64_t>(net.size()));
  EXPECT_GE(req_tx, 3u);
}

TEST(Routing, BroadcastSuppressionLimitsForwards) {
  auto config = manual_config(40, 9);
  scenario::Network net(config);
  net.run_until(5.0);
  net.node(0).routing().send_data(39, 32);
  net.run_until(40.0);
  const auto req_tx = net.medium().stats().tx_by_type[static_cast<std::size_t>(
      pkt::PacketType::kRouteRequest)];
  // With counter-based suppression at threshold 2, dense clusters forward
  // far fewer than all 40 copies.
  EXPECT_LT(req_tx, 35u);
}

}  // namespace
}  // namespace lw::routing
