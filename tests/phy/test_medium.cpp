// Broadcast medium: range, propagation, collisions, half-duplex, knobs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include <sstream>

#include "phy/medium.h"
#include "phy/trace.h"
#include "topology/field.h"

namespace lw::phy {
namespace {

class MediumTest : public ::testing::Test {
 protected:
  // Chain: 0 -- 1 -- 2 -- 3 spaced 20 m, range 25 m (only adjacent hear
  // each other); node 4 far away.
  MediumTest()
      : graph_({{0, 0}, {20, 0}, {40, 0}, {60, 0}, {500, 0}}, 25.0) {}

  void build(PhyParams params) {
    medium_ = std::make_unique<Medium>(sim_, graph_, params, Rng(1));
    for (NodeId id = 0; id < graph_.size(); ++id) {
      radios_.push_back(std::make_unique<Radio>(id));
      received_.emplace_back();
      NodeId captured = id;
      radios_.back()->set_frame_sink([this, captured](const pkt::Packet& p) {
        received_[captured].push_back(p);
      });
      medium_->attach(radios_.back().get());
    }
  }

  pkt::Packet make_packet(pkt::PacketType type = pkt::PacketType::kData) {
    pkt::Packet p = factory_.make(type);
    p.payload_bytes = 32;
    return p;
  }

  sim::Simulator sim_;
  topo::DiscGraph graph_;
  pkt::PacketFactory factory_;
  std::unique_ptr<Medium> medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::vector<pkt::Packet>> received_;
};

TEST_F(MediumTest, DeliversToNodesInRangeOnly) {
  build(PhyParams{});
  medium_->transmit(1, make_packet());
  sim_.run_all();
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(received_[3].size(), 0u);  // 40 m away
  EXPECT_EQ(received_[4].size(), 0u);
  EXPECT_EQ(received_[1].size(), 0u) << "no self-delivery";
}

TEST_F(MediumTest, StampsPhysicalTransmitter) {
  build(PhyParams{});
  pkt::Packet p = make_packet();
  p.claimed_tx = 99;  // spoofed claim must survive, tx_node must not
  medium_->transmit(1, p);
  sim_.run_all();
  ASSERT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[0][0].tx_node, 1u);
  EXPECT_EQ(received_[0][0].claimed_tx, 99u);
}

TEST_F(MediumTest, TransmissionTakesSerializationTime) {
  build(PhyParams{});
  pkt::Packet p = make_packet();
  const double expected = p.wire_size() * 8.0 / 40000.0;
  EXPECT_NEAR(medium_->transmit_duration(p), expected, 1e-12);
  medium_->transmit(1, p);
  sim_.run_until(expected / 2);
  EXPECT_EQ(received_[0].size(), 0u) << "frame still in the air";
  sim_.run_all();
  EXPECT_EQ(received_[0].size(), 1u);
}

TEST_F(MediumTest, OverlappingTransmissionsCollideAtCommonReceiver) {
  build(PhyParams{});
  // 0 and 2 are hidden from each other; both reach 1.
  medium_->transmit(0, make_packet());
  medium_->transmit(2, make_packet());
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 0u) << "both frames must be corrupted";
  EXPECT_EQ(medium_->stats().frames_collided, 2u);
  // Node 3 hears only node 2: clean delivery there.
  EXPECT_EQ(received_[3].size(), 1u);
}

TEST_F(MediumTest, NonOverlappingTransmissionsBothDeliver) {
  build(PhyParams{});
  pkt::Packet first = make_packet();
  const double gap = medium_->transmit_duration(first) + 0.001;
  medium_->transmit(0, first);
  sim_.schedule(gap, [this] { medium_->transmit(2, make_packet()); });
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 2u);
}

TEST_F(MediumTest, CollisionsCanBeDisabled) {
  PhyParams params;
  params.collisions_enabled = false;
  build(params);
  medium_->transmit(0, make_packet());
  medium_->transmit(2, make_packet());
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 2u);
}

TEST_F(MediumTest, CollisionFreeWindowProtectsEarlyTraffic) {
  PhyParams params;
  params.collision_free_until = 10.0;
  build(params);
  medium_->transmit(0, make_packet());
  medium_->transmit(2, make_packet());
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 2u) << "inside the secure window";

  sim_.schedule(20.0 - sim_.now(), [] {});
  sim_.run_all();  // advance past the window
  medium_->transmit(0, make_packet());
  medium_->transmit(2, make_packet());
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 2u) << "the colliding pair was lost";
  EXPECT_EQ(medium_->stats().frames_collided, 2u);
}

TEST_F(MediumTest, HalfDuplexTransmitterCannotReceive) {
  build(PhyParams{});
  medium_->transmit(0, make_packet());
  // Node 1 starts transmitting shortly after 0's frame starts arriving.
  sim_.schedule(0.001, [this] { medium_->transmit(1, make_packet()); });
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 0u)
      << "node 1 was transmitting while 0's frame arrived";
}

TEST_F(MediumTest, RandomLossDropsIndependently) {
  PhyParams params;
  params.extra_loss_prob = 0.5;
  build(params);
  for (int i = 0; i < 200; ++i) {
    sim_.schedule(i * 0.1, [this] { medium_->transmit(1, make_packet()); });
  }
  sim_.run_all();
  // Two receivers, 200 frames each, ~50% loss.
  const auto& stats = medium_->stats();
  EXPECT_GT(stats.frames_random_lost, 120u);
  EXPECT_LT(stats.frames_random_lost, 280u);
  EXPECT_EQ(stats.frames_random_lost + stats.frames_delivered, 400u);
}

TEST_F(MediumTest, HighPowerTransmissionReachesFar) {
  build(PhyParams{});
  medium_->transmit(0, make_packet(), /*range_multiplier=*/3.0);
  sim_.run_all();
  EXPECT_EQ(received_[3].size(), 1u) << "60 m at 3x range multiplier";
  EXPECT_EQ(received_[4].size(), 0u) << "500 m still out of reach";
}

TEST_F(MediumTest, HighGainReceiverHearsFar) {
  build(PhyParams{});
  medium_->set_rx_range_multiplier(3, 3.0);
  medium_->transmit(0, make_packet());
  sim_.run_all();
  EXPECT_EQ(received_[3].size(), 1u)
      << "node 3 listens at 3x range, hears normal-power node 0";
  EXPECT_EQ(received_[4].size(), 0u);
}

TEST_F(MediumTest, CarrierSenseSeesOngoingTraffic) {
  build(PhyParams{});
  EXPECT_FALSE(medium_->channel_busy(0));
  medium_->transmit(1, make_packet());
  sim_.schedule(0.001, [this] {
    EXPECT_TRUE(medium_->channel_busy(0)) << "reception in progress";
    EXPECT_TRUE(medium_->channel_busy(1)) << "transmitting";
    EXPECT_FALSE(medium_->channel_busy(3)) << "out of range: idle";
  });
  sim_.run_all();
  EXPECT_FALSE(medium_->channel_busy(0));
}

TEST_F(MediumTest, PerTypeAccounting) {
  build(PhyParams{});
  medium_->transmit(0, make_packet(pkt::PacketType::kRouteRequest));
  sim_.run_all();
  const auto& stats = medium_->stats();
  EXPECT_EQ(stats.tx_by_type[static_cast<std::size_t>(
                pkt::PacketType::kRouteRequest)],
            1u);
  EXPECT_GT(stats.airtime_by_type[static_cast<std::size_t>(
                pkt::PacketType::kRouteRequest)],
            0.0);
}

class RecordingTrace final : public obs::EventSink {
 public:
  int tx = 0, rx = 0, coll = 0, loss = 0;
  void on_event(const obs::Event& event) override {
    switch (event.kind) {
      case obs::EventKind::kPhyTx: ++tx; break;
      case obs::EventKind::kPhyRx: ++rx; break;
      case obs::EventKind::kPhyCollision: ++coll; break;
      case obs::EventKind::kPhyLoss: ++loss; break;
      default: break;
    }
  }
};

TEST_F(MediumTest, RecorderObservesAllOutcomes) {
  build(PhyParams{});
  obs::Recorder recorder;
  RecordingTrace trace;
  recorder.add_sink(&trace, obs::layer_bit(obs::Layer::kPhy));
  medium_->set_recorder(&recorder);
  medium_->transmit(0, make_packet());  // delivered at 1
  sim_.run_all();
  medium_->transmit(0, make_packet());  // these two collide at 1
  medium_->transmit(2, make_packet());
  sim_.run_all();
  EXPECT_EQ(trace.tx, 3);
  EXPECT_GE(trace.rx, 2);   // first frame at 1, second burst at 3
  EXPECT_EQ(trace.coll, 2);
  EXPECT_EQ(trace.loss, 0);
}

TEST_F(MediumTest, TextTraceFormatsLines) {
  build(PhyParams{});
  std::ostringstream out;
  obs::Recorder recorder;
  TextTrace trace(out);
  recorder.add_sink(&trace, obs::layer_bit(obs::Layer::kPhy));
  medium_->set_recorder(&recorder);
  medium_->transmit(1, make_packet(pkt::PacketType::kRouteRequest));
  sim_.run_all();
  const std::string text = out.str();
  EXPECT_NE(text.find("TX   node=1 REQ"), std::string::npos) << text;
  EXPECT_NE(text.find("RX   node=0 REQ"), std::string::npos) << text;
}

}  // namespace
}  // namespace lw::phy
