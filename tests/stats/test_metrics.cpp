// Metrics collector: ground-truth classification and isolation tracking.
#include <gtest/gtest.h>

#include "stats/metrics.h"
#include "topology/field.h"

namespace lw::stats {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  // Line 0-1-2-3-4 (spacing 20, range 25): consecutive nodes adjacent.
  MetricsTest()
      : graph_(topo::place_line(5, 20.0), 25.0),
        metrics_(sim_, graph_, {2}) {}

  sim::Simulator sim_;
  topo::DiscGraph graph_;
  MetricsCollector metrics_;
};

TEST_F(MetricsTest, PhysicalRouteIsClean) {
  metrics_.on_route_established(0, {0, 1, 2, 3});
  EXPECT_EQ(metrics_.routes_established, 1u);
  EXPECT_EQ(metrics_.wormhole_routes, 0u);
  EXPECT_EQ(metrics_.routes_via_malicious, 1u) << "node 2 is malicious";
  EXPECT_EQ(metrics_.routes_via_malicious_transit, 1u);
}

TEST_F(MetricsTest, FakeLinkClassifiedAsWormhole) {
  // 1 -> 4 is not a physical link (60 m apart).
  metrics_.on_route_established(0, {0, 1, 4});
  EXPECT_EQ(metrics_.wormhole_routes, 1u);
  EXPECT_EQ(metrics_.wormhole_route_times.size(), 1u);
}

TEST_F(MetricsTest, MaliciousEndpointIsNotTransit) {
  metrics_.on_route_established(2, {2, 3, 4});
  EXPECT_EQ(metrics_.routes_via_malicious, 1u);
  EXPECT_EQ(metrics_.routes_via_malicious_transit, 0u)
      << "the malicious node's own traffic is not a captured route";
}

TEST_F(MetricsTest, IsolationRequiresAllHonestNeighbors) {
  // Malicious node 2 has honest neighbors {1, 3}.
  const auto& record = metrics_.isolation().at(2);
  EXPECT_EQ(record.required, (std::set<NodeId>{1, 3}));

  metrics_.on_local_detection(1, 2);
  EXPECT_FALSE(metrics_.all_malicious_isolated());
  metrics_.on_isolation(3, 2, 3);
  EXPECT_TRUE(metrics_.all_malicious_isolated());
  EXPECT_EQ(metrics_.malicious_isolated_count(), 1u);
}

TEST_F(MetricsTest, IsolationLatencyIsMaxOverMalicious) {
  sim_.schedule(10.0, [this] { metrics_.on_local_detection(1, 2); });
  sim_.schedule(25.0, [this] { metrics_.on_isolation(3, 2, 3); });
  sim_.run_all();
  auto latency = metrics_.isolation_latency(/*attack_start=*/5.0);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(*latency, 20.0);
}

TEST_F(MetricsTest, IncompleteIsolationHasNoLatency) {
  metrics_.on_local_detection(1, 2);
  EXPECT_FALSE(metrics_.isolation_latency(0.0).has_value());
}

TEST_F(MetricsTest, FalseAccusationsTracked) {
  metrics_.on_local_detection(0, 3);  // node 3 is honest
  EXPECT_EQ(metrics_.false_local_detections, 1u);
  EXPECT_EQ(metrics_.false_isolations, 0u)
      << "a lone guard's conviction is not a network isolation";
  metrics_.on_isolation(4, 3, 3);  // gamma-confirmed: THE false alarm
  EXPECT_EQ(metrics_.false_isolations, 1u);
}

TEST_F(MetricsTest, SuspicionClassification) {
  metrics_.on_suspicion(0, 2, lite::Suspicion::kFabrication);
  metrics_.on_suspicion(0, 3, lite::Suspicion::kDrop);
  EXPECT_EQ(metrics_.suspicions_fabrication, 1u);
  EXPECT_EQ(metrics_.suspicions_drop, 1u);
  EXPECT_EQ(metrics_.false_suspicions, 1u) << "only the one against node 3";
}

TEST_F(MetricsTest, DropAccountingWithTimestamps) {
  sim_.schedule(3.0, [this] {
    pkt::Packet p;
    metrics_.on_data_dropped(2, p);
  });
  sim_.run_all();
  EXPECT_EQ(metrics_.data_dropped_malicious, 1u);
  ASSERT_EQ(metrics_.drop_times.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.drop_times[0], 3.0);
}

TEST_F(MetricsTest, DeliveryLatencyStatistics) {
  for (double latency : {1.0, 2.0, 3.0, 4.0}) {
    sim_.schedule(10.0 + latency, [this, latency] {
      pkt::Packet p;
      p.created_at = 10.0;
      (void)latency;
      metrics_.on_data_delivered(4, p);
    });
  }
  sim_.run_all();
  ASSERT_EQ(metrics_.delivery_latencies.size(), 4u);
  EXPECT_NEAR(metrics_.mean_delivery_latency(), 2.5, 1e-9);
  EXPECT_NEAR(metrics_.latency_percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(metrics_.latency_percentile(100.0), 4.0, 1e-9);
  EXPECT_NEAR(metrics_.latency_percentile(50.0), 2.5, 1e-9);
}

TEST_F(MetricsTest, LatencyOnEmptyRunIsZero) {
  EXPECT_DOUBLE_EQ(metrics_.mean_delivery_latency(), 0.0);
  EXPECT_DOUBLE_EQ(metrics_.latency_percentile(95.0), 0.0);
}

TEST_F(MetricsTest, ExtremePercentilesOnEmptyRunAreZero) {
  EXPECT_DOUBLE_EQ(metrics_.latency_percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics_.latency_percentile(100.0), 0.0);
}

TEST_F(MetricsTest, SingleSampleIsEveryPercentile) {
  sim_.schedule(12.5, [this] {
    pkt::Packet p;
    p.created_at = 10.0;
    metrics_.on_data_delivered(4, p);
  });
  sim_.run_all();
  ASSERT_EQ(metrics_.delivery_latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.mean_delivery_latency(), 2.5);
  EXPECT_DOUBLE_EQ(metrics_.latency_percentile(0.0), 2.5);
  EXPECT_DOUBLE_EQ(metrics_.latency_percentile(50.0), 2.5);
  EXPECT_DOUBLE_EQ(metrics_.latency_percentile(100.0), 2.5);
}

TEST_F(MetricsTest, PercentileInterpolatesBetweenSamples) {
  for (double latency : {1.0, 2.0, 3.0, 4.0}) {
    sim_.schedule(10.0 + latency, [this] {
      pkt::Packet p;
      p.created_at = 10.0;
      metrics_.on_data_delivered(4, p);
    });
  }
  sim_.run_all();
  // rank = 0.25 * 3 = 0.75: three quarters of the way from 1.0 to 2.0.
  EXPECT_NEAR(metrics_.latency_percentile(25.0), 1.75, 1e-12);
  EXPECT_NEAR(metrics_.latency_percentile(95.0), 3.85, 1e-12);
}

TEST(MetricsCumulative, CumulativeAtCountsSortedTimes) {
  std::vector<Time> times{1.0, 2.0, 2.0, 5.0};
  EXPECT_EQ(MetricsCollector::cumulative_at(times, 0.5), 0u);
  EXPECT_EQ(MetricsCollector::cumulative_at(times, 2.0), 3u);
  EXPECT_EQ(MetricsCollector::cumulative_at(times, 10.0), 4u);
}

}  // namespace
}  // namespace lw::stats
