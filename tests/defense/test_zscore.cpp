// Z-score neighbor-table detector: anomaly accounting, the three
// conviction gates (samples, absolute rate, leave-one-out outlier), the
// shared alert protocol, and crash-reset hygiene — driven by hand-crafted
// packet sequences through the same fake environment as the LITEWORP
// monitor tests.
#include <gtest/gtest.h>

#include <string>

#include "defense/zscore.h"
#include "tests/liteworp/fake_env.h"

namespace lw::defense {
namespace {

// Cast of characters (neighbors of the guard unless noted):
//   kGuard = 0 (us), kW = 1 (wormhole-endpoint suspect),
//   kH1 = 2, kH2 = 3 (honest forwarders), kFar = 9 (not our neighbor —
//   flows originating beyond earshot).
constexpr NodeId kGuard = 0;
constexpr NodeId kW = 1;
constexpr NodeId kH1 = 2;
constexpr NodeId kH2 = 3;
constexpr NodeId kFar = 9;

class ZScoreTest : public ::testing::Test {
 protected:
  ZScoreTest()
      : env_(kGuard),
        routing_(env_, table_, {}, nullptr),
        defense_(config(), Wiring{env_, table_, routing_, nullptr}) {
    table_.add_neighbor(kW);
    table_.add_neighbor(kH1);
    table_.add_neighbor(kH2);
    table_.set_neighbor_list(kW, {kGuard, kH1, kH2});
    table_.set_neighbor_list(kH1, {kGuard, kW, kH2});
    table_.set_neighbor_list(kH2, {kGuard, kW, kH1});
  }

  /// Unit-sized evidence: 4 judged forwards qualify a neighbor. The other
  /// gates keep their defaults (rate floor 0.3, z threshold 2.5, std floor
  /// 0.05, gamma 3).
  static DefenseConfig config() {
    DefenseConfig c;
    c.name = "zscore";
    c.zscore.min_samples = 4;
    c.finalize();
    return c;
  }

  /// REQ transmission by `tx` announcing `prev` (kInvalidNode = origin).
  pkt::Packet req(NodeId tx, NodeId prev, NodeId origin, SeqNo seq) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = tx;
    p.announced_prev_hop = prev;
    p.origin = origin;
    p.seq = seq;
    p.final_dst = 42;
    return p;
  }

  /// A forward with an alibi: the guard first hears `origin_nbr` originate
  /// the flow, then `fwd` forward it. Judged clean.
  void clean_forward(NodeId fwd, NodeId origin_nbr, SeqNo seq) {
    defense_.observe(req(origin_nbr, kInvalidNode, origin_nbr, seq));
    defense_.observe(req(fwd, origin_nbr, origin_nbr, seq));
  }

  /// A forward of a flow the guard never heard from anyone — the wormhole
  /// replay signature. Judged anomalous.
  void anomalous_forward(NodeId fwd, NodeId prev, SeqNo seq) {
    defense_.observe(req(fwd, prev, kFar, seq));
  }

  /// Qualifies the honest peers as the z-score baseline: 4 clean forwards
  /// each, anomaly rate 0.
  void qualify_honest_baseline() {
    for (SeqNo seq = 100; seq < 104; ++seq) clean_forward(kH1, kH2, seq);
    for (SeqNo seq = 200; seq < 204; ++seq) clean_forward(kH2, kH1, seq);
  }

  /// Authenticated ALERT from `guard` accusing `accused`, addressed to us.
  pkt::Packet alert(NodeId guard, NodeId accused, SeqNo seq) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kAlert);
    p.origin = guard;
    p.claimed_tx = guard;
    p.seq = seq;
    p.accused = accused;
    p.accusing_guard = guard;
    p.ttl = 2;
    lw::util::PoolString payload;
    p.auth_payload_into(payload);
    p.alert_auth.push_back({kGuard, env_.keys().sign(guard, kGuard, payload)});
    return p;
  }

  test::FakeEnv env_;
  nbr::NeighborTable table_;
  routing::OnDemandRouting routing_;
  ZScoreDefense defense_;
};

TEST_F(ZScoreTest, CleanForwardIsNotAnomalous) {
  clean_forward(kW, kH1, 1);
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 0.0);
  EXPECT_FALSE(defense_.locally_detected(kW));
}

TEST_F(ZScoreTest, UnheardFlowForwardIsAnomalousOncePerFlow) {
  anomalous_forward(kW, kH1, 1);
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 1.0);
  // Link-layer retransmissions of the same (flow, forwarder) pair must not
  // multiply the evidence: one verdict per flow.
  anomalous_forward(kW, kH1, 1);
  anomalous_forward(kW, kH1, 1);
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 1.0) << "observed must stay 1";
}

TEST_F(ZScoreTest, JudgeBeforeRecordDeniesSelfAlibi) {
  // kW's forward is judged BEFORE its transmission is recorded, so the
  // replay cannot alibi itself — but it DOES alibi later forwarders of the
  // now-heard flow (kH1 relays what kW injected; kH1 is innocent).
  anomalous_forward(kW, kH1, 7);
  defense_.observe(req(kH1, kW, kFar, 7));
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 1.0);
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kH1), 0.0)
      << "relaying a heard flow is not an anomaly";
}

TEST_F(ZScoreTest, NoConvictionWithoutPeerBaseline) {
  // Plenty of samples and a 100% anomaly rate, but no qualified peers: a
  // z-score against an empty baseline is numerology, so no conviction.
  for (SeqNo seq = 1; seq <= 6; ++seq) anomalous_forward(kW, kH1, seq);
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 1.0);
  EXPECT_DOUBLE_EQ(defense_.zscore_of(kW), 0.0) << "baseline too thin";
  EXPECT_FALSE(defense_.locally_detected(kW));
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kAlert).empty());
}

TEST_F(ZScoreTest, MinSamplesGateThenDetectionWithAlert) {
  qualify_honest_baseline();
  for (SeqNo seq = 1; seq <= 3; ++seq) anomalous_forward(kW, kH1, seq);
  EXPECT_FALSE(defense_.locally_detected(kW)) << "3 samples < min_samples";
  EXPECT_FALSE(table_.is_revoked(kW));
  anomalous_forward(kW, kH1, 4);
  EXPECT_TRUE(defense_.locally_detected(kW));
  EXPECT_TRUE(table_.is_revoked(kW));
  const auto alerts = env_.sent_of(pkt::PacketType::kAlert);
  ASSERT_EQ(alerts.size(), 1u) << "repeats are scheduled, not immediate";
  EXPECT_EQ(alerts[0].accused, kW);
  EXPECT_EQ(alerts[0].accusing_guard, kGuard);
  EXPECT_FALSE(alerts[0].alert_auth.empty()) << "alerts are authenticated";
}

TEST_F(ZScoreTest, AbsoluteRateFloorOverridesOutlierScore) {
  // 7 clean + 2 anomalous forwards: rate 2/9 ~= 0.22 is an extreme outlier
  // against the all-clean baseline (z = 0.22 / 0.05 > 4), but stays below
  // min_anomaly_rate = 0.3 — the floor must hold the conviction.
  qualify_honest_baseline();
  for (SeqNo seq = 1; seq <= 7; ++seq) clean_forward(kW, kH1, seq + 300);
  anomalous_forward(kW, kH1, 1);
  anomalous_forward(kW, kH1, 2);
  EXPECT_GE(defense_.zscore_of(kW), defense_.params().z_threshold)
      << "the z-score alone would have convicted";
  EXPECT_LT(defense_.anomaly_rate(kW), defense_.params().min_anomaly_rate);
  EXPECT_FALSE(defense_.locally_detected(kW));
}

TEST_F(ZScoreTest, UniformlyAnomalousNeighborhoodConvictsNobody) {
  // Everyone anomalizes equally (e.g. the guard itself is deaf): nobody is
  // an outlier among its peers, so nobody is convicted.
  for (SeqNo seq = 1; seq <= 5; ++seq) {
    anomalous_forward(kW, kH1, seq);
    anomalous_forward(kH1, kH2, seq + 400);
    anomalous_forward(kH2, kW, seq + 500);
  }
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 1.0);
  EXPECT_LT(defense_.zscore_of(kW), defense_.params().z_threshold);
  EXPECT_FALSE(defense_.locally_detected(kW));
  EXPECT_FALSE(defense_.locally_detected(kH1));
  EXPECT_FALSE(defense_.locally_detected(kH2));
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kAlert).empty());
}

TEST_F(ZScoreTest, AdmitEnforcesRevocationOnly) {
  // Statistical evidence never drops individual frames pre-conviction.
  EXPECT_TRUE(defense_.admit(req(kW, kH1, kFar, 1)));
  qualify_honest_baseline();
  for (SeqNo seq = 1; seq <= 4; ++seq) anomalous_forward(kW, kH1, seq);
  ASSERT_TRUE(table_.is_revoked(kW));
  EXPECT_FALSE(defense_.admit(req(kW, kH1, kFar, 10)))
      << "no traffic from a revoked sender";
  EXPECT_FALSE(defense_.admit(req(kH1, kW, kFar, 11)))
      << "no traffic via a revoked previous hop";
  EXPECT_TRUE(defense_.admit(req(kH1, kH2, kFar, 12)));
  const nbr::AdmissionStats& stats = defense_.admission_stats();
  EXPECT_EQ(stats.revoked_sender, 1u);
  EXPECT_EQ(stats.revoked_prev_hop, 1u);
  EXPECT_EQ(stats.accepted, 2u);
}

TEST_F(ZScoreTest, AlertRepeatsFireOnSchedule) {
  qualify_honest_baseline();
  for (SeqNo seq = 1; seq <= 4; ++seq) anomalous_forward(kW, kH1, seq);
  ASSERT_EQ(env_.sent_of(pkt::PacketType::kAlert).size(), 1u);
  env_.simulator().run_until(60.0);
  // alert_repeats = 3: the original plus two scheduled repeats.
  EXPECT_EQ(env_.sent_of(pkt::PacketType::kAlert).size(), 3u);
}

TEST_F(ZScoreTest, ResetClearsStateAndDisarmsScheduledRepeats) {
  qualify_honest_baseline();
  for (SeqNo seq = 1; seq <= 4; ++seq) anomalous_forward(kW, kH1, seq);
  ASSERT_TRUE(defense_.locally_detected(kW));
  defense_.reset();  // crash: volatile detection state is gone
  EXPECT_FALSE(defense_.locally_detected(kW));
  EXPECT_DOUBLE_EQ(defense_.anomaly_rate(kW), 0.0);
  EXPECT_EQ(defense_.alert_count(kW), 0);
  env_.simulator().run_until(60.0);
  EXPECT_EQ(env_.sent_of(pkt::PacketType::kAlert).size(), 1u)
      << "pre-crash repeats must be disarmed by the epoch guard";
}

TEST_F(ZScoreTest, GammaDistinctAccusersIsolate) {
  DefenseConfig c = config();
  c.zscore.detection_confidence = 2;  // two distinct guards in this field
  ZScoreDefense d(c, Wiring{env_, table_, routing_, nullptr});
  d.handle_alert(alert(kH1, kW, 1));
  EXPECT_EQ(d.alert_count(kW), 1);
  EXPECT_FALSE(table_.is_revoked(kW));
  // A repeat from the SAME guard is not a second accuser.
  d.handle_alert(alert(kH1, kW, 2));
  EXPECT_EQ(d.alert_count(kW), 1);
  EXPECT_FALSE(table_.is_revoked(kW));
  d.handle_alert(alert(kH2, kW, 3));
  EXPECT_EQ(d.alert_count(kW), 2);
  EXPECT_TRUE(table_.is_revoked(kW)) << "gamma distinct accusers reached";
}

TEST_F(ZScoreTest, UnauthenticAlertIgnored) {
  pkt::Packet forged = alert(kH1, kW, 1);
  // Re-sign with the wrong pairwise key: verification must fail.
  lw::util::PoolString payload;
  forged.auth_payload_into(payload);
  forged.alert_auth[0].tag = env_.keys().sign(kH2, kGuard, payload);
  defense_.handle_alert(forged);
  EXPECT_EQ(defense_.alert_count(kW), 0);
  EXPECT_FALSE(table_.is_revoked(kW));
}

TEST_F(ZScoreTest, AlertRelayedWithTtlDecrement) {
  defense_.handle_alert(alert(kH1, kW, 1));
  const auto relayed = env_.sent_of(pkt::PacketType::kAlert);
  ASSERT_EQ(relayed.size(), 1u);
  EXPECT_EQ(relayed[0].ttl, 1u);
  EXPECT_EQ(relayed[0].accused, kW);
  // A zero-TTL alert is consumed, not relayed.
  pkt::Packet spent = alert(kH2, kW, 2);
  spent.ttl = 0;
  lw::util::PoolString payload;
  spent.auth_payload_into(payload);
  spent.alert_auth[0].tag = env_.keys().sign(kH2, kGuard, payload);
  defense_.handle_alert(spent);
  EXPECT_EQ(env_.sent_of(pkt::PacketType::kAlert).size(), 1u);
}

TEST_F(ZScoreTest, CostSnapshotCountsDeterministicWork) {
  qualify_honest_baseline();
  for (SeqNo seq = 1; seq <= 4; ++seq) anomalous_forward(kW, kH1, seq);
  EXPECT_TRUE(defense_.admit(req(kH1, kH2, kFar, 50)));
  EXPECT_FALSE(defense_.admit(req(kW, kH1, kFar, 51)));
  const CostSnapshot cost = defense_.cost();
  EXPECT_GT(cost.frames_observed, 0u);
  EXPECT_EQ(cost.admission_checks, 2u);
  EXPECT_EQ(cost.admission_rejects, 1u);
  EXPECT_EQ(cost.control_messages, 1u) << "one alert transmitted so far";
  EXPECT_GT(cost.control_bytes, 0u);
  EXPECT_GT(cost.storage_bytes, 0u) << "stats and watch records are stored";
}

}  // namespace
}  // namespace lw::defense
