// Defense registry and configuration surface: every registered backend is
// constructible and tag-consistent, the "none" baseline is inert, and
// DefenseConfig::validate() / defense::set_option() reject bad input with
// actionable messages (one test per rejection).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "defense/defense.h"
#include "routing/routing.h"
#include "tests/liteworp/fake_env.h"

namespace lw::defense {
namespace {

/// validate() must throw std::invalid_argument whose message contains
/// `fragment` (the actionable part a user would grep for).
void expect_reject(const DefenseConfig& config, const std::string& fragment) {
  try {
    config.validate();
    FAIL() << "expected rejection mentioning '" << fragment << "'";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "got: " << error.what();
  }
}

/// Minimal wiring for constructing backends outside a scenario.
class MakeFixture : public ::testing::Test {
 protected:
  MakeFixture() : env_(0), routing_(env_, table_, {}, nullptr) {}

  Wiring wiring() { return {env_, table_, routing_, nullptr}; }

  test::FakeEnv env_;
  nbr::NeighborTable table_;
  routing::OnDemandRouting routing_;
};

// ---- Registry round-trip ----

TEST_F(MakeFixture, RegistryNamesAreKnownConstructibleAndTagConsistent) {
  const std::vector<std::string> names = registry();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    EXPECT_TRUE(known(name)) << name;
    DefenseConfig config;
    config.name = name;
    config.finalize();
    EXPECT_NO_THROW(config.validate()) << name;
    auto backend = make(config, wiring());
    ASSERT_NE(backend, nullptr) << name;
    // The backend's trace tag round-trips through the registry name.
    EXPECT_EQ(backend->tag(), tag_for(name)) << name;
    EXPECT_STREQ(backend->name(), name.c_str());
  }
}

TEST_F(MakeFixture, UnknownNameRejectedEverywhere) {
  EXPECT_FALSE(known("dtn"));
  EXPECT_THROW(tag_for("dtn"), std::invalid_argument);
  DefenseConfig config;
  config.name = "dtn";
  expect_reject(config, "unknown defense \"dtn\"");
  expect_reject(config, "registered: liteworp, leash, zscore, none");
  EXPECT_THROW(make(config, wiring()), std::invalid_argument);
}

TEST(DefenseConfig, FinalizeDerivesMasterSwitchesFromSelection) {
  DefenseConfig config;
  config.name = "zscore";
  config.finalize();
  EXPECT_TRUE(config.zscore.enabled);
  EXPECT_FALSE(config.liteworp.enabled);
  EXPECT_FALSE(config.leash.enabled);
  config.name = "liteworp";
  config.finalize();
  EXPECT_TRUE(config.liteworp.enabled);
  EXPECT_FALSE(config.zscore.enabled);
}

// ---- The undefended baseline is a true no-op ----

TEST_F(MakeFixture, NoneBackendIsInert) {
  DefenseConfig config;
  config.name = "none";
  config.finalize();
  auto backend = make(config, wiring());
  pkt::Packet packet = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
  packet.claimed_tx = 5;
  backend->observe(packet);
  EXPECT_TRUE(backend->admit(packet));
  backend->handle_alert(packet);
  backend->emit_false_alert(7);
  EXPECT_TRUE(env_.sent.empty()) << "the baseline must send nothing";
  const CostSnapshot cost = backend->cost();
  EXPECT_EQ(cost.frames_observed, 0u);
  EXPECT_EQ(cost.admission_checks, 0u);
  EXPECT_EQ(cost.control_messages, 0u);
  EXPECT_EQ(cost.storage_bytes, 0u);
  EXPECT_EQ(backend->admission_stats().accepted, 0u);
  EXPECT_EQ(backend->admission_stats().total_rejected(), 0u);
  EXPECT_EQ(backend->local_monitor(), nullptr);
}

// ---- validate(): one test per rejection ----

TEST(DefenseValidate, ChecksOnlyTheSelectedBackend) {
  DefenseConfig config;
  config.name = "leash";
  config.liteworp.detection_confidence = 0;  // broken but inactive
  config.zscore.z_threshold = -1.0;          // broken but inactive
  EXPECT_NO_THROW(config.validate());
}

TEST(DefenseValidate, LiteworpGammaBelowOne) {
  DefenseConfig config;
  config.liteworp.detection_confidence = 0;
  expect_reject(config,
                "liteworp.detection_confidence (gamma) must be at least 1");
}

TEST(DefenseValidate, LiteworpMalcThresholdNotPositive) {
  DefenseConfig config;
  config.liteworp.malc_threshold = 0.0;
  expect_reject(config, "liteworp.malc_threshold (C_t) must be positive");
}

TEST(DefenseValidate, LiteworpWatchTimeoutNotPositive) {
  DefenseConfig config;
  config.liteworp.watch_timeout = -1.0;
  expect_reject(config, "liteworp.watch_timeout (delta) must be positive");
}

TEST(DefenseValidate, LiteworpAlertRepeatsBelowOne) {
  DefenseConfig config;
  config.liteworp.alert_repeats = 0;
  expect_reject(config, "liteworp.alert_repeats must be at least 1");
}

TEST(DefenseValidate, ZScoreThresholdNotPositive) {
  DefenseConfig config;
  config.name = "zscore";
  config.zscore.z_threshold = 0.0;
  expect_reject(config, "zscore.z_threshold must be positive");
}

TEST(DefenseValidate, ZScoreMinSamplesBelowOne) {
  DefenseConfig config;
  config.name = "zscore";
  config.zscore.min_samples = 0;
  expect_reject(config, "zscore.min_samples must be at least 1");
}

TEST(DefenseValidate, ZScoreMinPeersBelowTwo) {
  DefenseConfig config;
  config.name = "zscore";
  config.zscore.min_peers = 1;
  expect_reject(config, "zscore.min_peers must be at least 2");
}

TEST(DefenseValidate, ZScoreAnomalyRateOutsideUnitInterval) {
  DefenseConfig config;
  config.name = "zscore";
  config.zscore.min_anomaly_rate = 1.5;
  expect_reject(config, "zscore.min_anomaly_rate must be within [0, 1]");
  config.zscore.min_anomaly_rate = -0.1;
  expect_reject(config, "zscore.min_anomaly_rate must be within [0, 1]");
}

TEST(DefenseValidate, ZScoreStdFloorNotPositive) {
  DefenseConfig config;
  config.name = "zscore";
  config.zscore.std_floor = 0.0;
  expect_reject(config, "zscore.std_floor must be positive");
}

TEST(DefenseValidate, ZScoreGammaBelowOne) {
  DefenseConfig config;
  config.name = "zscore";
  config.zscore.detection_confidence = 0;
  expect_reject(config, "zscore.detection_confidence (gamma) must be at least 1");
}

TEST(DefenseValidate, LeashSyncErrorNegative) {
  DefenseConfig config;
  config.name = "leash";
  config.leash.sync_error = -1e-6;
  expect_reject(config, "leash.sync_error must be non-negative");
}

TEST(DefenseValidate, LeashLocationErrorNegative) {
  DefenseConfig config;
  config.name = "leash";
  config.leash.location_error = -0.5;
  expect_reject(config, "leash.location_error must be non-negative");
}

TEST(DefenseValidate, LeashProcessingSlackNegative) {
  DefenseConfig config;
  config.name = "leash";
  config.leash.processing_slack = -1e-9;
  expect_reject(config, "leash.processing_slack must be non-negative");
}

// ---- set_option(): dotted CLI keys ----

TEST(DefenseSetOption, RoundTripsAcrossBackends) {
  DefenseConfig config;
  set_option(config, "liteworp.detection_confidence", "5");
  EXPECT_EQ(config.liteworp.detection_confidence, 5);
  set_option(config, "liteworp.malc_threshold", "36");
  EXPECT_DOUBLE_EQ(config.liteworp.malc_threshold, 36.0);
  set_option(config, "liteworp.strict_link_check", "false");
  EXPECT_FALSE(config.liteworp.strict_link_check);
  set_option(config, "zscore.z_threshold", "3.25");
  EXPECT_DOUBLE_EQ(config.zscore.z_threshold, 3.25);
  set_option(config, "zscore.min_peers", "4");
  EXPECT_EQ(config.zscore.min_peers, 4);
  set_option(config, "leash.sync_error", "1e-5");
  EXPECT_DOUBLE_EQ(config.leash.sync_error, 1e-5);
  set_option(config, "leash.mode", "geographical");
  EXPECT_EQ(config.leash.mode, leash::LeashMode::kGeographical);
  set_option(config, "leash.mode", "temporal");
  EXPECT_EQ(config.leash.mode, leash::LeashMode::kTemporal);
}

TEST(DefenseSetOption, UnknownKeyRejectedWithGuidance) {
  DefenseConfig config;
  try {
    set_option(config, "liteworp.gamma", "3");
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("unknown option"),
              std::string::npos)
        << error.what();
    // The message must teach the dotted-key convention.
    EXPECT_NE(std::string(error.what()).find("<backend>.<param>"),
              std::string::npos)
        << error.what();
  }
}

TEST(DefenseSetOption, UnparsableValuesRejected) {
  DefenseConfig config;
  EXPECT_THROW(set_option(config, "zscore.z_threshold", "high"),
               std::invalid_argument);
  EXPECT_THROW(set_option(config, "liteworp.detection_confidence", "3.5"),
               std::invalid_argument);
  EXPECT_THROW(set_option(config, "liteworp.strict_link_check", "maybe"),
               std::invalid_argument);
  EXPECT_THROW(set_option(config, "leash.mode", "chronological"),
               std::invalid_argument);
  // Failed sets must not half-apply.
  EXPECT_DOUBLE_EQ(config.zscore.z_threshold, ZScoreParams{}.z_threshold);
}

}  // namespace
}  // namespace lw::defense
