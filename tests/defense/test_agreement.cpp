// Cross-backend agreement: on the same field, seed, and attack, the two
// identifying detectors (LITEWORP's per-packet counter and the Z-score
// statistical detector) must agree on the verdict — every colluder
// completely isolated, no honest node ever accused. They reach it by very
// different evidence, so agreement is a strong end-to-end check on both.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.h"

namespace lw {
namespace {

/// The two backends that identify and isolate attackers (leashes only
/// filter packets; the baseline does nothing).
const char* const kIdentifyingBackends[] = {"liteworp", "zscore"};

scenario::ExperimentConfig agree_config(const std::string& backend,
                                        attack::WormholeMode mode,
                                        std::uint64_t seed,
                                        std::size_t malicious = 2) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 50;
  config.seed = seed;
  config.duration = 600.0;
  config.malicious_count = malicious;
  config.attack.mode = mode;
  config.defense.name = backend;
  config.finalize();
  return config;
}

class BackendAgreement
    : public ::testing::TestWithParam<attack::WormholeMode> {};

TEST_P(BackendAgreement, BothDetectorsIsolateEveryColluder) {
  for (const char* backend : kIdentifyingBackends) {
    auto result =
        scenario::run_experiment(agree_config(backend, GetParam(), 3));
    EXPECT_EQ(result.malicious_isolated, result.malicious_count)
        << backend << " missed a colluder";
    EXPECT_EQ(result.false_isolations, 0u)
        << backend << " accused an honest node";
    EXPECT_GT(result.local_detections, 0u) << backend;
  }
}

INSTANTIATE_TEST_SUITE_P(TunnelModes, BackendAgreement,
                         ::testing::Values(attack::WormholeMode::kEncapsulation,
                                           attack::WormholeMode::kOutOfBand));

TEST(BackendAgreementClean, NeitherDetectorIsolatesOnACleanField) {
  // Zero attackers: any isolation is a false positive by construction, for
  // either evidence model. The per-packet backend must not even suspect
  // locally (the flow-heard alibi absorbs collision losses); the
  // statistical backend MAY convict locally when collisions make one guard
  // deaf enough to see an outlier — the paper's gamma threshold is what
  // must keep that local noise from ever isolating anyone network-wide.
  for (const char* backend : kIdentifyingBackends) {
    auto config = agree_config(backend, attack::WormholeMode::kOutOfBand, 3,
                               /*malicious=*/0);
    auto result = scenario::run_experiment(config);
    EXPECT_EQ(result.false_isolations, 0u) << backend;
    EXPECT_EQ(result.malicious_count, 0u);
    if (std::string(backend) == "liteworp") {
      EXPECT_EQ(result.local_detections, 0u) << backend;
    }
  }
}

}  // namespace
}  // namespace lw
