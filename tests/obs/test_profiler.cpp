// RunProfiler edge cases: ScopedTimer nesting (including re-entrant timers
// on the SAME layer), the null-profiler no-op contract, and per-layer
// event attribution.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/profiler.h"

namespace lw::obs {
namespace {

constexpr std::size_t idx(Layer layer) {
  return static_cast<std::size_t>(layer);
}

double total_self_seconds(const RunProfiler& profiler) {
  double total = 0.0;
  for (const LayerProfile& layer : profiler.layers()) {
    total += layer.self_seconds;
  }
  return total;
}

// Timing assertions below use only preemption-safe invariants — lower
// bounds (sleeping inside a timer can only grow its elapsed time) and
// "sum of self times <= externally measured elapsed" (self times
// partition the outermost timer's elapsed, which our measurement spans).
// Absolute upper bounds on individual layers would flake when ctest runs
// several suites on one contended core.
void rest(std::chrono::milliseconds duration) {
  std::this_thread::sleep_for(duration);
}

TEST(Profiler, NullProfilerTimersAreNoOps) {
  // Emit sites construct timers unconditionally; a null profiler must cost
  // nothing and crash nowhere, including when nested.
  ScopedTimer outer(nullptr, Layer::kRouting);
  ScopedTimer inner(nullptr, Layer::kPhy);
  SUCCEED();
}

TEST(Profiler, ChildTimeIsSubtractedFromParent) {
  RunProfiler profiler;
  const auto begin = std::chrono::steady_clock::now();
  {
    ScopedTimer routing(&profiler, Layer::kRouting);
    rest(std::chrono::milliseconds(5));
    {
      ScopedTimer phy(&profiler, Layer::kPhy);
      rest(std::chrono::milliseconds(10));
    }
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
  const auto& layers = profiler.layers();
  EXPECT_GE(layers[idx(Layer::kPhy)].self_seconds, 0.009);
  EXPECT_GE(layers[idx(Layer::kRouting)].self_seconds, 0.004);
  // Double-counting the PHY child into routing would make the self times
  // sum past the real elapsed span.
  EXPECT_LE(total_self_seconds(profiler), elapsed * 1.001);
}

TEST(Profiler, ReentrantTimersOnSameLayerDoNotDoubleCount) {
  // A handler on layer L that re-enters another timed section of layer L
  // (e.g. routing forwarding recursing into route maintenance). The inner
  // elapsed time is subtracted from the outer attribution and re-added by
  // the inner timer, so the layer's self time equals total elapsed once —
  // not once per nesting level.
  RunProfiler profiler;
  const auto begin = std::chrono::steady_clock::now();
  {
    ScopedTimer outer(&profiler, Layer::kRouting);
    rest(std::chrono::milliseconds(4));
    {
      ScopedTimer inner(&profiler, Layer::kRouting);
      rest(std::chrono::milliseconds(4));
      {
        ScopedTimer innermost(&profiler, Layer::kRouting);
        rest(std::chrono::milliseconds(4));
      }
    }
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
  const double attributed = profiler.layers()[idx(Layer::kRouting)].self_seconds;
  // The full 12ms lands on the layer exactly once: double counting the
  // nesting levels would attribute ~2-3x the real elapsed span.
  EXPECT_GE(attributed, 0.011);
  EXPECT_LE(attributed, elapsed * 1.001);
  EXPECT_EQ(total_self_seconds(profiler), attributed);
}

TEST(Profiler, SiblingTimersRestoreTheNestingChain) {
  // Two sequential children under one parent: the second child must see
  // the parent (not the destroyed first child) as its parent.
  RunProfiler profiler;
  const auto begin = std::chrono::steady_clock::now();
  {
    ScopedTimer parent(&profiler, Layer::kMac);
    {
      ScopedTimer first(&profiler, Layer::kPhy);
      rest(std::chrono::milliseconds(3));
    }
    {
      ScopedTimer second(&profiler, Layer::kPhy);
      rest(std::chrono::milliseconds(3));
    }
    rest(std::chrono::milliseconds(2));
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
  const auto& layers = profiler.layers();
  EXPECT_GE(layers[idx(Layer::kPhy)].self_seconds, 0.005);
  EXPECT_GE(layers[idx(Layer::kMac)].self_seconds, 0.001);
  // A broken chain (second sibling parented to the destroyed first one)
  // would lose the child subtraction and double-count into MAC.
  EXPECT_LE(total_self_seconds(profiler), elapsed * 1.001);
}

TEST(Profiler, CountsEventsPerLayer) {
  RunProfiler profiler;
  Event event;
  event.kind = EventKind::kPhyTx;
  profiler.on_event(event);
  profiler.on_event(event);
  event.kind = EventKind::kMacBackoff;
  profiler.on_event(event);
  EXPECT_EQ(profiler.layers()[idx(Layer::kPhy)].events, 2u);
  EXPECT_EQ(profiler.layers()[idx(Layer::kMac)].events, 1u);
  EXPECT_EQ(profiler.layers()[idx(Layer::kRouting)].events, 0u);
}

}  // namespace
}  // namespace lw::obs
