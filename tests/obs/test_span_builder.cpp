// SpanBuilder tests: the golden span fixture, cross-thread byte identity,
// and the contract between span trace lines and the SpanReport statistics.
//
// Regenerating the fixture after an intentional span-schema change:
//   LW_UPDATE_GOLDEN=1 ./build/tests/test_span_builder
// then commit tests/obs/golden_spans.jsonl with the code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/span.h"
#include "scenario/runner.h"
#include "scenario/sweep.h"

namespace lw::scenario {
namespace {

// The golden-trace scenario with span folding on: colluding attackers,
// route discovery, watch buffers, and isolations all occur, so every span
// kind except join_handshake (no late joiners here) opens.
ExperimentConfig span_config() {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 25;
  config.seed = 99;
  config.duration = 150.0;
  config.malicious_count = 2;
  config.obs.trace = true;
  config.obs.counters = true;
  config.obs.spans = true;
  config.obs.trace_layers = obs::parse_layer_mask("nbr,route,mon,atk");
  return config;
}

std::string golden_path() {
  return std::string(LW_GOLDEN_DIR) + "/golden_spans.jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Only the span.begin/span.end lines of a JSONL trace (the fixture keeps
/// the span record itself, not the point events around it).
std::string span_lines(const std::string& trace) {
  std::istringstream in(trace);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"layer\":\"span\"") != std::string::npos) {
      out << line << "\n";
    }
  }
  return out.str();
}

TEST(SpanBuilder, GoldenSpanFixtureMatchesCheckedIn) {
  const RunResult result = run_experiment(span_config());
  ASSERT_FALSE(result.trace_jsonl.empty());
  const std::string spans = span_lines(result.trace_jsonl);
  ASSERT_FALSE(spans.empty());

  if (std::getenv("LW_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << spans;
    GTEST_SKIP() << "fixture regenerated at " << golden_path();
  }

  const std::string expected = read_file(golden_path());
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << golden_path()
      << " — regenerate with LW_UPDATE_GOLDEN=1";
  EXPECT_EQ(spans, expected)
      << "span schema changed; if intentional, regenerate with "
         "LW_UPDATE_GOLDEN=1";
}

TEST(SpanBuilder, DisablingSpansLeavesTraceBytesUntouched) {
  // The acceptance bar for retrofitting spans under the trace: a run
  // without --spans must produce exactly the trace it produced before the
  // span layer existed (no SpanBuilder is even constructed).
  auto with = span_config();
  auto without = span_config();
  without.obs.spans = false;
  const RunResult a = run_experiment(with);
  const RunResult b = run_experiment(without);
  ASSERT_FALSE(b.trace_jsonl.empty());
  EXPECT_EQ(span_lines(b.trace_jsonl), "");
  // Stripping the span lines from the enabled run recovers the disabled
  // run byte for byte: span folding only ever inserts lines.
  std::istringstream in(a.trace_jsonl);
  std::ostringstream stripped;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"layer\":\"span\"") == std::string::npos) {
      stripped << line << "\n";
    }
  }
  EXPECT_EQ(stripped.str(), b.trace_jsonl);
}

TEST(SpanBuilder, ReportTalliesMatchTraceLines) {
  const RunResult result = run_experiment(span_config());
  const obs::SpanReport& report = result.spans;
  ASSERT_TRUE(report.enabled);

  std::map<std::string, std::uint64_t> begins;
  std::map<std::string, std::uint64_t> terminal_ends;
  std::istringstream in(span_lines(result.trace_jsonl));
  std::string line;
  while (std::getline(in, line)) {
    const auto kind_at = line.find("\"span\":\"");
    ASSERT_NE(kind_at, std::string::npos) << line;
    const auto kind_start = kind_at + 8;
    const std::string kind =
        line.substr(kind_start, line.find('"', kind_start) - kind_start);
    if (line.find("\"event\":\"begin\"") != std::string::npos) {
      ++begins[kind];
    } else if (line.find("\"outcome\":\"open\"") == std::string::npos) {
      ++terminal_ends[kind];
    }
  }
  for (std::size_t i = 0; i < obs::kSpanKindCount; ++i) {
    const auto kind = static_cast<obs::SpanKind>(i);
    const auto& stats = report.kinds[i];
    EXPECT_EQ(stats.opened, begins[obs::to_string(kind)])
        << obs::to_string(kind);
    EXPECT_EQ(stats.closed, terminal_ends[obs::to_string(kind)])
        << obs::to_string(kind);
    EXPECT_EQ(stats.closed, stats.durations.size());
  }
  // The scenario exercises the core span kinds.
  EXPECT_GT(report.kinds[0].opened, 0u);  // route_session
  EXPECT_GT(report.kinds[1].opened, 0u);  // alert_round
  EXPECT_GT(report.kinds[2].opened, 0u);  // alibi_window
  EXPECT_GT(report.kinds[3].opened, 0u);  // tunnel_session
}

TEST(SpanBuilder, PhaseDecompositionTelescopes) {
  // The 150 s golden horizon ends before gamma corroboration completes;
  // the end-to-end horizon (600 s) isolates both colluders.
  auto config = span_config();
  config.duration = 600.0;
  config.obs.forensics = true;
  const RunResult result = run_experiment(config);
  const obs::SpanReport& report = result.spans;
  ASSERT_TRUE(report.enabled);
  ASSERT_EQ(report.observe.count, report.corroborate.count);
  ASSERT_EQ(report.observe.count, report.isolate.count);
  ASSERT_GT(report.detection_latencies.size(), 0u);
  // Both colluders are isolated in this scenario with a complete timeline,
  // so every latency round decomposes and the sums telescope exactly.
  ASSERT_EQ(report.observe.count, report.detection_latencies.size());
  double latency_sum = 0.0;
  for (const double v : report.detection_latencies) latency_sum += v;
  EXPECT_NEAR(report.observe.sum + report.corroborate.sum +
                  report.isolate.sum,
              latency_sum, 1e-9);
  // Spans feed the same population as the forensic incident latencies.
  EXPECT_EQ(report.detection_latencies.size(),
            result.forensics.latency_samples);
  EXPECT_NEAR(latency_sum, result.forensics.mean_detection_latency *
                               static_cast<double>(
                                   result.forensics.latency_samples),
              1e-9);
}

TEST(SpanBuilder, ByteIdenticalAcrossSweepThreadCounts) {
  const auto run_with_threads = [](int threads) {
    SweepSpec spec;
    spec.base = span_config();
    spec.points.push_back({.label = "spans", .mutate = nullptr});
    spec.runs = 3;
    spec.base_seed = 7;
    spec.threads = threads;
    return run_sweep(spec);
  };
  const SweepResult serial = run_with_threads(1);
  const SweepResult parallel = run_with_threads(4);
  ASSERT_EQ(serial.points.size(), 1u);
  ASSERT_EQ(parallel.points.size(), 1u);
  ASSERT_EQ(serial.points[0].replicas.size(), 3u);
  ASSERT_EQ(parallel.points[0].replicas.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = serial.points[0].replicas[i];
    const auto& b = parallel.points[0].replicas[i];
    ASSERT_FALSE(a.trace_jsonl.empty());
    EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << "replica " << i;
    EXPECT_EQ(obs::spans_to_json(a.spans), obs::spans_to_json(b.spans))
        << "replica " << i;
  }
  // The sweep JSON now embeds the spans object; it must stay identical too.
  EXPECT_EQ(to_json(serial), to_json(parallel));
}

}  // namespace
}  // namespace lw::scenario
