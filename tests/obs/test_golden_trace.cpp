// Golden-file trace test: the JSONL trace of a fixed-seed scenario must be
// byte-identical to the checked-in fixture, and byte-identical whichever
// --threads value produced it.
//
// Regenerating the fixture after an intentional trace change:
//   LW_UPDATE_GOLDEN=1 ./build/tests/test_golden_trace
// then commit tests/obs/golden_trace.jsonl with the code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.h"
#include "scenario/sweep.h"

namespace lw::scenario {
namespace {

// Small but complete scenario: both colluding attackers and the LITEWORP
// monitor are active, so every protocol layer emits events.
ExperimentConfig golden_config() {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 25;
  config.seed = 99;
  config.duration = 150.0;
  config.malicious_count = 2;
  config.obs.trace = true;
  config.obs.counters = true;
  return config;
}

std::string golden_path() {
  return std::string(LW_GOLDEN_DIR) + "/golden_trace.jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenTrace, MatchesCheckedInFixture) {
  // The fixture pins the neighbor/routing/monitor/attack record; PHY and
  // MAC chatter is covered by the cross-thread test below and kept out of
  // the fixture to keep it reviewably small.
  auto config = golden_config();
  config.obs.trace_layers =
      obs::parse_layer_mask("nbr,route,mon,atk");
  const RunResult result = run_experiment(config);
  ASSERT_FALSE(result.trace_jsonl.empty());

  if (std::getenv("LW_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << result.trace_jsonl;
    GTEST_SKIP() << "fixture regenerated at " << golden_path();
  }

  const std::string expected = read_file(golden_path());
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << golden_path()
      << " — regenerate with LW_UPDATE_GOLDEN=1";
  EXPECT_EQ(result.trace_jsonl, expected)
      << "trace changed; if intentional, regenerate with LW_UPDATE_GOLDEN=1";
}

TEST(GoldenTrace, PhyMacFixtureMatchesCheckedIn) {
  // Companion fixture for the per-frame hot path: every phy.tx/rx/
  // collision/loss event of the scenario, byte-for-byte. This is the
  // invariance proof for delivery-path rewrites (the spatial delivery
  // index and the fused RX delivery events must change speed, not
  // behavior); the fixture was generated before those optimizations
  // landed. Shorter horizon than the protocol fixture because PHY
  // chatter dominates trace volume; 60 s still covers discovery, routing,
  // and 10 s of the wormhole attack (attack_start = 50 s).
  auto config = golden_config();
  config.duration = 60.0;
  config.obs.trace_layers = obs::parse_layer_mask("phy");
  const RunResult result = run_experiment(config);
  ASSERT_FALSE(result.trace_jsonl.empty());

  const std::string path =
      std::string(LW_GOLDEN_DIR) + "/golden_trace_phy.jsonl";
  if (std::getenv("LW_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << result.trace_jsonl;
    GTEST_SKIP() << "fixture regenerated at " << path;
  }

  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << path
      << " — regenerate with LW_UPDATE_GOLDEN=1";
  EXPECT_EQ(result.trace_jsonl, expected)
      << "PHY/MAC trace changed; if intentional, regenerate with "
         "LW_UPDATE_GOLDEN=1";
}

TEST(GoldenTrace, RepeatedRunsAreByteIdentical) {
  const RunResult a = run_experiment(golden_config());
  const RunResult b = run_experiment(golden_config());
  ASSERT_FALSE(a.trace_jsonl.empty());
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
}

TEST(GoldenTrace, ByteIdenticalAcrossSweepThreadCounts) {
  // All layers on, several replicas: the sweep engine must hand back the
  // same per-replica trace bytes at --threads 1 and --threads 4.
  const auto run_with_threads = [](int threads) {
    SweepSpec spec;
    spec.base = golden_config();
    spec.points.push_back({.label = "golden", .mutate = nullptr});
    spec.runs = 3;
    spec.base_seed = 7;
    spec.threads = threads;
    return run_sweep(spec);
  };
  const SweepResult serial = run_with_threads(1);
  const SweepResult parallel = run_with_threads(4);
  ASSERT_EQ(serial.points.size(), 1u);
  ASSERT_EQ(parallel.points.size(), 1u);
  ASSERT_EQ(serial.points[0].replicas.size(), 3u);
  ASSERT_EQ(parallel.points[0].replicas.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = serial.points[0].replicas[i];
    const auto& b = parallel.points[0].replicas[i];
    ASSERT_FALSE(a.trace_jsonl.empty());
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << "replica " << i;
  }
  // The default sweep JSON (counters included, timing excluded) must be
  // byte-identical too.
  EXPECT_EQ(to_json(serial), to_json(parallel));
}

}  // namespace
}  // namespace lw::scenario
