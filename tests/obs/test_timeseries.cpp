// Telemetry series: bucket semantics on a bare simulator, end-to-end
// determinism (repeat runs, sweep thread counts, series-on vs series-off
// neutrality), the golden series fixture, and the Histogram::snapshot
// non-perturbation contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "scenario/runner.h"
#include "scenario/sweep.h"
#include "sim/simulator.h"

namespace lw::obs {
namespace {

Event make_event(Time t, EventKind kind) {
  Event event;
  event.t = t;
  event.kind = kind;
  event.node = 1;
  return event;
}

/// Harness: a bare simulator whose tick hook closes sampler buckets, with
/// events that feed the sampler directly (no protocol stack).
struct SeriesHarness {
  sim::Simulator simulator;
  TelemetrySampler sampler{1.0};

  explicit SeriesHarness(Duration bucket = 1.0) : sampler(bucket) {
    simulator.set_tick_hook(bucket, [this](Time boundary) {
      sampler.close_bucket(boundary, sample());
    });
  }

  BucketSample sample() {
    BucketSample s;
    s.events_executed = simulator.executed();
    s.queue_depth = simulator.pending();
    s.queue_high_water = simulator.take_window_max_pending();
    return s;
  }

  void emit_at(Time t, EventKind kind) {
    simulator.schedule_at(t, [this, t, kind] {
      sampler.on_event(make_event(t, kind));
    });
  }

  SeriesReport report() { return sampler.report(sample()); }
};

TEST(TimeSeries, EventsFallIntoLeftClosedRightOpenBuckets) {
  SeriesHarness h;
  h.emit_at(0.5, EventKind::kPhyTx);
  h.emit_at(0.9, EventKind::kMacBackoff);
  h.emit_at(1.5, EventKind::kPhyTx);
  h.simulator.run_all();

  const SeriesReport report = h.report();
  ASSERT_EQ(report.buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(report.buckets[0].start, 0.0);
  EXPECT_EQ(report.buckets[0].events_emitted, 2u);
  EXPECT_EQ(report.buckets[0]
                .layer_events[static_cast<std::size_t>(Layer::kPhy)],
            1u);
  EXPECT_EQ(report.buckets[0]
                .layer_events[static_cast<std::size_t>(Layer::kMac)],
            1u);
  // The trailing partial bucket [1, 1.5...] carries the last event.
  EXPECT_DOUBLE_EQ(report.buckets[1].start, 1.0);
  EXPECT_EQ(report.buckets[1].events_emitted, 1u);
}

TEST(TimeSeries, EventExactlyOnBoundaryLandsInNextBucket) {
  SeriesHarness h;
  h.emit_at(0.5, EventKind::kPhyTx);
  h.emit_at(1.0, EventKind::kPhyTx);  // boundary: belongs to bucket [1, 2)
  h.simulator.run_all();

  const SeriesReport report = h.report();
  ASSERT_EQ(report.buckets.size(), 2u);
  EXPECT_EQ(report.buckets[0].events_emitted, 1u);
  EXPECT_EQ(report.buckets[1].events_emitted, 1u);
}

TEST(TimeSeries, QuietGapClosesEveryInterveningBucket) {
  SeriesHarness h;
  h.emit_at(0.5, EventKind::kPhyTx);
  h.emit_at(3.5, EventKind::kPhyTx);
  h.simulator.run_all();

  const SeriesReport report = h.report();
  // Boundaries 1, 2, 3 all fire before the t=3.5 event pops, then the
  // trailing partial bucket [3, ...) carries it.
  ASSERT_EQ(report.buckets.size(), 4u);
  EXPECT_EQ(report.buckets[0].events_emitted, 1u);
  EXPECT_EQ(report.buckets[1].events_emitted, 0u);
  EXPECT_EQ(report.buckets[2].events_emitted, 0u);
  EXPECT_DOUBLE_EQ(report.buckets[3].start, 3.0);
  EXPECT_EQ(report.buckets[3].events_emitted, 1u);
  // Executed-event deltas track the simulator: 1 event in bucket 0, none
  // in the gap, 1 in the tail.
  EXPECT_EQ(report.buckets[0].events_executed, 1u);
  EXPECT_EQ(report.buckets[1].events_executed, 0u);
  EXPECT_EQ(report.buckets[3].events_executed, 1u);
}

TEST(TimeSeries, NoTrailingBucketWhenTailIsQuiet) {
  SeriesHarness h;
  h.emit_at(0.5, EventKind::kPhyTx);
  h.simulator.run_all();
  // run_all stops right after the last event; boundary 1.0 has not fired,
  // so the report's final (and only) bucket is the trailing partial one.
  const SeriesReport once = h.report();
  ASSERT_EQ(once.buckets.size(), 1u);
  // A second report() call without new activity adds nothing: the sampler
  // treats the unchanged tail as quiet.
  EXPECT_EQ(h.report().buckets.size(), 1u);
}

TEST(TimeSeries, JsonOmitsTimingUnlessRequested) {
  SeriesHarness h;
  h.emit_at(0.5, EventKind::kPhyTx);
  h.simulator.run_all();
  const SeriesReport report = h.report();
  const std::string plain = series_to_json(report, false);
  const std::string timed = series_to_json(report, true);
  EXPECT_EQ(plain.find("self_seconds"), std::string::npos);
  EXPECT_NE(timed.find("self_seconds"), std::string::npos);
  EXPECT_NE(plain.find("\"queue_high_water\""), std::string::npos);
  EXPECT_NE(plain.find("\"memory_high_water\""), std::string::npos);
}

// ---- Histogram snapshot (satellite: sampling never perturbs) ----

TEST(HistogramSnapshot, ExactAggregatesWithoutTouchingReservoir) {
  Histogram histogram(42, 8);
  for (int i = 1; i <= 100; ++i) histogram.add(static_cast<double>(i));
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);
  EXPECT_DOUBLE_EQ(snapshot.sum, 5050.0);
}

TEST(HistogramSnapshot, FrequentSnapshotsNeverChangeFinalPercentiles) {
  // Two identical seeded histograms; one is snapshotted between every add
  // (the telemetry sampler's access pattern), far past the reservoir
  // capacity so replacement decisions are live. Percentiles must match
  // bit for bit.
  Histogram quiet(7, 16);
  Histogram sampled(7, 16);
  double checksum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double value = static_cast<double>((i * 37) % 501);
    quiet.add(value);
    sampled.add(value);
    checksum += sampled.snapshot().sum;
  }
  EXPECT_GT(checksum, 0.0);
  const HistogramSummary a = quiet.summary();
  const HistogramSummary b = sampled.summary();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.mean, b.mean);
}

}  // namespace
}  // namespace lw::obs

namespace lw::scenario {
namespace {

ExperimentConfig series_config() {
  auto config = ExperimentConfig::table2_defaults();
  config.node_count = 25;
  config.seed = 99;
  config.duration = 150.0;
  config.malicious_count = 2;
  config.obs.series = true;
  config.obs.series_bucket = 10.0;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SeriesEndToEnd, SeriesImpliesCounters) {
  auto config = series_config();
  config.obs.counters = false;
  config.finalize();
  EXPECT_TRUE(config.obs.counters);
}

TEST(SeriesEndToEnd, RepeatedRunsProduceByteIdenticalSeries) {
  const RunResult a = run_experiment(series_config());
  const RunResult b = run_experiment(series_config());
  ASSERT_TRUE(a.series.enabled);
  ASSERT_FALSE(a.series.buckets.empty());
  EXPECT_EQ(obs::series_to_json(a.series, false),
            obs::series_to_json(b.series, false));
}

TEST(SeriesEndToEnd, SamplingNeverPerturbsTheRun) {
  // The telemetry hook only observes: with --series on, every deterministic
  // output of the run — trace bytes, counters, histogram percentiles,
  // events executed — must match the series-off run exactly.
  auto with_series = series_config();
  with_series.obs.trace = true;
  with_series.obs.profile = true;
  auto without_series = with_series;
  without_series.obs.series = false;
  without_series.obs.counters = true;  // finalize() would set it via series

  const RunResult on = run_experiment(with_series);
  const RunResult off = run_experiment(without_series);
  EXPECT_EQ(on.trace_jsonl, off.trace_jsonl);
  EXPECT_EQ(on.profile.events_executed, off.profile.events_executed);
  EXPECT_EQ(on.profile.max_queue_depth, off.profile.max_queue_depth);
  EXPECT_EQ(on.registry.counters, off.registry.counters);
  ASSERT_EQ(on.registry.histograms.size(), off.registry.histograms.size());
  for (const auto& [name, summary] : on.registry.histograms) {
    const auto it = off.registry.histograms.find(name);
    ASSERT_NE(it, off.registry.histograms.end()) << name;
    EXPECT_EQ(summary.count, it->second.count) << name;
    EXPECT_EQ(summary.p50, it->second.p50) << name;
    EXPECT_EQ(summary.p95, it->second.p95) << name;
  }
}

TEST(SeriesEndToEnd, ByteIdenticalAcrossSweepThreadCounts) {
  const auto run_with_threads = [](int threads) {
    SweepSpec spec;
    spec.base = series_config();
    spec.points.push_back({.label = "series", .mutate = nullptr});
    spec.runs = 3;
    spec.base_seed = 7;
    spec.threads = threads;
    return run_sweep(spec);
  };
  const SweepResult serial = run_with_threads(1);
  const SweepResult parallel = run_with_threads(4);
  ASSERT_EQ(serial.points[0].replicas.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(obs::series_to_json(serial.points[0].replicas[i].series, false),
              obs::series_to_json(parallel.points[0].replicas[i].series,
                                  false))
        << "replica " << i;
  }
  // The whole default sweep JSON (series objects embedded) must match too.
  EXPECT_EQ(to_json(serial), to_json(parallel));
}

TEST(SeriesEndToEnd, GoldenSeriesFixtureMatchesCheckedIn) {
  // Byte-exact fixture for the series JSON of a fixed-seed run. CI runs
  // this test in both the Release and the ASan build, which together with
  // the cross-thread test above enforces the full determinism contract:
  // same bytes per seed at any thread count and across build types.
  // Regenerate after intentional schema changes:
  //   LW_UPDATE_GOLDEN=1 ./build/tests/test_timeseries
  const RunResult result = run_experiment(series_config());
  ASSERT_TRUE(result.series.enabled);
  const std::string json = obs::series_to_json(result.series, false);
  const std::string path =
      std::string(LW_GOLDEN_DIR) + "/golden_series.json";

  if (std::getenv("LW_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << json << "\n";
    GTEST_SKIP() << "fixture regenerated at " << path;
  }

  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << path
      << " — regenerate with LW_UPDATE_GOLDEN=1";
  EXPECT_EQ(json + "\n", expected)
      << "series schema changed; if intentional, regenerate with "
         "LW_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace lw::scenario
