// Observability layer: event vocabulary, recorder dispatch, trace format,
// metrics registry, and profiler accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/event.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace_writer.h"
#include "packet/packet.h"

namespace lw::obs {
namespace {

// ---- Event vocabulary ----

TEST(EventVocabulary, LayerNamesAreShortAndStable) {
  EXPECT_STREQ(to_string(Layer::kPhy), "phy");
  EXPECT_STREQ(to_string(Layer::kMac), "mac");
  EXPECT_STREQ(to_string(Layer::kNeighbor), "nbr");
  EXPECT_STREQ(to_string(Layer::kRouting), "route");
  EXPECT_STREQ(to_string(Layer::kMonitor), "mon");
  EXPECT_STREQ(to_string(Layer::kAttack), "atk");
  EXPECT_STREQ(to_string(Layer::kFault), "flt");
}

TEST(EventVocabulary, EveryKindMapsToItsLayer) {
  EXPECT_EQ(layer_of(EventKind::kPhyTx), Layer::kPhy);
  EXPECT_EQ(layer_of(EventKind::kPhyLoss), Layer::kPhy);
  EXPECT_EQ(layer_of(EventKind::kMacOverhear), Layer::kMac);
  EXPECT_EQ(layer_of(EventKind::kNbrReject), Layer::kNeighbor);
  EXPECT_EQ(layer_of(EventKind::kRouteError), Layer::kRouting);
  EXPECT_EQ(layer_of(EventKind::kMonIsolation), Layer::kMonitor);
  EXPECT_EQ(layer_of(EventKind::kAtkDrop), Layer::kAttack);
  EXPECT_EQ(layer_of(EventKind::kFltCrash), Layer::kFault);
  EXPECT_EQ(layer_of(EventKind::kFltCorrupt), Layer::kFault);
}

TEST(EventVocabulary, EveryKindHasANonEmptyName) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    ASSERT_NE(to_string(kind), nullptr);
    EXPECT_GT(std::string(to_string(kind)).size(), 0u);
  }
}

TEST(ParseLayerMask, AllAndEmptySelectEverything) {
  EXPECT_EQ(parse_layer_mask("all"), kAllLayers);
  EXPECT_EQ(parse_layer_mask(""), kAllLayers);
}

TEST(ParseLayerMask, SingleAndCommaSeparatedLayers) {
  EXPECT_EQ(parse_layer_mask("phy"), layer_bit(Layer::kPhy));
  EXPECT_EQ(parse_layer_mask("mon,atk"),
            layer_bit(Layer::kMonitor) | layer_bit(Layer::kAttack));
  EXPECT_EQ(parse_layer_mask("phy,mac,nbr,route,mon,atk,flt"), kAllLayers);
}

TEST(ParseLayerMask, UnknownLayerThrows) {
  EXPECT_THROW(parse_layer_mask("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_layer_mask("phy,bogus"), std::invalid_argument);
}

// ---- Recorder dispatch ----

class CountingSink : public EventSink {
 public:
  void on_event(const Event& event) override { events.push_back(event.kind); }
  std::vector<EventKind> events;
};

TEST(Recorder, WantsNothingWithoutSinks) {
  Recorder rec;
  for (std::size_t i = 0; i < kLayerCount; ++i) {
    EXPECT_FALSE(rec.wants(static_cast<Layer>(i)));
  }
}

TEST(Recorder, WantsReflectsUnionOfSinkMasks) {
  Recorder rec;
  CountingSink a;
  CountingSink b;
  rec.add_sink(&a, layer_bit(Layer::kPhy));
  rec.add_sink(&b, layer_bit(Layer::kMonitor) | layer_bit(Layer::kAttack));
  EXPECT_TRUE(rec.wants(Layer::kPhy));
  EXPECT_TRUE(rec.wants(Layer::kMonitor));
  EXPECT_TRUE(rec.wants(Layer::kAttack));
  EXPECT_FALSE(rec.wants(Layer::kMac));
  EXPECT_FALSE(rec.wants(Layer::kRouting));
}

TEST(Recorder, EmitDispatchesOnlyToMatchingSinks) {
  Recorder rec;
  CountingSink phy_only;
  CountingSink everything;
  rec.add_sink(&phy_only, layer_bit(Layer::kPhy));
  rec.add_sink(&everything);
  rec.emit({.t = 1.0, .kind = EventKind::kPhyTx, .node = 3});
  rec.emit({.t = 2.0, .kind = EventKind::kMonAlert, .node = 4, .peer = 5});
  ASSERT_EQ(phy_only.events.size(), 1u);
  EXPECT_EQ(phy_only.events[0], EventKind::kPhyTx);
  ASSERT_EQ(everything.events.size(), 2u);
  EXPECT_EQ(everything.events[1], EventKind::kMonAlert);
}

// ---- TraceWriter format ----

TEST(TraceWriter, MinimalEventOmitsOptionalFields) {
  std::ostringstream out;
  TraceWriter writer(out);
  writer.on_event({.t = 1.5, .kind = EventKind::kNbrHello, .node = 7});
  EXPECT_EQ(out.str(),
            "{\"t\":1.500000000,\"layer\":\"nbr\",\"event\":\"hello\","
            "\"node\":7}\n");
}

TEST(TraceWriter, PeerAndValueFieldsAppearWhenSet) {
  std::ostringstream out;
  TraceWriter writer(out);
  writer.on_event({.t = 2.25,
                   .kind = EventKind::kMonSuspicion,
                   .node = 1,
                   .peer = 9,
                   .value = 3.0});
  EXPECT_EQ(out.str(),
            "{\"t\":2.250000000,\"layer\":\"mon\",\"event\":\"suspicion\","
            "\"node\":1,\"peer\":9,\"sus\":\"fab\",\"value\":3}\n");
}

TEST(TraceWriter, PacketFieldsComeFromThePacket) {
  std::ostringstream out;
  TraceWriter writer(out);
  pkt::Packet packet;
  packet.type = pkt::PacketType::kData;
  packet.origin = 11;
  packet.seq = 42;
  writer.on_event({.t = 0.0,
                   .kind = EventKind::kAtkDrop,
                   .node = 5,
                   .packet = &packet});
  const std::string line = out.str();
  EXPECT_NE(line.find("\"layer\":\"atk\""), std::string::npos);
  EXPECT_NE(line.find("\"origin\":11"), std::string::npos);
  EXPECT_NE(line.find("\"seq\":42"), std::string::npos);
  EXPECT_EQ(line.find("\"value\""), std::string::npos) << "zero value omitted";
  EXPECT_EQ(line.back(), '\n');
}

TEST(TraceWriter, LinesAreByteIdenticalAcrossRepeats) {
  const Event event{.t = 123.456789, .kind = EventKind::kRouteDeliver,
                    .node = 2, .peer = 3, .value = 0.0123456789};
  std::ostringstream a;
  std::ostringstream b;
  TraceWriter(a).on_event(event);
  TraceWriter(b).on_event(event);
  EXPECT_EQ(a.str(), b.str());
}

// ---- Metrics registry ----

TEST(Histogram, EmptySummaryIsAllZero) {
  Histogram hist;
  const HistogramSummary s = hist.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
}

TEST(Histogram, SingleSampleIsEveryStatistic) {
  Histogram hist;
  hist.add(3.5);
  const HistogramSummary s = hist.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p95, 3.5);
}

TEST(Histogram, PercentilesInterpolate) {
  Histogram hist;
  for (double v : {4.0, 1.0, 3.0, 2.0}) hist.add(v);
  const HistogramSummary s = hist.summary();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.p50, 2.5, 1e-12);
  EXPECT_NEAR(s.p95, 3.85, 1e-12);
}

/// Deterministic sample stream for the reservoir tests (LCG, not tied to
/// the histogram's own RNG).
std::vector<double> synthetic_samples(std::size_t n) {
  std::vector<double> samples;
  samples.reserve(n);
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    samples.push_back(static_cast<double>(x >> 11) /
                      static_cast<double>(1ull << 53));
  }
  return samples;
}

TEST(Histogram, PercentilesBitIdenticalToExactUpToCapacity) {
  // While count <= capacity the reservoir holds every sample, so the
  // percentiles must equal (to the last bit) the exact sort-and-interpolate
  // computation over all inputs — the pre-reservoir behavior.
  constexpr std::size_t kCapacity = 64;
  Histogram hist(/*seed=*/123, kCapacity);
  std::vector<double> samples = synthetic_samples(kCapacity);
  for (double v : samples) hist.add(v);

  std::sort(samples.begin(), samples.end());
  const auto exact = [&samples](double p) {
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto index = static_cast<std::size_t>(rank);
    if (index + 1 >= samples.size()) return samples.back();
    const double frac = rank - static_cast<double>(index);
    return samples[index] * (1.0 - frac) + samples[index + 1] * frac;
  };

  const HistogramSummary s = hist.summary();
  EXPECT_EQ(s.count, kCapacity);
  EXPECT_EQ(s.min, samples.front());
  EXPECT_EQ(s.max, samples.back());
  EXPECT_EQ(s.p50, exact(50.0));  // bit-identical, not just near
  EXPECT_EQ(s.p95, exact(95.0));
}

TEST(Histogram, OverCapacityKeepsExactScalarsAndBoundedMemory) {
  constexpr std::size_t kCapacity = 32;
  constexpr std::size_t kSamples = 10000;
  Histogram hist(/*seed=*/7, kCapacity);
  double sum = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double v = static_cast<double>(i) * 0.5;
    hist.add(v);
    sum += v;
  }
  const HistogramSummary s = hist.summary();
  // count/min/max/mean track every sample exactly, reservoir or not.
  EXPECT_EQ(s.count, kSamples);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kSamples - 1) * 0.5);
  EXPECT_DOUBLE_EQ(s.mean, sum / static_cast<double>(kSamples));
  // Percentiles come from the subsample: inside the data range and ordered.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.max);
}

TEST(Histogram, SameSeedSameSummaryAcrossInstances) {
  const std::vector<double> samples = synthetic_samples(500);
  Histogram a(/*seed=*/42, 16);
  Histogram b(/*seed=*/42, 16);
  for (double v : samples) {
    a.add(v);
    b.add(v);
  }
  const HistogramSummary sa = a.summary();
  const HistogramSummary sb = b.summary();
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p95, sb.p95);
  EXPECT_EQ(sa.mean, sb.mean);
}

TEST(RegistrySink, CountersUseLayerDotEventNames) {
  RegistrySink sink;
  sink.on_event({.kind = EventKind::kPhyTx});
  sink.on_event({.kind = EventKind::kPhyTx});
  sink.on_event({.kind = EventKind::kMonIsolation});
  const RegistrySnapshot snap = sink.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u) << "zero-count kinds omitted";
  EXPECT_EQ(snap.counters.at("phy.tx"), 2u);
  EXPECT_EQ(snap.counters.at("mon.isolation"), 1u);
}

TEST(RegistrySink, ValueCarryingEventsFeedHistograms) {
  RegistrySink sink;
  sink.on_event({.kind = EventKind::kRouteDeliver, .value = 0.5});
  sink.on_event({.kind = EventKind::kRouteDeliver, .value = 1.5});
  sink.on_event({.kind = EventKind::kMacBackoff, .value = 0.01});
  const RegistrySnapshot snap = sink.snapshot();
  ASSERT_EQ(snap.histograms.count("route.deliver_latency"), 1u);
  ASSERT_EQ(snap.histograms.count("mac.backoff_delay"), 1u);
  EXPECT_EQ(snap.histograms.at("route.deliver_latency").count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("route.deliver_latency").mean, 1.0);
}

TEST(RegistrySnapshot, AddCountersSumsByName) {
  RegistrySnapshot a;
  a.counters["phy.tx"] = 3;
  a.counters["mac.backoff"] = 1;
  RegistrySnapshot b;
  b.counters["phy.tx"] = 4;
  b.counters["mon.alert"] = 2;
  a.add_counters(b);
  EXPECT_EQ(a.counters.at("phy.tx"), 7u);
  EXPECT_EQ(a.counters.at("mac.backoff"), 1u);
  EXPECT_EQ(a.counters.at("mon.alert"), 2u);
}

TEST(RegistrySnapshot, EmptyReflectsBothMaps) {
  RegistrySnapshot snap;
  EXPECT_TRUE(snap.empty());
  snap.counters["phy.tx"] = 1;
  EXPECT_FALSE(snap.empty());
}

TEST(MetricsRegistry, NamedCountersAndHistograms) {
  MetricsRegistry registry;
  registry.add("custom.thing");
  registry.add("custom.thing", 4);
  registry.histogram("custom.size").add(10.0);
  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("custom.thing"), 5u);
  EXPECT_EQ(snap.histograms.at("custom.size").count, 1u);
}

// ---- Profiler ----

TEST(RunProfiler, CountsEventsPerLayer) {
  RunProfiler profiler;
  profiler.on_event({.kind = EventKind::kPhyTx});
  profiler.on_event({.kind = EventKind::kPhyRx});
  profiler.on_event({.kind = EventKind::kMonDetection});
  const auto& layers = profiler.layers();
  EXPECT_EQ(layers[static_cast<std::size_t>(Layer::kPhy)].events, 2u);
  EXPECT_EQ(layers[static_cast<std::size_t>(Layer::kMonitor)].events, 1u);
  EXPECT_EQ(layers[static_cast<std::size_t>(Layer::kMac)].events, 0u);
}

TEST(ScopedTimer, NullProfilerIsANoOp) {
  ScopedTimer timer(nullptr, Layer::kPhy);  // must not crash
}

TEST(ScopedTimer, NestedTimersAttributeExclusiveTime) {
  RunProfiler profiler;
  {
    ScopedTimer outer(&profiler, Layer::kRouting);
    { ScopedTimer inner(&profiler, Layer::kPhy); }
  }
  const auto& layers = profiler.layers();
  EXPECT_GE(layers[static_cast<std::size_t>(Layer::kPhy)].self_seconds, 0.0);
  EXPECT_GE(layers[static_cast<std::size_t>(Layer::kRouting)].self_seconds,
            0.0);
}

TEST(ProfileTotals, AccumulateSumsAndTakesQueueMax) {
  ProfileReport a;
  a.enabled = true;
  a.wall_seconds = 1.0;
  a.events_executed = 100;
  a.max_queue_depth = 10;
  a.virtual_seconds = 50.0;
  a.layers[0].events = 40;
  ProfileReport b = a;
  b.max_queue_depth = 25;
  ProfileTotals totals;
  totals.accumulate(a);
  totals.accumulate(b);
  EXPECT_TRUE(totals.enabled);
  EXPECT_EQ(totals.runs, 2);
  EXPECT_DOUBLE_EQ(totals.wall_seconds, 2.0);
  EXPECT_EQ(totals.events_executed, 200u);
  EXPECT_EQ(totals.max_queue_depth, 25u);
  EXPECT_DOUBLE_EQ(totals.virtual_seconds, 100.0);
  EXPECT_EQ(totals.layers[0].events, 80u);
}

TEST(ProfileTotals, AccumulateSkipsDisabledReports) {
  ProfileReport disabled;  // enabled defaults to false
  disabled.events_executed = 999;
  ProfileTotals totals;
  totals.accumulate(disabled);
  EXPECT_FALSE(totals.enabled);
  EXPECT_EQ(totals.runs, 0);
  EXPECT_EQ(totals.events_executed, 0u);
}

TEST(ProfileReport, RatesGuardAgainstZeroDenominators) {
  ProfileReport report;
  EXPECT_DOUBLE_EQ(report.events_per_virtual_second(), 0.0);
  EXPECT_DOUBLE_EQ(report.events_per_wall_second(), 0.0);
  report.events_executed = 100;
  report.virtual_seconds = 10.0;
  report.wall_seconds = 0.5;
  EXPECT_DOUBLE_EQ(report.events_per_virtual_second(), 10.0);
  EXPECT_DOUBLE_EQ(report.events_per_wall_second(), 200.0);
}

}  // namespace
}  // namespace lw::obs
