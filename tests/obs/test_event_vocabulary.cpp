// Vocabulary-coverage integration test: every obs::EventKind must actually
// be emitted by some reachable scenario, so the trace schema documents the
// simulator rather than aspirational events. A kind nobody can trigger is
// dead vocabulary; a new kind added without an emit site fails here.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "obs/event.h"
#include "obs/recorder.h"
#include "scenario/network.h"

namespace lw::obs {
namespace {

class CountingSink final : public EventSink {
 public:
  void on_event(const Event& event) override {
    ++counts_[static_cast<std::size_t>(event.kind)];
  }
  std::uint64_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

 private:
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

void run_and_count(scenario::ExperimentConfig config, CountingSink* sink) {
  scenario::Network network(std::move(config));
  network.recorder().add_sink(sink);
  network.run();
}

TEST(EventVocabulary, EveryKindIsEmittedBySomeScenario) {
  CountingSink counts;

  // The golden scenario, run long enough to reach isolation (and the RERR
  // beacons an isolation triggers): covers PHY/MAC/nbr/route/mon/atk
  // steady-state vocabulary.
  auto base = scenario::ExperimentConfig::table2_defaults();
  base.node_count = 25;
  base.seed = 99;
  base.duration = 600.0;
  base.malicious_count = 2;
  run_and_count(base, &counts);

  // Degraded-stack scenario for the failure-path events: channel loss
  // (phy.loss), retries exhausted (mac.busy_drop), and the pending-DATA
  // queue overflowing while routes are still being discovered (route.drop).
  auto lossy = scenario::ExperimentConfig::table2_defaults();
  lossy.node_count = 25;
  lossy.seed = 7;
  lossy.duration = 120.0;
  lossy.malicious_count = 2;
  lossy.phy.extra_loss_prob = 0.08;
  lossy.mac.max_attempts = 1;
  lossy.routing.pending_queue_limit = 1;
  run_and_count(lossy, &counts);

  // Fault-plan scenario for the flt.* vocabulary: a crash-and-recover
  // cycle, a transient link outage, a framing campaign, and a corruption
  // window (dense enough that at least one frame is tagged).
  auto faulted = scenario::ExperimentConfig::table2_defaults();
  faulted.node_count = 25;
  faulted.seed = 13;
  faulted.duration = 120.0;
  faulted.malicious_count = 0;
  faulted.fault.crashes.push_back({.node = 3, .at = 20.0, .recover_at = 60.0});
  faulted.fault.links.push_back(
      {.a = 1, .b = 2, .from = 10.0, .until = 40.0, .extra_loss = 1.0});
  faulted.fault.framings.push_back(
      {.victim = 5, .guards = 1, .start = 30.0, .alerts_per_guard = 2});
  faulted.fault.corruptions.push_back(
      {.node = 4, .from = 5.0, .until = 115.0, .probability = 1.0});
  run_and_count(faulted, &counts);

  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const EventKind kind = static_cast<EventKind>(i);
    EXPECT_GT(counts.count(kind), 0u)
        << "EventKind " << to_string(layer_of(kind)) << "." << to_string(kind)
        << " never emitted by either scenario";
  }
}

}  // namespace
}  // namespace lw::obs
