// Incremental deployment (Sections 4.1 / 7): late nodes join a live
// network through the dynamic challenge-response discovery.
#include <gtest/gtest.h>

#include "scenario/network.h"

namespace lw::nbr {
namespace {

scenario::ExperimentConfig join_config(std::uint64_t seed,
                                       std::size_t joiners = 1) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = 30;
  config.seed = seed;
  config.duration = 300.0;
  config.malicious_count = 0;
  config.late_joiners = joiners;
  config.late_join_time = 60.0;
  config.finalize();
  return config;
}

TEST(DynamicJoin, JoinerLearnsItsNeighborhood) {
  auto config = join_config(51);
  scenario::Network net(config);
  const NodeId joiner = static_cast<NodeId>(config.node_count);

  net.run_until(config.late_join_time - 1.0);
  EXPECT_FALSE(net.node(joiner).deployed());
  EXPECT_EQ(net.node(joiner).table().neighbor_count(), 0u);

  net.run_until(config.late_join_time + 30.0);
  const auto& table = net.node(joiner).table();
  const auto& truth = net.graph().neighbors(joiner);
  ASSERT_FALSE(truth.empty()) << "degenerate topology";
  EXPECT_EQ(table.neighbor_count(), truth.size());
  for (NodeId nb : truth) {
    EXPECT_TRUE(table.knows_neighbor(nb)) << "missing neighbor " << nb;
    EXPECT_TRUE(table.has_list_of(nb)) << "missing R_" << nb;
  }
}

TEST(DynamicJoin, NeighborhoodLearnsTheJoiner) {
  auto config = join_config(51);
  scenario::Network net(config);
  const NodeId joiner = static_cast<NodeId>(config.node_count);
  net.run_until(config.late_join_time + 30.0);

  for (NodeId nb : net.graph().neighbors(joiner)) {
    EXPECT_TRUE(net.node(nb).table().knows_neighbor(joiner))
        << "neighbor " << nb << " never admitted the joiner";
    EXPECT_GE(net.node(nb).join_agent().joins_admitted(), 1u);
  }
  // Second-hop knowledge: neighbors' neighbors see the joiner in lists.
  for (NodeId nb : net.graph().neighbors(joiner)) {
    for (NodeId second : net.graph().neighbors(nb)) {
      if (second == joiner) continue;
      if (!net.graph().is_neighbor(second, nb)) continue;
      EXPECT_TRUE(net.node(second).table().in_list_of(nb, joiner))
          << "node " << second << " has a stale R_" << nb;
    }
  }
}

TEST(DynamicJoin, JoinerExchangesDataTraffic) {
  auto config = join_config(52);
  scenario::Network net(config);
  const NodeId joiner = static_cast<NodeId>(config.node_count);
  net.run_until(config.late_join_time + 25.0);
  const auto delivered_before = net.metrics().data_delivered;
  // Drive a flow from the joiner across the network.
  net.node(joiner).routing().send_data(0, 32);
  net.run_until(net.simulator().now() + 40.0);
  EXPECT_GT(net.metrics().data_delivered, delivered_before)
      << "the joiner's packet never arrived";
}

TEST(DynamicJoin, DataFlowsToTheJoinerToo) {
  auto config = join_config(52);
  scenario::Network net(config);
  const NodeId joiner = static_cast<NodeId>(config.node_count);
  net.run_until(config.late_join_time + 25.0);
  const auto delivered_before = net.metrics().data_delivered;
  net.node(5).routing().send_data(joiner, 32);
  net.run_until(net.simulator().now() + 40.0);
  EXPECT_GT(net.metrics().data_delivered, delivered_before);
}

TEST(DynamicJoin, MultipleJoinersAllIntegrate) {
  auto config = join_config(53, /*joiners=*/3);
  scenario::Network net(config);
  net.run_until(config.late_join_time + 3 * config.late_join_stagger + 40.0);
  for (std::size_t j = 0; j < 3; ++j) {
    const NodeId joiner = static_cast<NodeId>(config.node_count + j);
    EXPECT_EQ(net.node(joiner).table().neighbor_count(),
              net.graph().neighbors(joiner).size())
        << "joiner " << joiner;
  }
}

TEST(DynamicJoin, OutsiderWithoutKeysRejected) {
  auto config = join_config(54);
  scenario::Network net(config);
  net.run_until(30.0);

  // Forge a join response to an established node without the pairwise key.
  auto& victim = net.node(3);
  pkt::Packet forged_response;
  forged_response.type = pkt::PacketType::kJoinResponse;
  forged_response.origin = 99;  // fake identity
  forged_response.link_dst = 3;
  forged_response.claimed_tx = 99;
  forged_response.nonce = 12345;
  forged_response.tag = crypto::forge_tag(1);
  victim.join_agent().handle(forged_response);
  EXPECT_FALSE(victim.table().knows_neighbor(99));

  // Even with a pending challenge, a wrong tag must fail: trigger a
  // challenge with a hello first.
  pkt::Packet hello;
  hello.type = pkt::PacketType::kJoinHello;
  hello.origin = 99;
  hello.claimed_tx = 99;
  victim.join_agent().handle(hello);
  EXPECT_GE(victim.join_agent().challenges_issued(), 1u);
  pkt::Packet response = forged_response;  // wrong nonce AND wrong tag
  victim.join_agent().handle(response);
  EXPECT_FALSE(victim.table().knows_neighbor(99));
}

TEST(DynamicJoin, RevokedNodeCannotRejoin) {
  auto config = join_config(55);
  scenario::Network net(config);
  net.run_until(30.0);
  auto& node3 = net.node(3);
  const NodeId revoked = node3.table().neighbors().front();
  node3.table().revoke(revoked);

  pkt::Packet hello;
  hello.type = pkt::PacketType::kJoinHello;
  hello.origin = revoked;
  hello.claimed_tx = revoked;
  const auto before = node3.join_agent().challenges_issued();
  node3.join_agent().handle(hello);
  EXPECT_EQ(node3.join_agent().challenges_issued(), before)
      << "an isolated node must not be re-admitted via the join path";
}

TEST(DynamicJoin, WormholeAfterJoinStillDetected) {
  // The joiner integrates, then the (initial-deployment) colluders open a
  // wormhole: the grown network must still detect and isolate them.
  auto config = join_config(56);
  config.malicious_count = 2;
  config.attack.start_time = 120.0;  // after the join settles
  config.duration = 450.0;
  config.finalize();
  scenario::Network net(config);
  net.run();
  EXPECT_EQ(net.metrics().malicious_isolated_count(), 2u);
  EXPECT_EQ(net.metrics().false_isolations, 0u);
}

TEST(DynamicJoin, RelayCanForgeAdjacencyDuringJoinKnownLimitation) {
  // The documented limitation (paper's too): the join handshake proves key
  // possession, not proximity. A relay attacker replaying the exchange
  // between the joiner and a distant node forges adjacency. This test
  // DEMONSTRATES the weakness rather than defending against it; closing it
  // needs distance bounding ([15][16] in the paper).
  // Scan seeds for a topology where the attacker sits next to the joiner
  // and has a victim outside the joiner's range.
  for (std::uint64_t seed = 58; seed < 98; ++seed) {
    auto config = join_config(seed);
    config.malicious_count = 1;
    config.attack.mode = attack::WormholeMode::kRelay;
    config.attack.start_time = config.late_join_time - 5.0;
    config.finalize();
    scenario::Network net(config);
    const NodeId joiner = static_cast<NodeId>(config.node_count);
    const NodeId attacker = net.malicious_ids()[0];
    if (!net.graph().is_neighbor(attacker, joiner)) continue;
    NodeId far = kInvalidNode;
    for (NodeId candidate : net.graph().neighbors(attacker)) {
      if (candidate != joiner &&
          !net.graph().is_neighbor(candidate, joiner)) {
        far = candidate;
        break;
      }
    }
    if (far == kInvalidNode) continue;
    net.node(attacker).malicious_agent()->set_relay_victims(joiner, far);

    net.run_until(config.late_join_time + 30.0);
    EXPECT_TRUE(net.node(joiner).table().knows_neighbor(far) ||
                net.node(far).table().knows_neighbor(joiner))
        << "seed " << seed;
    return;
  }
  GTEST_SKIP() << "no suitable topology in the scanned seed range";
  EXPECT_TRUE(true)
      << "(if this fails the relay timing missed the handshake — the "
         "vulnerability window is real but narrow)";
}

TEST(DynamicJoin, OracleModeRejectsJoiners) {
  auto config = join_config(57);
  config.oracle_discovery = true;
  config.finalize();
  EXPECT_THROW(scenario::Network net(config), std::invalid_argument);
}

}  // namespace
}  // namespace lw::nbr
