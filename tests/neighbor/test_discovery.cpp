// Secure neighbor discovery: full message exchange against the geometric
// oracle, authentication rejections, oracle bootstrap.
#include <gtest/gtest.h>

#include "scenario/network.h"

namespace lw::nbr {
namespace {

scenario::ExperimentConfig quiet(std::size_t nodes, std::uint64_t seed) {
  auto config = scenario::ExperimentConfig::table2_defaults();
  config.node_count = nodes;
  config.seed = seed;
  config.malicious_count = 0;
  config.traffic.data_rate = 0.0;
  config.finalize();
  return config;
}

/// Runs the real discovery exchange and checks the resulting tables equal
/// ground truth, at several sizes and seeds.
class DiscoveryCompleteness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DiscoveryCompleteness, TablesMatchOracle) {
  auto [nodes, seed] = GetParam();
  auto config = quiet(nodes, seed);
  scenario::Network net(config);
  net.run_until(nbr::discovery_complete_time(config.discovery) + 1.0);

  for (NodeId id = 0; id < net.size(); ++id) {
    const auto& table = net.node(id).table();
    const auto& truth = net.graph().neighbors(id);
    EXPECT_EQ(table.neighbor_count(), truth.size())
        << "node " << id << " (seed " << seed << ")";
    for (NodeId nb : truth) {
      EXPECT_TRUE(table.knows_neighbor(nb))
          << "node " << id << " missing neighbor " << nb;
      EXPECT_TRUE(table.has_list_of(nb))
          << "node " << id << " missing R_" << nb;
      // Stored lists must equal the neighbor's true adjacency.
      if (const auto* list = table.list_of(nb)) {
        std::vector<NodeId> sorted(list->begin(), list->end());
        std::sort(sorted.begin(), sorted.end());
        std::vector<NodeId> expected = net.graph().neighbors(nb);
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(sorted, expected) << "R_" << nb << " at node " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, DiscoveryCompleteness,
    ::testing::Values(std::make_tuple(20, 1), std::make_tuple(20, 2),
                      std::make_tuple(50, 3), std::make_tuple(50, 4),
                      std::make_tuple(100, 5)));

TEST(Discovery, OracleBootstrapMatchesProtocol) {
  auto config = quiet(30, 9);
  config.oracle_discovery = true;
  config.finalize();
  scenario::Network net(config);
  net.run_until(1.0);
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto& table = net.node(id).table();
    EXPECT_EQ(table.neighbor_count(), net.graph().neighbors(id).size());
    for (NodeId nb : net.graph().neighbors(id)) {
      EXPECT_TRUE(table.has_list_of(nb));
    }
  }
}

TEST(Discovery, ForgedReplyRejected) {
  auto config = quiet(10, 11);
  scenario::Network net(config);
  net.run_until(discovery_complete_time(config.discovery) + 1.0);

  // Craft a reply claiming to be node 5 but tagged with garbage, injected
  // directly into node 0's agent (an outsider spoofing identity 5).
  pkt::Packet forged;
  forged.type = pkt::PacketType::kHelloReply;
  forged.origin = 5;
  forged.final_dst = 0;
  forged.link_dst = 0;
  forged.seq = 1;
  forged.tag = crypto::forge_tag(123);
  auto& agent = net.node(0).discovery();
  const auto rejected_before = agent.rejected_replies();
  agent.handle(forged);
  // Timeout has passed anyway; send within window via a fresh small net to
  // exercise the tag check specifically:
  EXPECT_GE(agent.rejected_replies(), rejected_before);
}

TEST(Discovery, ForgedReplyWithinWindowRejectedByTag) {
  auto config = quiet(10, 12);
  scenario::Network net(config);
  // Stop mid-discovery, inside node 0's reply window.
  net.run_until(0.05);
  auto& node0 = net.node(0);
  if (!node0.discovery().hello_sent()) {
    // HELLO jitter had not fired yet; advance until it has.
    net.run_until(3.1);
  }
  pkt::Packet forged;
  forged.type = pkt::PacketType::kHelloReply;
  forged.origin = 99;  // nonexistent outsider identity
  forged.final_dst = 0;
  forged.link_dst = 0;
  forged.seq = 1;
  forged.tag = crypto::forge_tag(7);
  node0.discovery().handle(forged);
  EXPECT_FALSE(node0.table().knows_neighbor(99));
  EXPECT_GE(node0.discovery().rejected_replies(), 1u);
}

TEST(Discovery, ForgedNeighborListRejected) {
  auto config = quiet(10, 13);
  scenario::Network net(config);
  net.run_until(discovery_complete_time(config.discovery) + 1.0);

  auto& node0 = net.node(0);
  ASSERT_GT(node0.table().neighbor_count(), 0u);
  const NodeId victim = node0.table().neighbors().front();

  // An attacker replays a neighbor-list broadcast claiming to be `victim`
  // with a poisoned list (inserting itself), but cannot produce the tag.
  pkt::Packet forged;
  forged.type = pkt::PacketType::kNeighborList;
  forged.origin = victim;
  forged.seq = 1;
  forged.neighbor_list = {99};
  forged.alert_auth.push_back({0, crypto::forge_tag(55)});
  node0.discovery().handle(forged);
  EXPECT_FALSE(node0.table().in_list_of(victim, 99))
      << "poisoned list must not replace the authentic one";
  EXPECT_GE(node0.discovery().rejected_lists(), 1u);
}

TEST(Discovery, CompletionTimeBound) {
  DiscoveryParams params;
  EXPECT_GT(discovery_complete_time(params),
            params.list_broadcast_at + params.list_jitter_max);
}

}  // namespace
}  // namespace lw::nbr
