// Receiver-side admission checks — every verdict branch.
#include <gtest/gtest.h>

#include "neighbor/admission.h"

namespace lw::nbr {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() {
    // Us: neighbors 1 and 2. R_1 = {5, us}; R_2 = {6}.
    table_.add_neighbor(1);
    table_.add_neighbor(2);
    table_.set_neighbor_list(1, {5, 0});
    table_.set_neighbor_list(2, {6});
  }

  pkt::Packet frame(NodeId claimed, NodeId prev, NodeId origin) {
    pkt::Packet p;
    p.type = pkt::PacketType::kData;
    p.claimed_tx = claimed;
    p.announced_prev_hop = prev;
    p.origin = origin;
    return p;
  }

  NeighborTable table_;
};

TEST_F(AdmissionTest, AcceptsValidForward) {
  EXPECT_EQ(check_frame(table_, frame(1, 5, 9)), Admission::kAccept);
}

TEST_F(AdmissionTest, AcceptsOrigination) {
  // A packet transmitted by its own origin carries no previous hop.
  EXPECT_EQ(check_frame(table_, frame(1, kInvalidNode, 1)),
            Admission::kAccept);
}

TEST_F(AdmissionTest, RejectsForwardWithoutPrevHop) {
  // A forwarder (claimed != origin) that omits the announcement is cheating.
  EXPECT_EQ(check_frame(table_, frame(1, kInvalidNode, 9)),
            Admission::kBogusPrevHop);
}

TEST_F(AdmissionTest, RejectsUnknownSender) {
  // The relay attack (3.4) and high-power attack (3.3): the claimed sender
  // is not in our neighbor list.
  EXPECT_EQ(check_frame(table_, frame(42, 5, 9)),
            Admission::kUnknownSender);
}

TEST_F(AdmissionTest, RejectsRevokedSender) {
  table_.revoke(1);
  EXPECT_EQ(check_frame(table_, frame(1, 5, 9)), Admission::kRevokedSender);
}

TEST_F(AdmissionTest, RejectsPrevHopOutsideSendersList) {
  // Naive encapsulation (Section 4.2.3 first choice): the colluder M1 is
  // announced but is not in R_M2.
  EXPECT_EQ(check_frame(table_, frame(1, 6, 9)), Admission::kBogusPrevHop);
}

TEST_F(AdmissionTest, RejectsRevokedPrevHop) {
  table_.add_neighbor(5);
  table_.revoke(5);
  EXPECT_EQ(check_frame(table_, frame(1, 5, 9)),
            Admission::kRevokedPrevHop);
}

TEST_F(AdmissionTest, FailsClosedWithoutSecondHopList) {
  table_.add_neighbor(3);  // neighbor without a stored R_3
  EXPECT_EQ(check_frame(table_, frame(3, 5, 9)), Admission::kBogusPrevHop);
}

TEST_F(AdmissionTest, StatsRecordEveryVerdict) {
  AdmissionStats stats;
  stats.record(Admission::kAccept);
  stats.record(Admission::kUnknownSender);
  stats.record(Admission::kRevokedSender);
  stats.record(Admission::kBogusPrevHop);
  stats.record(Admission::kBogusPrevHop);
  stats.record(Admission::kRevokedPrevHop);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.unknown_sender, 1u);
  EXPECT_EQ(stats.revoked_sender, 1u);
  EXPECT_EQ(stats.bogus_prev_hop, 2u);
  EXPECT_EQ(stats.revoked_prev_hop, 1u);
  EXPECT_EQ(stats.total_rejected(), 5u);
}

TEST_F(AdmissionTest, VerdictNames) {
  EXPECT_STREQ(to_string(Admission::kAccept), "accept");
  EXPECT_STREQ(to_string(Admission::kUnknownSender), "unknown-sender");
  EXPECT_STREQ(to_string(Admission::kBogusPrevHop), "bogus-prev-hop");
}

}  // namespace
}  // namespace lw::nbr
