// Neighbor table: first/second hop knowledge, revocation, storage model.
#include <gtest/gtest.h>

#include "neighbor/neighbor_table.h"

namespace lw::nbr {
namespace {

TEST(NeighborTable, AddAndQuery) {
  NeighborTable table;
  table.add_neighbor(3);
  EXPECT_TRUE(table.knows_neighbor(3));
  EXPECT_TRUE(table.is_active_neighbor(3));
  EXPECT_FALSE(table.knows_neighbor(4));
  EXPECT_EQ(table.neighbor_count(), 1u);
}

TEST(NeighborTable, DuplicateAddIdempotent) {
  NeighborTable table;
  table.add_neighbor(3);
  table.add_neighbor(3);
  EXPECT_EQ(table.neighbor_count(), 1u);
}

TEST(NeighborTable, NeighborOrderPreserved) {
  NeighborTable table;
  table.add_neighbor(5);
  table.add_neighbor(2);
  table.add_neighbor(9);
  EXPECT_EQ(table.neighbors(), (util::PoolVector<NodeId>{5, 2, 9}));
}

TEST(NeighborTable, SecondHopListsQueryable) {
  NeighborTable table;
  table.add_neighbor(3);
  table.set_neighbor_list(3, {7, 8});
  EXPECT_TRUE(table.has_list_of(3));
  EXPECT_TRUE(table.in_list_of(3, 7));
  EXPECT_FALSE(table.in_list_of(3, 9));
  ASSERT_NE(table.list_of(3), nullptr);
  EXPECT_EQ(*table.list_of(3), (util::PoolVector<NodeId>{7, 8}));
}

TEST(NeighborTable, ListFromUnknownNodeIgnored) {
  NeighborTable table;
  table.set_neighbor_list(3, {7, 8});
  EXPECT_FALSE(table.has_list_of(3));
  EXPECT_FALSE(table.in_list_of(3, 7));
}

TEST(NeighborTable, WithinTwoHops) {
  NeighborTable table;
  table.add_neighbor(3);
  table.set_neighbor_list(3, {7, 8});
  EXPECT_TRUE(table.is_within_two_hops(3));   // first hop
  EXPECT_TRUE(table.is_within_two_hops(7));   // second hop
  EXPECT_FALSE(table.is_within_two_hops(42));
}

TEST(NeighborTable, RevocationSemantics) {
  NeighborTable table;
  table.add_neighbor(3);
  table.revoke(3);
  EXPECT_TRUE(table.knows_neighbor(3)) << "revoked stays in the table";
  EXPECT_FALSE(table.is_active_neighbor(3));
  EXPECT_TRUE(table.is_revoked(3));
  EXPECT_EQ(table.revoked_count(), 1u);
}

TEST(NeighborTable, RevokeUnknownIsNoop) {
  NeighborTable table;
  table.revoke(99);
  EXPECT_FALSE(table.is_revoked(99));
  EXPECT_EQ(table.revoked_count(), 0u);
}

TEST(NeighborTable, ActiveNeighborsExcludeRevoked) {
  NeighborTable table;
  table.add_neighbor(1);
  table.add_neighbor(2);
  table.add_neighbor(3);
  table.revoke(2);
  EXPECT_EQ(table.active_neighbors(), (util::PoolVector<NodeId>{1, 3}));
}

TEST(NeighborTable, StorageMatchesPaperCostModel) {
  // 5 bytes per first-hop entry (id + MalC) plus 4 per second-hop entry.
  NeighborTable table;
  for (NodeId n = 0; n < 10; ++n) table.add_neighbor(n);
  for (NodeId n = 0; n < 10; ++n) {
    table.set_neighbor_list(n, std::vector<NodeId>(10, 99));
  }
  EXPECT_EQ(table.storage_bytes(), 5u * 10 + 4u * 100);
  // The paper's headline: under half a kilobyte at N_B = 10.
  EXPECT_LT(table.storage_bytes(), 512u);
}

TEST(NeighborTable, ListReplacementOverwrites) {
  NeighborTable table;
  table.add_neighbor(3);
  table.set_neighbor_list(3, {7});
  table.set_neighbor_list(3, {8, 9});
  EXPECT_FALSE(table.in_list_of(3, 7));
  EXPECT_TRUE(table.in_list_of(3, 8));
}

}  // namespace
}  // namespace lw::nbr
