// LITEWORP local monitor: guard accounting, alerts, isolation — driven by
// hand-crafted packet sequences through a fake environment.
#include <gtest/gtest.h>

#include <cmath>

#include "liteworp/monitor.h"
#include "tests/liteworp/fake_env.h"

namespace lw::lite {
namespace {

// Cast of characters (all ids are neighbors of the guard unless noted):
//   kGuard = 0 (us), kX = 1 (handoff node), kA = 2 (watched forwarder),
//   kOther = 3, kFar = 9 (not our neighbor).
constexpr NodeId kGuard = 0;
constexpr NodeId kX = 1;
constexpr NodeId kA = 2;
constexpr NodeId kOther = 3;
constexpr NodeId kFar = 9;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : env_(kGuard),
        routing_(env_, table_, {}, nullptr),
        monitor_(env_, table_, routing_, params(), nullptr) {
    table_.add_neighbor(kX);
    table_.add_neighbor(kA);
    table_.add_neighbor(kOther);
    table_.set_neighbor_list(kX, {kGuard, kA, kOther});
    table_.set_neighbor_list(kA, {kGuard, kX, kOther, kFar});
    table_.set_neighbor_list(kOther, {kGuard, kX, kA});
    monitor_.start();
  }

  static LiteworpParams params() {
    LiteworpParams p;  // defaults: V_f=4, V_d=4, C_t=24, kappa=7, gamma=3
    return p;
  }

  /// REQ transmission by `tx` announcing `prev` (kInvalidNode = origin).
  pkt::Packet req(NodeId tx, NodeId prev, NodeId origin, SeqNo seq) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = tx;
    p.announced_prev_hop = prev;
    p.origin = origin;
    p.seq = seq;
    p.final_dst = 42;
    return p;
  }

  /// REP handoff from `tx` to `to`.
  pkt::Packet rep(NodeId tx, NodeId prev, NodeId to, NodeId origin,
                  SeqNo seq) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteReply);
    p.claimed_tx = tx;
    p.announced_prev_hop = prev;
    p.link_dst = to;
    p.origin = origin;
    p.seq = seq;
    p.final_dst = 7;
    p.route = {7, to, tx, origin};  // REP runs backward through the route
    return p;
  }

  test::FakeEnv env_;
  nbr::NeighborTable table_;
  routing::OnDemandRouting routing_;
  LocalMonitor monitor_;
};

TEST_F(MonitorTest, LegitimateForwardIsBenign) {
  monitor_.on_overhear(req(kX, kInvalidNode, kX, 1));  // X originates
  monitor_.on_overhear(req(kA, kX, kX, 1));            // A forwards
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 0.0);
  EXPECT_FALSE(monitor_.locally_detected(kA));
}

TEST_F(MonitorTest, UnheardFlowForwardRaisesFabrication) {
  // A forwards a REQ the guard never heard from anyone: the wormhole
  // replay signature.
  monitor_.on_overhear(req(kA, kX, kFar, 1));
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), params().malc_fabrication);
}

TEST_F(MonitorTest, MissedHandoffButFlowHeardIsBenign) {
  // Guard heard the flood from kOther but missed kX's copy: benign.
  monitor_.on_overhear(req(kOther, kInvalidNode, kOther, 5));
  monitor_.on_overhear(req(kA, kX, kOther, 5));
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 0.0);
}

TEST_F(MonitorTest, DetectionAfterEnoughFabrications) {
  const int needed = static_cast<int>(std::ceil(
      params().malc_threshold / params().malc_fabrication));  // 5
  for (int i = 0; i < needed - 1; ++i) {
    monitor_.on_overhear(req(kA, kX, kFar, static_cast<SeqNo>(i)));
  }
  EXPECT_FALSE(monitor_.locally_detected(kA));
  EXPECT_FALSE(table_.is_revoked(kA));
  monitor_.on_overhear(req(kA, kX, kFar, 100));
  EXPECT_TRUE(monitor_.locally_detected(kA));
  EXPECT_TRUE(table_.is_revoked(kA));
  EXPECT_EQ(env_.sent_of(pkt::PacketType::kAlert).size(), 1u);
}

TEST_F(MonitorTest, SamePacketCountedOncePerGuard) {
  pkt::Packet replayed = req(kA, kX, kFar, 1);
  for (int i = 0; i < 10; ++i) monitor_.on_overhear(replayed);
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), params().malc_fabrication)
      << "link-layer retransmissions must not multiply the evidence";
}

TEST_F(MonitorTest, KappaBlockResetsBelowThreshold) {
  // 4 fabrications (16 < C_t = 24) then 3 benign observations complete the
  // kappa = 7 block and wipe the slate.
  for (int i = 0; i < 4; ++i) {
    monitor_.on_overhear(req(kA, kX, kFar, static_cast<SeqNo>(i)));
  }
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 16.0);
  for (int i = 0; i < 3; ++i) {
    SeqNo seq = static_cast<SeqNo>(50 + i);
    monitor_.on_overhear(req(kX, kInvalidNode, kX, seq));
    monitor_.on_overhear(req(kA, kX, kX, seq));
  }
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 0.0) << "block completed clean";
  monitor_.on_overhear(req(kA, kX, kFar, 99));
  EXPECT_FALSE(monitor_.locally_detected(kA));
}

TEST_F(MonitorTest, RepDropAccusedAfterTimeout) {
  monitor_.on_overhear(rep(kX, kInvalidNode, kA, kX, 1));
  env_.simulator().run_until(params().watch_timeout + 0.1);
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), params().malc_drop);
}

TEST_F(MonitorTest, RepForwardClearsDropWatch) {
  monitor_.on_overhear(rep(kX, kInvalidNode, kA, kX, 1));
  // A forwards the REP onward within the deadline.
  monitor_.on_overhear(rep(kA, kX, kOther, kX, 1));
  env_.simulator().run_until(params().watch_timeout + 0.1);
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 0.0);
}

TEST_F(MonitorTest, RepDroppedSevenTimesTriggersDetection) {
  // V_d = 4: seven drops cross C_t = 24 within the kappa = 7 block.
  for (SeqNo s = 0; s < 7; ++s) {
    monitor_.on_overhear(rep(kX, kInvalidNode, kA, kX, s));
  }
  env_.simulator().run_until(params().watch_timeout + 0.1);
  EXPECT_TRUE(monitor_.locally_detected(kA));
}

TEST_F(MonitorTest, NoDropWatchWhenRecipientIsRepTarget) {
  // The REP's final recipient (route.front()) has nothing to forward.
  pkt::Packet p = rep(kX, kInvalidNode, kA, kX, 1);
  p.route = {kA, kX, 7};  // kA IS the REP's final destination
  monitor_.on_overhear(p);
  env_.simulator().run_until(params().watch_timeout + 0.1);
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 0.0);
}

TEST_F(MonitorTest, AlertCarriesPerRecipientTags) {
  const int needed = static_cast<int>(std::ceil(
      params().malc_threshold / params().malc_fabrication));
  for (int i = 0; i < needed; ++i) {
    monitor_.on_overhear(req(kA, kX, kFar, static_cast<SeqNo>(i)));
  }
  auto alerts = env_.sent_of(pkt::PacketType::kAlert);
  ASSERT_EQ(alerts.size(), 1u);
  const pkt::Packet& alert = alerts[0];
  EXPECT_EQ(alert.accused, kA);
  EXPECT_EQ(alert.accusing_guard, kGuard);
  EXPECT_EQ(alert.ttl, LiteworpParams{}.alert_ttl);
  // Recipients: R_A minus ourselves and the accused.
  ASSERT_FALSE(alert.alert_auth.empty());
  for (const auto& entry : alert.alert_auth) {
    EXPECT_NE(entry.recipient, kGuard);
    EXPECT_NE(entry.recipient, kA);
    EXPECT_TRUE(env_.keys().verify(kGuard, entry.recipient,
                                   alert.auth_payload(), entry.tag));
  }
}

// ---- Alert reception (the isolating node's perspective) ----

class AlertTest : public MonitorTest {
 protected:
  /// A properly signed alert from `guard` accusing kA, addressed to us.
  pkt::Packet signed_alert(NodeId guard, SeqNo seq) {
    pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
    alert.origin = guard;
    alert.claimed_tx = guard;
    alert.seq = seq;
    alert.accused = kA;
    alert.accusing_guard = guard;
    alert.ttl = 1;
    alert.alert_auth.push_back(
        {kGuard, env_.keys().sign(guard, kGuard, alert.auth_payload())});
    return alert;
  }
};

TEST_F(AlertTest, IsolatesAtGammaDistinctGuards) {
  // Guards must be neighbors of the accused per R_A = {kGuard,kX,kOther,kFar}.
  monitor_.handle_alert(signed_alert(kX, 1));
  EXPECT_FALSE(table_.is_revoked(kA));
  monitor_.handle_alert(signed_alert(kOther, 1));
  EXPECT_FALSE(table_.is_revoked(kA));
  monitor_.handle_alert(signed_alert(kFar, 1));
  EXPECT_TRUE(table_.is_revoked(kA)) << "third distinct guard = gamma";
}

TEST_F(AlertTest, DuplicateGuardDoesNotDoubleCount) {
  monitor_.handle_alert(signed_alert(kX, 1));
  monitor_.handle_alert(signed_alert(kX, 2));
  monitor_.handle_alert(signed_alert(kX, 3));
  EXPECT_FALSE(table_.is_revoked(kA))
      << "one compromised guard cannot reach gamma alone (framing attack)";
  EXPECT_EQ(monitor_.alert_count(kA), 1);
}

TEST_F(AlertTest, UnauthenticAlertIgnored) {
  pkt::Packet alert = signed_alert(kX, 1);
  alert.alert_auth[0].tag = crypto::forge_tag(9);
  monitor_.handle_alert(alert);
  EXPECT_EQ(monitor_.alert_count(kA), 0);
}

TEST_F(AlertTest, AlertFromNonGuardIgnored) {
  // Node 8 is not in R_A, so it cannot be a guard of any of kA's links.
  pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
  alert.origin = 8;
  alert.claimed_tx = 8;
  alert.seq = 1;
  alert.accused = kA;
  alert.accusing_guard = 8;
  alert.alert_auth.push_back(
      {kGuard, env_.keys().sign(8, kGuard, alert.auth_payload())});
  monitor_.handle_alert(alert);
  EXPECT_EQ(monitor_.alert_count(kA), 0);
}

TEST_F(AlertTest, AlertAboutStrangerIgnored) {
  pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
  alert.origin = kX;
  alert.claimed_tx = kX;
  alert.seq = 1;
  alert.accused = 77;  // not our neighbor
  alert.accusing_guard = kX;
  alert.alert_auth.push_back(
      {kGuard, env_.keys().sign(kX, kGuard, alert.auth_payload())});
  monitor_.handle_alert(alert);
  EXPECT_EQ(monitor_.alert_count(77), 0);
}

TEST_F(AlertTest, AlertRelayedExactlyOnce) {
  pkt::Packet alert = signed_alert(kX, 1);
  monitor_.handle_alert(alert);
  auto relayed = env_.sent_of(pkt::PacketType::kAlert);
  ASSERT_EQ(relayed.size(), 1u);
  EXPECT_EQ(relayed[0].ttl, 0);
  EXPECT_EQ(relayed[0].origin, kX) << "relay preserves the guard identity";
  // Hearing the relay again (or the original twice) must not re-relay.
  monitor_.handle_alert(alert);
  EXPECT_EQ(env_.sent_of(pkt::PacketType::kAlert).size(), 1u);
}

TEST_F(AlertTest, ZeroTtlAlertNotRelayed) {
  pkt::Packet alert = signed_alert(kX, 1);
  alert.ttl = 0;
  monitor_.handle_alert(alert);
  EXPECT_TRUE(env_.sent_of(pkt::PacketType::kAlert).empty());
  EXPECT_EQ(monitor_.alert_count(kA), 1) << "still counted";
}

TEST_F(MonitorTest, DisabledMonitorDoesNothing) {
  LiteworpParams off = params();
  off.enabled = false;
  LocalMonitor disabled(env_, table_, routing_, off, nullptr);
  for (int i = 0; i < 10; ++i) {
    disabled.on_overhear(req(kA, kX, kFar, static_cast<SeqNo>(i)));
  }
  EXPECT_FALSE(disabled.locally_detected(kA));
  EXPECT_FALSE(table_.is_revoked(kA));
}

TEST_F(MonitorTest, StorageBytesTracksState) {
  monitor_.on_overhear(rep(kX, kInvalidNode, kA, kX, 1));
  EXPECT_GE(monitor_.storage_bytes(), 20u);
}

}  // namespace
}  // namespace lw::lite
