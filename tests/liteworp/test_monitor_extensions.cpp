// Robustness mechanisms around the core monitor: refusal beacons, alert
// retransmission, and the ablation switches.
#include <gtest/gtest.h>

#include <cmath>

#include "liteworp/monitor.h"
#include "tests/liteworp/fake_env.h"

namespace lw::lite {
namespace {

constexpr NodeId kGuard = 0;
constexpr NodeId kX = 1;
constexpr NodeId kA = 2;
constexpr NodeId kOther = 3;
constexpr NodeId kFar = 9;

class MonitorExtensions : public ::testing::Test {
 protected:
  MonitorExtensions()
      : env_(kGuard),
        routing_(env_, table_, {}, nullptr),
        monitor_(env_, table_, routing_, LiteworpParams{}, nullptr) {
    table_.add_neighbor(kX);
    table_.add_neighbor(kA);
    table_.add_neighbor(kOther);
    table_.set_neighbor_list(kX, {kGuard, kA, kOther});
    table_.set_neighbor_list(kA, {kGuard, kX, kOther, kFar});
    table_.set_neighbor_list(kOther, {kGuard, kX, kA});
  }

  pkt::Packet rep(NodeId tx, NodeId to, SeqNo seq) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteReply);
    p.claimed_tx = tx;
    p.link_dst = to;
    p.origin = tx;
    p.seq = seq;
    p.final_dst = 7;
    p.route = {7, 8, to, tx};
    return p;
  }

  pkt::Packet refusal_beacon(NodeId tx) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteError);
    p.claimed_tx = tx;
    p.origin = tx;
    p.seq = 99;
    p.broken_node = kFar;
    return p;
  }

  test::FakeEnv env_;
  nbr::NeighborTable table_;
  routing::OnDemandRouting routing_;
  LocalMonitor monitor_;
};

TEST_F(MonitorExtensions, RefusalBeaconClearsDropWatches) {
  monitor_.on_overhear(rep(kX, kA, 1));
  monitor_.on_overhear(rep(kX, kA, 2));
  EXPECT_EQ(monitor_.watch_buffer().drop_watches(), 2u);
  // kA audibly refuses a broken route instead of forwarding.
  monitor_.on_overhear(refusal_beacon(kA));
  EXPECT_EQ(monitor_.watch_buffer().drop_watches(), 0u);
  env_.simulator().run_until(LiteworpParams{}.watch_timeout + 0.1);
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), 0.0) << "no accusation after beacon";
}

TEST_F(MonitorExtensions, RefusalBeaconOnlyExcusesItsSender) {
  monitor_.on_overhear(rep(kX, kA, 1));
  monitor_.on_overhear(refusal_beacon(kOther));  // someone else refused
  env_.simulator().run_until(LiteworpParams{}.watch_timeout + 0.1);
  EXPECT_DOUBLE_EQ(monitor_.malc(kA), LiteworpParams{}.malc_drop);
}

TEST_F(MonitorExtensions, OwnBeaconIgnored) {
  monitor_.on_overhear(rep(kX, kA, 1));
  monitor_.on_overhear(refusal_beacon(kGuard));
  EXPECT_EQ(monitor_.watch_buffer().drop_watches(), 1u);
}

TEST_F(MonitorExtensions, GuardSkipsWatchWhenOnwardHopRevokedHere) {
  table_.add_neighbor(8);
  table_.revoke(8);  // we isolated node 8; route says kA must forward to 8
  monitor_.on_overhear(rep(kX, kA, 1));
  EXPECT_EQ(monitor_.watch_buffer().drop_watches(), 0u)
      << "kA is expected to refuse; timing it would punish compliance";
}

TEST_F(MonitorExtensions, AlertsAreRepeatedWithFreshFlows) {
  LiteworpParams params;
  const int needed = static_cast<int>(
      std::ceil(params.malc_threshold / params.malc_fabrication));
  for (int i = 0; i < needed; ++i) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = kA;
    p.announced_prev_hop = kX;
    p.origin = kFar;
    p.seq = static_cast<SeqNo>(i);
    monitor_.on_overhear(p);
  }
  ASSERT_TRUE(monitor_.locally_detected(kA));
  env_.simulator().run_until(params.alert_repeats * params.alert_repeat_gap +
                             1.0);
  auto alerts = env_.sent_of(pkt::PacketType::kAlert);
  ASSERT_EQ(alerts.size(), static_cast<std::size_t>(params.alert_repeats));
  // Fresh sequence numbers: relays will propagate every repetition.
  EXPECT_NE(alerts[0].seq, alerts[1].seq);
  EXPECT_NE(alerts[1].seq, alerts[2].seq);
  for (const auto& alert : alerts) {
    EXPECT_EQ(alert.accused, kA);
    EXPECT_FALSE(alert.alert_auth.empty());
  }
}

TEST_F(MonitorExtensions, RepeatedAlertsFromOneGuardStillCountOnce) {
  LiteworpParams params;
  for (SeqNo seq : {10u, 11u, 12u}) {
    pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
    alert.origin = kX;
    alert.claimed_tx = kX;
    alert.seq = seq;
    alert.accused = kA;
    alert.accusing_guard = kX;
    alert.alert_auth.push_back(
        {kGuard, env_.keys().sign(kX, kGuard, alert.auth_payload())});
    monitor_.handle_alert(alert);
  }
  EXPECT_EQ(monitor_.alert_count(kA), 1);
  EXPECT_FALSE(table_.is_revoked(kA));
}

TEST_F(MonitorExtensions, StrictLinkCheckAblationConvictsOnMissedHandoff) {
  LiteworpParams strict;
  strict.strict_link_check = true;
  LocalMonitor monitor(env_, table_, routing_, strict, nullptr);
  // Guard heard the flood from kOther but missed kX's copy: the strict
  // check convicts; the default flow-wide check (MonitorTest) does not.
  pkt::Packet origin_copy =
      env_.packet_factory().make(pkt::PacketType::kRouteRequest);
  origin_copy.claimed_tx = kOther;
  origin_copy.origin = kOther;
  origin_copy.seq = 5;
  monitor.on_overhear(origin_copy);

  pkt::Packet forward =
      env_.packet_factory().make(pkt::PacketType::kRouteRequest);
  forward.claimed_tx = kA;
  forward.announced_prev_hop = kX;
  forward.origin = kOther;
  forward.seq = 5;
  monitor.on_overhear(forward);
  EXPECT_DOUBLE_EQ(monitor.malc(kA), strict.malc_fabrication);
}

TEST_F(MonitorExtensions, DisabledWindowNeverResets) {
  LiteworpParams params;
  params.window_packets = 0;  // ablation: evidence accumulates forever
  LocalMonitor monitor(env_, table_, routing_, params, nullptr);
  // 3 fabrications then many benign observations; MalC must persist.
  for (int i = 0; i < 3; ++i) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = kA;
    p.announced_prev_hop = kX;
    p.origin = kFar;
    p.seq = static_cast<SeqNo>(i);
    monitor.on_overhear(p);
  }
  for (int i = 0; i < 20; ++i) {
    SeqNo seq = static_cast<SeqNo>(100 + i);
    pkt::Packet tx = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    tx.claimed_tx = kX;
    tx.origin = kX;
    tx.seq = seq;
    monitor.on_overhear(tx);
    pkt::Packet fwd = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    fwd.claimed_tx = kA;
    fwd.announced_prev_hop = kX;
    fwd.origin = kX;
    fwd.seq = seq;
    monitor.on_overhear(fwd);
  }
  EXPECT_DOUBLE_EQ(monitor.malc(kA), 3 * params.malc_fabrication)
      << "no reset ever happens with window_packets = 0";
}

TEST_F(MonitorExtensions, CorroborationLowersTheBar) {
  LiteworpParams params;
  // Two suspicious observations: 8 < 24, no detection on our own.
  for (SeqNo seq : {1u, 2u}) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = kA;
    p.announced_prev_hop = kX;
    p.origin = kFar;
    p.seq = seq;
    monitor_.on_overhear(p);
  }
  EXPECT_FALSE(monitor_.locally_detected(kA));

  // A verified alert about kA arrives: bar drops to corroborated_threshold.
  pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
  alert.origin = kX;
  alert.claimed_tx = kX;
  alert.seq = 50;
  alert.accused = kA;
  alert.accusing_guard = kX;
  alert.alert_auth.push_back(
      {kGuard, env_.keys().sign(kX, kGuard, alert.auth_payload())});
  monitor_.handle_alert(alert);

  // Our 8 points now sit below 12; one more suspicious event crosses it.
  EXPECT_FALSE(monitor_.locally_detected(kA));
  pkt::Packet third = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
  third.claimed_tx = kA;
  third.announced_prev_hop = kX;
  third.origin = kFar;
  third.seq = 3;
  monitor_.on_overhear(third);
  EXPECT_TRUE(monitor_.locally_detected(kA))
      << "8 + 4 = 12 >= corroborated threshold";
}

TEST_F(MonitorExtensions, CorroborationTriggersOnAlertArrival) {
  // Enough standing evidence (12 points) that the bar-drop alone convicts.
  for (SeqNo seq : {1u, 2u, 3u}) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = kA;
    p.announced_prev_hop = kX;
    p.origin = kFar;
    p.seq = seq;
    monitor_.on_overhear(p);
  }
  EXPECT_FALSE(monitor_.locally_detected(kA));
  pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
  alert.origin = kX;
  alert.claimed_tx = kX;
  alert.seq = 51;
  alert.accused = kA;
  alert.accusing_guard = kX;
  alert.alert_auth.push_back(
      {kGuard, env_.keys().sign(kX, kGuard, alert.auth_payload())});
  monitor_.handle_alert(alert);
  EXPECT_TRUE(monitor_.locally_detected(kA));
}

TEST_F(MonitorExtensions, FramingAloneCannotCorroborate) {
  // A malicious guard sends alerts but the monitor holds NO local
  // evidence: the lowered bar has nothing to cross, and gamma distinct
  // guards are still required to isolate.
  for (SeqNo seq : {60u, 61u, 62u}) {
    pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
    alert.origin = kX;
    alert.claimed_tx = kX;
    alert.seq = seq;
    alert.accused = kA;
    alert.accusing_guard = kX;
    alert.alert_auth.push_back(
        {kGuard, env_.keys().sign(kX, kGuard, alert.auth_payload())});
    monitor_.handle_alert(alert);
  }
  EXPECT_FALSE(monitor_.locally_detected(kA));
  EXPECT_FALSE(table_.is_revoked(kA));
}

TEST_F(MonitorExtensions, AlertTtlFollowsParams) {
  LiteworpParams params;
  const int needed = static_cast<int>(std::ceil(
      params.malc_threshold / params.malc_fabrication));
  for (int i = 0; i < needed; ++i) {
    pkt::Packet p = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = kA;
    p.announced_prev_hop = kX;
    p.origin = kFar;
    p.seq = static_cast<SeqNo>(i);
    monitor_.on_overhear(p);
  }
  auto alerts = env_.sent_of(pkt::PacketType::kAlert);
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(static_cast<int>(alerts[0].ttl), params.alert_ttl);
}

}  // namespace
}  // namespace lw::lite
