// Minimal NodeEnv for protocol-agent unit tests: captures sent packets
// instead of transmitting them.
#pragma once

#include <utility>
#include <vector>

#include "node/node_env.h"

namespace lw::test {

class FakeEnv final : public node::NodeEnv {
 public:
  explicit FakeEnv(NodeId id, std::uint64_t master_secret = 42)
      : id_(id), keys_(master_secret), rng_(7) {}

  NodeId id() const override { return id_; }
  sim::Simulator& simulator() override { return sim_; }
  pkt::PacketFactory& packet_factory() override { return factory_; }
  const crypto::KeyManager& keys() const override { return keys_; }
  Rng& rng() override { return rng_; }
  std::size_t mac_queue_depth() const override { return queue_depth; }

  /// Simulated MAC backlog (congestion-signal tests).
  std::size_t queue_depth = 0;

  void send(pkt::Packet packet, mac::SendOptions options = {}) override {
    if (packet.claimed_tx == kInvalidNode) packet.claimed_tx = id_;
    sent.emplace_back(std::move(packet), options);
  }

  /// Sent packets of a given type.
  std::vector<pkt::Packet> sent_of(pkt::PacketType type) const {
    std::vector<pkt::Packet> out;
    for (const auto& [p, o] : sent) {
      if (p.type == type) out.push_back(p);
    }
    return out;
  }

  std::vector<std::pair<pkt::Packet, mac::SendOptions>> sent;

 private:
  NodeId id_;
  sim::Simulator sim_;
  pkt::PacketFactory factory_;
  crypto::KeyManager keys_;
  Rng rng_;
};

}  // namespace lw::test
