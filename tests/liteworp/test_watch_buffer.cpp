// Watch buffer: transmit records, flow records, drop-watch lifecycle.
#include <gtest/gtest.h>

#include "liteworp/watch_buffer.h"

namespace lw::lite {
namespace {

FlowKey flow(NodeId origin, SeqNo seq) {
  return FlowKey{origin, seq, static_cast<std::uint8_t>(4)};
}

TEST(WatchBuffer, TransmitRecordLifecycle) {
  WatchBuffer buffer;
  buffer.record_transmit(flow(1, 1), 5, /*now=*/10.0, /*ttl=*/2.0);
  EXPECT_TRUE(buffer.has_transmit(flow(1, 1), 5, 11.0));
  EXPECT_FALSE(buffer.has_transmit(flow(1, 1), 5, 12.5)) << "expired";
  EXPECT_FALSE(buffer.has_transmit(flow(1, 1), 6, 11.0)) << "wrong node";
  EXPECT_FALSE(buffer.has_transmit(flow(1, 2), 5, 11.0)) << "wrong flow";
}

TEST(WatchBuffer, TransmitRecordsMatchedNonDestructively) {
  WatchBuffer buffer;
  buffer.record_transmit(flow(1, 1), 5, 10.0, 2.0);
  EXPECT_TRUE(buffer.has_transmit(flow(1, 1), 5, 10.5));
  EXPECT_TRUE(buffer.has_transmit(flow(1, 1), 5, 10.6))
      << "several forwarders of the same flood must all match";
}

TEST(WatchBuffer, ReRecordExtendsExpiry) {
  WatchBuffer buffer;
  buffer.record_transmit(flow(1, 1), 5, 10.0, 2.0);
  buffer.record_transmit(flow(1, 1), 5, 11.5, 2.0);  // retransmission
  EXPECT_TRUE(buffer.has_transmit(flow(1, 1), 5, 13.0));
}

TEST(WatchBuffer, FlowWideTransmitQuery) {
  WatchBuffer buffer;
  buffer.record_transmit(flow(1, 1), 5, 10.0, 2.0);
  EXPECT_TRUE(buffer.has_any_transmit(flow(1, 1), 11.0));
  EXPECT_FALSE(buffer.has_any_transmit(flow(1, 2), 11.0));
  EXPECT_FALSE(buffer.has_any_transmit(flow(1, 1), 13.0)) << "expired";
}

TEST(WatchBuffer, DropWatchAddAndClear) {
  WatchBuffer buffer;
  EXPECT_TRUE(buffer.add_drop_watch(flow(1, 1), 5, 6, 11.0, {}));
  EXPECT_EQ(buffer.drop_watches(), 1u);
  EXPECT_TRUE(buffer.clear_drop_watch(flow(1, 1), 5, 6));
  EXPECT_EQ(buffer.drop_watches(), 0u);
  EXPECT_FALSE(buffer.clear_drop_watch(flow(1, 1), 5, 6)) << "already gone";
}

TEST(WatchBuffer, DuplicateDropWatchRejected) {
  WatchBuffer buffer;
  EXPECT_TRUE(buffer.add_drop_watch(flow(1, 1), 5, 6, 11.0, {}));
  EXPECT_FALSE(buffer.add_drop_watch(flow(1, 1), 5, 6, 12.0, {}))
      << "link-layer retransmissions must not re-arm the timer";
  EXPECT_EQ(buffer.drop_watches(), 1u);
}

TEST(WatchBuffer, TakeExpiredOnlyOnce) {
  WatchBuffer buffer;
  buffer.add_drop_watch(flow(1, 1), 5, 6, 11.0, {});
  EXPECT_TRUE(buffer.take_expired_drop_watch(flow(1, 1), 5, 6));
  EXPECT_FALSE(buffer.take_expired_drop_watch(flow(1, 1), 5, 6));
}

TEST(WatchBuffer, ClearedWatchNotTakenAsExpired) {
  WatchBuffer buffer;
  buffer.add_drop_watch(flow(1, 1), 5, 6, 11.0, {});
  buffer.clear_drop_watch(flow(1, 1), 5, 6);
  EXPECT_FALSE(buffer.take_expired_drop_watch(flow(1, 1), 5, 6));
}

TEST(WatchBuffer, DistinctLinksIndependent) {
  WatchBuffer buffer;
  buffer.add_drop_watch(flow(1, 1), 5, 6, 11.0, {});
  buffer.add_drop_watch(flow(1, 1), 6, 7, 11.0, {});
  EXPECT_TRUE(buffer.clear_drop_watch(flow(1, 1), 5, 6));
  EXPECT_TRUE(buffer.take_expired_drop_watch(flow(1, 1), 6, 7));
}

TEST(WatchBuffer, StorageBytesPerPaperModel) {
  WatchBuffer buffer;
  buffer.record_transmit(flow(1, 1), 5, 10.0, 2.0);
  buffer.add_drop_watch(flow(1, 2), 5, 6, 11.0, {});
  EXPECT_EQ(buffer.storage_bytes(), 2u * 20u) << "20 bytes per entry";
}

TEST(WatchBuffer, PeakTracksHighWater) {
  WatchBuffer buffer;
  for (SeqNo s = 0; s < 10; ++s) {
    buffer.add_drop_watch(flow(1, s), 5, 6, 11.0, {});
  }
  for (SeqNo s = 0; s < 10; ++s) {
    buffer.clear_drop_watch(flow(1, s), 5, 6);
  }
  EXPECT_EQ(buffer.drop_watches(), 0u);
  EXPECT_EQ(buffer.peak_entries(), 10u);
}

TEST(WatchBuffer, ExpiredTransmitsPurgedAmortized) {
  WatchBuffer buffer;
  for (SeqNo s = 0; s < 1000; ++s) {
    buffer.record_transmit(flow(1, s), 5, static_cast<double>(s) * 0.01, 1.0);
  }
  // After enough insertions the amortized purge must have dropped old
  // entries (all but the last ~100 are expired by t=10).
  EXPECT_LT(buffer.transmit_records(), 1000u);
}

}  // namespace
}  // namespace lw::lite
