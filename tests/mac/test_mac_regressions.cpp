// Regression tests for the MAC subtleties the calibration uncovered:
// control-response ordering, ACK-slot deferral, retransmission backoff.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/csma_mac.h"
#include "topology/field.h"

namespace lw::mac {
namespace {

class MacRegressionTest : public ::testing::Test {
 protected:
  // Chain 0 -- 1 -- 2 (spacing 20 m, range 25 m).
  MacRegressionTest() : graph_({{0, 0}, {20, 0}, {40, 0}}, 25.0) {}

  void build(MacParams mac_params = {}) {
    medium_ =
        std::make_unique<phy::Medium>(sim_, graph_, phy::PhyParams{}, Rng(1));
    for (NodeId id = 0; id < graph_.size(); ++id) {
      radios_.push_back(std::make_unique<phy::Radio>(id));
      medium_->attach(radios_.back().get());
      macs_.push_back(std::make_unique<CsmaMac>(
          sim_, *medium_, *radios_.back(), Rng(100 + id), mac_params));
      received_.emplace_back();
      NodeId captured = id;
      macs_.back()->set_upcall([this, captured](const pkt::Packet& p) {
        received_[captured].push_back(p);
      });
    }
  }

  pkt::Packet unicast(NodeId from, NodeId to) {
    pkt::Packet p = factory_.make(pkt::PacketType::kData);
    p.claimed_tx = from;
    p.link_dst = to;
    p.payload_bytes = 32;
    return p;
  }

  sim::Simulator sim_;
  topo::DiscGraph graph_;
  pkt::PacketFactory factory_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
  std::vector<std::vector<pkt::Packet>> received_;
};

TEST_F(MacRegressionTest, ForwardNeverOvertakesPendingAck) {
  // The hop-chain self-collision bug: node 1 receives a frame and
  // immediately queues a forward; its ACK (still in the SIFS delay) must
  // leave FIRST, or node 1 transmits exactly when node 2's ACK arrives.
  build();
  macs_[0]->send(unicast(0, 1));
  // Node 1 reacts to the delivery by instantly queueing a forward, like
  // the routing layer does.
  macs_[1]->set_upcall([this](const pkt::Packet& p) {
    received_[1].push_back(p);
    if (p.link_dst == 1) macs_[1]->send(unicast(1, 2));
  });
  sim_.run_all();
  ASSERT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(macs_[0]->stats().retransmissions, 0u)
      << "node 0 never got its ACK: the forward overtook it";
  EXPECT_EQ(macs_[1]->stats().retransmissions, 0u);
  EXPECT_EQ(medium_->stats().frames_collided, 0u);
}

TEST_F(MacRegressionTest, OverhearersDeferThroughAckSlot) {
  // Node 2 overhears 1 -> 0 and must not transmit into 0's ACK.
  build();
  macs_[1]->send(unicast(1, 0));
  bool checked = false;
  // Just after the data frame ends at node 2, its NAV must cover the ACK.
  pkt::Packet probe = unicast(1, 0);
  const double duration = medium_->transmit_duration(probe);
  sim_.schedule(duration + 1e-5, [this, &checked] {
    EXPECT_GT(radios_[2]->nav_until(), sim_.now())
        << "no ACK-slot reservation";
    checked = true;
  });
  sim_.run_all();
  EXPECT_TRUE(checked);
}

TEST_F(MacRegressionTest, RetransmissionsBackOff) {
  // Node 0 sends to unreachable node 2: every attempt times out. The gaps
  // between successive attempts must grow (contention window doubling).
  build();
  macs_[0]->send(unicast(0, 2));
  std::vector<Time> attempt_times;
  macs_[1]->set_upcall([this, &attempt_times](const pkt::Packet& p) {
    if (p.link_dst == 2) attempt_times.push_back(sim_.now());
  });
  sim_.run_all();
  ASSERT_GE(attempt_times.size(), 3u);
  // Not strictly monotone per-sample (backoff is random), but the later
  // gaps must on average exceed the first.
  const double first_gap = attempt_times[1] - attempt_times[0];
  const double last_gap =
      attempt_times.back() - attempt_times[attempt_times.size() - 2];
  EXPECT_GT(last_gap, first_gap * 0.5)
      << "later retransmissions should not come faster than early ones";
  EXPECT_EQ(macs_[0]->stats().dropped_no_ack, 1u);
}

TEST_F(MacRegressionTest, LeashStampFreshForHonestSender) {
  build();
  pkt::Packet p = unicast(0, 1);
  macs_[0]->send(p);
  sim_.run_all();
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_GE(received_[1][0].leash_timestamp, 0.0);
}

TEST_F(MacRegressionTest, LeashStampPreservedForSpoofedSender) {
  build();
  pkt::Packet p = unicast(0, 1);
  p.claimed_tx = 2;           // spoof: claims to be node 2
  p.leash_timestamp = 123.0;  // the original (replayed) stamp
  macs_[0]->send(p);
  sim_.run_all();
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_DOUBLE_EQ(received_[1][0].leash_timestamp, 123.0)
      << "a spoofing transmitter cannot forge a fresh authenticated stamp";
}

}  // namespace
}  // namespace lw::mac
