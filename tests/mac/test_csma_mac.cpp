// CSMA/CA MAC: ARQ, duplicate suppression, carrier sense, RTS/CTS, NAV.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/csma_mac.h"
#include "topology/field.h"

namespace lw::mac {
namespace {

class MacTest : public ::testing::Test {
 protected:
  // Chain 0 -- 1 -- 2 (spacing 20 m, range 25 m): 0 and 2 are hidden from
  // each other.
  MacTest() : graph_({{0, 0}, {20, 0}, {40, 0}}, 25.0) {}

  void build(phy::PhyParams phy_params = {}, MacParams mac_params = {}) {
    medium_ = std::make_unique<phy::Medium>(sim_, graph_, phy_params, Rng(1));
    for (NodeId id = 0; id < graph_.size(); ++id) {
      radios_.push_back(std::make_unique<phy::Radio>(id));
      medium_->attach(radios_.back().get());
      macs_.push_back(std::make_unique<CsmaMac>(
          sim_, *medium_, *radios_.back(), Rng(100 + id), mac_params));
      received_.emplace_back();
      NodeId captured = id;
      macs_.back()->set_upcall([this, captured](const pkt::Packet& p) {
        received_[captured].push_back(p);
      });
    }
  }

  pkt::Packet unicast(NodeId from, NodeId to,
                      pkt::PacketType type = pkt::PacketType::kData) {
    pkt::Packet p = factory_.make(type);
    p.claimed_tx = from;
    p.link_dst = to;
    p.payload_bytes = 32;
    return p;
  }

  pkt::Packet broadcast(NodeId from) {
    pkt::Packet p = factory_.make(pkt::PacketType::kRouteRequest);
    p.claimed_tx = from;
    p.origin = from;
    return p;
  }

  sim::Simulator sim_;
  topo::DiscGraph graph_;
  pkt::PacketFactory factory_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
  std::vector<std::vector<pkt::Packet>> received_;
};

TEST_F(MacTest, UnicastDeliveredAndAcked) {
  build();
  macs_[0]->send(unicast(0, 1));
  sim_.run_all();
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(macs_[1]->stats().acks_sent, 1u);
  EXPECT_EQ(macs_[0]->stats().retransmissions, 0u);
  EXPECT_EQ(macs_[0]->stats().dropped_no_ack, 0u);
}

TEST_F(MacTest, AcksNeverReachTheUpcall) {
  build();
  macs_[0]->send(unicast(0, 1));
  sim_.run_all();
  for (const auto& frames : received_) {
    for (const auto& frame : frames) {
      EXPECT_NE(frame.type, pkt::PacketType::kAck);
    }
  }
}

TEST_F(MacTest, BroadcastNotAcked) {
  build();
  macs_[1]->send(broadcast(1));
  sim_.run_all();
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(macs_[0]->stats().acks_sent, 0u);
  EXPECT_EQ(macs_[2]->stats().acks_sent, 0u);
}

TEST_F(MacTest, OverhearingDeliversPromiscuously) {
  build();
  // 0 -> 1 unicast is also decoded by nobody else in range (2 is hidden
  // from 0), but 1 -> 2 is overheard by 0.
  macs_[1]->send(unicast(1, 2));
  sim_.run_all();
  ASSERT_EQ(received_[2].size(), 1u);
  ASSERT_EQ(received_[0].size(), 1u) << "promiscuous overhear";
  EXPECT_EQ(received_[0][0].link_dst, 2u);
}

TEST_F(MacTest, RetransmitsUntilAckArrives) {
  // Blast random loss so some ACK/data frames die; ARQ must still deliver.
  phy::PhyParams phy;
  phy.extra_loss_prob = 0.4;
  build(phy);
  for (int i = 0; i < 50; ++i) {
    sim_.schedule(i * 2.0, [this] { macs_[0]->send(unicast(0, 1)); });
  }
  sim_.run_all();
  EXPECT_GT(macs_[0]->stats().retransmissions, 5u);
  // Delivery ratio with 5 retries at 40% loss should be near-perfect:
  // P(all 6 exchanges fail) ~ (1 - 0.6*0.6)^6 ~ 5%.
  EXPECT_GT(received_[1].size(), 40u);
}

TEST_F(MacTest, DuplicatesSuppressedOnLostAck) {
  phy::PhyParams phy;
  phy.extra_loss_prob = 0.4;
  build(phy);
  for (int i = 0; i < 50; ++i) {
    sim_.schedule(i * 2.0, [this] { macs_[0]->send(unicast(0, 1)); });
  }
  sim_.run_all();
  EXPECT_LE(received_[1].size(), 50u)
      << "ARQ retransmissions must never surface as duplicates";
  EXPECT_GT(macs_[1]->stats().duplicates_suppressed, 0u)
      << "with 40% loss some ACKs die and the data is retransmitted";
}

TEST_F(MacTest, GivesUpAfterMaxRetransmissions) {
  build();
  // Destination 2 is out of node 0's range: no ACK will ever come.
  macs_[0]->send(unicast(0, 2));
  sim_.run_all();
  EXPECT_EQ(macs_[0]->stats().dropped_no_ack, 1u);
  EXPECT_EQ(macs_[0]->stats().retransmissions,
            static_cast<std::uint64_t>(MacParams{}.max_retransmissions));
  EXPECT_EQ(received_[2].size(), 0u);
}

TEST_F(MacTest, CarrierSenseDefersAndBothDeliver) {
  build();
  // 0 and 1 can hear each other: the second send must defer, not collide.
  macs_[0]->send(broadcast(0));
  sim_.schedule(0.002, [this] { macs_[1]->send(broadcast(1)); });
  sim_.run_all();
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(medium_->stats().frames_collided, 0u);
}

TEST_F(MacTest, SkipBackoffTransmitsIntoBusyChannel) {
  MacParams mac;
  build({}, mac);
  macs_[0]->send(broadcast(0));
  sim_.schedule(0.002, [this] {
    pkt::Packet p = broadcast(1);
    macs_[1]->send(std::move(p), {.skip_backoff = true});
  });
  sim_.run_all();
  // The rusher's frame overlapped 0's at receiver... node 1 transmits while
  // receiving: its own reception is corrupted, and node 0 (transmitting)
  // cannot hear node 1 either. The collision shows up in channel stats.
  EXPECT_GT(medium_->stats().frames_collided, 0u);
}

TEST_F(MacTest, FloodJitterDelaysSend) {
  build();
  macs_[0]->send(broadcast(0), {.flood_jitter = true});
  sim_.run_until(0.0005);
  EXPECT_EQ(macs_[0]->stats().transmitted, 0u)
      << "jittered frame must not leave immediately";
  sim_.run_all();
  EXPECT_EQ(macs_[0]->stats().transmitted, 1u);
}

TEST_F(MacTest, QueueDrainsInOrder) {
  build();
  for (int i = 0; i < 5; ++i) {
    pkt::Packet p = unicast(0, 1);
    p.seq = static_cast<SeqNo>(i);
    p.origin = 0;
    macs_[0]->send(std::move(p));
  }
  sim_.run_all();
  ASSERT_EQ(received_[1].size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(received_[1][i].seq, static_cast<SeqNo>(i));
  }
}

class MacRtsTest : public MacTest {
 protected:
  void build_rts(phy::PhyParams phy = {}) {
    MacParams mac;
    mac.rts_threshold = 0;  // handshake on every unicast
    build(phy, mac);
  }
};

TEST_F(MacRtsTest, HandshakeCompletesAndDelivers) {
  build_rts();
  macs_[0]->send(unicast(0, 1));
  sim_.run_all();
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(macs_[0]->stats().rts_sent, 1u);
  EXPECT_EQ(macs_[1]->stats().cts_sent, 1u);
  EXPECT_EQ(macs_[1]->stats().acks_sent, 1u);
}

TEST_F(MacRtsTest, CtsSetsNavOnOverhearers) {
  build_rts();
  // Exchange 1 -> 2; node 0 overhears 1's RTS and must defer.
  macs_[1]->send(unicast(1, 2));
  bool checked = false;
  sim_.schedule(0.02, [this, &checked] {
    // RTS is on the air / just decoded; node 0's NAV should be armed soon
    // after decoding it.
    checked = true;
  });
  sim_.run_all();
  EXPECT_TRUE(checked);
  EXPECT_GT(radios_[0]->nav_until(), 0.0) << "NAV was never set";
  ASSERT_EQ(received_[2].size(), 1u);
}

TEST_F(MacRtsTest, NoCtsTriggersRetry) {
  build_rts();
  macs_[0]->send(unicast(0, 2));  // unreachable: CTS never comes
  sim_.run_all();
  EXPECT_EQ(macs_[0]->stats().dropped_no_ack, 1u);
  EXPECT_GT(macs_[0]->stats().rts_sent, 1u) << "RTS retried";
}

TEST_F(MacRtsTest, HiddenTerminalsProtectedByNav) {
  build_rts();
  // 0 -> 1 long exchange; 2 (hidden from 0) hears 1's CTS and defers, so
  // the DATA survives.
  macs_[0]->send(unicast(0, 1));
  sim_.schedule(0.012, [this] { macs_[2]->send(unicast(2, 1)); });
  sim_.run_all();
  ASSERT_GE(received_[1].size(), 2u) << "both frames eventually delivered";
  EXPECT_EQ(macs_[0]->stats().dropped_no_ack, 0u);
  EXPECT_EQ(macs_[2]->stats().dropped_no_ack, 0u);
}

}  // namespace
}  // namespace lw::mac
