// Config parsing: flags, typed getters, error handling, unread detection.
#include <gtest/gtest.h>

#include "util/config.h"

namespace lw {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValuePairs) {
  Config c = parse({"--nodes=100", "--seed=7"});
  EXPECT_EQ(c.get_int("nodes", 0), 100);
  EXPECT_EQ(c.get_int("seed", 0), 7);
}

TEST(Config, BareFlagIsTrue) {
  Config c = parse({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
}

TEST(Config, DefaultsWhenAbsent) {
  Config c = parse({});
  EXPECT_EQ(c.get_int("nodes", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0.5), 0.5);
  EXPECT_EQ(c.get_string("mode", "oob"), "oob");
  EXPECT_FALSE(c.get_bool("flag", false));
}

TEST(Config, PositionalsCollected) {
  Config c = parse({"run", "--x=1", "fast"});
  ASSERT_EQ(c.positionals().size(), 2u);
  EXPECT_EQ(c.positionals()[0], "run");
  EXPECT_EQ(c.positionals()[1], "fast");
}

TEST(Config, DoubleParsing) {
  Config c = parse({"--rate=0.125"});
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0), 0.125);
}

TEST(Config, BoolVariants) {
  Config c = parse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0",
                    "--f=no"});
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_FALSE(c.get_bool("e", true));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(Config, MalformedNumberThrows) {
  Config c = parse({"--n=12x"});
  EXPECT_THROW(c.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(c.get_double("n", 0), std::invalid_argument);
}

TEST(Config, MalformedBoolThrows) {
  Config c = parse({"--b=maybe"});
  EXPECT_THROW(c.get_bool("b", false), std::invalid_argument);
}

TEST(Config, UnreadKeysReported) {
  Config c = parse({"--used=1", "--typo=2"});
  (void)c.get_int("used", 0);
  auto unread = c.unread_keys();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(Config, LastDuplicateWins) {
  Config c = parse({"--n=1", "--n=2"});
  EXPECT_EQ(c.get_int("n", 0), 2);
}

}  // namespace
}  // namespace lw
