// Seeded RNG streams: determinism, stream independence, distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"

namespace lw {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(3.0, 5.5);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u) << "all values in [2,5] should appear";
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0 / rate, 0.15);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngFactory, SameNameSameStream) {
  RngFactory factory(99);
  EXPECT_EQ(factory.derive("phy"), factory.derive("phy"));
  Rng a = factory.stream("phy");
  Rng b = factory.stream("phy");
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngFactory, DifferentNamesIndependent) {
  RngFactory factory(99);
  EXPECT_NE(factory.derive("phy"), factory.derive("mac"));
}

TEST(RngFactory, IndexedStreamsDistinct) {
  RngFactory factory(99);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seeds.insert(factory.derive("node", i));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(RngFactory, MasterSeedChangesEverything) {
  RngFactory a(1);
  RngFactory b(2);
  EXPECT_NE(a.derive("node", 0), b.derive("node", 0));
}

TEST(RngFactory, AddingDrawsToOneStreamDoesNotPerturbAnother) {
  RngFactory factory(5);
  Rng first_a = factory.stream("a");
  (void)first_a.uniform01();
  // A fresh "b" stream is unaffected by how much "a" was used.
  Rng b1 = factory.stream("b");
  double expected = b1.uniform01();
  Rng a2 = factory.stream("a");
  for (int i = 0; i < 50; ++i) (void)a2.uniform01();
  Rng b2 = factory.stream("b");
  EXPECT_DOUBLE_EQ(b2.uniform01(), expected);
}

}  // namespace
}  // namespace lw
