// util::JsonValue parser: the minimal reader behind lw-report. Covers the
// value kinds, string escapes, document-order member iteration, lookup
// helpers, and rejection diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace lw::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue doc = JsonValue::parse(
      R"({"cases":[{"case":"a","frames":12},{"case":"b","frames":34}],)"
      R"("meta":{"runs":3}})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* cases = doc.find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_TRUE(cases->is_array());
  ASSERT_EQ(cases->items().size(), 2u);
  EXPECT_EQ(cases->items()[1].string_or("case", ""), "b");
  EXPECT_DOUBLE_EQ(cases->items()[1].number_or("frames", 0.0), 34.0);
  const JsonValue* meta = doc.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_DOUBLE_EQ(meta->number_or("runs", 0.0), 3.0);
}

TEST(Json, MembersPreserveDocumentOrder) {
  const JsonValue doc = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").as_string(),
            "a\"b\\c/d\n\t");
  // BMP \u escape decodes to UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
}

TEST(Json, LookupHelpersFallBackGracefully) {
  const JsonValue doc = JsonValue::parse(R"({"n":5,"s":"x"})");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(doc.string_or("missing", "fallback"), "fallback");
  // Wrong-kind lookups also fall back instead of throwing.
  EXPECT_DOUBLE_EQ(doc.number_or("s", -1.0), -1.0);
  EXPECT_EQ(doc.string_or("n", "fallback"), "fallback");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("nul"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), JsonParseError);
}

TEST(Json, ErrorsCarryTheFailureOffset) {
  try {
    JsonValue::parse("{\"a\": nope}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_FALSE(std::string(e.what()).empty());
  }
}

}  // namespace
}  // namespace lw::util
