// Special functions: incomplete beta vs exact binomial tails, identities.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/special_functions.h"

namespace lw::analysis {
namespace {

TEST(SpecialFunctions, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(7, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(7, 7), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(7, 5), 21.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 9), 0.0);
}

TEST(SpecialFunctions, BinomialTailEdges) {
  EXPECT_DOUBLE_EQ(binomial_tail_at_least(7, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_at_least(7, 8, 0.3), 0.0);
  EXPECT_NEAR(binomial_tail_at_least(7, 7, 0.5), std::pow(0.5, 7), 1e-12);
}

TEST(SpecialFunctions, BinomialTailMatchesDirectSum) {
  // P(X >= 5), X ~ Bin(7, 0.95): the paper's per-guard alert probability.
  double expected = 0.0;
  for (int i = 5; i <= 7; ++i) {
    expected += binomial_coefficient(7, i) * std::pow(0.95, i) *
                std::pow(0.05, 7 - i);
  }
  EXPECT_NEAR(binomial_tail_at_least(7, 5, 0.95), expected, 1e-12);
  EXPECT_GT(expected, 0.99) << "a guard almost surely catches 5 of 7";
}

TEST(SpecialFunctions, IncompleteBetaBounds) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(1.0, 2.0, 3.0), 1.0);
  double mid = regularized_incomplete_beta(0.5, 2.0, 3.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(SpecialFunctions, IncompleteBetaKnownValues) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (double x : {0.1, 0.4, 0.9}) {
    for (double b : {1.0, 2.5, 7.0}) {
      EXPECT_NEAR(regularized_incomplete_beta(x, 1.0, b),
                  1.0 - std::pow(1.0 - x, b), 1e-10);
    }
  }
  // I_x(a, 1) = x^a.
  EXPECT_NEAR(regularized_incomplete_beta(0.3, 4.0, 1.0), std::pow(0.3, 4),
              1e-10);
}

TEST(SpecialFunctions, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(regularized_incomplete_beta(x, 3.0, 5.0),
                1.0 - regularized_incomplete_beta(1.0 - x, 5.0, 3.0), 1e-10);
  }
}

TEST(SpecialFunctions, InvalidParametersThrow) {
  EXPECT_THROW(regularized_incomplete_beta(0.5, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(regularized_incomplete_beta(0.5, 1.0, -1.0),
               std::invalid_argument);
}

/// The central identity the paper leans on: P(X >= k) for X ~ Bin(n, p)
/// equals I_p(k, n - k + 1). Swept over a parameter grid.
class BetaBinomialIdentity
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BetaBinomialIdentity, TailEqualsBeta) {
  auto [n, k, p] = GetParam();
  const double tail = binomial_tail_at_least(n, k, p);
  const double beta = at_least_k_of_n(k, n, p);
  EXPECT_NEAR(tail, beta, 1e-9) << "n=" << n << " k=" << k << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BetaBinomialIdentity,
    ::testing::Combine(::testing::Values(3, 7, 12, 20),
                       ::testing::Values(1, 2, 3, 5, 7),
                       ::testing::Values(0.05, 0.3, 0.5, 0.9, 0.99)));

TEST(SpecialFunctions, AtLeastKOfNDegenerateCases) {
  EXPECT_DOUBLE_EQ(at_least_k_of_n(0.0, 5.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(at_least_k_of_n(-1.0, 5.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(at_least_k_of_n(6.0, 5.0, 0.5), 0.0);
}

TEST(SpecialFunctions, AtLeastKOfNAcceptsRealCounts) {
  // The paper's g = 0.51 N_B is non-integer; the value must interpolate
  // smoothly between the bracketing integers.
  const double lower = at_least_k_of_n(3, 4.0, 0.9);
  const double mid = at_least_k_of_n(3, 4.5, 0.9);
  const double upper = at_least_k_of_n(3, 5.0, 0.9);
  EXPECT_GT(mid, lower);
  EXPECT_LT(mid, upper);
}

TEST(SpecialFunctions, MonotoneInP) {
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    double value = at_least_k_of_n(3, 7.0, p);
    EXPECT_GE(value, prev - 1e-12);
    prev = value;
  }
}

TEST(SpecialFunctions, MonotoneDecreasingInThreshold) {
  double prev = 1.0;
  for (int k = 0; k <= 7; ++k) {
    double value = at_least_k_of_n(k, 7.0, 0.6);
    EXPECT_LE(value, prev + 1e-12);
    prev = value;
  }
}

TEST(SpecialFunctions, LogBetaMatchesFactorials) {
  // B(a,b) = (a-1)!(b-1)!/(a+b-1)! for integers.
  EXPECT_NEAR(std::exp(log_beta(3, 4)), 2.0 * 6.0 / 720.0, 1e-12);
}

}  // namespace
}  // namespace lw::analysis
