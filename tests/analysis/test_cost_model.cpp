// Cost model (Section 5.2): storage, watch sizing, bandwidth.
#include <gtest/gtest.h>

#include "analysis/cost_model.h"
#include "util/math_util.h"

namespace lw::analysis {
namespace {

TEST(CostModel, DensityConversionsRoundTrip) {
  const double d = density_from_neighbors(30.0, 8.0);
  EXPECT_NEAR(neighbors_from_density(30.0, d), 8.0, 1e-9);
  EXPECT_NEAR(kPi * 900.0 * d, 8.0, 1e-9);
}

TEST(CostModel, NeighborStorageUnderHalfKilobyteAtTen) {
  // The paper's headline figure: NBLS < 0.5 KB at an average of 10
  // neighbors per node.
  EXPECT_LT(neighbor_list_bytes(10.0), 512u);
  EXPECT_LT(neighbor_list_bytes_paper(10.0), 512u);
}

TEST(CostModel, ExactAndPaperFormsAgreeRoughly) {
  for (double nb : {4.0, 8.0, 10.0, 16.0}) {
    const double exact = static_cast<double>(neighbor_list_bytes(nb));
    const double paper = static_cast<double>(neighbor_list_bytes_paper(nb));
    EXPECT_NEAR(exact / paper, 1.0, 0.45) << "N_B = " << nb;
  }
}

TEST(CostModel, NodesWatchingRepMatchesPaperExample) {
  // Paper: N = 100, h = 4, and their density => N_REP = 17, so each node
  // watches (17/100) * f replies.
  CostParams params;
  params.radio_range = 30.0;
  params.average_route_hops = 4.0;
  params.network_size = 100;
  // Find the density the paper's example implies: N_REP = 2 r^2 (h+1) d.
  params.node_density = 17.0 / (2.0 * 900.0 * 5.0);
  EXPECT_NEAR(nodes_watching_rep(params), 17.0, 0.01);

  params.route_establishment_rate = 0.25;  // f = 1 route per 4 time units
  // "each node watches only 4 route replies every 100 time units"
  EXPECT_NEAR(reps_watched_per_node(params) * 100.0, 4.25, 0.1);
}

TEST(CostModel, WatchBufferStaysTiny) {
  CostParams params;
  params.average_neighbors = 8.0;
  params.route_establishment_rate = 0.5;
  // With a sub-second residence, the expected occupancy is well below the
  // paper's 4-entry budget.
  EXPECT_LT(watch_buffer_entries(params, 2.5), 4.0);
  EXPECT_LE(watch_buffer_bytes(4.0), 80u);
}

TEST(CostModel, AlertBufferBytes) {
  EXPECT_EQ(alert_buffer_bytes(3), 12u);
}

TEST(CostModel, TotalStateWellUnderOneKilobyte) {
  CostParams params;
  params.average_neighbors = 8.0;
  params.route_establishment_rate = 0.5;
  const std::size_t total = total_state_bytes(params, 2.5, 3);
  EXPECT_LT(total, 1024u)
      << "a MICA-class mote can afford the whole LITEWORP state";
  EXPECT_GT(total, 100u) << "sanity: the model is not degenerate";
}

TEST(CostModel, DiscoveryBandwidthOnceOnly) {
  // One HELLO, N_B authenticated replies, one list broadcast: a few
  // hundred bytes per node, spent exactly once per deployment.
  const std::size_t bytes = discovery_bandwidth_bytes(8.0);
  EXPECT_GT(bytes, 200u);
  EXPECT_LT(bytes, 1000u);
}

TEST(CostModel, DetectionBandwidthSmall) {
  const std::size_t bytes = detection_bandwidth_bytes(8.0);
  EXPECT_LT(bytes, 1500u) << "an alert plus its relays";
}

TEST(CostModel, StorageGrowsQuadraticallyWithDensity) {
  EXPECT_GT(neighbor_list_bytes(16.0), 3u * neighbor_list_bytes(8.0));
}

}  // namespace
}  // namespace lw::analysis
