// Coverage analysis (Section 5.1): geometry constants and the shapes of
// Figures 6(a), 6(b), and the analytic Figure 10 curve.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "util/math_util.h"

namespace lw::analysis {
namespace {

TEST(Geometry, LensAreaEdgeCases) {
  EXPECT_NEAR(lens_area(0.0, 1.0), kPi, 1e-12) << "coincident discs";
  EXPECT_NEAR(lens_area(2.0, 1.0), 0.0, 1e-12) << "tangent discs";
  EXPECT_THROW(lens_area(0.5, 0.0), std::invalid_argument);
}

TEST(Geometry, LensAreaAtFullSeparation) {
  // A(r) = r^2 (2 pi/3 - sqrt(3)/2) ~= 1.2284 r^2: the minimum guard area
  // (the paper rounds the pi-fraction to 0.36 pi r^2; exact is 0.391).
  const double expected = 2.0 * kPi / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(lens_area(1.0, 1.0), expected, 1e-12);
  EXPECT_NEAR(min_lens_area(2.0), expected * 4.0, 1e-9) << "scales as r^2";
  EXPECT_NEAR(lens_area(1.0, 1.0) / kPi, 0.391, 0.001);
}

TEST(Geometry, LensAreaMonotoneDecreasingInDistance) {
  double prev = lens_area(0.0, 1.0);
  for (double x = 0.05; x <= 2.0; x += 0.05) {
    double area = lens_area(x, 1.0);
    EXPECT_LT(area, prev);
    prev = area;
  }
}

TEST(Geometry, ExpectedLensAreaExact) {
  // E[A] = Int_0^r A(x) 2x/r^2 dx = 1.8426 r^2 exactly; the paper rounds
  // it down to "1.6 r^2" (and g to 0.51 N_B). We pin the exact value and
  // note the paper's figure as an approximation.
  EXPECT_NEAR(expected_lens_area(1.0), 1.8426, 0.001);
  EXPECT_NEAR(expected_lens_area(30.0) / (30.0 * 30.0), 1.8426, 0.001);
}

TEST(Geometry, ExpectedGuardsExact) {
  // g = E[A]/(pi r^2) N_B = 0.5865 N_B (paper: 0.51 N_B);
  // g_min = A(r)/(pi r^2) N_B = 0.391 N_B (paper: "0.36").
  EXPECT_NEAR(expected_guards(1.0), 0.5865, 0.001);
  EXPECT_NEAR(expected_guards(8.0), 8.0 * 0.5865, 0.01);
  EXPECT_NEAR(min_guards(1.0), 0.391, 0.001);
}

TEST(Coverage, CollisionProbabilityLinearInDensity) {
  CoverageParams params;  // P_C = 0.05 at N_B = 3
  EXPECT_NEAR(collision_probability(params, 3.0), 0.05, 1e-12);
  EXPECT_NEAR(collision_probability(params, 6.0), 0.10, 1e-12);
  EXPECT_NEAR(collision_probability(params, 120.0), params.pc_max, 1e-12)
      << "clamped";
}

TEST(Coverage, GuardAlertProbabilityHighAtLowPc) {
  CoverageParams params;  // k = 5 of kappa = 7
  EXPECT_GT(guard_alert_probability(params, 0.05), 0.99);
  EXPECT_LT(guard_alert_probability(params, 0.9), 0.01);
}

TEST(Coverage, DetectionRisesThenFalls) {
  // Figure 6(a): detection probability increases with density (more
  // guards) then collapses once collisions dominate.
  CoverageParams params;
  auto curve = detection_vs_neighbors(params, 3.0, 40.0, 1.0);
  ASSERT_GT(curve.size(), 10u);
  // Find the peak.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].y > curve[peak].y) peak = i;
  }
  EXPECT_GT(peak, 0u) << "must rise initially";
  EXPECT_LT(peak, curve.size() - 1) << "must fall eventually";
  EXPECT_GT(curve[peak].y, 0.9) << "near-certain detection at the sweet spot";
  EXPECT_LT(curve.back().y, 0.2) << "collapses at extreme density";
}

TEST(Coverage, DetectionHighAroundTableTwoDensity) {
  CoverageParams params;
  EXPECT_GT(detection_probability(params, 8.0), 0.5)
      << "the evaluated N_B = 8 operating point must detect reliably";
}

TEST(Coverage, FalseAlarmTinyEverywhere) {
  // Figure 6(b): the worst-case false-alarm probability is negligible
  // (the paper plots it scaled by 1e-3).
  CoverageParams params;
  auto curve = false_alarm_vs_neighbors(params, 3.0, 40.0, 1.0);
  for (const auto& point : curve) {
    EXPECT_LT(point.y, 1e-2) << "N_B = " << point.x;
  }
}

TEST(Coverage, FalseAlarmNonMonotone) {
  // Rises with guard count, falls when collisions hide the forward too.
  CoverageParams params;
  auto curve = false_alarm_vs_neighbors(params, 3.0, 60.0, 1.0);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].y > curve[peak].y) peak = i;
  }
  EXPECT_GT(peak, 0u);
  EXPECT_LT(peak, curve.size() - 1);
}

TEST(Coverage, FalseSuspicionFormula) {
  EXPECT_DOUBLE_EQ(false_suspicion_probability(0.05), 0.05 * 0.95);
  EXPECT_DOUBLE_EQ(false_suspicion_probability(0.0), 0.0);
}

TEST(Coverage, DetectionDecreasesWithGamma) {
  // Figure 10's analytic curve: raising the detection confidence index
  // demands more independent guards and lowers detection probability.
  CoverageParams params;
  auto curve = detection_vs_gamma(params, 15.0, 2, 8);
  ASSERT_EQ(curve.size(), 7u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].y, curve[i - 1].y + 1e-12)
        << "gamma=" << curve[i].x;
  }
  EXPECT_GT(curve.front().y, 0.9) << "gamma=2 at N_B=15";
}

TEST(Coverage, RequiredDensityQuery) {
  // The design question the paper poses: density needed for p% coverage.
  CoverageParams params;
  double nb = neighbors_for_detection(params, 0.95, 3.0, 40.0);
  ASSERT_GT(nb, 0.0);
  EXPECT_GE(detection_probability(params, nb), 0.95);
  EXPECT_LT(detection_probability(params, nb - 0.5), 0.95)
      << "returned density should be minimal-ish";
}

TEST(Coverage, UnattainableTargetReturnsNegative) {
  CoverageParams params;
  params.pc_reference = 0.9;  // hopeless channel
  EXPECT_LT(neighbors_for_detection(params, 0.99, 3.0, 40.0), 0.0);
}

}  // namespace
}  // namespace lw::analysis
