// report library: input normalization (bench rows + sweep JSON), metric
// classification, markdown rendering, A/B diff verdicts, and the
// BENCH_history.json append/check round trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "report/report.h"
#include "util/json.h"

namespace lw::report {
namespace {

std::vector<CaseMetrics> cases_from(const std::string& json) {
  return parse_cases(util::JsonValue::parse(json));
}

const char kBenchRows[] = R"([
  {"case":"n50_clean","nodes":50,"frames_transmitted":1200,
   "queue_high_water":31,"frames_per_second":250000.5,"wall_seconds":0.8},
  {"case":"n50_collisions","nodes":50,"frames_transmitted":1500,
   "queue_high_water":40,"frames_per_second":240000.0,"wall_seconds":0.9}
])";

TEST(Report, ClassifiesWallMetricsByName) {
  EXPECT_TRUE(is_wall_metric("wall_seconds"));
  EXPECT_TRUE(is_wall_metric("cpu_seconds"));
  EXPECT_TRUE(is_wall_metric("frames_per_second"));
  EXPECT_TRUE(is_wall_metric("profile.self_seconds"));
  EXPECT_FALSE(is_wall_metric("frames_transmitted"));
  EXPECT_FALSE(is_wall_metric("queue_high_water"));
  EXPECT_FALSE(is_wall_metric("mem_slab_slots"));
}

TEST(Report, ParsesBenchRowArrays) {
  const auto cases = cases_from(kBenchRows);
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].name, "n50_clean");
  EXPECT_TRUE(cases[0].has("frames_transmitted"));
  EXPECT_DOUBLE_EQ(cases[0].get("frames_transmitted", 0.0), 1200.0);
  EXPECT_DOUBLE_EQ(cases[1].get("queue_high_water", 0.0), 40.0);
  // "case" itself is the name, not a metric.
  EXPECT_FALSE(cases[0].has("case"));
}

TEST(Report, ParsesSweepJson) {
  const auto cases = cases_from(R"({
    "points":[
      {"label":"baseline",
       "aggregate":{"runs":2,"data_delivered_mean":812.5},
       "counters":{"phy.tx":42000},
       "replicas":[
         {"seed":1,"series":{"queue_high_water":17,
          "memory_high_water":{"slab_slots":64,"watch_entries":120,
                               "neighbor_bytes":9000,
                               "defense_storage_bytes":4000}}},
         {"seed":2,"series":{"queue_high_water":21,
          "memory_high_water":{"slab_slots":80,"watch_entries":110,
                               "neighbor_bytes":9100,
                               "defense_storage_bytes":3900}}}
       ]}
    ]})");
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].name, "baseline");
  EXPECT_DOUBLE_EQ(cases[0].get("counter.phy.tx", 0.0), 42000.0);
  // Replica series roll up to the max across replicas.
  EXPECT_DOUBLE_EQ(cases[0].get("series.queue_high_water", 0.0), 21.0);
  EXPECT_DOUBLE_EQ(cases[0].get("series.mem_slab_slots", 0.0), 80.0);
  EXPECT_DOUBLE_EQ(cases[0].get("series.mem_watch_entries", 0.0), 120.0);
}

TEST(Report, RejectsUnknownShapes) {
  EXPECT_THROW(cases_from(R"("just a string")"), std::runtime_error);
  EXPECT_THROW(cases_from(R"({"no_points_here":1})"), std::runtime_error);
}

TEST(Report, RendersMarkdownWithWallMetricsSegregated) {
  const std::string md = render_markdown(cases_from(kBenchRows), "My title");
  EXPECT_NE(md.find("My title"), std::string::npos);
  EXPECT_NE(md.find("n50_clean"), std::string::npos);
  EXPECT_NE(md.find("frames_transmitted"), std::string::npos);
  EXPECT_NE(md.find("wall_seconds"), std::string::npos);
  // Deterministic metrics are listed before wall metrics within a case.
  const std::size_t det = md.find("frames_transmitted");
  const std::size_t wall = md.find("wall_seconds");
  EXPECT_LT(det, wall);
}

TEST(Report, DiffOfIdenticalRunsPasses) {
  const DiffReport diff =
      diff_cases(cases_from(kBenchRows), cases_from(kBenchRows), {});
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_NE(diff.markdown.find("0 regression"), std::string::npos);
}

TEST(Report, DeterministicMismatchIsDrift) {
  auto b = cases_from(kBenchRows);
  b[0].metrics[1].second += 1.0;  // frames_transmitted 1200 -> 1201
  const DiffReport diff = diff_cases(cases_from(kBenchRows), b, {});
  EXPECT_EQ(diff.regressions, 1);
  EXPECT_NE(diff.markdown.find("DRIFT"), std::string::npos);
  EXPECT_NE(diff.markdown.find("frames_transmitted"), std::string::npos);
}

TEST(Report, WallSlowdownBeyondToleranceIsRegression) {
  auto b = cases_from(kBenchRows);
  // wall_seconds 0.8 -> 1.2: a 50% slowdown, far past the 10% default.
  for (auto& [key, value] : b[0].metrics) {
    if (key == "wall_seconds") value = 1.2;
  }
  const DiffReport diff = diff_cases(cases_from(kBenchRows), b, {});
  EXPECT_EQ(diff.regressions, 1);
  EXPECT_NE(diff.markdown.find("REGRESSION"), std::string::npos);
}

TEST(Report, WallNoiseWithinToleranceAndSpeedupsPass) {
  auto b = cases_from(kBenchRows);
  for (auto& [key, value] : b[0].metrics) {
    if (key == "wall_seconds") value = 0.84;          // +5%: noise
    if (key == "frames_per_second") value = 400000.0;  // faster: fine
  }
  const DiffReport diff = diff_cases(cases_from(kBenchRows), b, {});
  EXPECT_EQ(diff.regressions, 0);
}

TEST(Report, LowerPerSecondIsASlowdown) {
  auto b = cases_from(kBenchRows);
  for (auto& [key, value] : b[0].metrics) {
    if (key == "frames_per_second") value = 100000.0;  // -60% throughput
  }
  const DiffReport diff = diff_cases(cases_from(kBenchRows), b, {});
  EXPECT_EQ(diff.regressions, 1);
}

TEST(Report, CasesInOnlyOneRunAreListedNotCounted) {
  auto a = cases_from(kBenchRows);
  auto b = cases_from(kBenchRows);
  b.pop_back();
  const DiffReport diff = diff_cases(a, b, {});
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_NE(diff.markdown.find("n50_collisions"), std::string::npos);
}

TEST(Report, HistoryAppendAndCheckRoundTrip) {
  const auto cases = cases_from(kBenchRows);
  const std::string history = history_append("", "pr7", cases);
  // The ledger stores deterministic metrics only: portable across machines.
  EXPECT_NE(history.find("\"pr7\""), std::string::npos);
  EXPECT_NE(history.find("frames_transmitted"), std::string::npos);
  EXPECT_EQ(history.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(history.find("frames_per_second"), std::string::npos);

  const HistoryCheck ok = history_check(history, cases);
  EXPECT_TRUE(ok.ok) << ok.message;
}

TEST(Report, HistoryCheckFlagsDrift) {
  const auto cases = cases_from(kBenchRows);
  const std::string history = history_append("", "pr7", cases);
  auto drifted = cases;
  drifted[1].metrics[1].second += 5.0;  // frames_transmitted
  const HistoryCheck check = history_check(history, drifted);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.message.find("frames_transmitted"), std::string::npos);
}

TEST(Report, HistoryChecksAgainstNewestEntryOnly) {
  const auto old_cases = cases_from(kBenchRows);
  auto new_cases = old_cases;
  new_cases[0].metrics[1].second = 9999.0;  // frames_transmitted changed
  std::string history = history_append("", "old", old_cases);
  history = history_append(history, "new", new_cases);
  // Matches the newest entry: passes even though it differs from "old".
  EXPECT_TRUE(history_check(history, new_cases).ok);
  EXPECT_FALSE(history_check(history, old_cases).ok);
}

TEST(Report, HistoryTreatsNewCoverageAsPass) {
  const auto cases = cases_from(kBenchRows);
  const std::string history = history_append("", "pr7", cases);
  auto wider = cases;
  wider[0].metrics.push_back({"brand_new_metric", 7.0});
  wider.push_back({"n100_new_case", {{"frames_transmitted", 1.0}}});
  EXPECT_TRUE(history_check(history, wider).ok);
}

TEST(Report, HistoryAppendRejectsCorruptDocuments) {
  EXPECT_THROW(history_append("{not json", "x", {}), std::exception);
  EXPECT_THROW(history_append(R"({"entries":"wrong"})", "x", {}),
               std::exception);
}

TEST(Report, EmptyHistoryPassesCheck) {
  EXPECT_TRUE(history_check("", cases_from(kBenchRows)).ok);
}

}  // namespace
}  // namespace lw::report
