// HMAC-SHA-256 against the RFC 4231 test vectors, plus tag semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.h"

namespace lw::crypto {
namespace {

Key key_of(std::size_t len, std::uint8_t byte) { return Key(len, byte); }

std::string hmac_hex(const Key& key, std::string_view message) {
  return to_hex(hmac_sha256(key, message));
}

// RFC 4231, test case 1.
TEST(Hmac, Rfc4231Case1) {
  EXPECT_EQ(hmac_hex(key_of(20, 0x0b), "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231, test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  Key key{'J', 'e', 'f', 'e'};
  EXPECT_EQ(hmac_hex(key, "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231, test case 3: 20 x 0xaa key, 50 x 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  std::string data(50, static_cast<char>(0xdd));
  EXPECT_EQ(hmac_hex(key_of(20, 0xaa), data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231, test case 6: key larger than one block (131 bytes).
TEST(Hmac, Rfc4231Case6OversizedKey) {
  EXPECT_EQ(hmac_hex(key_of(131, 0xaa),
                     "Test Using Larger Than Block-Size Key - Hash Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 4231, test case 7: oversized key AND long data.
TEST(Hmac, Rfc4231Case7) {
  EXPECT_EQ(
      hmac_hex(key_of(131, 0xaa),
               "This is a test using a larger than block-size key and a "
               "larger than block-size data. The key needs to be hashed "
               "before being used by the HMAC algorithm."),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(hmac_hex(key_of(16, 0x01), "msg"),
            hmac_hex(key_of(16, 0x02), "msg"));
}

TEST(Hmac, MessageSensitivity) {
  Key key = key_of(16, 0x01);
  EXPECT_NE(hmac_hex(key, "msg-a"), hmac_hex(key, "msg-b"));
}

TEST(Hmac, DigestsEqualConstantTimeCompare) {
  Digest a = hmac_sha256(key_of(8, 1), "x");
  Digest b = a;
  EXPECT_TRUE(digests_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digests_equal(a, b));
}

TEST(AuthTag, MakeAndVerifyRoundTrip) {
  Key key = key_of(16, 0x42);
  AuthTag tag = make_tag(key, "hello world");
  EXPECT_TRUE(verify_tag(key, "hello world", tag));
}

TEST(AuthTag, WrongMessageFails) {
  Key key = key_of(16, 0x42);
  AuthTag tag = make_tag(key, "hello world");
  EXPECT_FALSE(verify_tag(key, "hello worle", tag));
}

TEST(AuthTag, WrongKeyFails) {
  AuthTag tag = make_tag(key_of(16, 0x42), "hello world");
  EXPECT_FALSE(verify_tag(key_of(16, 0x43), "hello world", tag));
}

TEST(AuthTag, TagIsDigestPrefix) {
  Key key = key_of(16, 0x42);
  Digest digest = hmac_sha256(key, "prefix-check");
  AuthTag tag = make_tag(key, "prefix-check");
  EXPECT_TRUE(std::equal(tag.begin(), tag.end(), digest.begin()));
}

TEST(AuthTag, FlippedBitFails) {
  Key key = key_of(16, 0x42);
  AuthTag tag = make_tag(key, "bits");
  for (std::size_t i = 0; i < tag.size(); ++i) {
    AuthTag mutated = tag;
    mutated[i] ^= 0x80;
    EXPECT_FALSE(verify_tag(key, "bits", mutated)) << "byte " << i;
  }
}

TEST(HmacKey, MidstateDigestMatchesOneShotHmac) {
  // The cached-pad fast path must be bit-identical to the reference
  // one-shot computation for every key-size class (shorter than a block,
  // exactly one block, hashed-down oversized) across message lengths that
  // straddle the SHA-256 block and padding boundaries.
  const std::size_t key_lengths[] = {0, 1, 20, 63, 64, 65, 131, 200};
  const std::size_t msg_lengths[] = {0, 1, 55, 56, 63, 64, 65, 119, 128, 300};
  for (std::size_t key_len : key_lengths) {
    const Key key = key_of(key_len, static_cast<std::uint8_t>(0x37 + key_len));
    const HmacKey prepared{key};
    for (std::size_t msg_len : msg_lengths) {
      const std::string message(msg_len, static_cast<char>('a' + msg_len % 26));
      EXPECT_EQ(to_hex(prepared.digest(message)),
                to_hex(hmac_sha256(key, message)))
          << "key_len=" << key_len << " msg_len=" << msg_len;
    }
  }
}

TEST(HmacKey, ReusedKeyProducesIndependentDigests) {
  // One prepared key signs many messages; each digest must match a fresh
  // computation (the midstates are immutable, not consumed).
  const Key key = key_of(32, 0x5c);
  const HmacKey prepared{key};
  for (int i = 0; i < 16; ++i) {
    const std::string message = "message-" + std::to_string(i);
    EXPECT_EQ(to_hex(prepared.digest(message)),
              to_hex(hmac_sha256(key, message)));
  }
}

TEST(HmacKey, TagAndVerifyRoundTrip) {
  const Key key = key_of(16, 0x42);
  const HmacKey prepared{key};
  const AuthTag tag = prepared.tag("round-trip");
  EXPECT_TRUE(prepared.verify("round-trip", tag));
  EXPECT_FALSE(prepared.verify("round-trap", tag));
  // And it agrees with the free-function tag path.
  EXPECT_EQ(tag, make_tag(key, "round-trip"));
}

}  // namespace
}  // namespace lw::crypto
