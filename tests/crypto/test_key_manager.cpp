// Pairwise key pre-distribution semantics.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "crypto/key_manager.h"

namespace lw::crypto {
namespace {

TEST(KeyManager, PairwiseKeySymmetric) {
  KeyManager keys(123);
  EXPECT_EQ(keys.pairwise_key(3, 9), keys.pairwise_key(9, 3));
}

TEST(KeyManager, DistinctPairsDistinctKeys) {
  KeyManager keys(123);
  std::set<Key> seen;
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      seen.insert(keys.pairwise_key(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 45u);
}

TEST(KeyManager, DifferentDeploymentsDifferentKeys) {
  KeyManager a(1);
  KeyManager b(2);
  EXPECT_NE(a.pairwise_key(0, 1), b.pairwise_key(0, 1));
}

TEST(KeyManager, SignVerifyRoundTrip) {
  KeyManager keys(7);
  AuthTag tag = keys.sign(2, 5, "hello-reply|2|5|1");
  EXPECT_TRUE(keys.verify(2, 5, "hello-reply|2|5|1", tag));
  EXPECT_TRUE(keys.verify(5, 2, "hello-reply|2|5|1", tag))
      << "verification must work from either end of the pair";
}

TEST(KeyManager, CrossPairVerificationFails) {
  KeyManager keys(7);
  AuthTag tag = keys.sign(2, 5, "message");
  EXPECT_FALSE(keys.verify(2, 6, "message", tag))
      << "a tag for pair {2,5} must not verify under pair {2,6}";
}

TEST(KeyManager, TamperedMessageFails) {
  KeyManager keys(7);
  AuthTag tag = keys.sign(2, 5, "original");
  EXPECT_FALSE(keys.verify(2, 5, "tampered", tag));
}

TEST(KeyManager, OutsiderForgeryFails) {
  KeyManager keys(7);
  // An external attacker without keys can only guess 8-byte tags.
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    EXPECT_FALSE(keys.verify(2, 5, "alert|accused=3", forge_tag(attempt)));
  }
}

TEST(KeyManager, KeyLengthIsDigestLength) {
  KeyManager keys(7);
  EXPECT_EQ(keys.pairwise_key(0, 1).size(), 32u);
}

TEST(KeyManager, CachedSignMatchesDerivedKeyHmac) {
  // sign() runs through the per-pair midstate cache; it must produce the
  // same tag as a from-scratch HMAC under the derived pairwise key, on the
  // first call (cache miss) and on repeats (cache hit).
  KeyManager keys(7);
  const Key pair_key = keys.pairwise_key(2, 5);
  const AuthTag expected = make_tag(pair_key, "cached-path");
  EXPECT_EQ(keys.sign(2, 5, "cached-path"), expected);
  EXPECT_EQ(keys.sign(2, 5, "cached-path"), expected) << "cache-hit path";
  EXPECT_EQ(keys.sign(5, 2, "cached-path"), expected)
      << "pair cache must be order-insensitive";
}

TEST(KeyManager, CachedVerifyRoundTripManyPairs) {
  KeyManager keys(12);
  for (NodeId a = 0; a < 12; ++a) {
    for (NodeId b = a + 1; b < 12; ++b) {
      const std::string message =
          "alert|" + std::to_string(a) + "|" + std::to_string(b);
      const AuthTag tag = keys.sign(a, b, message);
      EXPECT_TRUE(keys.verify(b, a, message, tag));
      EXPECT_FALSE(keys.verify(b, a, message + "x", tag));
    }
  }
}

}  // namespace
}  // namespace lw::crypto
