// SIMD-vs-scalar equivalence for the multi-buffer SHA-256 engine and the
// batched HMAC built on it. The multi-buffer kernel must be bit-identical
// to the incremental Sha256 class for every message length (block
// boundaries, padding spillover) and every batch size (full 8-lane groups,
// scalar tails). Runs under ASan/UBSan in CI like the rest of the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/key_manager.h"
#include "crypto/sha256.h"
#include "crypto/sha256_multi.h"
#include "util/rng.h"

namespace lw::crypto {
namespace {

/// Deterministic pseudo-random bytes (no seeding subtleties in tests).
std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return out;
}

Sha256State fresh_state() {
  Sha256 ctx;
  return ctx.save();
}

/// One-block-deep midstate (the HMAC pad shape).
Sha256State pad_state(std::uint8_t fill) {
  std::array<std::uint8_t, 64> pad;
  pad.fill(fill);
  Sha256 ctx;
  ctx.update(pad);
  return ctx.save();
}

TEST(Sha256Multi, ReportsAnEngine) {
  EXPECT_GE(sha256_multi_lanes(), 1u);
  if (sha256_multi_simd()) {
    EXPECT_EQ(sha256_multi_lanes(), 8u);
  }
}

TEST(Sha256Multi, MatchesScalarAcrossLengthsAndCounts) {
  Rng rng(0x5EEDu);
  // Lengths probe padding edges: empty, sub-block, exact blocks, the
  // 55/56/63/64 pad boundaries, multi-block.
  const std::size_t lengths[] = {0,  1,  3,  31,  55,  56,  57, 63,
                                 64, 65, 96, 127, 128, 200, 513};
  for (std::size_t len : lengths) {
    for (std::size_t count = 1; count <= 9; ++count) {
      std::vector<std::vector<std::uint8_t>> messages;
      std::vector<const std::uint8_t*> ptrs;
      std::vector<Sha256State> starts;
      for (std::size_t i = 0; i < count; ++i) {
        messages.push_back(random_bytes(rng, len));
        ptrs.push_back(messages.back().data());
        starts.push_back(fresh_state());
      }
      std::vector<Digest> got(count);
      sha256_many(starts.data(), ptrs.data(), len, count, got.data());
      for (std::size_t i = 0; i < count; ++i) {
        const Digest want = Sha256::hash(
            std::span<const std::uint8_t>(messages[i].data(), len));
        EXPECT_EQ(got[i], want) << "len=" << len << " count=" << count
                                << " lane=" << i;
      }
    }
  }
}

TEST(Sha256Multi, ResumesMidstates) {
  Rng rng(0xABCDu);
  // Lanes resume from one-block-deep midstates (the HMAC shape): the
  // padding must account for the absorbed prefix length.
  for (std::size_t len : {0u, 8u, 32u, 64u, 100u}) {
    constexpr std::size_t kCount = 8;
    std::vector<std::vector<std::uint8_t>> messages;
    std::vector<const std::uint8_t*> ptrs;
    std::vector<Sha256State> starts;
    for (std::size_t i = 0; i < kCount; ++i) {
      messages.push_back(random_bytes(rng, len));
      ptrs.push_back(messages.back().data());
      starts.push_back(pad_state(static_cast<std::uint8_t>(0x36 + i)));
    }
    std::vector<Digest> got(kCount);
    sha256_many(starts.data(), ptrs.data(), len, kCount, got.data());
    for (std::size_t i = 0; i < kCount; ++i) {
      Sha256 ctx;
      ctx.restore(starts[i]);
      ctx.update(std::span<const std::uint8_t>(messages[i].data(), len));
      EXPECT_EQ(got[i], ctx.finalize()) << "len=" << len << " lane=" << i;
    }
  }
}

TEST(Sha256Multi, SharedPayloadAcrossLanes) {
  // The fan-out signing shape: every lane hashes the SAME bytes after a
  // different midstate; data pointers alias.
  Rng rng(0x1234u);
  const auto payload = random_bytes(rng, 77);
  constexpr std::size_t kCount = 11;  // full group + scalar tail
  std::vector<const std::uint8_t*> ptrs(kCount, payload.data());
  std::vector<Sha256State> starts;
  for (std::size_t i = 0; i < kCount; ++i) {
    starts.push_back(pad_state(static_cast<std::uint8_t>(i * 7 + 1)));
  }
  std::vector<Digest> got(kCount);
  sha256_many(starts.data(), ptrs.data(), payload.size(), kCount, got.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    Sha256 ctx;
    ctx.restore(starts[i]);
    ctx.update(std::span<const std::uint8_t>(payload.data(), payload.size()));
    EXPECT_EQ(got[i], ctx.finalize()) << "lane=" << i;
  }
}

TEST(HmacBatchTest, SignMatchesSerialSign) {
  Rng rng(0x77u);
  for (std::size_t count : {1u, 2u, 7u, 8u, 9u, 16u, 23u}) {
    std::vector<HmacKey> keys;
    HmacBatch batch;
    for (std::size_t i = 0; i < count; ++i) {
      const auto key_bytes = random_bytes(rng, 8 + i % 90);
      keys.emplace_back(std::span<const std::uint8_t>(key_bytes));
      batch.push(keys.back());
    }
    const std::string message = "batch-payload|" + std::to_string(count);
    std::vector<AuthTag> got(count);
    batch.sign_into(message, got.data());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(got[i], keys[i].tag(message)) << "count=" << count
                                              << " lane=" << i;
    }
  }
}

TEST(HmacBatchTest, VerifyAcceptsGoodAndFlagsBad) {
  Rng rng(0x99u);
  constexpr std::size_t kCount = 10;
  std::vector<HmacKey> keys;
  const std::string message = "verify-me";
  HmacBatch batch;
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto key_bytes = random_bytes(rng, 16);
    keys.emplace_back(std::span<const std::uint8_t>(key_bytes));
    AuthTag tag = keys.back().tag(message);
    if (i == 3 || i == 8) tag[0] ^= 0x5A;  // corrupt two lanes
    batch.push(keys.back(), tag);
  }
  EXPECT_FALSE(batch.verify_all(message));
  ASSERT_EQ(batch.results().size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(batch.results()[i], (i == 3 || i == 8) ? 0 : 1) << i;
  }

  batch.clear();
  for (auto& key : keys) batch.push(key, key.tag(message));
  EXPECT_TRUE(batch.verify_all(message));
}

TEST(KeyManagerBatch, SignBatchMatchesSerial) {
  KeyManager keys(0xFEEDFACEu);
  keys.reserve_nodes(32);
  const std::string message = "alert|accused=7|guard=3";
  std::vector<NodeId> peers = {0, 1, 5, 9, 12, 13, 14, 20, 21, 31};
  std::vector<AuthTag> got(peers.size());
  keys.sign_batch(3, peers, message, got.data());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(got[i], keys.sign(3, peers[i], message)) << i;
    EXPECT_TRUE(keys.verify(3, peers[i], message, got[i]));
  }
  EXPECT_TRUE(keys.verify_batch(3, peers, message, got.data()));
  got[4][2] ^= 0xFF;
  EXPECT_FALSE(keys.verify_batch(3, peers, message, got.data()));
}

TEST(KeyManagerDenseCache, MatchesUnreservedBehavior) {
  // The dense pair table is a cache layout change only: keys, tags and
  // verification outcomes must be identical with and without reservation,
  // and across the dense/overflow boundary.
  KeyManager dense(42);
  dense.reserve_nodes(16);
  KeyManager plain(42);
  const std::string message = "equivalence";
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = a + 1; b < 20; b += 3) {
      EXPECT_EQ(dense.pairwise_key(a, b), plain.pairwise_key(a, b));
      EXPECT_EQ(dense.sign(a, b, message), plain.sign(b, a, message));
      EXPECT_TRUE(plain.verify(a, b, message, dense.sign(a, b, message)));
    }
  }
  // Reference stability: holding one cached state across many new
  // insertions must stay valid (deque-backed storage).
  const HmacKey& held = dense.pairwise_state(0, 1);
  const AuthTag before = held.tag(message);
  for (NodeId b = 2; b < 16; ++b) (void)dense.pairwise_state(0, b);
  EXPECT_EQ(held.tag(message), before);
}

}  // namespace
}  // namespace lw::crypto
