// SHA-256 against the FIPS 180-4 / NIST CAVP short-message vectors.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace lw::crypto {
namespace {

std::string hash_hex(std::string_view message) {
  return to_hex(Sha256::hash(message));
}

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FourBlockMessage) {
  EXPECT_EQ(
      hash_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
               "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding forces an extra block.
  std::string message(64, 'x');
  Sha256 ctx;
  ctx.update(message);
  EXPECT_EQ(to_hex(ctx.finalize()), hash_hex(message));
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes fits length in one padded block; 56 does not — both paths.
  std::string m55(55, 'y');
  std::string m56(56, 'y');
  EXPECT_NE(hash_hex(m55), hash_hex(m56));
  EXPECT_EQ(hash_hex(m55).size(), 64u);
}

TEST(Sha256, IncrementalEqualsOneShot) {
  std::string message =
      "the quick brown fox jumps over the lazy dog, repeatedly and with "
      "great determination, across several update calls";
  Sha256 ctx;
  for (std::size_t i = 0; i < message.size(); i += 7) {
    ctx.update(std::string_view(message).substr(i, 7));
  }
  EXPECT_EQ(to_hex(ctx.finalize()), hash_hex(message));
}

TEST(Sha256, SingleByteIncrements) {
  std::string message = "incremental-byte-by-byte";
  Sha256 ctx;
  for (char c : message) ctx.update(std::string_view(&c, 1));
  EXPECT_EQ(to_hex(ctx.finalize()), hash_hex(message));
}

TEST(Sha256, ResetStartsFresh) {
  Sha256 ctx;
  ctx.update("garbage");
  (void)ctx.finalize();
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(to_hex(ctx.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DistinctMessagesDistinctDigests) {
  // Not a collision test, just a sanity sweep over near-identical inputs.
  std::vector<std::string> inputs;
  for (int i = 0; i < 64; ++i) {
    inputs.push_back("message-" + std::to_string(i));
  }
  std::set<std::string> digests;
  for (const auto& in : inputs) digests.insert(hash_hex(in));
  EXPECT_EQ(digests.size(), inputs.size());
}

TEST(Sha256, HexFormat) {
  std::string hex = hash_hex("abc");
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

}  // namespace
}  // namespace lw::crypto
