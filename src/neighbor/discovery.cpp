#include "neighbor/discovery.h"

#include <sstream>

#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::nbr {

Duration discovery_complete_time(const DiscoveryParams& params) {
  // Last list broadcast, plus its jitter, plus slack for MAC queueing and
  // ARQ backoffs (a list broadcast behind a dense reply queue can trail by
  // seconds at 40 kbps — and it MUST leave before the secure window ends).
  return params.list_broadcast_at + params.list_jitter_max + 6.0;
}

DiscoveryAgent::DiscoveryAgent(node::NodeEnv& env, NeighborTable& table,
                               DiscoveryParams params)
    : env_(env), table_(table), params_(params) {}

void DiscoveryAgent::start() {
  env_.simulator().schedule(env_.rng().uniform(0.0, params_.hello_jitter_max),
                            [this] { send_hello(); });
  env_.simulator().schedule(
      params_.list_broadcast_at +
          env_.rng().uniform(0.0, params_.list_jitter_max),
      [this] { broadcast_list(); });
}

void DiscoveryAgent::send_hello() {
  pkt::Packet hello = env_.packet_factory().make(pkt::PacketType::kHello);
  hello.origin = env_.id();
  hello.seq = ++hello_seq_;
  hello_time_ = env_.now();
  hello_sent_ = true;
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kNeighbor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kNbrHello,
             .node = env_.id()});
  }
  env_.send(std::move(hello));
}

const util::PoolString& DiscoveryAgent::reply_auth_message(NodeId replier,
                                                      NodeId announcer,
                                                      SeqNo hello_seq) {
  auth_buf_.clear();
  auth_buf_ += "hello-reply|";
  auth_buf_ += std::to_string(replier);
  auth_buf_ += '|';
  auth_buf_ += std::to_string(announcer);
  auth_buf_ += '|';
  auth_buf_ += std::to_string(hello_seq);
  return auth_buf_;
}

void DiscoveryAgent::send_reply(const pkt::Packet& hello) {
  pkt::Packet reply = env_.packet_factory().make(pkt::PacketType::kHelloReply);
  reply.origin = env_.id();
  reply.final_dst = hello.origin;
  reply.link_dst = hello.origin;
  reply.seq = hello.seq;
  reply.tag = env_.keys().sign(
      env_.id(), hello.origin,
      reply_auth_message(env_.id(), hello.origin, hello.seq));
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kNeighbor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kNbrReply,
             .node = env_.id(),
             .peer = hello.origin});
  }
  // Spread the reply burst that a HELLO provokes from every neighbor.
  env_.simulator().schedule(
      env_.rng().uniform(0.0, params_.reply_jitter_max),
      [this, reply = std::move(reply)]() mutable {
        env_.send(std::move(reply));
      });
}

void DiscoveryAgent::broadcast_list() {
  pkt::Packet list = env_.packet_factory().make(pkt::PacketType::kNeighborList);
  list.origin = env_.id();
  list.seq = 1;
  list.neighbor_list.assign(table_.neighbors().begin(),
                            table_.neighbors().end());
  list.auth_payload_into(auth_buf_);
  const util::PoolString& payload = auth_buf_;
  // One multi-buffer sweep tags the list for every member at once.
  sign_tags_.resize(list.neighbor_list.size());
  env_.keys().sign_batch(env_.id(), list.neighbor_list, payload,
                         sign_tags_.data());
  list.alert_auth.reserve(list.neighbor_list.size());
  for (std::size_t i = 0; i < list.neighbor_list.size(); ++i) {
    list.alert_auth.push_back({list.neighbor_list[i], sign_tags_[i]});
  }
  list_sent_ = true;
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kNeighbor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kNbrList,
             .node = env_.id(),
             .value = static_cast<double>(list.neighbor_list.size())});
  }
  env_.send(std::move(list));
}

void DiscoveryAgent::handle(const pkt::Packet& packet) {
  switch (packet.type) {
    case pkt::PacketType::kHello:
      handle_hello(packet);
      break;
    case pkt::PacketType::kHelloReply:
      handle_reply(packet);
      break;
    case pkt::PacketType::kNeighborList:
      handle_list(packet);
      break;
    default:
      break;
  }
}

void DiscoveryAgent::handle_hello(const pkt::Packet& packet) {
  if (packet.origin == env_.id()) return;
  // One reply per announcer; duplicate HELLOs (there should be none) are
  // ignored.
  if (!replied_to_.insert(packet.origin).second) return;
  send_reply(packet);
}

void DiscoveryAgent::handle_reply(const pkt::Packet& packet) {
  if (packet.final_dst != env_.id()) return;
  if (!hello_sent_ || env_.now() > hello_time_ + params_.reply_timeout) return;
  if (packet.seq != hello_seq_) return;
  const util::PoolString& message =
      reply_auth_message(packet.origin, env_.id(), packet.seq);
  if (!env_.keys().verify(packet.origin, env_.id(), message, packet.tag)) {
    ++rejected_replies_;
    LW_DEBUG << "node " << env_.id() << ": rejected unauthentic HELLO reply"
             << " claiming origin " << packet.origin;
    return;
  }
  table_.add_neighbor(packet.origin);
}

void DiscoveryAgent::handle_list(const pkt::Packet& packet) {
  if (packet.origin == env_.id()) return;
  packet.auth_payload_into(auth_buf_);
  const util::PoolString& payload = auth_buf_;
  for (const pkt::AlertAuth& entry : packet.alert_auth) {
    if (entry.recipient != env_.id()) continue;
    if (env_.keys().verify(packet.origin, env_.id(), payload, entry.tag)) {
      // A valid per-us tag proves the sender heard OUR reply (it put us in
      // R_A); links are bidirectional, so the sender is our neighbor even
      // if its own HELLO reply to us was lost. This repairs one-sided
      // discovery failures.
      table_.add_neighbor(packet.origin);
      table_.set_neighbor_list(packet.origin, packet.neighbor_list);
    } else {
      ++rejected_lists_;
      LW_DEBUG << "node " << env_.id()
               << ": rejected unauthentic neighbor list from "
               << packet.origin;
    }
    return;
  }
}

void DiscoveryAgent::bootstrap_from_oracle(const topo::DiscGraph& graph) {
  const NodeId self = env_.id();
  for (NodeId neighbor : graph.neighbors(self)) {
    table_.add_neighbor(neighbor);
  }
  for (NodeId neighbor : graph.neighbors(self)) {
    table_.set_neighbor_list(neighbor, graph.neighbors(neighbor));
  }
  hello_sent_ = true;
  list_sent_ = true;
}

}  // namespace lw::nbr
