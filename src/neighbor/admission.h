// Receiver-side packet admission (the neighbor-knowledge checks).
//
// With LITEWORP enabled a node applies these rules to every routed frame it
// is asked to process:
//   1. the claimed transmitter must be a first-hop neighbor — this alone
//      defeats the high-power (3.3) and packet-relay (3.4) wormhole modes;
//   2. the claimed transmitter must not be revoked (isolation);
//   3. an announced previous hop must appear in the transmitter's stored
//      neighbor list R_tx ("C discards the packet if A is not a second hop
//      neighbor") — this defeats the naive encapsulation/out-of-band replay
//      that names the remote colluder as previous hop;
//   4. a revoked previous hop poisons the packet (no traffic is accepted
//      from a revoked node, even transitively).
#pragma once

#include <cstdint>

#include "neighbor/neighbor_table.h"
#include "packet/packet.h"

namespace lw::nbr {

enum class Admission {
  kAccept,
  kUnknownSender,   // claimed_tx not a first-hop neighbor
  kRevokedSender,   // claimed_tx revoked
  kBogusPrevHop,    // announced prev hop not in R_claimed_tx
  kRevokedPrevHop,  // announced prev hop revoked
};

const char* to_string(Admission verdict);

struct AdmissionStats {
  std::uint64_t accepted = 0;
  std::uint64_t unknown_sender = 0;
  std::uint64_t revoked_sender = 0;
  std::uint64_t bogus_prev_hop = 0;
  std::uint64_t revoked_prev_hop = 0;

  void record(Admission verdict);
  std::uint64_t total_rejected() const {
    return unknown_sender + revoked_sender + bogus_prev_hop +
           revoked_prev_hop;
  }
};

/// Applies the admission rules for a routed frame (REQ/REP/DATA) received
/// by `self`. Discovery traffic is verified cryptographically instead and
/// ALERTs carry their own authentication; neither goes through here.
Admission check_frame(const NeighborTable& table, const pkt::Packet& packet);

}  // namespace lw::nbr
