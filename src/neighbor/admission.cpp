#include "neighbor/admission.h"

namespace lw::nbr {

const char* to_string(Admission verdict) {
  switch (verdict) {
    case Admission::kAccept:
      return "accept";
    case Admission::kUnknownSender:
      return "unknown-sender";
    case Admission::kRevokedSender:
      return "revoked-sender";
    case Admission::kBogusPrevHop:
      return "bogus-prev-hop";
    case Admission::kRevokedPrevHop:
      return "revoked-prev-hop";
  }
  return "?";
}

void AdmissionStats::record(Admission verdict) {
  switch (verdict) {
    case Admission::kAccept:
      ++accepted;
      break;
    case Admission::kUnknownSender:
      ++unknown_sender;
      break;
    case Admission::kRevokedSender:
      ++revoked_sender;
      break;
    case Admission::kBogusPrevHop:
      ++bogus_prev_hop;
      break;
    case Admission::kRevokedPrevHop:
      ++revoked_prev_hop;
      break;
  }
}

Admission check_frame(const NeighborTable& table, const pkt::Packet& packet) {
  const NodeId sender = packet.claimed_tx;
  if (!table.knows_neighbor(sender)) return Admission::kUnknownSender;
  if (table.is_revoked(sender)) return Admission::kRevokedSender;

  const NodeId prev = packet.announced_prev_hop;
  if (prev == kInvalidNode) {
    // Only origination transmissions (a REQ leaving its source, a REP
    // leaving the destination, a DATA leaving its origin) may omit the
    // previous-hop announcement; a forwarder omitting it is cheating.
    return packet.origin == sender ? Admission::kAccept
                                   : Admission::kBogusPrevHop;
  }
  {
    if (table.is_revoked(prev)) return Admission::kRevokedPrevHop;
    // We can only validate the previous hop when we hold R_sender; a
    // missing list (should not happen after discovery) fails closed.
    if (!table.in_list_of(sender, prev)) return Admission::kBogusPrevHop;
  }
  return Admission::kAccept;
}

}  // namespace lw::nbr
