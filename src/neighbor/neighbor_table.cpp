#include "neighbor/neighbor_table.h"

#include <algorithm>

namespace lw::nbr {

void NeighborTable::add_neighbor(NodeId id) {
  if (neighbors_.insert(id).second) order_.push_back(id);
}

bool NeighborTable::knows_neighbor(NodeId id) const {
  return neighbors_.count(id) != 0;
}

bool NeighborTable::is_active_neighbor(NodeId id) const {
  return knows_neighbor(id) && !is_revoked(id);
}

void NeighborTable::set_neighbor_list(NodeId owner, std::vector<NodeId> list) {
  if (!knows_neighbor(owner)) return;
  list_sets_[owner] = std::unordered_set<NodeId>(list.begin(), list.end());
  lists_[owner] = std::move(list);
}

bool NeighborTable::has_list_of(NodeId owner) const {
  return lists_.count(owner) != 0;
}

const std::vector<NodeId>* NeighborTable::list_of(NodeId owner) const {
  auto it = lists_.find(owner);
  return it == lists_.end() ? nullptr : &it->second;
}

bool NeighborTable::in_list_of(NodeId owner, NodeId candidate) const {
  auto it = list_sets_.find(owner);
  return it != list_sets_.end() && it->second.count(candidate) != 0;
}

bool NeighborTable::is_within_two_hops(NodeId id) const {
  if (knows_neighbor(id)) return true;
  return std::any_of(list_sets_.begin(), list_sets_.end(),
                     [id](const auto& entry) {
                       return entry.second.count(id) != 0;
                     });
}

void NeighborTable::revoke(NodeId id) {
  if (knows_neighbor(id)) revoked_.insert(id);
}

bool NeighborTable::is_revoked(NodeId id) const {
  return revoked_.count(id) != 0;
}

std::vector<NodeId> NeighborTable::active_neighbors() const {
  std::vector<NodeId> active;
  active.reserve(order_.size());
  for (NodeId id : order_) {
    if (!is_revoked(id)) active.push_back(id);
  }
  return active;
}

std::size_t NeighborTable::storage_bytes() const {
  std::size_t bytes = 5 * order_.size();
  for (const auto& [owner, list] : lists_) {
    (void)owner;
    bytes += 4 * list.size();
  }
  return bytes;
}

}  // namespace lw::nbr
