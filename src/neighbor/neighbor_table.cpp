#include "neighbor/neighbor_table.h"

#include <algorithm>

namespace lw::nbr {

void NeighborTable::set(util::PoolVector<std::uint8_t>& flags, NodeId id) {
  if (id == kInvalidNode) return;  // sentinel, never a table member
  if (id >= flags.size()) flags.resize(id + 1, 0);
  flags[id] = 1;
}

void NeighborTable::add_neighbor(NodeId id) {
  if (knows_neighbor(id)) return;
  set(neighbor_flags_, id);
  order_.push_back(id);
}

void NeighborTable::set_neighbor_list(NodeId owner,
                                      std::span<const NodeId> list) {
  if (!knows_neighbor(owner)) return;
  if (owner >= list_flags_.size()) list_flags_.resize(owner + 1);
  util::PoolVector<std::uint8_t> flags;
  for (NodeId member : list) set(flags, member);
  list_flags_[owner] = std::move(flags);
  lists_[owner].assign(list.begin(), list.end());
}

bool NeighborTable::has_list_of(NodeId owner) const {
  return lists_.count(owner) != 0;
}

const util::PoolVector<NodeId>* NeighborTable::list_of(NodeId owner) const {
  auto it = lists_.find(owner);
  return it == lists_.end() ? nullptr : &it->second;
}

bool NeighborTable::is_within_two_hops(NodeId id) const {
  if (knows_neighbor(id)) return true;
  return std::any_of(
      list_flags_.begin(), list_flags_.end(),
      [id](const util::PoolVector<std::uint8_t>& flags) {
        return test(flags, id);
      });
}

void NeighborTable::revoke(NodeId id) {
  if (!knows_neighbor(id) || is_revoked(id)) return;
  set(revoked_flags_, id);
  ++revoked_count_;
}

void NeighborTable::expire_neighbor(NodeId id) {
  if (!knows_neighbor(id)) return;
  neighbor_flags_[id] = 0;
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
  lists_.erase(id);
  if (id < list_flags_.size()) list_flags_[id].clear();
}

void NeighborTable::clear() {
  order_.clear();
  neighbor_flags_.clear();
  revoked_flags_.clear();
  revoked_count_ = 0;
  lists_.clear();
  list_flags_.clear();
}

util::PoolVector<NodeId> NeighborTable::active_neighbors() const {
  util::PoolVector<NodeId> active;
  active.reserve(order_.size());
  for (NodeId id : order_) {
    if (!is_revoked(id)) active.push_back(id);
  }
  return active;
}

std::size_t NeighborTable::storage_bytes() const {
  std::size_t bytes = 5 * order_.size();
  for (const auto& [owner, list] : lists_) {
    (void)owner;
    bytes += 4 * list.size();
  }
  return bytes;
}

}  // namespace lw::nbr
