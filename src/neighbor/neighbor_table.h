// First- and second-hop neighbor knowledge with revocation state.
//
// After secure discovery a node stores (a) its own first-hop neighbor list
// and (b) the full neighbor list R_B of each of its neighbors B — the
// second-hop knowledge LITEWORP's checks and guard predicate rely on.
// Revocation marks a neighbor as isolated: it stays in the table (so alerts
// about it still verify) but fails every admission check.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/ids.h"

namespace lw::nbr {

class NeighborTable {
 public:
  /// Registers a verified first-hop neighbor.
  void add_neighbor(NodeId id);

  /// True if `id` is a known first-hop neighbor, revoked or not.
  bool knows_neighbor(NodeId id) const;

  /// True if `id` is a first-hop neighbor in good standing.
  bool is_active_neighbor(NodeId id) const;

  /// Stores the authenticated neighbor list R_owner of a first-hop
  /// neighbor. Silently ignored when `owner` is unknown (a list from a
  /// non-neighbor is rejected upstream anyway).
  void set_neighbor_list(NodeId owner, std::vector<NodeId> list);

  bool has_list_of(NodeId owner) const;

  /// R_owner, or nullptr if not stored.
  const std::vector<NodeId>* list_of(NodeId owner) const;

  /// True if `candidate` appears in the stored list R_owner — i.e. the
  /// claim "owner received this from candidate" is topologically plausible.
  bool in_list_of(NodeId owner, NodeId candidate) const;

  /// True if `id` appears in any stored neighbor list: a second-hop (or
  /// first-hop) node of ours.
  bool is_within_two_hops(NodeId id) const;

  /// Marks a neighbor as isolated. Idempotent.
  void revoke(NodeId id);
  bool is_revoked(NodeId id) const;

  /// All first-hop neighbors (including revoked); insertion order.
  const std::vector<NodeId>& neighbors() const { return order_; }

  /// First-hop neighbors in good standing.
  std::vector<NodeId> active_neighbors() const;

  std::size_t neighbor_count() const { return order_.size(); }
  std::size_t revoked_count() const { return revoked_.size(); }

  /// Storage footprint per the paper's cost model: 5 bytes per first-hop
  /// entry (4 id + 1 MalC) plus 4 bytes per stored second-hop list entry.
  std::size_t storage_bytes() const;

 private:
  std::vector<NodeId> order_;
  std::unordered_set<NodeId> neighbors_;
  std::unordered_set<NodeId> revoked_;
  std::unordered_map<NodeId, std::vector<NodeId>> lists_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> list_sets_;
};

}  // namespace lw::nbr
