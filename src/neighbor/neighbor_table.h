// First- and second-hop neighbor knowledge with revocation state.
//
// After secure discovery a node stores (a) its own first-hop neighbor list
// and (b) the full neighbor list R_B of each of its neighbors B — the
// second-hop knowledge LITEWORP's checks and guard predicate rely on.
// Revocation marks a neighbor as isolated: it stays in the table (so alerts
// about it still verify) but fails every admission check.
//
// NodeIds are dense small integers, so membership questions — asked once
// per overheard frame per guard, the hottest predicate in the simulator —
// are answered from byte-flag vectors indexed by id instead of hash sets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "util/ids.h"

namespace lw::nbr {

class NeighborTable {
 public:
  /// Registers a verified first-hop neighbor.
  void add_neighbor(NodeId id);

  /// True if `id` is a known first-hop neighbor, revoked or not.
  bool knows_neighbor(NodeId id) const { return test(neighbor_flags_, id); }

  /// True if `id` is a first-hop neighbor in good standing.
  bool is_active_neighbor(NodeId id) const {
    return test(neighbor_flags_, id) && !test(revoked_flags_, id);
  }

  /// Stores the authenticated neighbor list R_owner of a first-hop
  /// neighbor. Silently ignored when `owner` is unknown (a list from a
  /// non-neighbor is rejected upstream anyway).
  void set_neighbor_list(NodeId owner, std::span<const NodeId> list);
  void set_neighbor_list(NodeId owner, std::initializer_list<NodeId> list) {
    set_neighbor_list(owner, std::span<const NodeId>(list.begin(), list.size()));
  }

  bool has_list_of(NodeId owner) const;

  /// R_owner, or nullptr if not stored.
  const util::PoolVector<NodeId>* list_of(NodeId owner) const;

  /// True if `candidate` appears in the stored list R_owner — i.e. the
  /// claim "owner received this from candidate" is topologically plausible.
  bool in_list_of(NodeId owner, NodeId candidate) const {
    return owner < list_flags_.size() && test(list_flags_[owner], candidate);
  }

  /// True if `id` appears in any stored neighbor list: a second-hop (or
  /// first-hop) node of ours.
  bool is_within_two_hops(NodeId id) const;

  /// Marks a neighbor as isolated. Idempotent.
  void revoke(NodeId id);
  bool is_revoked(NodeId id) const { return test(revoked_flags_, id); }

  /// Drops a first-hop neighbor entirely (crash aging): flag, order entry
  /// and its stored second-hop list all go, so the node can be re-admitted
  /// from scratch when it recovers. Revocation is NOT forgotten — an
  /// isolated attacker stays isolated across its own reboot.
  void expire_neighbor(NodeId id);

  /// Wipes everything including revocations (the owner itself crashed).
  void clear();

  /// All first-hop neighbors (including revoked); insertion order.
  const util::PoolVector<NodeId>& neighbors() const { return order_; }

  /// First-hop neighbors in good standing. Pool-backed: callers on the
  /// per-frame attack path build and drop this without touching the heap.
  util::PoolVector<NodeId> active_neighbors() const;

  std::size_t neighbor_count() const { return order_.size(); }
  std::size_t revoked_count() const { return revoked_count_; }

  /// Storage footprint per the paper's cost model: 5 bytes per first-hop
  /// entry (4 id + 1 MalC) plus 4 bytes per stored second-hop list entry.
  std::size_t storage_bytes() const;

 private:
  static bool test(const util::PoolVector<std::uint8_t>& flags, NodeId id) {
    return id < flags.size() && flags[id] != 0;
  }
  /// Sets flags[id], growing the vector on demand (ids are dense, so the
  /// vector tops out at the network size).
  static void set(util::PoolVector<std::uint8_t>& flags, NodeId id);

  util::PoolVector<NodeId> order_;
  util::PoolVector<std::uint8_t> neighbor_flags_;
  util::PoolVector<std::uint8_t> revoked_flags_;
  std::size_t revoked_count_ = 0;
  util::PoolUnorderedMap<NodeId, util::PoolVector<NodeId>> lists_;
  /// list_flags_[owner][candidate] mirrors lists_[owner] for O(1) checks.
  util::PoolVector<util::PoolVector<std::uint8_t>> list_flags_;
};

}  // namespace lw::nbr
