// Dynamic neighbor discovery for incremental deployment (Sections 4.1, 7).
//
// "Incremental deployment of a node in the network is identical to having
// a mobile node move to its location" — the paper handles it by augmenting
// LITEWORP with a dynamic secure neighbor-discovery protocol. This is that
// augmentation: a challenge-response join.
//
//   joiner J:        broadcast JOIN_HELLO (repeated; live channel)
//   established B:   fresh nonce -> JOIN_CHALLENGE to J, tagged with
//                    the pairwise key K(B, J)
//   joiner J:        verify; JOIN_RESPONSE binding the nonce under K(J, B);
//                    add B (the authenticated challenge proves B's key)
//   established B:   verify nonce + tag -> add J; unicast R_B to J
//                    (ARQ-reliable) and broadcast the updated R_B so the
//                    rest of the neighborhood extends its second-hop
//                    knowledge with J
//   joiner J:        after a settle period, broadcast its own R_J
//
// Limitation (the paper's too): during the join window a wormhole can
// tunnel the exchange and forge adjacency with a distant node — the
// pairwise tags prove key possession, not proximity. Closing that needs
// distance bounding ([15][16] in the paper); established nodes remain
// protected by their immutable tables either way.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "crypto/hmac.h"
#include "neighbor/neighbor_table.h"
#include "node/node_env.h"

namespace lw::nbr {

struct JoinParams {
  /// JOIN_HELLO is repeated on the live channel (no collision-free grace).
  int hello_repeats = 3;
  Duration hello_gap = 2.0;
  /// The joiner broadcasts its own neighbor list this long after starting
  /// (twice, for loss robustness).
  Duration settle_time = 8.0;
};

class DynamicJoinAgent {
 public:
  DynamicJoinAgent(node::NodeEnv& env, NeighborTable& table,
                   JoinParams params);

  /// Joiner side: announce ourselves and run the handshake.
  void start_join();

  /// Forgets one peer's admission and any outstanding nonce for it (the
  /// peer crashed / was aged out): its next JOIN_HELLO gets a fresh
  /// challenge instead of being ignored as already-admitted.
  void forget(NodeId peer);

  /// Wipes all join state (this node crashed). Pending hello/share events
  /// are disarmed via an epoch check; a later start_join() re-runs the
  /// protocol from scratch.
  void reset();

  /// Both sides: JOIN_HELLO / JOIN_CHALLENGE / JOIN_RESPONSE frames.
  void handle(const pkt::Packet& packet);

  /// Invoked each time the joiner side authenticates a new neighbor (the
  /// challenge's tag proved the peer's pairwise key). The robustness
  /// harness uses this as the "rejoined the network" mark when measuring
  /// crash-recovery latency.
  void set_on_neighbor_gained(std::function<void(NodeId)> cb) {
    on_neighbor_gained_ = std::move(cb);
  }

  bool joining() const { return joining_; }
  std::uint64_t challenges_issued() const { return challenges_issued_; }
  std::uint64_t joins_admitted() const { return joins_admitted_; }
  std::uint64_t rejected_handshakes() const { return rejected_; }

 private:
  void send_join_hello();
  void handle_hello(const pkt::Packet& packet);
  void handle_challenge(const pkt::Packet& packet);
  void handle_response(const pkt::Packet& packet);
  /// Shares this node's (updated) neighbor list: unicast to `to` when
  /// valid, plus a local broadcast for the rest of the neighborhood.
  void share_list(NodeId unicast_to);

  std::string challenge_message(NodeId challenger, NodeId joiner,
                                std::uint64_t nonce) const;
  std::string response_message(NodeId joiner, NodeId challenger,
                               std::uint64_t nonce) const;

  node::NodeEnv& env_;
  NeighborTable& table_;
  /// Reusable serialization buffer for list auth payloads.
  util::PoolString auth_buf_;
  /// Scratch for the batched list-signing fan-out (recycled per share).
  util::PoolVector<crypto::AuthTag> sign_tags_;
  JoinParams params_;
  bool joining_ = false;
  /// True once this join emitted its nbr.join_complete event (the span
  /// closes at the FIRST authenticated neighbor; later ones are routine).
  bool join_completed_ = false;
  SeqNo seq_ = 0;
  /// Bumped by reset(); scheduled hellos/shares from before a crash no-op.
  int epoch_ = 0;
  /// Established side: outstanding nonce per candidate joiner.
  std::unordered_map<NodeId, std::uint64_t> pending_nonces_;
  /// Joiners we already admitted (challenge replays are ignored).
  std::unordered_set<NodeId> admitted_;
  std::uint64_t challenges_issued_ = 0;
  std::uint64_t joins_admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::function<void(NodeId)> on_neighbor_gained_;
};

}  // namespace lw::nbr
