#include "neighbor/dynamic_join.h"

#include <sstream>

#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::nbr {

DynamicJoinAgent::DynamicJoinAgent(node::NodeEnv& env, NeighborTable& table,
                                   JoinParams params)
    : env_(env), table_(table), params_(params) {}

std::string DynamicJoinAgent::challenge_message(NodeId challenger,
                                                NodeId joiner,
                                                std::uint64_t nonce) const {
  std::ostringstream out;
  out << "join-challenge|" << challenger << '|' << joiner << '|' << nonce;
  return out.str();
}

std::string DynamicJoinAgent::response_message(NodeId joiner,
                                               NodeId challenger,
                                               std::uint64_t nonce) const {
  std::ostringstream out;
  out << "join-response|" << joiner << '|' << challenger << '|' << nonce;
  return out.str();
}

void DynamicJoinAgent::start_join() {
  joining_ = true;
  join_completed_ = false;
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kNeighbor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kNbrJoinStart,
             .node = env_.id()});
  }
  for (int repeat = 0; repeat < params_.hello_repeats; ++repeat) {
    env_.simulator().schedule(repeat * params_.hello_gap,
                              [this, epoch = epoch_] {
                                if (epoch == epoch_) send_join_hello();
                              });
  }
  // Once the handshakes settle, tell the neighborhood who WE can hear
  // (twice: the channel is live and broadcasts are unacknowledged).
  env_.simulator().schedule(params_.settle_time,
                            [this, epoch = epoch_] {
                              if (epoch == epoch_) share_list(kInvalidNode);
                            });
  env_.simulator().schedule(params_.settle_time + 2.0,
                            [this, epoch = epoch_] {
                              if (epoch == epoch_) share_list(kInvalidNode);
                            });
}

void DynamicJoinAgent::forget(NodeId peer) {
  admitted_.erase(peer);
  pending_nonces_.erase(peer);
}

void DynamicJoinAgent::reset() {
  ++epoch_;
  joining_ = false;
  join_completed_ = false;
  pending_nonces_.clear();
  admitted_.clear();
}

void DynamicJoinAgent::send_join_hello() {
  pkt::Packet hello = env_.packet_factory().make(pkt::PacketType::kJoinHello);
  hello.origin = env_.id();
  hello.seq = ++seq_;
  env_.send(std::move(hello));
}

void DynamicJoinAgent::handle(const pkt::Packet& packet) {
  switch (packet.type) {
    case pkt::PacketType::kJoinHello:
      handle_hello(packet);
      break;
    case pkt::PacketType::kJoinChallenge:
      handle_challenge(packet);
      break;
    case pkt::PacketType::kJoinResponse:
      handle_response(packet);
      break;
    default:
      break;
  }
}

void DynamicJoinAgent::handle_hello(const pkt::Packet& packet) {
  const NodeId joiner = packet.origin;
  if (joiner == env_.id()) return;
  if (table_.is_revoked(joiner)) return;  // isolated nodes stay isolated
  if (table_.knows_neighbor(joiner) && admitted_.count(joiner) != 0) return;

  std::uint64_t nonce = env_.rng().engine()();
  pending_nonces_[joiner] = nonce;
  ++challenges_issued_;

  pkt::Packet challenge =
      env_.packet_factory().make(pkt::PacketType::kJoinChallenge);
  challenge.origin = env_.id();
  challenge.final_dst = joiner;
  challenge.link_dst = joiner;
  challenge.seq = ++seq_;
  challenge.nonce = nonce;
  challenge.tag = env_.keys().sign(
      env_.id(), joiner, challenge_message(env_.id(), joiner, nonce));
  env_.send(std::move(challenge));
}

void DynamicJoinAgent::handle_challenge(const pkt::Packet& packet) {
  if (!joining_) return;
  if (packet.link_dst != env_.id()) return;
  const NodeId challenger = packet.origin;
  const std::string message =
      challenge_message(challenger, env_.id(), packet.nonce);
  if (!env_.keys().verify(challenger, env_.id(), message, packet.tag)) {
    ++rejected_;
    LW_DEBUG << "joiner " << env_.id()
             << ": unauthentic challenge claiming " << challenger;
    return;
  }
  // The authenticated challenge proves the challenger holds the pairwise
  // key; links are bidirectional, so it is our neighbor.
  table_.add_neighbor(challenger);
  if (!join_completed_) {
    join_completed_ = true;
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kNeighbor)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kNbrJoinComplete,
               .node = env_.id(),
               .peer = challenger});
    }
  }
  if (on_neighbor_gained_) on_neighbor_gained_(challenger);

  pkt::Packet response =
      env_.packet_factory().make(pkt::PacketType::kJoinResponse);
  response.origin = env_.id();
  response.final_dst = challenger;
  response.link_dst = challenger;
  response.seq = ++seq_;
  response.nonce = packet.nonce;
  response.tag = env_.keys().sign(
      env_.id(), challenger,
      response_message(env_.id(), challenger, packet.nonce));
  env_.send(std::move(response));
}

void DynamicJoinAgent::handle_response(const pkt::Packet& packet) {
  if (packet.link_dst != env_.id()) return;
  const NodeId joiner = packet.origin;
  auto pending = pending_nonces_.find(joiner);
  if (pending == pending_nonces_.end()) return;
  if (pending->second != packet.nonce) {
    ++rejected_;
    return;
  }
  const std::string message =
      response_message(joiner, env_.id(), packet.nonce);
  if (!env_.keys().verify(joiner, env_.id(), message, packet.tag)) {
    ++rejected_;
    LW_DEBUG << "node " << env_.id()
             << ": unauthentic join response claiming " << joiner;
    return;
  }
  pending_nonces_.erase(pending);
  admitted_.insert(joiner);
  table_.add_neighbor(joiner);
  ++joins_admitted_;
  LW_INFO << "node " << env_.id() << " admitted joiner " << joiner
          << " at t=" << env_.now();

  // Give the joiner our list reliably, and refresh the neighborhood's
  // second-hop knowledge (our list now contains the joiner).
  share_list(joiner);
  share_list(kInvalidNode);
}

void DynamicJoinAgent::share_list(NodeId unicast_to) {
  pkt::Packet list = env_.packet_factory().make(pkt::PacketType::kNeighborList);
  list.origin = env_.id();
  list.seq = 1000 + ++seq_;  // distinct from the deployment-time broadcast
  list.link_dst = unicast_to;
  list.neighbor_list.assign(table_.neighbors().begin(),
                            table_.neighbors().end());
  list.auth_payload_into(auth_buf_);
  const util::PoolString& payload = auth_buf_;
  // One multi-buffer sweep tags the list for every member at once.
  sign_tags_.resize(list.neighbor_list.size());
  env_.keys().sign_batch(env_.id(), list.neighbor_list, payload,
                         sign_tags_.data());
  list.alert_auth.reserve(list.neighbor_list.size());
  for (std::size_t i = 0; i < list.neighbor_list.size(); ++i) {
    list.alert_auth.push_back({list.neighbor_list[i], sign_tags_[i]});
  }
  env_.send(std::move(list));
}

}  // namespace lw::nbr
