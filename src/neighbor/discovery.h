// Secure one-time neighbor discovery (Section 4.2.1, "Building Neighbor
// Lists").
//
// On deployment a node broadcasts HELLO; every node hearing it sends back an
// authenticated HELLO_REPLY under the pairwise shared key; the node collects
// verified repliers into its neighbor list R_A and finally broadcasts R_A,
// individually authenticated for each member. Receivers verify their tag and
// store R_A as second-hop knowledge. The protocol runs exactly once; the
// system model guarantees no malicious insider is within two hops during
// this window (compromise-threshold-time assumption).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "crypto/hmac.h"
#include "neighbor/neighbor_table.h"
#include "node/node_env.h"
#include "topology/disc_graph.h"
#include "util/sim_time.h"

namespace lw::nbr {

struct DiscoveryParams {
  /// HELLO broadcast happens at a uniform time in [0, hello_jitter_max].
  /// Generous spreading matters: every HELLO provokes a burst of
  /// authenticated unicast replies, and at 40 kbps a compressed burst
  /// drives the MAC into channel-busy drops.
  Duration hello_jitter_max = 3.0;
  /// Each HELLO reply is delayed by a uniform jitter in [0, this] to spread
  /// the burst of replies.
  Duration reply_jitter_max = 1.5;
  /// Replies arriving later than this after our HELLO are ignored. At high
  /// densities a reply can sit several seconds behind a queue of other
  /// replies, so the window is generous.
  Duration reply_timeout = 6.0;
  /// Time (from node start) at which R_A is broadcast; must exceed
  /// hello_jitter_max + reply_timeout so the list is complete.
  Duration list_broadcast_at = 10.0;
  /// Jitter on the list broadcast.
  Duration list_jitter_max = 1.0;
};

/// Upper bound on when discovery has completed for every node (the paper's
/// T_ND); traffic and attacks are configured to start after this.
Duration discovery_complete_time(const DiscoveryParams& params);

class DiscoveryAgent {
 public:
  DiscoveryAgent(node::NodeEnv& env, NeighborTable& table,
                 DiscoveryParams params);

  /// Schedules the HELLO broadcast and the later list broadcast.
  void start();

  /// Handles HELLO / HELLO_REPLY / NEIGHBOR_LIST frames heard by the node.
  void handle(const pkt::Packet& packet);

  /// Fills the table directly from ground-truth geometry, skipping the
  /// message exchange. For unit tests of higher layers; scenario runs use
  /// the real protocol.
  void bootstrap_from_oracle(const topo::DiscGraph& graph);

  const NeighborTable& table() const { return table_; }
  bool hello_sent() const { return hello_sent_; }
  bool list_sent() const { return list_sent_; }

  /// Replies failing tag verification (should stay 0 without an attacker).
  std::uint64_t rejected_replies() const { return rejected_replies_; }
  /// List broadcasts failing verification.
  std::uint64_t rejected_lists() const { return rejected_lists_; }

 private:
  void send_hello();
  void send_reply(const pkt::Packet& hello);
  void broadcast_list();

  void handle_hello(const pkt::Packet& packet);
  void handle_reply(const pkt::Packet& packet);
  void handle_list(const pkt::Packet& packet);

  const util::PoolString& reply_auth_message(NodeId replier, NodeId announcer,
                                        SeqNo hello_seq);

  node::NodeEnv& env_;
  /// Reusable serialization buffer for auth payloads (sign/verify are
  /// per-packet hot spots; keep the capacity across calls).
  util::PoolString auth_buf_;
  /// Scratch for the batched list-signing fan-out (recycled per broadcast).
  util::PoolVector<crypto::AuthTag> sign_tags_;
  NeighborTable& table_;
  DiscoveryParams params_;
  bool hello_sent_ = false;
  bool list_sent_ = false;
  Time hello_time_ = kTimeNever;
  SeqNo hello_seq_ = 0;
  /// HELLOs we already replied to (announcer ids) — one reply each.
  std::unordered_set<NodeId> replied_to_;
  std::uint64_t rejected_replies_ = 0;
  std::uint64_t rejected_lists_ = 0;
};

}  // namespace lw::nbr
