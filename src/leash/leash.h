// Temporal packet leashes (Hu, Perrig, Johnson — "Packet Leashes",
// INFOCOM 2003): the related-work comparator the LITEWORP paper positions
// itself against.
//
// Every transmission carries an authenticated timestamp; the receiver
// bounds the distance the packet can have traveled by the time of flight.
// A frame replayed by a wormhole carries the ORIGINAL sender's stamp (the
// replayer cannot forge a fresh one), so the detour shows up as impossible
// travel distance.
//
// What the comparison bench demonstrates (and the paper argues in prose):
//  * relay/replay wormholes: caught (stale stamp);
//  * high-power shortcuts: caught only with near-perfect clock sync (the
//    extra flight is sub-microsecond at sensor ranges);
//  * INSIDER tunnels (encapsulation, out-of-band): NOT caught — the
//    colluders forward under their own identities and stamp fresh,
//    truthful timestamps at each end ("packet leashes do not nullify the
//    capacity of the compromised nodes", Section 2);
//  * and leashes only ever drop packets: they never identify or isolate
//    the attacker.
#pragma once

#include <cstdint>

#include "packet/packet.h"
#include "util/sim_time.h"

namespace lw::leash {

enum class LeashMode {
  kTemporal,      // authenticated timestamps, tight clock sync
  kGeographical,  // authenticated locations, loose sync + localization
};

struct LeashParams {
  /// Master switch (off: checker accepts everything).
  bool enabled = false;
  LeashMode mode = LeashMode::kTemporal;
  /// Localization error of the geographical leash (meters).
  double location_error = 5.0;
  /// Nominal radio range: the maximum legitimate travel distance (m).
  double range = 30.0;
  /// Channel bit rate, needed to subtract the serialization time the
  /// receiver unavoidably observes.
  double bandwidth_bps = 40000.0;
  /// Clock synchronization error between any two nodes (seconds). TIK-era
  /// hardware: ~1 us. Perfect clocks (0) catch even high-power shortcuts.
  double sync_error = 1e-6;
  /// Allowance for transmit-side processing between stamping and the
  /// first bit hitting the air (seconds).
  double processing_slack = 1e-6;
  /// Signal propagation speed (m/s).
  double propagation_speed = 3.0e8;
};

struct LeashStats {
  std::uint64_t checked = 0;
  std::uint64_t rejected = 0;
};

class LeashChecker {
 public:
  explicit LeashChecker(LeashParams params) : params_(params) {}

  /// The geographical mode needs the checker's own location.
  void set_own_position(double x, double y) {
    own_x_ = x;
    own_y_ = y;
  }

  /// True if the frame passes the temporal leash at reception time `now`
  /// (which is the end of the frame: propagation + serialization behind
  /// the stamp). Frames without a stamp fail closed when the leash is on.
  bool check(const pkt::Packet& packet, Time now);

  /// The travel distance the timestamps imply, in meters (negative if the
  /// packet carries no stamp).
  double implied_distance(const pkt::Packet& packet, Time now) const;

  const LeashStats& stats() const { return stats_; }
  const LeashParams& params() const { return params_; }

 private:
  bool check_temporal(const pkt::Packet& packet, Time now) const;
  bool check_geographical(const pkt::Packet& packet) const;

  LeashParams params_;
  LeashStats stats_;
  double own_x_ = 0.0;
  double own_y_ = 0.0;
};

}  // namespace lw::leash
