#include "leash/leash.h"

#include "util/math_util.h"

namespace lw::leash {

double LeashChecker::implied_distance(const pkt::Packet& packet,
                                      Time now) const {
  if (packet.leash_timestamp < 0) return -1.0;
  const double serialization =
      static_cast<double>(packet.wire_size()) * 8.0 / params_.bandwidth_bps;
  const double flight = now - packet.leash_timestamp - serialization;
  return flight * params_.propagation_speed;
}

bool LeashChecker::check_temporal(const pkt::Packet& packet,
                                  Time now) const {
  const double distance = implied_distance(packet, now);
  const double budget =
      params_.range + params_.propagation_speed *
                          (params_.sync_error + params_.processing_slack);
  return distance >= 0 && distance <= budget;
}

bool LeashChecker::check_geographical(const pkt::Packet& packet) const {
  if (!packet.leash_located) return false;  // unstamped fails closed
  const double distance =
      dist2d(packet.leash_x, packet.leash_y, own_x_, own_y_);
  // Both ends contribute localization error.
  return distance <= params_.range + 2.0 * params_.location_error;
}

bool LeashChecker::check(const pkt::Packet& packet, Time now) {
  if (!params_.enabled) return true;
  ++stats_.checked;
  const bool ok = params_.mode == LeashMode::kTemporal
                      ? check_temporal(packet, now)
                      : check_geographical(packet);
  if (!ok) ++stats_.rejected;
  return ok;
}

}  // namespace lw::leash
