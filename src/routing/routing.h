// Generic on-demand shortest-path source routing.
//
// The protocol the paper simulates: a source floods a route request (REQ)
// that accumulates the traversed path; the destination answers every copy
// it receives with a route reply (REP) unicast hop-by-hop along the reverse
// path; the source caches the shortest replied path; data is source-routed.
// Every forwarded frame announces its immediate source (the hook local
// monitoring requires), and duplicate REQs are suppressed at intermediate
// nodes — which is exactly why a tunneled REQ that arrives first suppresses
// the legitimate multihop copies and captures the route.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "neighbor/neighbor_table.h"
#include "node/node_env.h"
#include "routing/route_cache.h"
#include "util/arena.h"

namespace lw::routing {

struct RoutingParams {
  /// TOut_Route from Table 2.
  Duration route_timeout = 50.0;
  /// Minimum gap between successive REQ floods for the same destination;
  /// generous because a flood takes seconds to traverse the 40 kbps
  /// network and premature re-floods congest the channel.
  Duration discovery_retry_interval = 15.0;
  /// Retry gap doubles per failed flood up to this cap, so a burst of
  /// simultaneous discoveries (every node booting at once) drains instead
  /// of collapsing the channel.
  Duration discovery_retry_max = 120.0;
  /// A node whose MAC queue is this deep stops forwarding new REQ floods
  /// (tail-drop congestion control; flood redundancy covers the gap).
  std::size_t congestion_queue_threshold = 6;
  /// REQ forwards wait a random jitter in [0, this] and are cancelled if
  /// enough duplicate copies are overheard meanwhile.
  Duration forward_jitter_max = 1.2;
  /// Counter-based broadcast suppression (Ni et al.): cancel our pending
  /// flood forward after overhearing this many additional copies — the
  /// neighborhood is already covered. Cuts flood airtime ~3x at N_B = 8,
  /// which a 40 kbps channel needs.
  int broadcast_suppression_copies = 2;
  /// ARAN-style route selection (Section 3.1): the destination answers
  /// only the FIRST REQ copy and the source keeps the first reply, so the
  /// fastest path wins regardless of claimed hop count. The paper notes
  /// this incidentally counters the packet-encapsulation wormhole (the
  /// encapsulated detour is long in real hops, hence slow) but not the
  /// out-of-band one (which genuinely is fast).
  bool prefer_fastest_reply = false;
  /// Data packets waiting for a route, per destination; overflow is dropped.
  std::size_t pending_queue_limit = 20;
  /// How long a REQ (origin, seq) stays in the duplicate filter.
  Duration seen_request_ttl = 30.0;
};

/// Events the metrics layer subscribes to. Default implementations ignore
/// everything so tests can override selectively.
class RoutingObserver {
 public:
  virtual ~RoutingObserver() = default;
  virtual void on_data_originated(NodeId /*source*/, const pkt::Packet&) {}
  virtual void on_data_delivered(NodeId /*destination*/, const pkt::Packet&) {}
  virtual void on_data_dropped_no_route(NodeId /*source*/) {}
  virtual void on_route_established(NodeId /*source*/,
                                    const pkt::NodeList& /*path*/) {}
  virtual void on_discovery_started(NodeId /*source*/, NodeId /*target*/) {}
};

class OnDemandRouting {
 public:
  OnDemandRouting(node::NodeEnv& env, nbr::NeighborTable& table,
                  RoutingParams params, RoutingObserver* observer);

  /// Application entry point: send `payload_bytes` of data to `destination`,
  /// triggering route discovery if needed.
  void send_data(NodeId destination, std::uint32_t payload_bytes);

  /// Handles an admission-checked REQ/REP/DATA frame heard by this node.
  void handle(const pkt::Packet& packet);

  /// Revocation response: purge routes and pending traffic through `node`.
  void on_revoked(NodeId node);

  /// Link-layer delivery failure (MAC exhausted ARQ retries toward
  /// `packet.link_dst` — typically a crashed or isolated next hop): evict
  /// every cached route through that hop so the next data packet
  /// re-discovers around it. Wired up only on fault-hardened runs.
  void on_send_failed(const pkt::Packet& packet);

  /// Wipes all routing state (node crash): cache, duplicate filters,
  /// pending flood forwards (their events are cancelled) and discovery
  /// queues. The node re-learns routes from scratch after recovery.
  void reset();

  RouteCache& cache() { return cache_; }
  const RouteCache& cache() const { return cache_; }

  /// Frames this node refused to forward because the next hop is revoked.
  std::uint64_t refused_next_hop_revoked() const {
    return refused_next_hop_revoked_;
  }

 private:
  struct PendingData {
    std::uint32_t payload_bytes;
    Time created_at;
  };
  struct Discovery {
    std::deque<PendingData, util::PoolAllocator<PendingData>> queue;
    Time last_request = -1e9;
    int attempts = 0;
  };

  void handle_request(const pkt::Packet& packet);
  void handle_reply(const pkt::Packet& packet);
  void handle_data(const pkt::Packet& packet);
  void handle_route_error(const pkt::Packet& packet);

  /// Notifies the source of `broken_packet`'s flow that the route died at
  /// this node because `broken` is revoked.
  void send_route_error(const pkt::Packet& broken_packet, NodeId broken);

  /// Local one-hop RERR beacon: announces (to the guards overhearing us)
  /// that we are refusing to forward toward a node we isolated.
  void broadcast_refusal(const pkt::Packet& refused, NodeId broken);

  /// Queues data behind a (possibly new) route discovery.
  void queue_for_discovery(NodeId destination, std::uint32_t payload_bytes,
                           Time created_at);
  void start_discovery(NodeId destination);
  /// Current retry gap for a destination (exponential backoff).
  Duration retry_gap(const Discovery& discovery) const;
  /// Re-floods periodically while data waits for a route.
  void schedule_discovery_retry(NodeId destination);
  void transmit_data(NodeId destination, const Route& route,
                     std::uint32_t payload_bytes, Time created_at);
  void flush_pending(NodeId destination);

  bool seen_before(const FlowKey& key);
  void purge_seen();

  node::NodeEnv& env_;
  nbr::NeighborTable& table_;
  RoutingParams params_;
  RoutingObserver* observer_;
  RouteCache cache_;

  struct PendingForward {
    int extra_copies = 0;
    sim::EventHandle event;
  };

  SeqNo next_seq_ = 0;
  /// Flood bookkeeping churns an entry per REQ copy; pool-backed so the
  /// insert/erase cycle recycles nodes instead of hitting the heap.
  util::PoolUnorderedMap<FlowKey, Time> seen_requests_;
  util::PoolUnorderedMap<FlowKey, PendingForward> pending_forwards_;
  /// Destination-side reply policy: shortest hop count already answered
  /// per REQ flow (answer again only for strictly shorter copies).
  util::PoolUnorderedMap<FlowKey, std::size_t> replied_requests_;
  util::PoolUnorderedMap<NodeId, Discovery> discoveries_;
  std::uint64_t refused_next_hop_revoked_ = 0;
};

}  // namespace lw::routing
