// Application-layer traffic generator (Table 2 workload).
//
// Every node is a data source: packet interarrivals are exponential with
// rate lambda (1/10 s^-1), the destination is uniform over the other nodes
// and is re-drawn at exponential intervals with rate mu (1/200 s^-1).
#pragma once

#include <cstdint>

#include "node/node_env.h"
#include "routing/routing.h"

namespace lw::routing {

struct TrafficParams {
  /// Data generation rate lambda (packets/second).
  double data_rate = 1.0 / 10.0;
  /// Destination re-selection rate mu (changes/second).
  double destination_change_rate = 1.0 / 200.0;
  /// Traffic begins this long after simulation start (after T_ND).
  Time start_time = 10.0;
  /// Payload size of generated data packets.
  std::uint32_t payload_bytes = 32;
};

class TrafficGenerator {
 public:
  /// node_count is the network size (destinations are drawn from it).
  TrafficGenerator(node::NodeEnv& env, OnDemandRouting& routing,
                   std::size_t node_count, TrafficParams params);

  /// Schedules the first arrival and the first destination change.
  void start();

  /// Like start(), but beginning at an explicit time (late-deployed nodes
  /// start generating once their join settles).
  void start_at(Time begin);

  /// Halts generation (node crash): the self-rescheduling arrival and
  /// destination-change loops are disarmed via an epoch check. A later
  /// start_at() restarts them cleanly.
  void stop();

  NodeId current_destination() const { return destination_; }
  std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next_packet();
  void schedule_next_destination_change();
  NodeId pick_destination();

  node::NodeEnv& env_;
  OnDemandRouting& routing_;
  std::size_t node_count_;
  TrafficParams params_;
  NodeId destination_ = kInvalidNode;
  std::uint64_t generated_ = 0;
  /// Bumped by stop(); pending loop events from an earlier epoch no-op.
  int epoch_ = 0;
};

}  // namespace lw::routing
