#include "routing/traffic.h"

namespace lw::routing {

TrafficGenerator::TrafficGenerator(node::NodeEnv& env,
                                   OnDemandRouting& routing,
                                   std::size_t node_count,
                                   TrafficParams params)
    : env_(env), routing_(routing), node_count_(node_count), params_(params) {}

void TrafficGenerator::start() { start_at(params_.start_time); }

void TrafficGenerator::start_at(Time begin) {
  if (node_count_ < 2) return;       // nobody to talk to
  if (params_.data_rate <= 0) return;  // traffic disabled (driven manually)
  destination_ = pick_destination();
  env_.simulator().schedule_at(
      begin + env_.rng().exponential(params_.data_rate),
      [this, epoch = epoch_] {
        if (epoch == epoch_) schedule_next_packet();
      });
  env_.simulator().schedule_at(
      begin + env_.rng().exponential(params_.destination_change_rate),
      [this, epoch = epoch_] {
        if (epoch == epoch_) schedule_next_destination_change();
      });
}

void TrafficGenerator::stop() { ++epoch_; }

NodeId TrafficGenerator::pick_destination() {
  // Uniform over the other eligible ids (0..node_count-1). Late joiners
  // (id >= node_count) address the initial deployment without the
  // self-exclusion shift.
  if (env_.id() >= node_count_) {
    return static_cast<NodeId>(env_.rng().uniform_int(0, node_count_ - 1));
  }
  NodeId candidate = static_cast<NodeId>(
      env_.rng().uniform_int(0, node_count_ - 2));
  if (candidate >= env_.id()) ++candidate;
  return candidate;
}

void TrafficGenerator::schedule_next_packet() {
  ++generated_;
  routing_.send_data(destination_, params_.payload_bytes);
  env_.simulator().schedule(env_.rng().exponential(params_.data_rate),
                            [this, epoch = epoch_] {
                              if (epoch == epoch_) schedule_next_packet();
                            });
}

void TrafficGenerator::schedule_next_destination_change() {
  destination_ = pick_destination();
  env_.simulator().schedule(
      env_.rng().exponential(params_.destination_change_rate),
      [this, epoch = epoch_] {
        if (epoch == epoch_) schedule_next_destination_change();
      });
}

}  // namespace lw::routing
