#include "routing/routing.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::routing {
namespace {

/// Position of `id` in `path`, or npos.
std::size_t index_in(const pkt::NodeList& path, NodeId id) {
  auto it = std::find(path.begin(), path.end(), id);
  return it == path.end() ? static_cast<std::size_t>(-1)
                          : static_cast<std::size_t>(it - path.begin());
}

}  // namespace

OnDemandRouting::OnDemandRouting(node::NodeEnv& env, nbr::NeighborTable& table,
                                 RoutingParams params,
                                 RoutingObserver* observer)
    : env_(env),
      table_(table),
      params_(params),
      observer_(observer),
      cache_(params.route_timeout) {}

void OnDemandRouting::send_data(NodeId destination,
                                std::uint32_t payload_bytes) {
  if (destination == env_.id()) return;
  const Time now = env_.now();
  // Every generated packet counts as offered load, routed or not.
  if (observer_) {
    pkt::Packet placeholder;
    placeholder.type = pkt::PacketType::kData;
    placeholder.origin = env_.id();
    placeholder.final_dst = destination;
    placeholder.created_at = now;
    observer_->on_data_originated(env_.id(), placeholder);
  }
  if (const Route* route = cache_.lookup(destination, now)) {
    transmit_data(destination, *route, payload_bytes, now);
    return;
  }
  queue_for_discovery(destination, payload_bytes, now);
}

void OnDemandRouting::queue_for_discovery(NodeId destination,
                                          std::uint32_t payload_bytes,
                                          Time created_at) {
  Discovery& discovery = discoveries_[destination];
  if (discovery.queue.size() >= params_.pending_queue_limit) {
    if (observer_) observer_->on_data_dropped_no_route(env_.id());
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kRouteDrop,
               .node = env_.id(),
               .peer = destination});
    }
    return;
  }
  discovery.queue.push_back({payload_bytes, created_at});
  if (env_.now() - discovery.last_request >= retry_gap(discovery)) {
    start_discovery(destination);
  }
}

Duration OnDemandRouting::retry_gap(const Discovery& discovery) const {
  Duration gap = params_.discovery_retry_interval;
  for (int i = 1; i < discovery.attempts && gap < params_.discovery_retry_max;
       ++i) {
    gap *= 2.0;
  }
  return std::min(gap, params_.discovery_retry_max);
}

void OnDemandRouting::start_discovery(NodeId destination) {
  Discovery& discovery = discoveries_[destination];
  discovery.last_request = env_.now();
  ++discovery.attempts;

  pkt::Packet req = env_.packet_factory().make(pkt::PacketType::kRouteRequest);
  req.origin = env_.id();
  req.seq = ++next_seq_;
  req.final_dst = destination;
  req.route = {env_.id()};
  req.created_at = env_.now();
  if (observer_) observer_->on_discovery_started(env_.id(), destination);
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kRouteDiscovery,
             .node = env_.id(),
             .peer = destination,
             .lineage_hint = req.lineage});
  }
  env_.send(std::move(req), {.flood_jitter = false});
  schedule_discovery_retry(destination);
}

void OnDemandRouting::schedule_discovery_retry(NodeId destination) {
  const Duration gap = retry_gap(discoveries_[destination]);
  env_.simulator().schedule(gap, [this, destination] {
    auto it = discoveries_.find(destination);
    if (it == discoveries_.end() || it->second.queue.empty()) return;
    if (cache_.lookup(destination, env_.now()) != nullptr) return;
    // Still no route and data still waiting: flood again.
    if (env_.now() - it->second.last_request >= retry_gap(it->second)) {
      start_discovery(destination);
    }
  });
}

void OnDemandRouting::transmit_data(NodeId destination, const Route& route,
                                    std::uint32_t payload_bytes,
                                    Time created_at) {
  pkt::Packet data = env_.packet_factory().make(pkt::PacketType::kData);
  data.origin = env_.id();
  data.seq = ++next_seq_;
  data.final_dst = destination;
  data.route = route.path;
  data.route_index = 0;
  data.link_dst = route.path[1];
  data.payload_bytes = payload_bytes;
  data.created_at = created_at;
  if (table_.is_revoked(data.link_dst)) {
    // The cached route starts at an isolated node: tear it down and fall
    // back to discovery.
    ++refused_next_hop_revoked_;
    cache_.evict_destination(destination);
    queue_for_discovery(destination, payload_bytes, created_at);
    return;
  }
  // The origin's own handoff is a forward too: with it in the trace, every
  // route.deliver has a same-lineage route.forward upstream (the lw-trace
  // `check` invariant) even on single-hop routes.
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kRouteForward,
             .node = env_.id(),
             .peer = data.link_dst,
             .packet = &data});
  }
  env_.send(std::move(data));
}

void OnDemandRouting::flush_pending(NodeId destination) {
  auto it = discoveries_.find(destination);
  if (it == discoveries_.end()) return;
  const Route* route = cache_.lookup(destination, env_.now());
  if (route == nullptr) return;
  for (const PendingData& pending : it->second.queue) {
    transmit_data(destination, *route, pending.payload_bytes,
                  pending.created_at);
  }
  discoveries_.erase(it);
}

bool OnDemandRouting::seen_before(const FlowKey& key) {
  purge_seen();
  auto [it, inserted] =
      seen_requests_.try_emplace(key, env_.now() + params_.seen_request_ttl);
  if (!inserted) return true;
  return false;
}

void OnDemandRouting::purge_seen() {
  // Amortized cleanup: scan only when the filter has grown noticeably.
  if (seen_requests_.size() < 256 || (seen_requests_.size() & 0x3F) != 0) {
    return;
  }
  const Time now = env_.now();
  std::erase_if(seen_requests_,
                [now](const auto& entry) { return entry.second <= now; });
}

void OnDemandRouting::handle(const pkt::Packet& packet) {
  switch (packet.type) {
    case pkt::PacketType::kRouteRequest:
      handle_request(packet);
      break;
    case pkt::PacketType::kRouteReply:
      handle_reply(packet);
      break;
    case pkt::PacketType::kData:
      handle_data(packet);
      break;
    case pkt::PacketType::kRouteError:
      handle_route_error(packet);
      break;
    default:
      break;
  }
}

void OnDemandRouting::handle_request(const pkt::Packet& packet) {
  if (packet.origin == env_.id()) return;

  if (packet.final_dst == env_.id()) {
    // The destination answers the first copy and every strictly shorter
    // later copy (the source keeps the best route). Answering every copy,
    // as the idealized protocol would, only adds REP storms on a 40 kbps
    // channel without changing which route wins.
    auto [it, first_copy] =
        replied_requests_.try_emplace(packet.flow_key(), packet.route.size());
    if (!first_copy) {
      // ARAN mode: the race is already decided; hop-count claims on later
      // copies are ignored.
      if (params_.prefer_fastest_reply) return;
      if (packet.route.size() >= it->second) return;
      it->second = packet.route.size();
    }
    pkt::Packet rep = env_.packet_factory().make(pkt::PacketType::kRouteReply);
    rep.origin = env_.id();
    rep.seq = ++next_seq_;
    rep.final_dst = packet.origin;
    rep.route = packet.route;
    rep.route.push_back(env_.id());
    rep.route_index = rep.route.size() - 1;
    rep.link_dst = rep.route[rep.route_index - 1];
    rep.created_at = env_.now();
    rep.crossed_tunnel = packet.crossed_tunnel;
    if (table_.is_revoked(rep.link_dst)) {
      ++refused_next_hop_revoked_;
      return;
    }
    env_.send(std::move(rep));
    return;
  }

  const FlowKey flow = packet.flow_key();
  if (auto it = pending_forwards_.find(flow); it != pending_forwards_.end()) {
    // Another copy while our forward is still jittering: the neighborhood
    // is being covered without us.
    if (++it->second.extra_copies >= params_.broadcast_suppression_copies) {
      it->second.event.cancel();
      pending_forwards_.erase(it);
    }
    return;
  }
  if (seen_before(flow)) return;
  if (index_in(packet.route, env_.id()) != static_cast<std::size_t>(-1)) {
    return;  // loop
  }
  if (env_.mac_queue_depth() >= params_.congestion_queue_threshold) {
    return;  // congested: let less-loaded neighbors carry the flood
  }

  pkt::Packet fwd = env_.packet_factory().forward_copy(packet);
  fwd.route.push_back(env_.id());
  fwd.announced_prev_hop = packet.claimed_tx;
  fwd.claimed_tx = kInvalidNode;  // node stamps own id on send
  const Duration jitter =
      env_.rng().uniform(0.0, params_.forward_jitter_max);
  sim::EventHandle event = env_.simulator().schedule_cancellable(
      jitter, [this, flow, fwd = std::move(fwd)]() mutable {
        pending_forwards_.erase(flow);
        env_.send(std::move(fwd));
      });
  pending_forwards_.emplace(flow, PendingForward{0, std::move(event)});
}

void OnDemandRouting::handle_reply(const pkt::Packet& packet) {
  if (packet.link_dst != env_.id()) return;
  const std::size_t my_index = index_in(packet.route, env_.id());
  if (my_index == static_cast<std::size_t>(-1)) return;

  if (my_index == 0) {
    // We are the REQ origin: the route is usable end to end.
    const NodeId destination = packet.route.back();
    if (params_.prefer_fastest_reply &&
        cache_.peek(destination, env_.now()) != nullptr) {
      return;  // first reply won; later (shorter-claiming) ones lose
    }
    if (cache_.insert(packet.route, env_.now())) {
      if (observer_) {
        observer_->on_route_established(env_.id(), packet.route);
      }
      if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
        r->emit({.t = env_.now(),
                 .kind = obs::EventKind::kRouteEstablished,
                 .node = env_.id(),
                 .peer = destination,
                 .value = static_cast<double>(packet.route.size() - 1),
                 .packet = &packet});
      }
    }
    flush_pending(destination);
    return;
  }

  pkt::Packet fwd = env_.packet_factory().forward_copy(packet);
  fwd.route_index = my_index;
  fwd.link_dst = packet.route[my_index - 1];
  fwd.announced_prev_hop = packet.claimed_tx;
  fwd.claimed_tx = kInvalidNode;
  if (table_.is_revoked(fwd.link_dst)) {
    // Refusing a REP whose next hop we isolated. Say so audibly: the
    // guards timing this handoff would otherwise convict us of silently
    // dropping it.
    ++refused_next_hop_revoked_;
    broadcast_refusal(packet, fwd.link_dst);
    return;
  }
  env_.send(std::move(fwd));
}

void OnDemandRouting::broadcast_refusal(const pkt::Packet& refused,
                                        NodeId broken) {
  pkt::Packet beacon = env_.packet_factory().make(pkt::PacketType::kRouteError);
  beacon.origin = env_.id();
  beacon.seq = ++next_seq_;
  beacon.final_dst = env_.id();  // local beacon: not forwarded by anyone
  beacon.route = refused.route;
  beacon.broken_node = broken;
  env_.send(std::move(beacon));
}

void OnDemandRouting::handle_data(const pkt::Packet& packet) {
  if (packet.link_dst != env_.id()) return;

  if (packet.final_dst == env_.id()) {
    if (observer_) observer_->on_data_delivered(env_.id(), packet);
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kRouteDeliver,
               .node = env_.id(),
               .peer = packet.origin,
               .value = env_.now() - packet.created_at,
               .packet = &packet});
    }
    return;
  }

  const std::size_t my_index = index_in(packet.route, env_.id());
  if (my_index == static_cast<std::size_t>(-1) ||
      my_index + 1 >= packet.route.size()) {
    LW_DEBUG << "node " << env_.id() << ": DATA with inconsistent route, "
             << packet.describe();
    return;
  }
  pkt::Packet fwd = env_.packet_factory().forward_copy(packet);
  fwd.route_index = my_index;
  fwd.link_dst = packet.route[my_index + 1];
  fwd.announced_prev_hop = packet.claimed_tx;
  fwd.claimed_tx = kInvalidNode;
  if (table_.is_revoked(fwd.link_dst)) {
    ++refused_next_hop_revoked_;
    send_route_error(packet, fwd.link_dst);
    return;
  }
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kRouteForward,
             .node = env_.id(),
             .peer = fwd.link_dst,
             .packet = &packet});
  }
  env_.send(std::move(fwd));
}

void OnDemandRouting::send_route_error(const pkt::Packet& broken_packet,
                                       NodeId broken) {
  const std::size_t my_index = index_in(broken_packet.route, env_.id());
  if (my_index == static_cast<std::size_t>(-1) || my_index == 0) return;
  pkt::Packet rerr = env_.packet_factory().make(pkt::PacketType::kRouteError);
  rerr.origin = env_.id();
  rerr.seq = ++next_seq_;
  rerr.final_dst = broken_packet.origin;
  rerr.route = broken_packet.route;
  rerr.route_index = my_index;
  rerr.broken_node = broken;
  rerr.link_dst = broken_packet.route[my_index - 1];
  if (table_.is_revoked(rerr.link_dst)) return;  // no way back either
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kRouting)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kRouteError,
             .node = env_.id(),
             .peer = broken});
  }
  env_.send(std::move(rerr));
}

void OnDemandRouting::handle_route_error(const pkt::Packet& packet) {
  if (packet.link_dst != env_.id()) return;
  const std::size_t my_index = index_in(packet.route, env_.id());
  if (my_index == static_cast<std::size_t>(-1)) return;

  if (my_index == 0) {
    // We are the flow source: every cached route through the broken node
    // is dead; the next data packet re-discovers.
    cache_.evict_containing(packet.broken_node);
    return;
  }
  pkt::Packet fwd = env_.packet_factory().forward_copy(packet);
  fwd.route_index = my_index;
  fwd.link_dst = packet.route[my_index - 1];
  fwd.announced_prev_hop = packet.claimed_tx;
  fwd.claimed_tx = kInvalidNode;
  if (table_.is_revoked(fwd.link_dst)) return;
  env_.send(std::move(fwd));
}

void OnDemandRouting::on_revoked(NodeId node) {
  cache_.evict_containing(node);
  // Pending data keeps waiting; the next retry re-floods and discovers a
  // clean route around the revoked node.
}

void OnDemandRouting::on_send_failed(const pkt::Packet& packet) {
  const NodeId dead_hop = packet.link_dst;
  if (dead_hop == kInvalidNode) return;
  cache_.evict_containing(dead_hop);
  // As with a revocation, queued data waits for the retry flood, which
  // will route around the unreachable hop (or fail and re-flood later).
}

void OnDemandRouting::reset() {
  cache_.clear();
  seen_requests_.clear();
  for (auto& [flow, pending] : pending_forwards_) {
    (void)flow;
    pending.event.cancel();
  }
  pending_forwards_.clear();
  replied_requests_.clear();
  discoveries_.clear();
  // next_seq_ is NOT reset: post-recovery REQs must not collide with
  // pre-crash (origin, seq) flows still sitting in neighbors' duplicate
  // filters.
}

}  // namespace lw::routing
