// Source-route cache with timeout eviction (the paper's TOut_Route).
//
// TOut is an *idle* timeout, refreshed on use (AODV active-route
// semantics): this is the reading of "evicted from the cache after a
// timeout period expires" that is consistent with the paper's own cost
// model (f ~= 0.25 route establishments/s at N = 100 — an absolute
// 50 s lifetime for 100 always-on sources would force f = 2/s and
// saturate the 40 kbps channel with floods). Routes through revoked nodes
// are torn down explicitly instead (revocation eviction + RERR).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "packet/packet.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::routing {

struct Route {
  /// Full node sequence, source first, destination last. Pool-backed like
  /// the packet route vectors it is copied from/into.
  pkt::NodeList path;
  Time established = kTimeZero;
  Time expires = kTimeZero;

  std::size_t hop_count() const { return path.empty() ? 0 : path.size() - 1; }
};

class RouteCache {
 public:
  explicit RouteCache(Duration route_timeout)
      : route_timeout_(route_timeout) {}

  /// Caches a route to path.back(). An existing live entry is replaced
  /// only by a strictly shorter path (the source keeps the best route);
  /// an expired entry is always replaced.
  /// Returns true if the cache changed.
  bool insert(pkt::NodeList path, Time now);

  /// Live route to `dst`, or nullptr. Expired entries are erased lazily;
  /// a successful lookup refreshes the idle timeout.
  const Route* lookup(NodeId dst, Time now);

  /// Lookup without refreshing the idle timeout.
  const Route* peek(NodeId dst, Time now);

  /// Removes every route that includes `node` (revocation response).
  /// Returns the number of routes evicted.
  std::size_t evict_containing(NodeId node);

  /// Drops the route to `dst` if present.
  void evict_destination(NodeId dst) { routes_.erase(dst); }

  /// Drops every route (owner crashed).
  void clear() { routes_.clear(); }

  std::size_t size() const { return routes_.size(); }
  Duration route_timeout() const { return route_timeout_; }

 private:
  Duration route_timeout_;
  util::PoolUnorderedMap<NodeId, Route> routes_;
};

}  // namespace lw::routing
