#include "routing/route_cache.h"

#include <algorithm>
#include <stdexcept>

namespace lw::routing {

bool RouteCache::insert(pkt::NodeList path, Time now) {
  if (path.size() < 2) throw std::invalid_argument("route needs >= 2 nodes");
  const NodeId dst = path.back();
  auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.expires > now &&
      it->second.path.size() <= path.size()) {
    return false;  // existing live route is at least as short
  }
  Route route{std::move(path), now, now + route_timeout_};
  routes_[dst] = std::move(route);
  return true;
}

const Route* RouteCache::lookup(NodeId dst, Time now) {
  auto it = routes_.find(dst);
  if (it == routes_.end()) return nullptr;
  if (it->second.expires <= now) {
    routes_.erase(it);
    return nullptr;
  }
  it->second.expires = now + route_timeout_;  // refresh on use
  return &it->second;
}

const Route* RouteCache::peek(NodeId dst, Time now) {
  auto it = routes_.find(dst);
  if (it == routes_.end()) return nullptr;
  if (it->second.expires <= now) {
    routes_.erase(it);
    return nullptr;
  }
  return &it->second;
}

std::size_t RouteCache::evict_containing(NodeId node) {
  std::size_t evicted = 0;
  for (auto it = routes_.begin(); it != routes_.end();) {
    const auto& path = it->second.path;
    if (std::find(path.begin(), path.end(), node) != path.end()) {
      it = routes_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace lw::routing
