// CSMA/CA medium-access control with stop-and-wait ARQ and RTS/CTS
// virtual carrier sense — a simplified 802.11 DCF, which is what the
// paper's ns-2 stack provides.
//
// * Carrier sense with binary-exponential random backoff and a FIFO
//   transmit queue.
// * Unicast frames are acknowledged; the sender retransmits (same frame
//   uid) up to a retry limit. Without ARQ, multihop unicast (REP/DATA)
//   dies to hidden-terminal collisions.
// * Unicast frames at or above rts_threshold bytes are protected by an
//   RTS/CTS handshake: overhearers of either control frame set their NAV
//   and defer, silencing hidden terminals around both ends for the
//   duration of the DATA+ACK exchange. Broadcasts are neither
//   acknowledged nor RTS-protected, as in 802.11.
// * Flooded control packets are spread by a forwarding jitter at the
//   routing layer; the rushing attacker bypasses every one of these
//   courtesies with SendOptions::skip_backoff.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "obs/recorder.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "util/arena.h"
#include "util/rng.h"

namespace lw::mac {

struct MacParams {
  /// Backoff slot length in seconds.
  Duration slot = 0.002;
  /// Initial contention window in slots; doubles per busy retry up to max.
  /// Sized generously: at 40 kbps a DATA frame lasts ~8 slots, so small
  /// windows re-synchronize contenders instead of separating them.
  int initial_cw_slots = 16;
  int max_cw_slots = 128;
  /// Carrier-busy retries before the frame is dropped. Generous: frames
  /// queued during a dense burst (discovery replies at high N_B, alert
  /// storms) should wait the burst out rather than vanish.
  int max_attempts = 24;
  /// Random forwarding delay applied to flood_jitter sends (ALERT
  /// broadcasts; REQ forwards are jittered by the routing layer).
  Duration flood_jitter_max = 0.3;

  /// Link-layer ARQ for unicast frames.
  bool arq = true;
  /// Retransmissions before a unicast frame is abandoned.
  int max_retransmissions = 5;
  /// Gap between a reception and the control response (ACK/CTS).
  Duration sifs = 0.001;
  /// CTS/ACK wait measured from the end of our transmission.
  Duration response_timeout = 0.04;

  /// RTS/CTS handshake for unicast frames at least this large (bytes).
  /// Disabled by default: at 40 kbps the handshake's own control frames
  /// collide faster than they silence hidden terminals, lowering goodput
  /// (a classic result — RTS/CTS pays off at high bitrates where DATA
  /// airtime dwarfs the handshake, not here). The machinery stays
  /// available for experiments.
  std::uint32_t rts_threshold = 0xFFFFFFFF;
};

struct SendOptions {
  /// Apply the random flood-forwarding jitter before queuing.
  bool flood_jitter = false;
  /// Disc-radius scale; >1 is the high-power attack mode.
  double range_multiplier = 1.0;
  /// Protocol-deviation attacker: transmit immediately, no carrier sense,
  /// no jitter, no backoff.
  bool skip_backoff = false;
};

struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t transmitted = 0;
  std::uint64_t dropped_channel_busy = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dropped_no_ack = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t rts_sent = 0;
  std::uint64_t cts_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
};

class CsmaMac {
 public:
  using Upcall = std::function<void(const pkt::Packet&)>;
  using SendFailedCallback = std::function<void(const pkt::Packet&)>;

  /// `recorder` (optional) receives mac.backoff / mac.busy_drop events; it
  /// must outlive the MAC.
  CsmaMac(sim::Simulator& simulator, phy::Medium& medium, phy::Radio& radio,
          Rng backoff_rng, MacParams params,
          obs::Recorder* recorder = nullptr);

  /// Frames the MAC delivers upward (everything decoded except MAC-level
  /// control frames and ARQ duplicates).
  void set_upcall(Upcall upcall) { upcall_ = std::move(upcall); }

  /// Queues a frame for transmission.
  void send(pkt::Packet packet, SendOptions options = {});

  /// Optional: invoked when a unicast frame exhausts its ARQ retries
  /// (link-layer delivery failure — the next hop is unreachable). Left
  /// unset on clean runs; the fault-hardened node wires it to routing so
  /// routes through dead next hops are evicted and re-discovered.
  void set_send_failed(SendFailedCallback callback) {
    send_failed_ = std::move(callback);
  }

  /// Wipes all queued frames, pending exchanges, timers and dedupe state
  /// (node crash). Lambdas already in the event queue are disarmed by an
  /// epoch check, so a reset MAC never acts on pre-crash state.
  void reset();

  std::size_t queue_depth() const { return queue_.size(); }
  const MacStats& stats() const { return stats_; }
  const MacParams& params() const { return params_; }

 private:
  struct Outgoing {
    pkt::Packet packet;
    SendOptions options;
    int busy_attempts = 0;
    int retransmissions = 0;
  };

  /// Unicast exchange in progress (the frame is out of the queue).
  struct Exchange {
    Outgoing frame;
    enum class Stage { kWaitCts, kWaitAck } stage = Stage::kWaitCts;
  };

  void enqueue(Outgoing outgoing, bool front);
  void pump();
  void transmit_now(Outgoing outgoing);
  void on_tx_done();
  void on_frame(const pkt::Packet& packet);
  void begin_exchange(Outgoing outgoing);
  void arm_response_timer();
  void fail_exchange_attempt();
  void send_control_response(pkt::Packet response);
  bool wants_rts(const Outgoing& outgoing) const;
  bool wants_ack(const Outgoing& outgoing) const;
  static bool is_mac_control(pkt::PacketType type) {
    return type == pkt::PacketType::kAck || type == pkt::PacketType::kRts ||
           type == pkt::PacketType::kCts;
  }
  Duration backoff_delay(int attempts);
  Duration frame_duration(const pkt::Packet& packet) const;

  sim::Simulator& simulator_;
  phy::Medium& medium_;
  phy::Radio& radio_;
  Rng rng_;
  MacParams params_;
  obs::Recorder* recorder_;
  Upcall upcall_;
  SendFailedCallback send_failed_;
  /// Bumped by reset(); scheduled lambdas from an earlier epoch no-op.
  int epoch_ = 0;
  /// Pool-backed: deque chunk churn (a node enqueues/drains continuously
  /// in the steady state) recycles through the arena freelists.
  std::deque<Outgoing, util::PoolAllocator<Outgoing>> queue_;
  bool retry_scheduled_ = false;
  /// Control responses (ACK/CTS) inside their SIFS delay.
  int pending_responses_ = 0;
  /// Frame currently on the air.
  std::optional<Outgoing> in_flight_;
  /// Unicast RTS/DATA exchange awaiting its CTS or ACK.
  std::optional<Exchange> exchange_;
  sim::EventHandle response_timer_;
  /// Last unicast frame uid accepted per claimed sender (ARQ dedupe).
  util::PoolUnorderedMap<NodeId, PacketUid> last_accepted_;
  MacStats stats_;
};

}  // namespace lw::mac
