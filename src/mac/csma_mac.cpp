#include "mac/csma_mac.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lw::mac {
namespace {

/// Control-frame uid tag bits; data uids are factory counters, so the high
/// bits are free and every control frame stays unique on the air.
constexpr PacketUid kAckUidTag = 1ull << 63;
constexpr PacketUid kRtsUidTag = 1ull << 62;
constexpr PacketUid kCtsUidTag = 1ull << 61;

}  // namespace

CsmaMac::CsmaMac(sim::Simulator& simulator, phy::Medium& medium,
                 phy::Radio& radio, Rng backoff_rng, MacParams params,
                 obs::Recorder* recorder)
    : simulator_(simulator),
      medium_(medium),
      radio_(radio),
      rng_(backoff_rng),
      params_(params),
      recorder_(recorder) {
  radio_.set_tx_done_sink([this] { on_tx_done(); });
  radio_.set_frame_sink([this](const pkt::Packet& p) { on_frame(p); });
}

Duration CsmaMac::frame_duration(const pkt::Packet& packet) const {
  return medium_.transmit_duration(packet);
}

void CsmaMac::send(pkt::Packet packet, SendOptions options) {
  ++stats_.enqueued;
  Outgoing outgoing{std::move(packet), options, 0, 0};
  const bool jitter = options.flood_jitter && !options.skip_backoff;
  if (jitter) {
    Duration delay = rng_.uniform(0.0, params_.flood_jitter_max);
    simulator_.schedule(delay, [this, epoch = epoch_,
                                outgoing = std::move(outgoing)]() mutable {
      if (epoch != epoch_) return;  // MAC was reset (crash) meanwhile
      enqueue(std::move(outgoing), /*front=*/false);
    });
  } else {
    enqueue(std::move(outgoing), /*front=*/false);
  }
}

void CsmaMac::enqueue(Outgoing outgoing, bool front) {
  if (front) {
    queue_.push_front(std::move(outgoing));
  } else {
    queue_.push_back(std::move(outgoing));
  }
  pump();
}

Duration CsmaMac::backoff_delay(int attempts) {
  int cw = params_.initial_cw_slots << std::min(attempts, 5);
  cw = std::min(cw, params_.max_cw_slots);
  auto slots = rng_.uniform_int(1, static_cast<std::uint64_t>(cw));
  return static_cast<double>(slots) * params_.slot;
}

bool CsmaMac::wants_ack(const Outgoing& outgoing) const {
  return params_.arq && !outgoing.options.skip_backoff &&
         outgoing.packet.link_dst != kInvalidNode &&
         !is_mac_control(outgoing.packet.type);
}

bool CsmaMac::wants_rts(const Outgoing& outgoing) const {
  return wants_ack(outgoing) &&
         outgoing.packet.wire_size() >= params_.rts_threshold;
}

void CsmaMac::pump() {
  while (true) {
    if (queue_.empty()) return;
    if (in_flight_) return;  // tx-done resumes
    if (retry_scheduled_) return;
    Outgoing& head = queue_.front();
    const bool control = is_mac_control(head.packet.type);
    // While a unicast exchange is pending, or one of our own SIFS-priority
    // responses (ACK/CTS for others) is about to be queued, only control
    // frames may go out.
    if ((exchange_ || pending_responses_ > 0) && !control) return;

    const bool busy = medium_.channel_busy(radio_.id());
    if (busy && !head.options.skip_backoff && !control) {
      ++head.busy_attempts;
      if (head.busy_attempts > params_.max_attempts) {
        ++stats_.dropped_channel_busy;
        if (recorder_ && recorder_->wants(obs::Layer::kMac)) {
          recorder_->emit({.t = simulator_.now(),
                           .kind = obs::EventKind::kMacBusyDrop,
                           .node = radio_.id(),
                           .packet = &head.packet});
        }
        queue_.pop_front();
        continue;  // try the next frame
      }
      retry_scheduled_ = true;
      const Duration backoff = backoff_delay(head.busy_attempts);
      if (recorder_ && recorder_->wants(obs::Layer::kMac)) {
        recorder_->emit({.t = simulator_.now(),
                         .kind = obs::EventKind::kMacBackoff,
                         .node = radio_.id(),
                         .value = backoff,
                         .packet = &head.packet});
      }
      simulator_.schedule(backoff, [this, epoch = epoch_] {
        if (epoch != epoch_) return;
        retry_scheduled_ = false;
        pump();
      });
      return;
    }

    Outgoing outgoing = std::move(queue_.front());
    queue_.pop_front();

    if (wants_rts(outgoing)) {
      begin_exchange(std::move(outgoing));
    } else {
      transmit_now(std::move(outgoing));
    }
    return;
  }
}

void CsmaMac::begin_exchange(Outgoing outgoing) {
  const pkt::Packet& data = outgoing.packet;

  pkt::Packet rts;
  rts.uid = data.uid | kRtsUidTag;
  rts.type = pkt::PacketType::kRts;
  rts.link_dst = data.link_dst;
  rts.claimed_tx = radio_.id();
  rts.acked_uid = data.uid;
  // Channel reservation: CTS + DATA + ACK plus the SIFS gaps between them.
  pkt::Packet cts_model;
  cts_model.type = pkt::PacketType::kCts;
  pkt::Packet ack_model;
  ack_model.type = pkt::PacketType::kAck;
  rts.nav_duration = 3 * params_.sifs + frame_duration(cts_model) +
                     frame_duration(data) + frame_duration(ack_model);

  const double range = outgoing.options.range_multiplier;
  exchange_ = Exchange{std::move(outgoing), Exchange::Stage::kWaitCts};
  ++stats_.rts_sent;
  transmit_now(Outgoing{std::move(rts), SendOptions{false, range, false}, 0, 0});
}

void CsmaMac::transmit_now(Outgoing outgoing) {
  if (in_flight_) {
    // The air is ours conceptually but a frame is still leaving the
    // radio; retry as soon as it is done.
    simulator_.schedule(0.002, [this, epoch = epoch_,
                                outgoing = std::move(outgoing)]() mutable {
      if (epoch != epoch_) return;
      transmit_now(std::move(outgoing));
    });
    return;
  }
  in_flight_ = std::move(outgoing);
  ++stats_.transmitted;
  medium_.transmit(radio_.id(), in_flight_->packet,
                   in_flight_->options.range_multiplier);
}

void CsmaMac::on_tx_done() {
  // A reset (node crash) may clear in_flight_ while the frame is still on
  // the air; its completion is then nobody's business.
  if (!in_flight_) return;
  Outgoing done = std::move(*in_flight_);
  in_flight_.reset();

  if (done.packet.type == pkt::PacketType::kRts) {
    // Waiting for the CTS; the exchange frame is parked in exchange_.
    arm_response_timer();
  } else if (exchange_ &&
             exchange_->stage == Exchange::Stage::kWaitAck &&
             done.packet.uid == exchange_->frame.packet.uid) {
    arm_response_timer();  // DATA of the exchange is out; waiting for ACK
  } else if (wants_ack(done) && !exchange_) {
    // Plain (non-RTS) unicast: park it and wait for the ACK.
    exchange_ = Exchange{std::move(done), Exchange::Stage::kWaitAck};
    arm_response_timer();
  }
  pump();
}

void CsmaMac::arm_response_timer() {
  response_timer_ = simulator_.schedule_cancellable(
      params_.response_timeout, [this] { fail_exchange_attempt(); });
}

void CsmaMac::fail_exchange_attempt() {
  if (!exchange_) return;
  Outgoing frame = std::move(exchange_->frame);
  exchange_.reset();
  ++frame.retransmissions;
  if (frame.retransmissions > params_.max_retransmissions) {
    ++stats_.dropped_no_ack;
    if (send_failed_) send_failed_(frame.packet);
    pump();
    return;
  }
  ++stats_.retransmissions;
  // Collision loss is the usual reason we are here; grow the contention
  // window with the retransmission count so repeated losses spread out.
  frame.busy_attempts = frame.retransmissions;
  const Duration delay = backoff_delay(frame.retransmissions);
  queue_.push_front(std::move(frame));
  retry_scheduled_ = true;
  simulator_.schedule(delay, [this, epoch = epoch_] {
    if (epoch != epoch_) return;
    retry_scheduled_ = false;
    pump();
  });
}

void CsmaMac::reset() {
  ++epoch_;  // disarms every lambda scheduled before the crash
  queue_.clear();
  retry_scheduled_ = false;
  pending_responses_ = 0;
  in_flight_.reset();
  exchange_.reset();
  response_timer_.cancel();
  last_accepted_.clear();
}

void CsmaMac::send_control_response(pkt::Packet response) {
  // Until the response leaves the SIFS delay and takes the queue front,
  // nothing else may start transmitting: an overtaking data frame would
  // have us on the air exactly when the peer's ACK arrives (half-duplex
  // self-collision on every forwarding hop).
  ++pending_responses_;
  simulator_.schedule(params_.sifs,
                      [this, epoch = epoch_,
                       response = std::move(response)]() mutable {
                        if (epoch != epoch_) return;
                        --pending_responses_;
                        enqueue(Outgoing{std::move(response), SendOptions{},
                                         0, 0},
                                /*front=*/true);
                      });
}

void CsmaMac::on_frame(const pkt::Packet& packet) {
  const Time now = simulator_.now();
  switch (packet.type) {
    case pkt::PacketType::kAck: {
      if (packet.link_dst != radio_.id()) return;  // overheard ACK
      if (!exchange_ || exchange_->stage != Exchange::Stage::kWaitAck) return;
      if (packet.acked_uid != exchange_->frame.packet.uid) return;
      response_timer_.cancel();
      exchange_.reset();
      pump();
      return;
    }
    case pkt::PacketType::kRts: {
      if (packet.link_dst != radio_.id()) {
        radio_.set_nav(now + packet.nav_duration);
        return;
      }
      // Honor a neighbor's reservation: no CTS while our NAV is set.
      if (now < radio_.nav_until()) return;
      pkt::Packet cts;
      cts.uid = packet.acked_uid | kCtsUidTag;
      cts.type = pkt::PacketType::kCts;
      cts.link_dst = packet.claimed_tx;
      cts.claimed_tx = radio_.id();
      cts.acked_uid = packet.acked_uid;
      cts.nav_duration = std::max(
          0.0, packet.nav_duration - frame_duration(cts) - params_.sifs);
      ++stats_.cts_sent;
      send_control_response(std::move(cts));
      return;
    }
    case pkt::PacketType::kCts: {
      if (packet.link_dst != radio_.id()) {
        radio_.set_nav(now + packet.nav_duration);
        return;
      }
      if (!exchange_ || exchange_->stage != Exchange::Stage::kWaitCts) return;
      if (packet.acked_uid != exchange_->frame.packet.uid) return;
      response_timer_.cancel();
      exchange_->stage = Exchange::Stage::kWaitAck;
      pkt::Packet data = exchange_->frame.packet;  // retransmissions reuse it
      const double range = exchange_->frame.options.range_multiplier;
      simulator_.schedule(params_.sifs, [this, epoch = epoch_,
                                         data = std::move(data),
                                         range]() mutable {
        if (epoch != epoch_) return;
        transmit_now(Outgoing{std::move(data), SendOptions{false, range, false},
                              0, 0});
      });
      return;
    }
    default:
      break;
  }

  if (params_.arq && packet.link_dst != kInvalidNode &&
      packet.link_dst != radio_.id()) {
    // Overheard unicast data: its ACK follows after SIFS. Defer through
    // the ACK slot (the 802.11 duration-field discipline) so our own
    // transmission cannot stomp it.
    pkt::Packet ack_model;
    ack_model.type = pkt::PacketType::kAck;
    radio_.set_nav(now + params_.sifs + frame_duration(ack_model) + 0.001);
  }

  if (params_.arq && packet.link_dst == radio_.id()) {
    pkt::Packet ack;
    ack.uid = packet.uid | kAckUidTag;
    ack.type = pkt::PacketType::kAck;
    ack.link_dst = packet.claimed_tx;
    ack.claimed_tx = radio_.id();
    ack.acked_uid = packet.uid;
    ++stats_.acks_sent;
    send_control_response(std::move(ack));

    // Retransmission duplicate? The sender repeats the same uid until our
    // ACK gets through.
    auto [it, inserted] =
        last_accepted_.try_emplace(packet.claimed_tx, packet.uid);
    if (!inserted) {
      if (it->second == packet.uid) {
        ++stats_.duplicates_suppressed;
        return;
      }
      it->second = packet.uid;
    }
  }

  if (upcall_) upcall_(packet);
}

}  // namespace lw::mac
