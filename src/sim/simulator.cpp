#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace lw::sim {

void Simulator::push(Time when, std::function<void()> action,
                     std::shared_ptr<bool> cancelled) {
  queue_.push(Event{when, next_seq_++, std::move(action), std::move(cancelled)});
  if (queue_.size() > max_pending_) max_pending_ = queue_.size();
}

void Simulator::schedule(Duration delay, std::function<void()> action) {
  if (delay < 0) throw std::invalid_argument("negative schedule delay");
  push(now_ + delay, std::move(action), nullptr);
}

void Simulator::schedule_at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("schedule_at in the past");
  push(when, std::move(action), nullptr);
}

EventHandle Simulator::schedule_cancellable(Duration delay,
                                            std::function<void()> action) {
  if (delay < 0) throw std::invalid_argument("negative schedule delay");
  auto flag = std::make_shared<bool>(false);
  push(now_ + delay, std::move(action), flag);
  return EventHandle(std::move(flag));
}

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because pop() immediately removes the moved-from slot.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    assert(event.when >= now_ && "event queue went backwards");
    now_ = event.when;
    if (event.cancelled && *event.cancelled) continue;
    event.action();
    ++count;
    ++executed_;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    if (event.cancelled && *event.cancelled) continue;
    event.action();
    ++count;
    ++executed_;
  }
  return count;
}

}  // namespace lw::sim
