#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace lw::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kFreeListEnd) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void Simulator::push(Time when, SmallFn action,
                     std::shared_ptr<bool> cancelled) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.cancelled = std::move(cancelled);
  queue_.push(QueueEntry{when, next_seq_++, slot});
  if (queue_.size() > max_pending_) max_pending_ = queue_.size();
  if (queue_.size() > window_max_pending_) window_max_pending_ = queue_.size();
}

void Simulator::set_tick_hook(Duration interval, TickHook hook) {
  if (interval <= 0.0 || !hook) {
    tick_interval_ = 0.0;
    tick_hook_ = nullptr;
    return;
  }
  tick_interval_ = interval;
  tick_hook_ = std::move(hook);
  ticks_fired_ = 0;
  next_tick_ = interval;
}

void Simulator::fire_ticks(Time upto) {
  while (next_tick_ <= upto) {
    tick_hook_(next_tick_);
    ++ticks_fired_;
    // Boundary k+1 sits at (k+1) * interval; computed by multiplication,
    // not accumulation, so long runs do not drift off the bucket grid.
    next_tick_ = static_cast<double>(ticks_fired_ + 1) * tick_interval_;
  }
}

void Simulator::schedule(Duration delay, SmallFn action) {
  if (delay < 0) throw std::invalid_argument("negative schedule delay");
  push(now_ + delay, std::move(action), nullptr);
}

void Simulator::schedule_at(Time when, SmallFn action) {
  if (when < now_) throw std::invalid_argument("schedule_at in the past");
  push(when, std::move(action), nullptr);
}

EventHandle Simulator::schedule_cancellable(Duration delay,
                                            SmallFn action) {
  if (delay < 0) throw std::invalid_argument("negative schedule delay");
  auto flag = std::make_shared<bool>(false);
  push(now_ + delay, std::move(action), flag);
  return EventHandle(std::move(flag));
}

void Simulator::set_wall_timeout(double seconds) {
  wall_limit_seconds_ = seconds;
  wall_check_countdown_ = kWallCheckStride;
  if (seconds > 0.0) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
  }
}

void Simulator::check_wall_deadline() {
  if (wall_limit_seconds_ <= 0.0) return;
  if (--wall_check_countdown_ != 0) return;
  wall_check_countdown_ = kWallCheckStride;
  if (std::chrono::steady_clock::now() >= wall_deadline_) {
    throw WallClockTimeout(wall_limit_seconds_, now_);
  }
}

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    const QueueEntry entry = queue_.top();
    // Bucket boundaries close BEFORE the first event at t >= boundary pops:
    // the hook sees the queue (and every sink) exactly as of the boundary.
    if (tick_interval_ > 0.0 && entry.when >= next_tick_) {
      fire_ticks(entry.when);
    }
    queue_.pop();
    assert(entry.when >= now_ && "event queue went backwards");
    now_ = entry.when;
    // Move the payload out and recycle the slot BEFORE executing: the
    // action may schedule (and thus reallocate the slab).
    Slot& slot = slots_[entry.slot];
    SmallFn action = std::move(slot.action);
    const bool skip = slot.cancelled && *slot.cancelled;
    slot.cancelled.reset();
    slot.next_free = free_head_;
    free_head_ = entry.slot;
    if (skip) continue;
    current_seq_ = entry.seq;
    action();
    current_seq_ = kNoEvent;
    ++count;
    ++executed_;
    check_wall_deadline();
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (tick_interval_ > 0.0 && entry.when >= next_tick_) {
      fire_ticks(entry.when);
    }
    queue_.pop();
    now_ = entry.when;
    Slot& slot = slots_[entry.slot];
    SmallFn action = std::move(slot.action);
    const bool skip = slot.cancelled && *slot.cancelled;
    slot.cancelled.reset();
    slot.next_free = free_head_;
    free_head_ = entry.slot;
    if (skip) continue;
    current_seq_ = entry.seq;
    action();
    current_seq_ = kNoEvent;
    ++count;
    ++executed_;
    check_wall_deadline();
  }
  return count;
}

}  // namespace lw::sim
