#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/arena.h"

namespace lw::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kFreeListEnd) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void Simulator::push(Time when, SmallFn action,
                     std::shared_ptr<bool> cancelled) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.cancelled = std::move(cancelled);
  queue_.push(QueueEntry{when, next_seq_++, slot, kNoBatch});
  if (pending() > max_pending_) max_pending_ = pending();
  if (pending() > window_max_pending_) window_max_pending_ = pending();
}

std::uint32_t Simulator::acquire_batch() {
  if (batch_free_head_ != kFreeListEnd) {
    const std::uint32_t batch = batch_free_head_;
    batch_free_head_ = batches_[batch].next_free;
    return batch;
  }
  const std::uint32_t batch = static_cast<std::uint32_t>(batches_.size());
  batches_.emplace_back();
  return batch;
}

void Simulator::release_batch(std::uint32_t batch) {
  batches_[batch].items.clear();  // keeps capacity for the next broadcast
  batches_[batch].next_free = batch_free_head_;
  batch_free_head_ = batch;
}

void Simulator::fanout_begin() {
  assert(building_batch_ == kNoBatch && "fanout_begin without commit");
  building_batch_ = acquire_batch();
}

void Simulator::fanout_add(Time when, SmallFn action) {
  assert(building_batch_ != kNoBatch && "fanout_add outside a fan-out");
  if (when < now_) throw std::invalid_argument("fanout_add in the past");
  batches_[building_batch_].items.push_back(
      FanoutItem{when, next_seq_++, std::move(action)});
}

void Simulator::fanout_commit() {
  assert(building_batch_ != kNoBatch && "fanout_commit without begin");
  const std::uint32_t batch = building_batch_;
  building_batch_ = kNoBatch;
  auto& items = batches_[batch].items;
  if (items.empty()) {
    release_batch(batch);
    return;
  }
  // Items were added in receiver order but execute in event order; the
  // sort restores exactly the order k separate heap pushes would pop in.
  std::sort(items.begin(), items.end(),
            [](const FanoutItem& a, const FanoutItem& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.seq < b.seq;
            });
  queue_.push(QueueEntry{items[0].when, items[0].seq, 0, batch});
  fanout_deferred_ += items.size() - 1;
  if (pending() > max_pending_) max_pending_ = pending();
  if (pending() > window_max_pending_) window_max_pending_ = pending();
}

std::uint64_t Simulator::run_batch(const QueueEntry& entry, Time horizon,
                                   bool has_horizon) {
  std::size_t idx = entry.slot;
  std::uint64_t count = 0;
  for (;;) {
    // Re-index on every lap: the action may commit a new fan-out, and
    // growing batches_ can relocate this batch.
    FanoutItem& item = batches_[entry.batch].items[idx];
    assert(item.when >= now_ && "fan-out batch went backwards");
    now_ = item.when;
    SmallFn action = std::move(item.action);
    current_seq_ = item.seq;
    action();
    current_seq_ = kNoEvent;
    ++count;
    ++executed_;
    check_wall_deadline();
    ++idx;
    if (idx == batches_[entry.batch].items.size()) {
      release_batch(entry.batch);
      break;
    }
    // The next item is no longer covered by the popped entry: it either
    // chains in place (still earliest) or goes back on the heap.
    const FanoutItem& next = batches_[entry.batch].items[idx];
    --fanout_deferred_;
    const bool yield =
        (has_horizon && next.when > horizon) ||
        (!queue_.empty() &&
         QueueEntry{next.when, next.seq, 0, kNoBatch} > queue_.top());
    if (yield) {
      queue_.push(QueueEntry{next.when, next.seq,
                             static_cast<std::uint32_t>(idx), entry.batch});
      break;
    }
    // Chaining executes the item the run loop would pop next anyway; close
    // any tick boundaries it crosses, exactly as the loop would have.
    if (tick_interval_ > 0.0 && next.when >= next_tick_) {
      fire_ticks(next.when);
    }
  }
  return count;
}

void Simulator::set_tick_hook(Duration interval, TickHook hook) {
  if (interval <= 0.0 || !hook) {
    tick_interval_ = 0.0;
    tick_hook_ = nullptr;
    return;
  }
  tick_interval_ = interval;
  tick_hook_ = std::move(hook);
  ticks_fired_ = 0;
  next_tick_ = interval;
}

void Simulator::fire_ticks(Time upto) {
  while (next_tick_ <= upto) {
    tick_hook_(next_tick_);
    ++ticks_fired_;
    // Boundary k+1 sits at (k+1) * interval; computed by multiplication,
    // not accumulation, so long runs do not drift off the bucket grid.
    next_tick_ = static_cast<double>(ticks_fired_ + 1) * tick_interval_;
  }
}

void Simulator::schedule(Duration delay, SmallFn action) {
  if (delay < 0) throw std::invalid_argument("negative schedule delay");
  push(now_ + delay, std::move(action), nullptr);
}

void Simulator::schedule_at(Time when, SmallFn action) {
  if (when < now_) throw std::invalid_argument("schedule_at in the past");
  push(when, std::move(action), nullptr);
}

EventHandle Simulator::schedule_cancellable(Duration delay,
                                            SmallFn action) {
  if (delay < 0) throw std::invalid_argument("negative schedule delay");
  // Flag + control block in one pooled block: cancellable timers (MAC
  // response timers, drop-watch expiries) recur every few events.
  auto flag =
      std::allocate_shared<bool>(util::PoolAllocator<bool>{}, false);
  push(now_ + delay, std::move(action), flag);
  return EventHandle(std::move(flag));
}

void Simulator::set_wall_timeout(double seconds) {
  wall_limit_seconds_ = seconds;
  wall_check_countdown_ = kWallCheckStride;
  if (seconds > 0.0) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
  }
}

void Simulator::check_wall_deadline() {
  if (wall_limit_seconds_ <= 0.0) return;
  if (--wall_check_countdown_ != 0) return;
  wall_check_countdown_ = kWallCheckStride;
  if (std::chrono::steady_clock::now() >= wall_deadline_) {
    throw WallClockTimeout(wall_limit_seconds_, now_);
  }
}

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    const QueueEntry entry = queue_.top();
    // Bucket boundaries close BEFORE the first event at t >= boundary pops:
    // the hook sees the queue (and every sink) exactly as of the boundary.
    if (tick_interval_ > 0.0 && entry.when >= next_tick_) {
      fire_ticks(entry.when);
    }
    queue_.pop();
    assert(entry.when >= now_ && "event queue went backwards");
    if (entry.batch != kNoBatch) {
      count += run_batch(entry, horizon, /*has_horizon=*/true);
      continue;
    }
    now_ = entry.when;
    // Move the payload out and recycle the slot BEFORE executing: the
    // action may schedule (and thus reallocate the slab).
    Slot& slot = slots_[entry.slot];
    SmallFn action = std::move(slot.action);
    const bool skip = slot.cancelled && *slot.cancelled;
    slot.cancelled.reset();
    slot.next_free = free_head_;
    free_head_ = entry.slot;
    if (skip) continue;
    current_seq_ = entry.seq;
    action();
    current_seq_ = kNoEvent;
    ++count;
    ++executed_;
    check_wall_deadline();
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (tick_interval_ > 0.0 && entry.when >= next_tick_) {
      fire_ticks(entry.when);
    }
    queue_.pop();
    if (entry.batch != kNoBatch) {
      count += run_batch(entry, kTimeZero, /*has_horizon=*/false);
      continue;
    }
    now_ = entry.when;
    Slot& slot = slots_[entry.slot];
    SmallFn action = std::move(slot.action);
    const bool skip = slot.cancelled && *slot.cancelled;
    slot.cancelled.reset();
    slot.next_free = free_head_;
    free_head_ = entry.slot;
    if (skip) continue;
    current_seq_ = entry.seq;
    action();
    current_seq_ = kNoEvent;
    ++count;
    ++executed_;
    check_wall_deadline();
  }
  return count;
}

}  // namespace lw::sim
