// Discrete-event simulation engine (the ns-2 substitute).
//
// Single-threaded event queue ordered by (time, insertion sequence). The
// insertion-sequence tiebreak makes simultaneous events execute in schedule
// order, which keeps runs deterministic for a given seed.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/small_fn.h"
#include "util/arena.h"
#include "util/sim_time.h"

namespace lw::sim {

/// Handle that can cancel a scheduled event. Cancellation is lazy: the
/// event stays in the queue but its action is skipped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to a scheduled (possibly executed) event.
  bool valid() const { return cancelled_ != nullptr; }

  /// Prevents the action from running if it has not run yet.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Thrown from run_until()/run_all() when a wall-clock deadline set with
/// set_wall_timeout() expires. Carries the virtual time reached, so the
/// caller can report how far the stuck run got.
class WallClockTimeout : public std::runtime_error {
 public:
  WallClockTimeout(double limit_seconds, Time reached)
      : std::runtime_error("simulation exceeded wall-clock limit"),
        limit_seconds(limit_seconds),
        reached(reached) {}
  double limit_seconds;
  Time reached;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules action at now() + delay. delay must be >= 0. This is the
  /// non-cancellable common case and performs no heap allocation when the
  /// callable's captures fit SmallFn's inline buffer (no control block,
  /// no std::function allocation) — the PHY delivery fan-out depends on
  /// this being cheap.
  void schedule(Duration delay, SmallFn action);

  /// Schedules action at an absolute time >= now(). Same allocation-free
  /// fast path as schedule().
  void schedule_at(Time when, SmallFn action);

  /// Like schedule(), but returns a handle that can cancel the event.
  /// Allocates one shared cancellation flag per event; use plain
  /// schedule() wherever cancellation is not needed.
  EventHandle schedule_cancellable(Duration delay, SmallFn action);

  /// Fused fan-out: collects the k events of one broadcast (the PHY
  /// delivery fan-out) into a single pooled batch represented by ONE heap
  /// entry instead of k. Between fanout_begin() and fanout_commit(), each
  /// fanout_add(when, action) reserves the exact sequence number a plain
  /// schedule_at() would have assigned (so next_seq() keeps working for
  /// eager reception registration), but defers the heap push. commit()
  /// sorts the batch by (when, seq) and enqueues one entry for its head;
  /// the run loop then executes queued-up batch items in place while they
  /// still precede the heap top, re-enqueueing one entry only when a
  /// foreign event (or the horizon) interleaves. Execution order, tick
  /// boundaries, executed() and pending() are all identical to k separate
  /// schedule_at() calls — only the heap traffic shrinks from k pushes +
  /// k pops to one push per interleaving. Batch events are not
  /// cancellable. Nested begins are not allowed (commit first).
  void fanout_begin();
  void fanout_add(Time when, SmallFn action);
  void fanout_commit();

  /// Runs events until the queue is empty or the horizon is passed.
  /// Events with timestamp > horizon remain queued (the clock stops at the
  /// horizon). Returns the number of events executed.
  std::uint64_t run_until(Time horizon);

  /// Runs until the queue drains completely.
  std::uint64_t run_all();

  /// Arms a wall-clock watchdog: if a subsequent run_until()/run_all()
  /// call is still executing `seconds` of real time later, it throws
  /// WallClockTimeout. The check runs once every few thousand events, so
  /// the clean-path cost is a counter decrement. seconds <= 0 disarms.
  /// This is how the sweep harness turns a stuck point into a failed
  /// point instead of a hung worker pool.
  void set_wall_timeout(double seconds);

  /// Called at every crossing of a sim-time bucket boundary with the
  /// boundary time. Fires from the run loop BEFORE the first event at
  /// t >= boundary executes (and once per boundary in a quiet gap), so the
  /// queue and all protocol state reflect exactly the events before the
  /// boundary — the determinism anchor of the telemetry series. The hook
  /// observes; it must not schedule events or otherwise mutate the run.
  using TickHook = std::function<void(Time boundary)>;

  /// Arms the boundary hook with the given bucket width (first boundary at
  /// `interval`). interval <= 0 (or a null hook) disarms; the clean-path
  /// cost is then one predictable branch per event.
  void set_tick_hook(Duration interval, TickHook hook);

  /// Number of events currently queued (including cancelled ones and
  /// fan-out batch items not individually represented on the heap).
  std::size_t pending() const { return queue_.size() + fanout_deferred_; }

  /// High-water mark of pending(): the queue-depth figure the run
  /// profiler reports.
  std::size_t max_pending() const { return max_pending_; }

  /// High-water mark of pending() since the previous call; resets the
  /// window to the current depth. Deterministic (queue-state only) —
  /// the per-bucket queue figure of the telemetry series.
  std::size_t take_window_max_pending() {
    const std::size_t peak = window_max_pending_;
    window_max_pending_ = queue_.size();
    return peak;
  }

  /// Size of the event slab (allocated slots, free or live): the
  /// simulator's own memory high-water in entries, monotone per run.
  std::size_t slab_slots() const { return slots_.size(); }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Sequence number the next scheduled event will receive. Lets the PHY
  /// stamp eagerly-registered receptions with the seq their begin event
  /// would have carried, preserving tie-breaking behavior exactly.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Sequence number of the event currently executing; kNoEvent outside
  /// the run loop (then every scheduled-in-the-past event counts as done).
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
  std::uint64_t current_seq() const { return current_seq_; }

 private:
  /// Heap entries are 24-byte PODs; the action (and optional cancel flag)
  /// live in a slab indexed by `slot`, so sift-up/down moves never touch
  /// the callable. At ~5M events per large run the heap churn is pure
  /// memcpy of small keys instead of per-move indirect calls. When `batch`
  /// is not kNoBatch the entry stands for a fan-out batch starting at item
  /// index `slot` (the batch's remaining items ride along off-heap).
  struct QueueEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t batch;

    // Min-heap: earliest time first, then earliest insertion.
    bool operator>(const QueueEntry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  static constexpr std::uint32_t kFreeListEnd = ~std::uint32_t{0};
  static constexpr std::uint32_t kNoBatch = ~std::uint32_t{0};

  /// One deferred event of a fused fan-out: carries the sequence number it
  /// reserved at fanout_add() time so interleaving is unchanged.
  struct FanoutItem {
    Time when;
    std::uint64_t seq;
    SmallFn action;
  };

  /// A committed fan-out. Recycled through a freelist (pool-backed item
  /// vectors keep their capacity), so steady-state broadcasts allocate
  /// nothing.
  struct FanoutBatch {
    util::PoolVector<FanoutItem> items;
    std::uint32_t next_free = kFreeListEnd;
  };

  struct Slot {
    SmallFn action;
    std::shared_ptr<bool> cancelled;  // null when not cancellable
    std::uint32_t next_free = kFreeListEnd;
  };

  void push(Time when, SmallFn action, std::shared_ptr<bool> cancelled);
  std::uint32_t acquire_slot();
  std::uint32_t acquire_batch();
  void release_batch(std::uint32_t batch);
  /// Executes the popped batch entry's item, then chains through the
  /// batch's remaining items while they precede the heap top and the
  /// horizon (has_horizon gates the check for run_all). Returns the number
  /// of actions run; bumps executed_ itself, one per item, exactly as k
  /// separate heap events would have.
  std::uint64_t run_batch(const QueueEntry& entry, Time horizon,
                          bool has_horizon);
  /// Amortized deadline probe: real check every kWallCheckStride events.
  void check_wall_deadline();
  /// Fires the tick hook for every boundary <= `upto`, in order.
  void fire_ticks(Time upto);

  static constexpr std::uint32_t kWallCheckStride = 4096;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kFreeListEnd;
  std::vector<FanoutBatch> batches_;
  std::uint32_t batch_free_head_ = kFreeListEnd;
  /// Batch being filled between fanout_begin() and fanout_commit().
  std::uint32_t building_batch_ = kNoBatch;
  /// Committed fan-out items not individually on the heap (each live
  /// batch contributes size - 1: its head rides a real queue entry).
  std::size_t fanout_deferred_ = 0;
  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t current_seq_ = kNoEvent;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;
  std::size_t window_max_pending_ = 0;
  /// Sim-time bucket hook; tick_interval_ <= 0 means disarmed.
  Duration tick_interval_ = 0.0;
  TickHook tick_hook_;
  std::uint64_t ticks_fired_ = 0;
  Time next_tick_ = 0.0;
  /// Wall-clock watchdog state; wall_limit_seconds_ <= 0 means disarmed
  /// (the per-event cost is then a single predictable branch).
  double wall_limit_seconds_ = 0.0;
  std::chrono::steady_clock::time_point wall_deadline_{};
  std::uint32_t wall_check_countdown_ = kWallCheckStride;
};

}  // namespace lw::sim
