// Discrete-event simulation engine (the ns-2 substitute).
//
// Single-threaded event queue ordered by (time, insertion sequence). The
// insertion-sequence tiebreak makes simultaneous events execute in schedule
// order, which keeps runs deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace lw::sim {

/// Handle that can cancel a scheduled event. Cancellation is lazy: the
/// event stays in the queue but its action is skipped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to a scheduled (possibly executed) event.
  bool valid() const { return cancelled_ != nullptr; }

  /// Prevents the action from running if it has not run yet.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules action at now() + delay. delay must be >= 0.
  void schedule(Duration delay, std::function<void()> action);

  /// Schedules action at an absolute time >= now().
  void schedule_at(Time when, std::function<void()> action);

  /// Like schedule(), but returns a handle that can cancel the event.
  EventHandle schedule_cancellable(Duration delay,
                                   std::function<void()> action);

  /// Runs events until the queue is empty or the horizon is passed.
  /// Events with timestamp > horizon remain queued (the clock stops at the
  /// horizon). Returns the number of events executed.
  std::uint64_t run_until(Time horizon);

  /// Runs until the queue drains completely.
  std::uint64_t run_all();

  /// Number of events currently queued (including cancelled ones).
  std::size_t pending() const { return queue_.size(); }

  /// High-water mark of pending(): the queue-depth figure the run
  /// profiler reports.
  std::size_t max_pending() const { return max_pending_; }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::function<void()> action;
    std::shared_ptr<bool> cancelled;  // null when not cancellable

    // Min-heap: earliest time first, then earliest insertion.
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void push(Time when, std::function<void()> action,
            std::shared_ptr<bool> cancelled);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;
};

}  // namespace lw::sim
