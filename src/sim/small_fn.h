// Move-only callable with inline storage for the event-queue hot path.
//
// std::function heap-allocates any capture beyond ~16 bytes, which made
// every scheduled PHY delivery (this + radio + shared packet + flags) cost
// a malloc/free pair. SmallFn stores callables up to kInlineBytes in the
// event record itself; larger captures (e.g. MAC closures that carry a
// whole Packet) transparently fall back to the heap, so behavior never
// depends on capture size.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/arena.h"

namespace lw::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      // Oversize captures (MAC closures carrying a whole Packet) spill to
      // the thread pool arena instead of the system heap, so the spill is
      // allocation-free in the steady state too.
      void* raw = util::thread_arena().allocate(sizeof(Fn), alignof(Fn));
      heap_ = ::new (raw) Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(*this); }

 private:
  struct Ops {
    void (*invoke)(SmallFn&);
    void (*move)(SmallFn& dst, SmallFn& src) noexcept;
    void (*destroy)(SmallFn&) noexcept;
  };

  template <typename Fn>
  Fn* inline_target() {
    return std::launder(reinterpret_cast<Fn*>(storage_));
  }

  template <typename Fn>
  static void inline_invoke(SmallFn& f) {
    (*f.inline_target<Fn>())();
  }
  template <typename Fn>
  static void inline_move(SmallFn& dst, SmallFn& src) noexcept {
    ::new (static_cast<void*>(dst.storage_))
        Fn(std::move(*src.inline_target<Fn>()));
    src.inline_target<Fn>()->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(SmallFn& f) noexcept {
    f.inline_target<Fn>()->~Fn();
  }

  template <typename Fn>
  static void heap_invoke(SmallFn& f) {
    (*static_cast<Fn*>(f.heap_))();
  }
  static void heap_move(SmallFn& dst, SmallFn& src) noexcept {
    dst.heap_ = src.heap_;
  }
  template <typename Fn>
  static void heap_destroy(SmallFn& f) noexcept {
    static_cast<Fn*>(f.heap_)->~Fn();
    util::thread_arena().deallocate(f.heap_, sizeof(Fn), alignof(Fn));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {&inline_invoke<Fn>, &inline_move<Fn>,
                                     &inline_destroy<Fn>};

  template <typename Fn>
  static constexpr Ops kHeapOps = {&heap_invoke<Fn>, &heap_move,
                                   &heap_destroy<Fn>};

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(*this, other);
      other.ops_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace lw::sim
