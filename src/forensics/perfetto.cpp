#include "forensics/perfetto.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace lw::forensics {
namespace {

/// Fixed per-layer track ids so exports are comparable across traces.
int layer_tid(const std::string& layer) {
  static constexpr std::pair<const char*, int> kTracks[] = {
      {"phy", 1}, {"mac", 2}, {"nbr", 3}, {"route", 4},
      {"mon", 5}, {"atk", 6}, {"flt", 7}, {"span", 8},
  };
  for (const auto& [name, tid] : kTracks) {
    if (layer == name) return tid;
  }
  return 9;  // unknown layers share one catch-all track
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Comma-separates traceEvents entries; one entry per line for greppable
/// output (the schema allows any whitespace).
class EventArray {
 public:
  explicit EventArray(std::ostream& out) : out_(out) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  }
  void emit(const std::string& body) {
    out_ << (first_ ? "\n" : ",\n") << body;
    first_ = false;
  }
  void close() { out_ << "\n]}\n"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void append_f(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(buffer) - 1));
}

/// Last sighting of a packet lineage (flow-arrow source anchor).
struct Hop {
  NodeId node = kInvalidNode;
  int tid = 0;
  double ts_us = 0.0;
  int count = 0;
};

}  // namespace

void export_perfetto(const std::vector<TraceRecord>& records,
                     std::ostream& out, const PerfettoOptions& options) {
  EventArray events(out);
  std::set<NodeId> named_pids;
  std::set<std::pair<NodeId, int>> named_tids;
  int run_index = 0;
  double offset_us = 0.0;  // pushes each run segment past the previous one
  double max_ts_us = 0.0;  // high-water of emitted slice end times
  std::map<LineageId, Hop> last_hop;

  auto ensure_track = [&](NodeId node, int tid, const char* label) {
    std::string meta;
    if (named_pids.insert(node).second) {
      append_f(&meta,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
               "\"args\":{\"name\":\"node %u\"}}",
               node, node);
      events.emit(meta);
      meta.clear();
    }
    if (named_tids.insert({node, tid}).second) {
      append_f(&meta,
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%d,"
               "\"args\":{\"name\":\"%s\"}}",
               node, tid, label);
      events.emit(meta);
    }
  };

  for (const TraceRecord& record : records) {
    if (record.is_run_header) {
      ++run_index;
      offset_us = max_ts_us;
      last_hop.clear();
      continue;
    }
    const double ts = offset_us + record.t * 1e6;
    std::string body;
    bool first_arg = true;
    auto arg = [&](const std::string& kv) {
      if (!first_arg) body += ',';
      first_arg = false;
      body += kv;
    };

    if (record.is_span) {
      ensure_track(record.node, 8, "span");
      // Nestable async b/e keyed by sid: a node's concurrent spans overlap
      // without the LIFO constraint synchronous B/E stacks impose.
      append_f(&body,
               "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"%s\","
               "\"id\":\"r%d.s%llu\",\"ts\":%.3f,\"pid\":%u,\"tid\":8,"
               "\"args\":{",
               json_escape(record.span_kind).c_str(),
               record.name == "begin" ? "b" : "e", run_index,
               static_cast<unsigned long long>(record.sid), ts, record.node);
      if (record.name == "begin") {
        arg("\"sid\":" + std::to_string(record.sid));
        if (record.parent != 0) {
          arg("\"parent\":" + std::to_string(record.parent));
        }
        if (record.lineage != 0) {
          arg("\"lin\":" + std::to_string(record.lineage));
        }
        if (record.peer != kInvalidNode) {
          arg("\"peer\":" + std::to_string(record.peer));
        }
      } else {
        arg("\"outcome\":\"" + json_escape(record.outcome) + "\"");
        if (record.retries != 0) {
          arg("\"retries\":" + std::to_string(record.retries));
        }
        if (record.has_phases) {
          std::string phases;
          append_f(&phases,
                   "\"observe\":%.9f,\"corroborate\":%.9f,\"isolate\":%.9f",
                   record.observe, record.corroborate, record.isolate);
          arg(phases);
        }
      }
      body += "}}";
      events.emit(body);
      max_ts_us = std::max(max_ts_us, ts);
      continue;
    }

    const int tid = layer_tid(record.layer);
    ensure_track(record.node, tid, record.layer.c_str());
    append_f(&body,
             "{\"name\":\"%s.%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
             "\"pid\":%u,\"tid\":%d,\"args\":{",
             json_escape(record.layer).c_str(),
             json_escape(record.name).c_str(), ts, options.point_slice_us,
             record.node, tid);
    if (record.peer != kInvalidNode) {
      arg("\"peer\":" + std::to_string(record.peer));
    }
    if (record.has_packet) {
      arg("\"pkt\":\"" + json_escape(record.pkt_type) + "\"");
      arg("\"origin\":" + std::to_string(record.origin));
      arg("\"seq\":" + std::to_string(record.seq));
      arg("\"lin\":" + std::to_string(record.lineage));
    }
    if (!record.suspicion.empty()) {
      arg("\"sus\":\"" + json_escape(record.suspicion) + "\"");
    }
    if (!record.defense.empty()) {
      arg("\"def\":\"" + json_escape(record.defense) + "\"");
    }
    if (record.has_value) {
      std::string value;
      append_f(&value, "\"value\":%.9g", record.value);
      arg(value);
    }
    body += "}}";
    events.emit(body);
    max_ts_us = std::max(max_ts_us, ts + options.point_slice_us);

    // Flow arrows: consecutive same-lineage packet events on different
    // nodes are one frame hop (forward, overhear, or wormhole tunnel).
    if (record.has_packet && record.lineage != 0) {
      Hop& hop = last_hop[record.lineage];
      if (hop.node != kInvalidNode && hop.node != record.node) {
        ++hop.count;
        std::string flow;
        append_f(&flow,
                 "{\"name\":\"lin %llu\",\"cat\":\"flow\",\"ph\":\"s\","
                 "\"id\":\"r%d.l%llu.h%d\",\"ts\":%.3f,\"pid\":%u,"
                 "\"tid\":%d}",
                 static_cast<unsigned long long>(record.lineage), run_index,
                 static_cast<unsigned long long>(record.lineage), hop.count,
                 hop.ts_us, hop.node, hop.tid);
        events.emit(flow);
        flow.clear();
        append_f(&flow,
                 "{\"name\":\"lin %llu\",\"cat\":\"flow\",\"ph\":\"f\","
                 "\"bp\":\"e\",\"id\":\"r%d.l%llu.h%d\",\"ts\":%.3f,"
                 "\"pid\":%u,\"tid\":%d}",
                 static_cast<unsigned long long>(record.lineage), run_index,
                 static_cast<unsigned long long>(record.lineage), hop.count,
                 ts, record.node, tid);
        events.emit(flow);
      }
      const int count = hop.count;
      hop = Hop{record.node, tid, ts, count};
    }
  }
  events.close();
}

}  // namespace lw::forensics
