// Chrome trace-event exporter: lw JSONL traces -> Perfetto / chrome://tracing.
//
// Maps the simulator's flat trace onto the Chrome trace-event JSON schema
// (the legacy format both ui.perfetto.dev and chrome://tracing open
// directly):
//
//   - One "process" per node (pid = NodeId) with one "thread" per layer
//     (phy, mac, nbr, route, mon, atk, flt, plus a "span" track), named via
//     M metadata events.
//   - Point events become short X slices (default 1 us) so they stay
//     visible at any zoom; packet/suspicion/defense fields land in args.
//   - SpanBuilder begin/end lines become nestable async b/e pairs keyed by
//     sid on the node's span track — async events tolerate the overlapping,
//     non-LIFO spans a node legitimately produces (two concurrent route
//     sessions, say), which synchronous B/E stacks would reject.
//   - Consecutive same-lineage packet events on *different* nodes get s/f
//     flow arrows (id = lineage), so a frame's hop-by-hop path — including
//     its detour through a wormhole tunnel — draws as connected arrows.
//   - Multi-run traces (bench meta "run" headers reset the sim clock) are
//     laid out back to back: each segment's timestamps are offset past the
//     previous segment's end so every track stays monotone.
//
// Timestamps are microseconds (sim seconds * 1e6), the unit the schema
// mandates.
#pragma once

#include <ostream>
#include <vector>

#include "forensics/trace_reader.h"

namespace lw::forensics {

struct PerfettoOptions {
  /// Synthetic duration (in us) given to point events so they render as
  /// visible slices instead of zero-width ticks.
  double point_slice_us = 1.0;
};

/// Writes the records as one Chrome trace-event JSON document
/// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`). Deterministic: output
/// bytes depend only on the records and options.
void export_perfetto(const std::vector<TraceRecord>& records,
                     std::ostream& out, const PerfettoOptions& options = {});

}  // namespace lw::forensics
