#include "forensics/incident.h"

#include <algorithm>

namespace lw::forensics {

void IncidentBuilder::on_event(const obs::Event& event) {
  switch (event.kind) {
    case obs::EventKind::kAtkSpawn:
      malicious_.insert(event.node);
      return;
    case obs::EventKind::kAtkTunnel:
    case obs::EventKind::kAtkReplay:
    case obs::EventKind::kAtkDrop:
      malicious_.insert(event.node);
      first_act_.try_emplace(event.node, event.t);
      return;

    case obs::EventKind::kFltFrame:
      // Fault ground truth mirroring atk.spawn: node is the compromised
      // guard, peer the honest victim it falsely accused.
      framed_[event.peer].insert(event.node);
      return;

    case obs::EventKind::kMonSuspicion:
    case obs::EventKind::kMonDetection:
    case obs::EventKind::kMonAlert:
    case obs::EventKind::kMonIsolation:
      break;  // evidence about event.peer, handled below

    default:
      return;  // watch bookkeeping and non-monitor layers carry no blame
  }

  const NodeId accused = event.peer;
  if (accused == kInvalidNode) return;
  Incident& incident = state_[accused];
  incident.accused = accused;
  incident.defense = static_cast<obs::DefenseTag>(event.def);

  ++incident.timeline_total;
  if (incident.timeline.size() < Incident::kTimelineCap) {
    incident.timeline.push_back(
        {event.t, event.kind, event.node, event.value});
  }

  switch (event.kind) {
    case obs::EventKind::kMonSuspicion:
      if (incident.first_suspicion < 0.0) incident.first_suspicion = event.t;
      if (event.detail == obs::kSuspicionDrop) {
        ++incident.suspicions_drop;
      } else if (event.detail == obs::kSuspicionAnomaly) {
        ++incident.suspicions_anomaly;
      } else {
        ++incident.suspicions_fabrication;
      }
      incident.peak_malc = std::max(incident.peak_malc, event.value);
      break;
    case obs::EventKind::kMonDetection:
      if (incident.first_detection < 0.0) incident.first_detection = event.t;
      ++incident.detections;
      incident.peak_malc = std::max(incident.peak_malc, event.value);
      break;
    case obs::EventKind::kMonAlert: {
      ++incident.alerts;
      auto& guards = incident.accusing_guards;
      auto it = std::lower_bound(guards.begin(), guards.end(), event.node);
      if (it == guards.end() || *it != event.node) guards.insert(it, event.node);
      break;
    }
    case obs::EventKind::kMonIsolation:
      if (incident.first_isolation < 0.0) incident.first_isolation = event.t;
      ++incident.isolations;
      break;
    default:
      break;
  }
}

std::vector<Incident> IncidentBuilder::build() const {
  std::vector<Incident> incidents;
  for (const auto& [accused, incident] : state_) {
    // Suspicion-only accusations never convicted anyone; an incident needs
    // at least a local detection (MalC crossed C_t) or an isolation — or
    // framing ground truth: a victim of compromised guards is on record
    // even when the gamma bar absorbed the false alerts.
    if (incident.detections == 0 && incident.isolations == 0 &&
        framed_.find(accused) == framed_.end()) {
      continue;
    }
    Incident labeled = incident;
    labeled.ground_truth_malicious = malicious_.count(accused) != 0;
    auto act = first_act_.find(accused);
    labeled.first_malicious_act =
        act == first_act_.end() ? -1.0 : act->second;
    if (auto framed = framed_.find(accused); framed != framed_.end()) {
      labeled.framed = true;
      labeled.framers.assign(framed->second.begin(), framed->second.end());
    }
    incidents.push_back(std::move(labeled));
  }
  return incidents;
}

ForensicsSummary IncidentBuilder::summarize(
    const std::vector<Incident>& incidents) {
  ForensicsSummary summary;
  summary.enabled = true;
  double latency_sum = 0.0;
  for (const Incident& incident : incidents) {
    ++summary.incidents;
    if (incident.isolated()) ++summary.isolated_incidents;
    if (incident.true_positive()) {
      ++summary.true_positives;
    } else {
      ++summary.false_positives;
      if (incident.framed) {
        ++summary.framed_accusations;
        if (incident.isolated()) ++summary.framed_isolations;
      }
    }
    const double latency = incident.detection_latency();
    if (incident.true_positive() && latency >= 0.0) {
      latency_sum += latency;
      ++summary.latency_samples;
    }
  }
  if (summary.latency_samples > 0) {
    summary.mean_detection_latency =
        latency_sum / static_cast<double>(summary.latency_samples);
  }
  return summary;
}

}  // namespace lw::forensics
