// Trace-invariant linter: the machine-checkable contract of a well-formed
// lw trace.
//
// A trace that violates any of these was produced by a buggy build or was
// tampered with:
//   1. Timestamps are monotone non-decreasing within a run segment (the
//      simulator executes events in time order; run headers reset the
//      clock).
//   2. Every route.deliver is preceded by a same-lineage route.forward —
//      data cannot arrive that was never sent.
//   3. Every mon.isolation is preceded by alerts from >= gamma distinct
//      guards about the accused, and by at least as many distinct guards
//      as the isolation event's alert count claims.
//   4. A node never route.forwards to a peer after isolating that peer
//      ("never send to a revoked node").
//   5. Every line parses and names a known layer/event pair.
//   6. A node never phy.tx-es inside one of its crash windows
//      (flt.crash .. flt.recover) — crashed radios are silent.
//   7. An honest node framed by compromised guards (flt.frame ground
//      truth) is never isolated while fewer than gamma guards are
//      compromised: the paper's gamma defense, machine-checked.
//   8. Span balance: every span.begin has exactly one span.end with
//      end >= begin and a duration matching the interval; sids are unique
//      within a segment; a declared parent is open for the child's whole
//      lifetime (nested spans properly enclosed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "forensics/trace_reader.h"

namespace lw::forensics {

struct CheckIssue {
  std::size_t line = 0;
  std::string message;
};

struct CheckOptions {
  /// gamma (the paper's detection confidence index): distinct accusing
  /// guards required before an isolation is legitimate.
  int gamma = 3;
};

/// Runs every invariant over the parsed trace; returns all violations in
/// line order (empty = clean trace).
std::vector<CheckIssue> check_trace(const std::vector<TraceRecord>& records,
                                    const CheckOptions& options = {});

}  // namespace lw::forensics
