// Forensic attribution: folding the obs event stream into labeled
// detection incidents.
//
// LITEWORP's claims are forensic — a guard matched (or failed to match) a
// frame in its watch buffer, accused a neighbor, and gamma distinct
// accusations produced an isolation. An Incident reconstructs that
// evidence chain for one accused node: the accusing guards, the suspicion
// kinds (fabrication vs drop), the MalC/alert timeline, and the detection
// latency from the node's first malicious act — cross-checked against
// attack-layer ground-truth events (atk.spawn/tunnel/replay/drop) to label
// the incident a true or false positive.
//
// The same IncidentBuilder serves two callers: in-process as an
// obs::EventSink attached by scenario::Network (config.obs.forensics), and
// offline in tools/lw-trace, fed with events parsed back from a JSONL
// trace. Both paths see identical Event streams, so labels never diverge
// between live runs and post-hoc analysis.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace lw::forensics {

/// One monitor-layer event concerning the accused, kept in arrival order:
/// the MalC/alert timeline of the incident.
struct TimelinePoint {
  Time t = 0.0;
  obs::EventKind kind = obs::EventKind::kMonSuspicion;
  /// The acting guard / isolating node.
  NodeId actor = kInvalidNode;
  /// Event value (MalC for suspicions, alert count for isolations).
  double value = 0.0;
};

/// The reconstructed evidence chain against one accused node.
struct Incident {
  NodeId accused = kInvalidNode;

  /// The defense backend whose evidence built this incident, taken from
  /// the def attribution of the mon.* events (default LITEWORP when the
  /// trace predates backend tagging).
  obs::DefenseTag defense = obs::DefenseTag::kLiteworp;

  // ---- Ground-truth label (attack layer) ----
  /// True when the accused appears as the actor of any attack-layer event
  /// (atk.spawn at t=0 marks every malicious node, acting or not).
  bool ground_truth_malicious = false;
  /// First tunnel/replay/drop by the accused; negative when it never acted.
  Time first_malicious_act = -1.0;

  // ---- Fault ground truth (flt layer) ----
  /// True when compromised guards sent false alerts about the accused
  /// (flt.frame anchors, mirroring atk.spawn for the attack layer).
  bool framed = false;
  /// Distinct compromised guards that framed the accused, ascending.
  std::vector<NodeId> framers;

  // ---- Evidence timeline ----
  Time first_suspicion = -1.0;
  /// First guard whose MalC crossed C_t (mon.detection).
  Time first_detection = -1.0;
  /// First node that collected gamma distinct accusations (mon.isolation);
  /// negative when the incident never progressed past local detection.
  Time first_isolation = -1.0;
  /// Distinct guards that transmitted alerts about the accused, ascending.
  std::vector<NodeId> accusing_guards;
  std::uint64_t suspicions_fabrication = 0;
  std::uint64_t suspicions_drop = 0;
  std::uint64_t suspicions_anomaly = 0;
  std::uint64_t detections = 0;
  std::uint64_t alerts = 0;
  std::uint64_t isolations = 0;
  double peak_malc = 0.0;
  /// Monitor events about the accused in arrival order, capped at
  /// kTimelineCap entries (timeline_total counts all of them).
  std::vector<TimelinePoint> timeline;
  std::uint64_t timeline_total = 0;

  static constexpr std::size_t kTimelineCap = 256;

  bool isolated() const { return isolations > 0; }
  bool true_positive() const { return ground_truth_malicious; }
  /// Three-way classification: "true" (accused really is malicious),
  /// "framed" (honest accused, accusations manufactured by compromised
  /// guards), "false" (honest accused, organic false suspicion).
  const char* label() const {
    if (ground_truth_malicious) return "true";
    return framed ? "framed" : "false";
  }
  /// Time from the accused's first malicious act to its first isolation;
  /// negative when either end is missing.
  double detection_latency() const {
    if (first_isolation < 0.0 || first_malicious_act < 0.0) return -1.0;
    return first_isolation - first_malicious_act;
  }
};

/// Per-run rollup of the incident list; lands in RunResult and the sweep
/// JSON so benches report precision and latency without rerunning.
struct ForensicsSummary {
  bool enabled = false;
  /// Accused nodes with at least one local detection or isolation.
  std::uint64_t incidents = 0;
  /// Incidents that reached isolation (gamma distinct guards).
  std::uint64_t isolated_incidents = 0;
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  /// Subset of false positives manufactured by guard framing (flt.frame
  /// ground truth); the paper's gamma bar should keep the *isolated*
  /// subset of these at zero while framers < gamma.
  std::uint64_t framed_accusations = 0;
  std::uint64_t framed_isolations = 0;
  /// Mean first-malicious-act -> first-isolation latency over true
  /// positives that acted and were isolated.
  double mean_detection_latency = 0.0;
  std::uint64_t latency_samples = 0;

  double precision() const {
    const std::uint64_t total = true_positives + false_positives;
    return total == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(total);
  }
};

/// EventSink folding monitor + attack + fault events into Incidents.
/// Subscribe it to layer_bit(kMonitor) | layer_bit(kAttack) |
/// layer_bit(kFault); other layers are ignored.
class IncidentBuilder final : public obs::EventSink {
 public:
  void on_event(const obs::Event& event) override;

  /// Incidents for every accused with at least one detection or isolation,
  /// sorted by accused id (deterministic), labeled against the attack
  /// ground truth seen so far.
  std::vector<Incident> build() const;

  ForensicsSummary summarize() const { return summarize(build()); }
  static ForensicsSummary summarize(const std::vector<Incident>& incidents);

 private:
  /// Keyed by accused; std::map keeps build() output deterministic.
  std::map<NodeId, Incident> state_;
  /// Ground truth: nodes that emitted any attack-layer event.
  std::set<NodeId> malicious_;
  /// First non-spawn attack act per malicious node.
  std::map<NodeId, Time> first_act_;
  /// Fault ground truth: victim -> compromised guards that framed it.
  std::map<NodeId, std::set<NodeId>> framed_;
};

}  // namespace lw::forensics
