#include "forensics/trace_reader.h"

#include <cstdio>
#include <cstdlib>

#include "obs/span.h"

namespace lw::forensics {
namespace {

/// Cursor over one line; fails with TraceFormatError carrying the line no.
class Scanner {
 public:
  Scanner(const std::string& text, std::size_t line_no)
      : text_(text), line_(line_no) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw TraceFormatError(line_, message);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return at_end() ? '\0' : text_[pos_]; }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (!at_end() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (at_end()) fail("dangling escape");
        c = text_[pos_++];
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double number_value() {
    const std::size_t start = pos_;
    while (!at_end()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    return value;
  }

 private:
  const std::string& text_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

void parse_run_header(Scanner& scanner, TraceRecord* out) {
  out->is_run_header = true;
  scanner.expect('{');
  bool first = true;
  while (!scanner.consume('}')) {
    if (!first) scanner.expect(',');
    first = false;
    const std::string key = scanner.string_value();
    scanner.expect(':');
    if (key == "point") {
      out->point = scanner.string_value();
    } else if (key == "seed") {
      out->run_seed = static_cast<std::uint64_t>(scanner.number_value());
    } else {
      scanner.fail("unknown run-header key '" + key + "'");
    }
  }
  scanner.expect('}');
  if (!scanner.at_end()) scanner.fail("trailing characters");
}

}  // namespace

obs::Event TraceRecord::to_event() const {
  obs::Event event;
  event.t = t;
  event.kind = kind;
  event.node = node;
  event.peer = peer;
  event.value = value;
  event.detail = suspicion == "drop"   ? obs::kSuspicionDrop
                 : suspicion == "anom" ? obs::kSuspicionAnomaly
                                       : obs::kSuspicionFabrication;
  if (!defense.empty()) {
    obs::DefenseTag tag = obs::DefenseTag::kLiteworp;
    if (obs::parse_defense_tag(defense, &tag)) {
      event.def = static_cast<std::uint8_t>(tag);
    }
  }
  return event;
}

bool parse_trace_line(const std::string& line, std::size_t line_no,
                      TraceRecord* out) {
  if (line.empty()) return false;
  *out = TraceRecord{};
  out->line = line_no;

  Scanner scanner(line, line_no);
  scanner.expect('{');
  bool first = true;
  bool saw_t = false;
  while (!scanner.consume('}')) {
    if (!first) scanner.expect(',');
    first = false;
    const std::string key = scanner.string_value();
    scanner.expect(':');
    if (key == "run") {
      if (saw_t || !out->layer.empty() || !out->name.empty()) {
        scanner.fail("run header mixed with event fields");
      }
      parse_run_header(scanner, out);
      return true;
    }
    if (key == "t") {
      out->t = scanner.number_value();
      saw_t = true;
    } else if (key == "layer") {
      out->layer = scanner.string_value();
    } else if (key == "event") {
      out->name = scanner.string_value();
    } else if (key == "node") {
      out->node = static_cast<NodeId>(scanner.number_value());
    } else if (key == "peer") {
      out->peer = static_cast<NodeId>(scanner.number_value());
    } else if (key == "pkt") {
      out->pkt_type = scanner.string_value();
      out->has_packet = true;
    } else if (key == "origin") {
      out->origin = static_cast<NodeId>(scanner.number_value());
    } else if (key == "seq") {
      out->seq = static_cast<SeqNo>(scanner.number_value());
    } else if (key == "lin") {
      out->lineage = static_cast<LineageId>(scanner.number_value());
    } else if (key == "sus") {
      out->suspicion = scanner.string_value();
    } else if (key == "def") {
      out->defense = scanner.string_value();
      obs::DefenseTag tag = obs::DefenseTag::kLiteworp;
      if (!obs::parse_defense_tag(out->defense, &tag)) {
        scanner.fail("unknown defense tag '" + out->defense + "'");
      }
    } else if (key == "value") {
      out->value = scanner.number_value();
      out->has_value = true;
    } else if (key == "span") {
      out->span_kind = scanner.string_value();
    } else if (key == "sid") {
      out->sid = static_cast<std::uint64_t>(scanner.number_value());
    } else if (key == "parent") {
      out->parent = static_cast<std::uint64_t>(scanner.number_value());
    } else if (key == "dur") {
      out->dur = scanner.number_value();
      out->has_dur = true;
    } else if (key == "outcome") {
      out->outcome = scanner.string_value();
    } else if (key == "retries") {
      out->retries = static_cast<std::uint64_t>(scanner.number_value());
    } else if (key == "observe") {
      out->observe = scanner.number_value();
      out->has_phases = true;
    } else if (key == "corroborate") {
      out->corroborate = scanner.number_value();
    } else if (key == "isolate") {
      out->isolate = scanner.number_value();
    } else {
      scanner.fail("unknown key '" + key + "'");
    }
  }
  if (!scanner.at_end()) scanner.fail("trailing characters");
  if (!saw_t || out->layer.empty() || out->name.empty()) {
    throw TraceFormatError(line_no, "event line missing t/layer/event");
  }
  if (out->layer == "span") {
    out->is_span = true;
    if (out->name != "begin" && out->name != "end") {
      throw TraceFormatError(line_no,
                             "span line with event '" + out->name +
                                 "' (expected begin or end)");
    }
    if (out->span_kind.empty() || out->sid == 0) {
      throw TraceFormatError(line_no, "span line missing span/sid");
    }
    out->span_kind_known = obs::parse_span_kind(out->span_kind, nullptr);
    return true;
  }
  if (!out->span_kind.empty()) {
    throw TraceFormatError(line_no, "span key on a non-span line");
  }
  out->kind_known = obs::parse_event_kind(out->layer, out->name, &out->kind);
  return true;
}

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceRecord record;
    if (parse_trace_line(line, line_no, &record)) {
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<TraceRecord> lineage_chain(const std::vector<TraceRecord>& records,
                                       LineageId lineage) {
  std::vector<TraceRecord> chain;
  for (const TraceRecord& record : records) {
    if (!record.is_run_header && record.has_packet &&
        record.lineage == lineage) {
      chain.push_back(record);
    }
  }
  return chain;
}

std::string describe(const TraceRecord& record) {
  char buffer[256];
  if (record.is_run_header) {
    std::snprintf(buffer, sizeof(buffer), "== run point=%s seed=%llu ==",
                  record.point.c_str(),
                  static_cast<unsigned long long>(record.run_seed));
    return buffer;
  }
  int n = std::snprintf(buffer, sizeof(buffer), "%12.6f  %-5s %-12s node %u",
                        record.t, record.layer.c_str(), record.name.c_str(),
                        record.node);
  std::string out(buffer, static_cast<std::size_t>(n));
  if (record.is_span) {
    n = std::snprintf(buffer, sizeof(buffer), "  %s sid=%llu",
                      record.span_kind.c_str(),
                      static_cast<unsigned long long>(record.sid));
    out.append(buffer, static_cast<std::size_t>(n));
    if (record.parent != 0) {
      n = std::snprintf(buffer, sizeof(buffer), " parent=%llu",
                        static_cast<unsigned long long>(record.parent));
      out.append(buffer, static_cast<std::size_t>(n));
    }
    if (record.has_dur) {
      n = std::snprintf(buffer, sizeof(buffer), " dur=%.6f outcome=%s",
                        record.dur, record.outcome.c_str());
      out.append(buffer, static_cast<std::size_t>(n));
    }
  }
  if (record.peer != kInvalidNode) {
    n = std::snprintf(buffer, sizeof(buffer), " -> %u", record.peer);
    out.append(buffer, static_cast<std::size_t>(n));
  }
  if (record.has_packet) {
    n = std::snprintf(buffer, sizeof(buffer), "  %s(origin=%u seq=%llu lin=%llu)",
                      record.pkt_type.c_str(), record.origin,
                      static_cast<unsigned long long>(record.seq),
                      static_cast<unsigned long long>(record.lineage));
    out.append(buffer, static_cast<std::size_t>(n));
  }
  if (!record.suspicion.empty()) {
    out += "  sus=" + record.suspicion;
  }
  if (!record.defense.empty()) {
    out += "  def=" + record.defense;
  }
  if (record.has_value) {
    n = std::snprintf(buffer, sizeof(buffer), "  value=%.9g", record.value);
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace lw::forensics
