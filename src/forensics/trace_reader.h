// Reads lw JSONL traces back into typed records.
//
// The inverse of obs::TraceWriter (plus the per-run meta lines the bench
// CLI writes between runs): a tiny special-purpose parser for the flat
// one-object-per-line schema documented in docs/TRACE_FORMAT.md. It is NOT
// a general JSON parser — exactly the value shapes the writer produces
// (numbers, strings, and the one-level "run" header object) are accepted,
// and anything else throws TraceFormatError with the offending line
// number, which is what a forensic tool should do with a tampered trace.
#pragma once

#include <cstdint>
#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/event.h"

namespace lw::forensics {

class TraceFormatError : public std::runtime_error {
 public:
  TraceFormatError(std::size_t line, const std::string& message)
      : std::runtime_error("trace line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One parsed trace line: either a run header (bench meta line) or an
/// event. Unknown layer/event names parse successfully with
/// `kind_known = false` so the `check` linter can report them with a line
/// number instead of aborting at the first one.
struct TraceRecord {
  bool is_run_header = false;
  std::size_t line = 0;

  // ---- Run header fields ----
  std::string point;
  std::uint64_t run_seed = 0;

  // ---- Event fields ----
  std::string layer;
  std::string name;
  bool kind_known = false;
  obs::EventKind kind = obs::EventKind::kPhyTx;
  Time t = 0.0;
  NodeId node = kInvalidNode;
  NodeId peer = kInvalidNode;
  double value = 0.0;
  bool has_value = false;

  // ---- Packet fields (present when the event carried a packet) ----
  bool has_packet = false;
  std::string pkt_type;
  NodeId origin = kInvalidNode;
  SeqNo seq = 0;
  LineageId lineage = 0;

  /// Suspicion kind ("fab"/"drop"/"anom") on mon.suspicion lines; empty
  /// otherwise.
  std::string suspicion;

  /// Defense backend attribution ("leash"/"zscore"/...) on mon.* lines
  /// from non-default backends; empty means LITEWORP (the writer omits
  /// the key for the default so legacy traces parse unchanged).
  std::string defense;

  // ---- Span fields (layer == "span": SpanBuilder begin/end lines) ----
  /// True for span.begin / span.end lines; `name` is "begin" or "end",
  /// `kind_known` stays false (spans are not point events).
  bool is_span = false;
  /// Span kind name ("route_session", ...); span_kind_known is false when
  /// the name is not in the SpanKind vocabulary (check reports it).
  std::string span_kind;
  bool span_kind_known = false;
  std::uint64_t sid = 0;
  /// Parent sid; 0 = root span.
  std::uint64_t parent = 0;
  /// span.end only: duration and outcome.
  double dur = 0.0;
  bool has_dur = false;
  std::string outcome;
  std::uint64_t retries = 0;
  /// Alert-round latency decomposition (span.end, complete rounds only).
  bool has_phases = false;
  double observe = 0.0;
  double corroborate = 0.0;
  double isolate = 0.0;

  /// The event as the in-process sinks would have seen it (packet pointer
  /// is null — offline consumers use the flattened fields above).
  obs::Event to_event() const;
};

/// Parses one JSONL line (without trailing newline). Blank lines return
/// false. Throws TraceFormatError on malformed input.
bool parse_trace_line(const std::string& line, std::size_t line_no,
                      TraceRecord* out);

/// Reads a whole trace stream. Throws TraceFormatError on the first
/// malformed line.
std::vector<TraceRecord> read_trace(std::istream& in);

/// All records belonging to one packet lineage, in trace order: the
/// packet's causal chain (origin transmit, forwards, guard overhears,
/// wormhole tunnel/replay hops, delivery).
std::vector<TraceRecord> lineage_chain(const std::vector<TraceRecord>& records,
                                       LineageId lineage);

/// Human-readable one-liner for a record (`lw-trace follow` output).
std::string describe(const TraceRecord& record);

}  // namespace lw::forensics
