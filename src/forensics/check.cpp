#include "forensics/check.h"

#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace lw::forensics {
namespace {

/// One open span (invariant 8 bookkeeping).
struct OpenSpanState {
  std::string kind;
  Time begin = 0.0;
  std::uint64_t parent = 0;
  std::size_t open_children = 0;
  std::size_t begin_line = 0;
};

/// Per-run-segment linter state; reset at every run header.
struct SegmentState {
  Time last_t = 0.0;
  bool any_event = false;
  /// sid -> open span (invariant 8).
  std::map<std::uint64_t, OpenSpanState> open_spans;
  /// Every sid seen in a span.begin this segment (uniqueness).
  std::set<std::uint64_t> span_sids;
  /// Lineages that appeared in a route.forward.
  std::set<LineageId> forwarded;
  /// accused -> distinct guards that alerted about it.
  std::map<NodeId, std::set<NodeId>> alert_guards;
  /// (isolating node, accused) pairs already isolated.
  std::set<std::pair<NodeId, NodeId>> isolated;
  /// Nodes currently inside a crash window (flt.crash .. flt.recover).
  std::set<NodeId> crashed;
  /// Ground-truth malicious nodes (atk.spawn actors).
  std::set<NodeId> spawned;
  /// victim -> compromised guards that framed it (flt.frame).
  std::map<NodeId, std::set<NodeId>> framers;
};

/// Invariant 8: span begin/end balance, sid uniqueness, and enclosure.
void check_span(const TraceRecord& record, SegmentState& state,
                std::vector<CheckIssue>& issues) {
  if (!record.span_kind_known) {
    issues.push_back(
        {record.line, "unknown span kind '" + record.span_kind + "'"});
  }
  if (record.name == "begin") {
    if (!state.span_sids.insert(record.sid).second) {
      issues.push_back(
          {record.line, "duplicate span sid " + std::to_string(record.sid)});
      return;
    }
    OpenSpanState open;
    open.kind = record.span_kind;
    open.begin = record.t;
    open.parent = record.parent;
    open.begin_line = record.line;
    if (record.parent != 0) {
      auto parent = state.open_spans.find(record.parent);
      if (parent == state.open_spans.end()) {
        issues.push_back({record.line,
                          "span sid " + std::to_string(record.sid) +
                              " declares parent " +
                              std::to_string(record.parent) +
                              " that is not open"});
        open.parent = 0;
      } else {
        ++parent->second.open_children;
      }
    }
    state.open_spans.emplace(record.sid, std::move(open));
    return;
  }
  auto it = state.open_spans.find(record.sid);
  if (it == state.open_spans.end()) {
    issues.push_back({record.line, "span.end for sid " +
                                       std::to_string(record.sid) +
                                       " without an open span.begin"});
    return;
  }
  const OpenSpanState open = it->second;
  if (record.t < open.begin) {
    issues.push_back({record.line, "span sid " + std::to_string(record.sid) +
                                       " ends before it begins"});
  }
  if (record.has_dur &&
      std::abs(record.dur - (record.t - open.begin)) > 1e-6) {
    issues.push_back({record.line,
                      "span sid " + std::to_string(record.sid) + " dur " +
                          std::to_string(record.dur) +
                          " does not match its begin/end interval"});
  }
  if (open.open_children > 0) {
    issues.push_back({record.line,
                      "span sid " + std::to_string(record.sid) + " ends with " +
                          std::to_string(open.open_children) +
                          " child span(s) still open (not enclosed)"});
  }
  if (open.parent != 0) {
    auto parent = state.open_spans.find(open.parent);
    if (parent != state.open_spans.end() &&
        parent->second.open_children > 0) {
      --parent->second.open_children;
    }
  }
  state.open_spans.erase(record.sid);
}

/// Segment ended: every span still open lacks its span.end.
void report_open_spans(const SegmentState& state,
                       std::vector<CheckIssue>& issues) {
  for (const auto& [sid, open] : state.open_spans) {
    issues.push_back({open.begin_line, "span sid " + std::to_string(sid) +
                                           " (" + open.kind +
                                           ") has no matching span.end"});
  }
}

}  // namespace

std::vector<CheckIssue> check_trace(const std::vector<TraceRecord>& records,
                                    const CheckOptions& options) {
  std::vector<CheckIssue> issues;
  SegmentState state;

  for (const TraceRecord& record : records) {
    if (record.is_run_header) {
      report_open_spans(state, issues);
      state = SegmentState{};
      continue;
    }
    if (record.is_span) {
      // Invariant 1 applies to span lines too; the SpanBuilder emits them
      // inline with the events that open/close them.
      if (state.any_event && record.t < state.last_t) {
        issues.push_back(
            {record.line, "timestamp goes backwards (t=" +
                              std::to_string(record.t) + " after t=" +
                              std::to_string(state.last_t) + ")"});
      }
      state.last_t = record.t;
      state.any_event = true;
      check_span(record, state, issues);
      continue;
    }
    if (!record.kind_known) {
      issues.push_back({record.line, "unknown event '" + record.layer + "." +
                                         record.name + "'"});
      continue;
    }

    if (state.any_event && record.t < state.last_t) {
      issues.push_back(
          {record.line, "timestamp goes backwards (t=" +
                            std::to_string(record.t) + " after t=" +
                            std::to_string(state.last_t) + ")"});
    }
    state.last_t = record.t;
    state.any_event = true;

    switch (record.kind) {
      case obs::EventKind::kPhyTx:
        // Invariant 6: a crashed node's radio is silent — any transmission
        // between its flt.crash and flt.recover was produced by a stale
        // timer the crash failed to disarm.
        if (state.crashed.count(record.node) != 0) {
          issues.push_back(
              {record.line, "node " + std::to_string(record.node) +
                                " transmits while crashed"});
        }
        break;

      case obs::EventKind::kFltCrash:
        state.crashed.insert(record.node);
        break;

      case obs::EventKind::kFltRecover:
        state.crashed.erase(record.node);
        break;

      case obs::EventKind::kAtkSpawn:
        state.spawned.insert(record.node);
        break;

      case obs::EventKind::kFltFrame:
        if (record.peer != kInvalidNode) {
          state.framers[record.peer].insert(record.node);
        }
        break;

      case obs::EventKind::kRouteForward:
        if (record.has_packet) state.forwarded.insert(record.lineage);
        if (record.peer != kInvalidNode &&
            state.isolated.count({record.node, record.peer}) != 0) {
          issues.push_back(
              {record.line, "node " + std::to_string(record.node) +
                                " forwards to " + std::to_string(record.peer) +
                                " after isolating it"});
        }
        break;

      case obs::EventKind::kRouteDeliver:
        if (record.has_packet &&
            state.forwarded.count(record.lineage) == 0) {
          issues.push_back(
              {record.line, "delivery of lineage " +
                                std::to_string(record.lineage) +
                                " without a matching route.forward"});
        }
        break;

      case obs::EventKind::kMonAlert:
        if (record.peer != kInvalidNode) {
          state.alert_guards[record.peer].insert(record.node);
        }
        break;

      case obs::EventKind::kMonIsolation: {
        const NodeId accused = record.peer;
        const auto it = state.alert_guards.find(accused);
        const std::size_t distinct =
            it == state.alert_guards.end() ? 0 : it->second.size();
        const auto claimed = static_cast<std::size_t>(record.value);
        if (distinct < claimed) {
          issues.push_back(
              {record.line,
               "isolation of " + std::to_string(accused) + " claims " +
                   std::to_string(claimed) + " alerts but only " +
                   std::to_string(distinct) + " distinct guards alerted"});
        }
        if (options.gamma > 0 &&
            distinct < static_cast<std::size_t>(options.gamma)) {
          issues.push_back(
              {record.line,
               "isolation of " + std::to_string(accused) + " with only " +
                   std::to_string(distinct) + " distinct accusing guards (gamma=" +
                   std::to_string(options.gamma) + ")"});
        }
        // Invariant 7 (the gamma defense): an honest node that compromised
        // guards tried to frame may only end up isolated when at least
        // gamma guards were compromised — fewer than gamma framers must
        // never convict, no matter how noisy the channel.
        const auto framed = state.framers.find(accused);
        if (options.gamma > 0 && state.spawned.count(accused) == 0 &&
            framed != state.framers.end() &&
            framed->second.size() < static_cast<std::size_t>(options.gamma)) {
          issues.push_back(
              {record.line,
               "isolation of honest node " + std::to_string(accused) +
                   " framed by only " + std::to_string(framed->second.size()) +
                   " compromised guard(s) (gamma=" +
                   std::to_string(options.gamma) +
                   "): the gamma defense failed"});
        }
        state.isolated.insert({record.node, accused});
        break;
      }

      default:
        break;
    }
  }
  report_open_spans(state, issues);
  return issues;
}

}  // namespace lw::forensics
