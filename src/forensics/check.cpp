#include "forensics/check.h"

#include <map>
#include <set>
#include <utility>

namespace lw::forensics {
namespace {

/// Per-run-segment linter state; reset at every run header.
struct SegmentState {
  Time last_t = 0.0;
  bool any_event = false;
  /// Lineages that appeared in a route.forward.
  std::set<LineageId> forwarded;
  /// accused -> distinct guards that alerted about it.
  std::map<NodeId, std::set<NodeId>> alert_guards;
  /// (isolating node, accused) pairs already isolated.
  std::set<std::pair<NodeId, NodeId>> isolated;
  /// Nodes currently inside a crash window (flt.crash .. flt.recover).
  std::set<NodeId> crashed;
  /// Ground-truth malicious nodes (atk.spawn actors).
  std::set<NodeId> spawned;
  /// victim -> compromised guards that framed it (flt.frame).
  std::map<NodeId, std::set<NodeId>> framers;
};

}  // namespace

std::vector<CheckIssue> check_trace(const std::vector<TraceRecord>& records,
                                    const CheckOptions& options) {
  std::vector<CheckIssue> issues;
  SegmentState state;

  for (const TraceRecord& record : records) {
    if (record.is_run_header) {
      state = SegmentState{};
      continue;
    }
    if (!record.kind_known) {
      issues.push_back({record.line, "unknown event '" + record.layer + "." +
                                         record.name + "'"});
      continue;
    }

    if (state.any_event && record.t < state.last_t) {
      issues.push_back(
          {record.line, "timestamp goes backwards (t=" +
                            std::to_string(record.t) + " after t=" +
                            std::to_string(state.last_t) + ")"});
    }
    state.last_t = record.t;
    state.any_event = true;

    switch (record.kind) {
      case obs::EventKind::kPhyTx:
        // Invariant 6: a crashed node's radio is silent — any transmission
        // between its flt.crash and flt.recover was produced by a stale
        // timer the crash failed to disarm.
        if (state.crashed.count(record.node) != 0) {
          issues.push_back(
              {record.line, "node " + std::to_string(record.node) +
                                " transmits while crashed"});
        }
        break;

      case obs::EventKind::kFltCrash:
        state.crashed.insert(record.node);
        break;

      case obs::EventKind::kFltRecover:
        state.crashed.erase(record.node);
        break;

      case obs::EventKind::kAtkSpawn:
        state.spawned.insert(record.node);
        break;

      case obs::EventKind::kFltFrame:
        if (record.peer != kInvalidNode) {
          state.framers[record.peer].insert(record.node);
        }
        break;

      case obs::EventKind::kRouteForward:
        if (record.has_packet) state.forwarded.insert(record.lineage);
        if (record.peer != kInvalidNode &&
            state.isolated.count({record.node, record.peer}) != 0) {
          issues.push_back(
              {record.line, "node " + std::to_string(record.node) +
                                " forwards to " + std::to_string(record.peer) +
                                " after isolating it"});
        }
        break;

      case obs::EventKind::kRouteDeliver:
        if (record.has_packet &&
            state.forwarded.count(record.lineage) == 0) {
          issues.push_back(
              {record.line, "delivery of lineage " +
                                std::to_string(record.lineage) +
                                " without a matching route.forward"});
        }
        break;

      case obs::EventKind::kMonAlert:
        if (record.peer != kInvalidNode) {
          state.alert_guards[record.peer].insert(record.node);
        }
        break;

      case obs::EventKind::kMonIsolation: {
        const NodeId accused = record.peer;
        const auto it = state.alert_guards.find(accused);
        const std::size_t distinct =
            it == state.alert_guards.end() ? 0 : it->second.size();
        const auto claimed = static_cast<std::size_t>(record.value);
        if (distinct < claimed) {
          issues.push_back(
              {record.line,
               "isolation of " + std::to_string(accused) + " claims " +
                   std::to_string(claimed) + " alerts but only " +
                   std::to_string(distinct) + " distinct guards alerted"});
        }
        if (options.gamma > 0 &&
            distinct < static_cast<std::size_t>(options.gamma)) {
          issues.push_back(
              {record.line,
               "isolation of " + std::to_string(accused) + " with only " +
                   std::to_string(distinct) + " distinct accusing guards (gamma=" +
                   std::to_string(options.gamma) + ")"});
        }
        // Invariant 7 (the gamma defense): an honest node that compromised
        // guards tried to frame may only end up isolated when at least
        // gamma guards were compromised — fewer than gamma framers must
        // never convict, no matter how noisy the channel.
        const auto framed = state.framers.find(accused);
        if (options.gamma > 0 && state.spawned.count(accused) == 0 &&
            framed != state.framers.end() &&
            framed->second.size() < static_cast<std::size_t>(options.gamma)) {
          issues.push_back(
              {record.line,
               "isolation of honest node " + std::to_string(accused) +
                   " framed by only " + std::to_string(framed->second.size()) +
                   " compromised guard(s) (gamma=" +
                   std::to_string(options.gamma) +
                   "): the gamma defense failed"});
        }
        state.isolated.insert({record.node, accused});
        break;
      }

      default:
        break;
    }
  }
  return issues;
}

}  // namespace lw::forensics
