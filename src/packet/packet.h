// Packet model shared by the PHY, MAC, and all protocol agents.
//
// One struct covers every frame type. Two fields matter specially to
// LITEWORP:
//   - announced_prev_hop: every forwarder must announce the immediate
//     source of the packet it forwards (condition (i) of local monitoring);
//   - tx_node: the physical transmitter, filled in by the radio. Honest
//     forwarders have tx-consistent announcements; wormhole endpoints lie
//     in announced_prev_hop, which is exactly what guards catch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::pkt {

enum class PacketType : std::uint8_t {
  kHello = 1,          // neighbor discovery: one-hop broadcast
  kHelloReply = 2,     // authenticated unicast reply to a HELLO
  kNeighborList = 3,   // authenticated broadcast of the sender's R_A
  kRouteRequest = 4,   // flooded REQ with accumulated route record
  kRouteReply = 5,     // unicast REP carrying the full route, reverse path
  kData = 6,           // source-routed data
  kAlert = 7,          // guard accusation, two-hop scoped
  kAck = 8,            // link-layer acknowledgment (MAC-internal)
  kRts = 9,            // request-to-send (MAC-internal, carries NAV)
  kCts = 10,           // clear-to-send (MAC-internal, carries NAV)
  kRouteError = 11,    // broken-route notification back to the source
  kJoinHello = 12,     // late-deployed node announcing itself
  kJoinChallenge = 13, // established node's authenticated nonce challenge
  kJoinResponse = 14,  // joiner's authenticated proof of key possession
};

const char* to_string(PacketType type);

/// True for the control traffic that guards watch (REQ and REP). HELLO
/// traffic is protected by authentication instead, and DATA is out of
/// scope for local monitoring in the paper.
bool is_watched_control(PacketType type);

/// Per-recipient authentication entry carried by ALERT packets: the guard
/// tags the alert once per neighbor of the accused node.
struct AlertAuth {
  NodeId recipient = kInvalidNode;
  crypto::AuthTag tag{};
};

/// Packet-borne lists live on the thread pool arena: packets are created,
/// copied, and destroyed once per hop, so their vectors are the single
/// biggest steady-state allocation source.
using NodeList = util::PoolVector<NodeId>;
using AlertAuthList = util::PoolVector<AlertAuth>;

struct Packet {
  PacketUid uid = 0;
  /// Causal lineage: the uid of the packet this one ultimately descends
  /// from. Stamped by the factory at creation and inherited verbatim by
  /// forward_copy (honest forwards, wormhole tunneling, replays), so every
  /// trace event carrying a packet can be joined into one hop-by-hop
  /// journey. Simulation bookkeeping — never read by protocol logic.
  LineageId lineage = 0;
  PacketType type = PacketType::kData;

  // ---- Link layer ----
  /// Physical transmitter of this frame, stamped by the medium. Ground
  /// truth for statistics and assertions ONLY — real receivers cannot
  /// identify a transmitter from the waveform, so no protocol logic may
  /// read this field.
  NodeId tx_node = kInvalidNode;
  /// Transmitter identity *claimed in the header*. Honest nodes set it to
  /// their own id; the packet-relay attack spoofs it. All receiver-side
  /// checks use this field.
  NodeId claimed_tx = kInvalidNode;
  /// Link-layer destination; kInvalidNode means local broadcast.
  NodeId link_dst = kInvalidNode;
  /// The immediate source announcement required by local monitoring: "I am
  /// forwarding a packet I received from <announced_prev_hop>". kInvalidNode
  /// on packets that originate at the transmitter.
  NodeId announced_prev_hop = kInvalidNode;

  // ---- End-to-end ----
  NodeId origin = kInvalidNode;
  NodeId final_dst = kInvalidNode;
  /// Sequence number assigned by the origin; (origin, seq, type) identifies
  /// an end-to-end packet for watch-buffer matching and duplicate filtering.
  SeqNo seq = 0;

  /// REQ: route accumulated so far (origin first). REP/DATA: the complete
  /// source route origin..destination.
  NodeList route;
  /// REP/DATA: index into route of the node currently holding the packet.
  std::size_t route_index = 0;

  // ---- Authenticated payloads ----
  /// kNeighborList: the sender's first-hop neighbor list R_A.
  NodeList neighbor_list;
  /// kHelloReply / kNeighborList: pairwise tag (HELLO replies), or the tag
  /// for one recipient; kNeighborList broadcasts carry one tag per listed
  /// neighbor in alert_auth instead.
  crypto::AuthTag tag{};
  /// kAlert and kNeighborList: per-recipient tags.
  AlertAuthList alert_auth;

  // ---- Alert payload ----
  NodeId accused = kInvalidNode;
  NodeId accusing_guard = kInvalidNode;

  // ---- Route-error payload ----
  /// kRouteError: the revoked/unreachable node that broke the route.
  NodeId broken_node = kInvalidNode;

  // ---- Dynamic-join payload ----
  /// kJoinChallenge / kJoinResponse: the challenge nonce.
  std::uint64_t nonce = 0;

  // ---- Packet leashes (comparator defense; Hu et al.) ----
  /// Authenticated transmission timestamp. The medium stamps it at
  /// transmit time ONLY when the claimed sender is the physical
  /// transmitter (only the keyholder can sign a fresh timestamp); a
  /// replayed frame keeps its original, stale stamp. Negative = no leash.
  double leash_timestamp = -1.0;
  /// Authenticated sender location (geographical leash), stamped under
  /// the same only-the-keyholder rule. NaN-free sentinel: stamped flag.
  double leash_x = 0.0;
  double leash_y = 0.0;
  bool leash_located = false;
  /// Remaining link-layer rebroadcasts for two-hop-scoped packets (ALERT).
  std::uint8_t ttl = 0;

  // ---- Data payload ----
  std::uint32_t payload_bytes = 0;

  // ---- Link-layer ARQ / virtual carrier sense ----
  /// kAck/kRts/kCts: uid of the data frame this control frame refers to.
  PacketUid acked_uid = 0;
  /// kRts/kCts: how long the channel stays reserved after this frame ends
  /// (seconds); overhearers defer via NAV.
  double nav_duration = 0.0;

  // ---- Simulation bookkeeping (not "on the wire") ----
  /// True once the packet has crossed a wormhole tunnel; used only by the
  /// metrics layer to classify malicious routes — no protocol logic may
  /// read it.
  bool crossed_tunnel = false;
  /// Time the origin created the end-to-end packet (latency metrics).
  Time created_at = kTimeZero;

  /// Watch-buffer / duplicate-filter key.
  FlowKey flow_key() const {
    return FlowKey{origin, seq, static_cast<std::uint8_t>(type)};
  }

  /// Serialized size in bytes used for transmission-delay computation.
  std::uint32_t wire_size() const;

  /// Canonical byte string covered by authentication tags. Includes type,
  /// origin, seq and the type-specific payload; excludes mutable link-layer
  /// fields.
  std::string auth_payload() const;

  /// Serializes the auth payload into `out` (cleared first). Agents that
  /// sign or verify per packet keep one pool-backed buffer and reuse its
  /// capacity instead of building a fresh string each time.
  void auth_payload_into(util::PoolString& out) const;

  /// Human-readable one-liner for traces.
  std::string describe() const;
};

/// Assigns globally unique packet uids. One per simulation run.
class PacketFactory {
 public:
  Packet make(PacketType type) {
    Packet p;
    p.uid = ++last_uid_;
    p.lineage = p.uid;  // a fresh packet starts its own lineage
    p.type = type;
    return p;
  }

  /// Forwarded copy: same end-to-end identity, fresh uid. The route gets
  /// one slot of slack so the forwarder's own append (every REQ hop does
  /// one) lands in place instead of reallocating.
  Packet forward_copy(const Packet& original) {
    Packet p;
    p.route.reserve(original.route.size() + 1);
    p.neighbor_list.reserve(original.neighbor_list.size());
    p.alert_auth.reserve(original.alert_auth.size());
    p = original;
    p.uid = ++last_uid_;
    return p;
  }

 private:
  PacketUid last_uid_ = 0;
};

/// Wire-size model (documented constants; the cost analysis reuses them).
struct WireSizes {
  static constexpr std::uint32_t kBaseHeader = 29;   // type+seq+ids
  static constexpr std::uint32_t kPerRouteHop = 4;   // node id
  static constexpr std::uint32_t kPerNeighbor = 4;   // node id
  static constexpr std::uint32_t kAuthTag = 8;       // truncated HMAC
  static constexpr std::uint32_t kPerAlertAuth = 12; // recipient + tag
  static constexpr std::uint32_t kDefaultDataPayload = 32;
  static constexpr std::uint32_t kAckFrame = 14;     // ids + acked uid
  static constexpr std::uint32_t kRtsFrame = 20;     // ids + uid + duration
  static constexpr std::uint32_t kCtsFrame = 14;     // ids + duration
};

}  // namespace lw::pkt
