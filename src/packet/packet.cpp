#include "packet/packet.h"

#include <sstream>

namespace lw::pkt {

const char* to_string(PacketType type) {
  switch (type) {
    case PacketType::kHello:
      return "HELLO";
    case PacketType::kHelloReply:
      return "HELLO_REPLY";
    case PacketType::kNeighborList:
      return "NEIGHBOR_LIST";
    case PacketType::kRouteRequest:
      return "REQ";
    case PacketType::kRouteReply:
      return "REP";
    case PacketType::kData:
      return "DATA";
    case PacketType::kAlert:
      return "ALERT";
    case PacketType::kAck:
      return "ACK";
    case PacketType::kRts:
      return "RTS";
    case PacketType::kCts:
      return "CTS";
    case PacketType::kRouteError:
      return "RERR";
    case PacketType::kJoinHello:
      return "JOIN_HELLO";
    case PacketType::kJoinChallenge:
      return "JOIN_CHALLENGE";
    case PacketType::kJoinResponse:
      return "JOIN_RESPONSE";
  }
  return "?";
}

bool is_watched_control(PacketType type) {
  return type == PacketType::kRouteRequest || type == PacketType::kRouteReply;
}

std::uint32_t Packet::wire_size() const {
  std::uint32_t size = WireSizes::kBaseHeader;
  size += WireSizes::kPerRouteHop * static_cast<std::uint32_t>(route.size());
  size += WireSizes::kPerNeighbor *
          static_cast<std::uint32_t>(neighbor_list.size());
  size += WireSizes::kPerAlertAuth *
          static_cast<std::uint32_t>(alert_auth.size());
  switch (type) {
    case PacketType::kHelloReply:
      size += WireSizes::kAuthTag;
      break;
    case PacketType::kData:
      size += payload_bytes;
      break;
    case PacketType::kAck:
      return WireSizes::kAckFrame;  // fixed-size control frames
    case PacketType::kRts:
      return WireSizes::kRtsFrame;
    case PacketType::kCts:
      return WireSizes::kCtsFrame;
    default:
      break;
  }
  return size;
}

std::string Packet::auth_payload() const {
  std::ostringstream out;
  out << static_cast<int>(type) << '|' << origin << '|' << seq << '|'
      << final_dst;
  switch (type) {
    case PacketType::kNeighborList:
      for (NodeId id : neighbor_list) out << ',' << id;
      break;
    case PacketType::kAlert:
      out << "|accused=" << accused << "|guard=" << accusing_guard;
      break;
    default:
      break;
  }
  return out.str();
}

std::string Packet::describe() const {
  std::ostringstream out;
  out << to_string(type) << " uid=" << uid << " origin=" << origin
      << " seq=" << seq << " dst=" << final_dst << " tx=" << tx_node
      << " claimed_tx=" << claimed_tx << " prev=" << announced_prev_hop;
  if (link_dst != kInvalidNode) out << " link_dst=" << link_dst;
  if (!route.empty()) {
    out << " route=[";
    for (std::size_t i = 0; i < route.size(); ++i) {
      if (i) out << ' ';
      out << route[i];
    }
    out << "]@" << route_index;
  }
  if (type == PacketType::kAlert) {
    out << " accused=" << accused << " by=" << accusing_guard;
  }
  return out.str();
}

}  // namespace lw::pkt
