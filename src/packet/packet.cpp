#include "packet/packet.h"

#include <charconv>
#include <sstream>

namespace lw::pkt {

const char* to_string(PacketType type) {
  switch (type) {
    case PacketType::kHello:
      return "HELLO";
    case PacketType::kHelloReply:
      return "HELLO_REPLY";
    case PacketType::kNeighborList:
      return "NEIGHBOR_LIST";
    case PacketType::kRouteRequest:
      return "REQ";
    case PacketType::kRouteReply:
      return "REP";
    case PacketType::kData:
      return "DATA";
    case PacketType::kAlert:
      return "ALERT";
    case PacketType::kAck:
      return "ACK";
    case PacketType::kRts:
      return "RTS";
    case PacketType::kCts:
      return "CTS";
    case PacketType::kRouteError:
      return "RERR";
    case PacketType::kJoinHello:
      return "JOIN_HELLO";
    case PacketType::kJoinChallenge:
      return "JOIN_CHALLENGE";
    case PacketType::kJoinResponse:
      return "JOIN_RESPONSE";
  }
  return "?";
}

bool is_watched_control(PacketType type) {
  return type == PacketType::kRouteRequest || type == PacketType::kRouteReply;
}

std::uint32_t Packet::wire_size() const {
  std::uint32_t size = WireSizes::kBaseHeader;
  size += WireSizes::kPerRouteHop * static_cast<std::uint32_t>(route.size());
  size += WireSizes::kPerNeighbor *
          static_cast<std::uint32_t>(neighbor_list.size());
  size += WireSizes::kPerAlertAuth *
          static_cast<std::uint32_t>(alert_auth.size());
  switch (type) {
    case PacketType::kHelloReply:
      size += WireSizes::kAuthTag;
      break;
    case PacketType::kData:
      size += payload_bytes;
      break;
    case PacketType::kAck:
      return WireSizes::kAckFrame;  // fixed-size control frames
    case PacketType::kRts:
      return WireSizes::kRtsFrame;
    case PacketType::kCts:
      return WireSizes::kCtsFrame;
    default:
      break;
  }
  return size;
}

namespace {

/// Decimal append without the ostream machinery (same bytes as
/// operator<< for these unsigned fields).
template <typename Str, typename Int>
void append_decimal(Str& out, Int value) {
  char buf[20];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out.append(buf, end);
}

}  // namespace

std::string Packet::auth_payload() const {
  util::PoolString out;
  auth_payload_into(out);
  return std::string(out.begin(), out.end());
}

void Packet::auth_payload_into(util::PoolString& out) const {
  out.clear();
  append_decimal(out, static_cast<int>(type));
  out.push_back('|');
  append_decimal(out, origin);
  out.push_back('|');
  append_decimal(out, seq);
  out.push_back('|');
  append_decimal(out, final_dst);
  switch (type) {
    case PacketType::kNeighborList:
      for (NodeId id : neighbor_list) {
        out.push_back(',');
        append_decimal(out, id);
      }
      break;
    case PacketType::kAlert:
      out.append("|accused=");
      append_decimal(out, accused);
      out.append("|guard=");
      append_decimal(out, accusing_guard);
      break;
    default:
      break;
  }
}

std::string Packet::describe() const {
  std::ostringstream out;
  out << to_string(type) << " uid=" << uid << " origin=" << origin
      << " seq=" << seq << " dst=" << final_dst << " tx=" << tx_node
      << " claimed_tx=" << claimed_tx << " prev=" << announced_prev_hop;
  if (link_dst != kInvalidNode) out << " link_dst=" << link_dst;
  if (!route.empty()) {
    out << " route=[";
    for (std::size_t i = 0; i < route.size(); ++i) {
      if (i) out << ' ';
      out << route[i];
    }
    out << "]@" << route_index;
  }
  if (type == PacketType::kAlert) {
    out << " accused=" << accused << " by=" << accusing_guard;
  }
  return out.str();
}

}  // namespace lw::pkt
