#include "stats/metrics.h"

#include <algorithm>

namespace lw::stats {

MetricsCollector::MetricsCollector(const sim::Simulator& simulator,
                                   const topo::DiscGraph& graph,
                                   std::vector<NodeId> malicious)
    : simulator_(simulator),
      graph_(graph),
      malicious_(std::move(malicious)),
      malicious_set_(malicious_.begin(), malicious_.end()) {
  for (NodeId m : malicious_) {
    IsolationRecord record;
    for (NodeId neighbor : graph_.neighbors(m)) {
      if (malicious_set_.count(neighbor) == 0) record.required.insert(neighbor);
    }
    isolation_.emplace(m, std::move(record));
  }
}

void MetricsCollector::on_data_originated(NodeId, const pkt::Packet&) {
  ++data_originated;
}

void MetricsCollector::on_data_delivered(NodeId, const pkt::Packet& packet) {
  ++data_delivered;
  delivery_latencies.push_back(simulator_.now() - packet.created_at);
}

double MetricsCollector::mean_delivery_latency() const {
  if (delivery_latencies.empty()) return 0.0;
  double sum = 0.0;
  for (Duration latency : delivery_latencies) sum += latency;
  return sum / static_cast<double>(delivery_latencies.size());
}

double MetricsCollector::latency_percentile(double p) const {
  if (delivery_latencies.empty()) return 0.0;
  std::vector<Duration> sorted(delivery_latencies.begin(),
                               delivery_latencies.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto index = static_cast<std::size_t>(rank);
  if (index + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(index);
  return sorted[index] * (1.0 - frac) + sorted[index + 1] * frac;
}

void MetricsCollector::on_data_dropped_no_route(NodeId) {
  ++data_dropped_no_route;
}

void MetricsCollector::on_route_established(NodeId,
                                            const pkt::NodeList& path) {
  ++routes_established;
  route_times.push_back(simulator_.now());

  bool fake_link = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!graph_.is_neighbor(path[i], path[i + 1])) {
      fake_link = true;
      break;
    }
  }
  const bool via_malicious =
      std::any_of(path.begin(), path.end(),
                  [this](NodeId n) { return is_malicious(n); });
  const bool transit =
      path.size() > 2 &&
      std::any_of(path.begin() + 1, path.end() - 1,
                  [this](NodeId n) { return is_malicious(n); });
  if (fake_link) {
    ++wormhole_routes;
    wormhole_route_times.push_back(simulator_.now());
  }
  if (via_malicious) ++routes_via_malicious;
  if (transit) ++routes_via_malicious_transit;
}

void MetricsCollector::on_discovery_started(NodeId, NodeId) { ++discoveries; }

void MetricsCollector::on_suspicion(NodeId, NodeId suspect,
                                    lite::Suspicion kind) {
  if (kind == lite::Suspicion::kFabrication) {
    ++suspicions_fabrication;
  } else if (kind == lite::Suspicion::kDrop) {
    ++suspicions_drop;
  } else {
    ++suspicions_anomaly;
  }
  if (!is_malicious(suspect)) ++false_suspicions;
}

void MetricsCollector::on_local_detection(NodeId guard, NodeId suspect) {
  ++local_detections;
  if (!is_malicious(suspect)) {
    // One guard's noise conviction: it severs one link. Only a
    // gamma-confirmed isolation (on_isolation) counts as the network
    // falsely ISOLATING an honest node.
    ++false_local_detections;
    return;
  }
  IsolationRecord& record = isolation_.at(suspect);
  if (!record.first_detection) record.first_detection = simulator_.now();
  note_revocation(guard, suspect);
}

void MetricsCollector::on_alert_sent(NodeId, NodeId) { ++alerts_sent; }

void MetricsCollector::on_isolation(NodeId node, NodeId suspect, int) {
  ++isolation_events;
  if (!is_malicious(suspect)) {
    ++false_isolations;
    return;
  }
  note_revocation(node, suspect);
}

void MetricsCollector::note_revocation(NodeId by, NodeId suspect) {
  IsolationRecord& record = isolation_.at(suspect);
  record.revoked_by.emplace(by, simulator_.now());
  if (record.complete) return;
  const bool done = std::all_of(
      record.required.begin(), record.required.end(),
      [&record](NodeId n) { return record.revoked_by.count(n) != 0; });
  if (done) record.complete = simulator_.now();
}

void MetricsCollector::on_data_dropped(NodeId, const pkt::Packet&) {
  ++data_dropped_malicious;
  drop_times.push_back(simulator_.now());
}

void MetricsCollector::on_wormhole_replay(NodeId, const pkt::Packet&) {
  ++wormhole_replays;
}

bool MetricsCollector::all_malicious_isolated() const {
  return malicious_isolated_count() == isolation_.size();
}

std::size_t MetricsCollector::malicious_isolated_count() const {
  return static_cast<std::size_t>(
      std::count_if(isolation_.begin(), isolation_.end(),
                    [](const auto& e) { return e.second.complete.has_value(); }));
}

std::optional<Duration> MetricsCollector::isolation_latency(
    Time attack_start) const {
  Duration latency = 0.0;
  for (const auto& [node, record] : isolation_) {
    (void)node;
    if (!record.complete) return std::nullopt;
    latency = std::max(latency, *record.complete - attack_start);
  }
  return latency;
}

std::uint64_t MetricsCollector::cumulative_at(const std::vector<Time>& times,
                                              Time t) {
  // Event vectors are appended in simulation order, hence sorted.
  return static_cast<std::uint64_t>(
      std::upper_bound(times.begin(), times.end(), t) - times.begin());
}

}  // namespace lw::stats
