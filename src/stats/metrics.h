// Run metrics: the output parameters of the paper's evaluation.
//
// A MetricsCollector implements the observer interfaces of the routing,
// monitoring, and attack layers, and classifies events against ground truth
// (the deployment geometry and the set of malicious nodes) that individual
// nodes do not have. Output parameters match Section 6: packets dropped by
// the wormhole, routes established / malicious routes, isolation latency,
// plus detection/false-alarm accounting for the analysis comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "attack/malicious_agent.h"
#include "liteworp/monitor.h"
#include "util/arena.h"
#include "routing/routing.h"
#include "topology/disc_graph.h"

namespace lw::stats {

/// Isolation progress of one malicious node.
struct IsolationRecord {
  /// First local detection by any guard.
  std::optional<Time> first_detection;
  /// node -> time it revoked the malicious node.
  std::map<NodeId, Time> revoked_by;
  /// Honest ground-truth neighbors that must revoke for complete isolation.
  std::set<NodeId> required;
  /// Time the last required neighbor revoked.
  std::optional<Time> complete;
};

class MetricsCollector : public routing::RoutingObserver,
                         public lite::MonitorObserver,
                         public attack::AttackObserver {
 public:
  /// `graph` and `malicious` are ground truth used only for classification.
  MetricsCollector(const sim::Simulator& simulator,
                   const topo::DiscGraph& graph,
                   std::vector<NodeId> malicious);

  // RoutingObserver
  void on_data_originated(NodeId source, const pkt::Packet& packet) override;
  void on_data_delivered(NodeId destination,
                         const pkt::Packet& packet) override;
  void on_data_dropped_no_route(NodeId source) override;
  void on_route_established(NodeId source,
                            const pkt::NodeList& path) override;
  void on_discovery_started(NodeId source, NodeId target) override;

  // MonitorObserver
  void on_suspicion(NodeId guard, NodeId suspect,
                    lite::Suspicion kind) override;
  void on_local_detection(NodeId guard, NodeId suspect) override;
  void on_alert_sent(NodeId guard, NodeId suspect) override;
  void on_isolation(NodeId node, NodeId suspect, int alert_count) override;

  // AttackObserver
  void on_data_dropped(NodeId malicious, const pkt::Packet& packet) override;
  void on_wormhole_replay(NodeId malicious, const pkt::Packet& packet) override;

  // ---- Counters ----
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped_malicious = 0;
  std::uint64_t data_dropped_no_route = 0;
  std::uint64_t discoveries = 0;
  std::uint64_t routes_established = 0;
  /// Routes containing a link that does not exist physically (the wormhole
  /// illusion: a tunneled or relayed hop).
  std::uint64_t wormhole_routes = 0;
  /// Routes that pass through at least one malicious node (superset).
  std::uint64_t routes_via_malicious = 0;
  /// Routes where a malicious node is a TRANSIT hop (neither source nor
  /// destination) — the routes an attacker actually captured.
  std::uint64_t routes_via_malicious_transit = 0;
  std::uint64_t wormhole_replays = 0;

  std::uint64_t suspicions_fabrication = 0;
  std::uint64_t suspicions_drop = 0;
  /// Statistical suspicions raised by the Z-score backend (0 under the
  /// evidence-based LITEWORP monitor).
  std::uint64_t suspicions_anomaly = 0;
  /// Suspicions whose suspect is actually honest (channel-noise artifacts).
  std::uint64_t false_suspicions = 0;
  std::uint64_t local_detections = 0;
  /// Local detections of honest nodes: a single guard's noise conviction,
  /// severing one link (the per-guard false alarm of the analysis).
  std::uint64_t false_local_detections = 0;
  std::uint64_t alerts_sent = 0;
  std::uint64_t isolation_events = 0;
  /// Gamma-confirmed isolations of honest nodes — the network-level false
  /// alarm of Figure 6(b). Must be 0 at the calibrated operating point.
  std::uint64_t false_isolations = 0;

  // ---- Event times (for time-series post-processing) ----
  // Pool-backed: these grow one entry per delivered/dropped packet for
  // the whole run, and are the last per-event heap touch of the stats
  // layer (reports copy them out at the end).
  util::PoolVector<Time> drop_times;
  util::PoolVector<Time> wormhole_route_times;
  util::PoolVector<Time> route_times;
  /// End-to-end delivery latency of each delivered data packet.
  util::PoolVector<Duration> delivery_latencies;

  /// Mean end-to-end data latency (0 if nothing delivered).
  double mean_delivery_latency() const;
  /// p-th percentile latency (p in [0,100]; 0 if nothing delivered).
  double latency_percentile(double p) const;

  // ---- Per-malicious isolation ----
  const std::map<NodeId, IsolationRecord>& isolation() const {
    return isolation_;
  }

  bool is_malicious(NodeId id) const { return malicious_set_.count(id) != 0; }

  /// True when every malicious node has been completely isolated.
  bool all_malicious_isolated() const;

  /// Number of malicious nodes completely isolated.
  std::size_t malicious_isolated_count() const;

  /// Max over malicious nodes of (complete-isolation time - attack_start);
  /// nullopt if any malicious node is not completely isolated.
  std::optional<Duration> isolation_latency(Time attack_start) const;

  /// Cumulative count of events in `times` occurring at or before `t`.
  static std::uint64_t cumulative_at(const std::vector<Time>& times, Time t);

 private:
  void note_revocation(NodeId by, NodeId suspect);

  const sim::Simulator& simulator_;
  const topo::DiscGraph& graph_;
  std::vector<NodeId> malicious_;
  std::unordered_set<NodeId> malicious_set_;
  std::map<NodeId, IsolationRecord> isolation_;
};

}  // namespace lw::stats
