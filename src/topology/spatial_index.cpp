#include "topology/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lw::topo {

SpatialIndex::SpatialIndex(const std::vector<Position>& positions,
                           double cell_size)
    : cell_size_(cell_size) {
  if (cell_size <= 0.0) {
    throw std::invalid_argument("cell size must be positive");
  }
  inv_cell_ = 1.0 / cell_size;

  double max_x = 0.0;
  double max_y = 0.0;
  if (!positions.empty()) {
    min_x_ = max_x = positions.front().x;
    min_y_ = max_y = positions.front().y;
    for (const Position& p : positions) {
      min_x_ = std::min(min_x_, p.x);
      max_x = std::max(max_x, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_y = std::max(max_y, p.y);
    }
  }
  columns_ = static_cast<std::size_t>((max_x - min_x_) * inv_cell_) + 1;
  rows_ = static_cast<std::size_t>((max_y - min_y_) * inv_cell_) + 1;

  // Counting sort by cell; iterating ids in ascending order keeps each
  // cell's slice ascending, which query() relies on.
  cell_start_.assign(columns_ * rows_ + 1, 0);
  for (const Position& p : positions) {
    ++cell_start_[row_of(p.y) * columns_ + column_of(p.x) + 1];
  }
  for (std::size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  ids_.resize(positions.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (NodeId id = 0; id < positions.size(); ++id) {
    const Position& p = positions[id];
    ids_[cursor[row_of(p.y) * columns_ + column_of(p.x)]++] = id;
  }
}

std::size_t SpatialIndex::column_of(double x) const {
  const double offset = (x - min_x_) * inv_cell_;
  if (offset <= 0.0) return 0;
  return std::min(static_cast<std::size_t>(offset), columns_ - 1);
}

std::size_t SpatialIndex::row_of(double y) const {
  const double offset = (y - min_y_) * inv_cell_;
  if (offset <= 0.0) return 0;
  return std::min(static_cast<std::size_t>(offset), rows_ - 1);
}

void SpatialIndex::query(const Position& center, double radius,
                         std::vector<NodeId>& out) const {
  out.clear();
  if (ids_.empty()) return;
  const std::size_t col_lo = column_of(center.x - radius);
  const std::size_t col_hi = column_of(center.x + radius);
  const std::size_t row_lo = row_of(center.y - radius);
  const std::size_t row_hi = row_of(center.y + radius);
  for (std::size_t row = row_lo; row <= row_hi; ++row) {
    for (std::size_t col = col_lo; col <= col_hi; ++col) {
      const std::size_t cell = row * columns_ + col;
      out.insert(out.end(), ids_.begin() + cell_start_[cell],
                 ids_.begin() + cell_start_[cell + 1]);
    }
  }
  // Cells are visited row-major but ascending within each; one sort
  // restores the global ascending-id contract.
  std::sort(out.begin(), out.end());
}

}  // namespace lw::topo
