#include "topology/field.h"

#include <cmath>
#include <stdexcept>

#include "util/math_util.h"

namespace lw::topo {

double field_side_for_density(std::size_t node_count, double radio_range,
                              double target_neighbors) {
  if (node_count == 0) throw std::invalid_argument("node_count must be > 0");
  if (radio_range <= 0 || target_neighbors <= 0) {
    throw std::invalid_argument("range and target density must be positive");
  }
  double n = static_cast<double>(node_count);
  return radio_range * std::sqrt(kPi * n / target_neighbors);
}

std::vector<Position> place_uniform(const Field& field,
                                    std::size_t node_count, Rng& rng) {
  std::vector<Position> positions;
  positions.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    positions.push_back({rng.uniform(0.0, field.width),
                         rng.uniform(0.0, field.height)});
  }
  return positions;
}

std::vector<Position> place_grid(const Field& field, std::size_t columns,
                                 std::size_t rows) {
  if (columns == 0 || rows == 0) {
    throw std::invalid_argument("grid dimensions must be > 0");
  }
  std::vector<Position> positions;
  positions.reserve(columns * rows);
  // Cell-centered so border nodes keep distance from the field edge.
  double dx = field.width / static_cast<double>(columns);
  double dy = field.height / static_cast<double>(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t col = 0; col < columns; ++col) {
      positions.push_back({(static_cast<double>(col) + 0.5) * dx,
                           (static_cast<double>(row) + 0.5) * dy});
    }
  }
  return positions;
}

std::vector<Position> place_line(std::size_t node_count, double spacing) {
  std::vector<Position> positions;
  positions.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    positions.push_back({static_cast<double>(i) * spacing, 0.0});
  }
  return positions;
}

}  // namespace lw::topo
