// Uniform-cell spatial index over node positions.
//
// Built once per deployment, it answers "which nodes could lie within
// radius r of this point?" in time proportional to the local population
// instead of the network size. The PHY medium uses it to deliver frames to
// actual receivers rather than scanning all N radios per transmission, and
// DiscGraph builds its adjacency through it instead of the O(N^2)
// all-pairs pass.
//
// Queries return a *superset* restricted to the grid cells that intersect
// the disc; callers must still filter by exact distance. Candidates are
// produced in ascending NodeId order, so id-ordered iteration over them
// visits receivers exactly as the historical all-N scan did — this is what
// keeps event schedules (and hence golden traces) byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/field.h"
#include "util/ids.h"

namespace lw::topo {

class SpatialIndex {
 public:
  /// Builds the grid over `positions` with square cells of `cell_size`
  /// meters (normally the radio range, making the common query touch at
  /// most 3x3 cells). cell_size must be positive.
  SpatialIndex(const std::vector<Position>& positions, double cell_size);

  /// Replaces `out` with every node whose cell intersects the closed disc
  /// (center, radius), in ascending NodeId order. The caller filters by
  /// exact distance; `out` is a reusable buffer to keep queries
  /// allocation-free at steady state.
  void query(const Position& center, double radius,
             std::vector<NodeId>& out) const;

  double cell_size() const { return cell_size_; }
  std::size_t cell_count() const { return columns_ * rows_; }

 private:
  std::size_t column_of(double x) const;
  std::size_t row_of(double y) const;

  double cell_size_ = 0.0;
  double inv_cell_ = 0.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::size_t columns_ = 1;
  std::size_t rows_ = 1;
  /// CSR layout: node ids grouped by cell (row-major), ascending id inside
  /// each cell; cell_start_[c]..cell_start_[c+1] delimits cell c.
  std::vector<std::uint32_t> cell_start_;
  std::vector<NodeId> ids_;
};

}  // namespace lw::topo
