// Unit-disc connectivity graph over placed nodes.
//
// Ground-truth geometry: who can physically hear whom at the nominal radio
// range. Protocol-level neighbor tables (src/neighbor) are built by message
// exchange on top of this; the disc graph is the oracle used by the medium,
// by scenario setup (e.g. choosing colluders > 2 hops apart), and by tests.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "topology/field.h"
#include "topology/spatial_index.h"
#include "util/ids.h"

namespace lw::topo {

class DiscGraph {
 public:
  /// Builds the symmetric adjacency for |positions| nodes with the given
  /// communication range (bi-directional links, per the system model).
  /// Adjacency is built through a uniform-cell spatial index (O(N * k)
  /// for k neighbors per node instead of the all-pairs O(N^2) pass).
  DiscGraph(std::vector<Position> positions, double range);

  /// The cell grid over this deployment (cell size = radio range). The
  /// medium queries it per transmission to find candidate receivers.
  const SpatialIndex& spatial_index() const { return index_; }

  std::size_t size() const { return positions_.size(); }
  double range() const { return range_; }
  const Position& position(NodeId id) const { return positions_.at(id); }
  const std::vector<Position>& positions() const { return positions_; }

  /// O(log k) membership test (adjacency lists are sorted ascending).
  bool is_neighbor(NodeId a, NodeId b) const;
  /// Neighbor ids in ascending order.
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  std::size_t degree(NodeId id) const { return adjacency_.at(id).size(); }

  /// Average node degree across the graph (the paper's N_B).
  double average_degree() const;

  /// Distance in meters between two nodes.
  double distance(NodeId a, NodeId b) const;

  /// BFS hop count between two nodes; nullopt if disconnected.
  std::optional<std::size_t> hop_distance(NodeId from, NodeId to) const;

  /// True if every node can reach every other node.
  bool connected() const;

  /// Shortest path (in hops) as a node sequence including endpoints;
  /// empty if disconnected. Ties broken toward lower node ids (BFS order).
  std::vector<NodeId> shortest_path(NodeId from, NodeId to) const;

  /// Guards of the directed link from -> to: nodes adjacent to BOTH ends
  /// (including `from` itself, which the paper counts as a guard of all its
  /// outgoing links). `to` is not its own guard.
  std::vector<NodeId> guards_of_link(NodeId from, NodeId to) const;

 private:
  std::vector<Position> positions_;
  double range_;
  SpatialIndex index_;
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace lw::topo
