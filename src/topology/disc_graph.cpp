#include "topology/disc_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/math_util.h"

namespace lw::topo {

namespace {

double checked_range(double range) {
  if (range <= 0) throw std::invalid_argument("range must be positive");
  return range;
}

}  // namespace

DiscGraph::DiscGraph(std::vector<Position> positions, double range)
    : positions_(std::move(positions)),
      range_(checked_range(range)),
      index_(positions_, range) {
  adjacency_.resize(positions_.size());
  std::vector<NodeId> candidates;
  for (NodeId a = 0; a < positions_.size(); ++a) {
    index_.query(positions_[a], range_, candidates);
    auto& adj = adjacency_[a];
    adj.reserve(candidates.size());
    for (NodeId b : candidates) {
      if (b != a && distance(a, b) <= range_) adj.push_back(b);
    }
  }
}

bool DiscGraph::is_neighbor(NodeId a, NodeId b) const {
  const auto& adj = adjacency_.at(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

double DiscGraph::average_degree() const {
  if (positions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

double DiscGraph::distance(NodeId a, NodeId b) const {
  const Position& pa = positions_.at(a);
  const Position& pb = positions_.at(b);
  return dist2d(pa.x, pa.y, pb.x, pb.y);
}

std::optional<std::size_t> DiscGraph::hop_distance(NodeId from,
                                                   NodeId to) const {
  auto path = shortest_path(from, to);
  if (path.empty()) return std::nullopt;
  return path.size() - 1;
}

bool DiscGraph::connected() const {
  if (positions_.empty()) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop();
    for (NodeId next : adjacency_[current]) {
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        frontier.push(next);
      }
    }
  }
  return visited == positions_.size();
}

std::vector<NodeId> DiscGraph::shortest_path(NodeId from, NodeId to) const {
  if (from >= size() || to >= size()) {
    throw std::out_of_range("node id out of range");
  }
  if (from == to) return {from};
  std::vector<NodeId> parent(size(), kInvalidNode);
  std::queue<NodeId> frontier;
  frontier.push(from);
  parent[from] = from;
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop();
    for (NodeId next : adjacency_[current]) {
      if (parent[next] != kInvalidNode) continue;
      parent[next] = current;
      if (next == to) {
        std::vector<NodeId> path{to};
        for (NodeId hop = to; hop != from; hop = parent[hop]) {
          path.push_back(parent[hop]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(next);
    }
  }
  return {};
}

std::vector<NodeId> DiscGraph::guards_of_link(NodeId from, NodeId to) const {
  std::vector<NodeId> guards;
  // The sender is a guard of its own outgoing link.
  if (is_neighbor(from, to)) guards.push_back(from);
  for (NodeId candidate : adjacency_.at(from)) {
    if (candidate == to) continue;
    if (is_neighbor(candidate, to)) guards.push_back(candidate);
  }
  return guards;
}

}  // namespace lw::topo
