// Deployment field and node placement.
//
// The paper distributes nodes uniformly at random over a square field whose
// side grows with the node count so average density (hence average neighbor
// count N_B) stays fixed: 80x80 m at N=20 up to 200x200 m at N=150 with
// r=30 m, N_B ~= 8.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace lw::topo {

struct Position {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Position&, const Position&) = default;
};

struct Field {
  double width = 0.0;
  double height = 0.0;

  double area() const { return width * height; }
};

/// Side of the square field that yields the target average neighbor count:
/// N_B = pi r^2 d with d = N/area  =>  side = r * sqrt(pi N / N_B).
double field_side_for_density(std::size_t node_count, double radio_range,
                              double target_neighbors);

/// Uniform i.i.d. placement of node_count positions over the field.
std::vector<Position> place_uniform(const Field& field, std::size_t node_count,
                                    Rng& rng);

/// Regular grid placement (row-major), spacing chosen to fill the field.
/// Deterministic; used by unit tests and the didactic examples.
std::vector<Position> place_grid(const Field& field, std::size_t columns,
                                 std::size_t rows);

/// Equally spaced positions on a horizontal line (chain topologies for the
/// Figure 1 / Figure 2 style examples).
std::vector<Position> place_line(std::size_t node_count, double spacing);

}  // namespace lw::topo
