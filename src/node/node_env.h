// Services a protocol agent receives from its host node.
//
// Protocol agents (neighbor discovery, routing, local monitoring, attack
// agents) are written against this narrow interface rather than against the
// concrete Node, which keeps the protocol libraries independent of the
// wiring layer and lets tests host agents in minimal harnesses.
#pragma once

#include "crypto/key_manager.h"
#include "mac/csma_mac.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace lw::obs {
class Recorder;
}

namespace lw::node {

class NodeEnv {
 public:
  virtual ~NodeEnv() = default;

  /// This node's identity.
  virtual NodeId id() const = 0;

  virtual sim::Simulator& simulator() = 0;

  /// Factory stamping globally unique packet uids.
  virtual pkt::PacketFactory& packet_factory() = 0;

  /// Deployment-wide pairwise key infrastructure.
  virtual const crypto::KeyManager& keys() const = 0;

  /// This node's private randomness stream.
  virtual Rng& rng() = 0;

  /// Hands a frame to the MAC transmit path. The node fills claimed_tx
  /// with its own id when the caller left it unset (honest default);
  /// attack agents may pre-set a spoofed identity.
  virtual void send(pkt::Packet packet, mac::SendOptions options = {}) = 0;

  /// Local congestion signal: frames waiting in the MAC transmit queue.
  virtual std::size_t mac_queue_depth() const = 0;

  /// The run's observability recorder, or null when observability is off
  /// (the default, and the default for test harnesses). Emit sites guard:
  ///   if (auto* r = env.obs(); r && r->wants(layer)) r->emit({...});
  virtual obs::Recorder* obs() { return nullptr; }

  Time now() { return simulator().now(); }
};

}  // namespace lw::node
