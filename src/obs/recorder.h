// The per-run event bus of the observability layer.
//
// One Recorder exists per simulation run (owned by scenario::Network) and
// fans every emitted Event out to its sinks synchronously, on the (single)
// thread driving that run's simulator. Sweep workers each drive their own
// run with its own Recorder, so no cross-thread synchronization is needed
// and trace output stays deterministic for a given seed at any thread
// count.
//
// Zero-cost-when-disabled contract: every emit site guards with
//   if (rec != nullptr && rec->wants(Layer::kX)) rec->emit({...});
// so a run without observability pays one pointer compare per site, and a
// run tracing only some layers pays one mask test for the others.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event.h"

namespace lw::obs {

class RunProfiler;

/// Consumer of the event stream (trace writer, metrics registry,
/// profiler). Dispatch is synchronous; sinks must not retain
/// Event::packet.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

class Recorder {
 public:
  /// Registers a sink for the layers in `layer_mask`. Sinks must outlive
  /// the recorder.
  void add_sink(EventSink* sink, std::uint32_t layer_mask = kAllLayers);

  /// True when at least one sink listens to `layer`: the emit-site guard.
  bool wants(Layer layer) const { return (active_mask_ & layer_bit(layer)) != 0; }

  /// Dispatches to every sink whose mask covers the event's layer.
  void emit(const Event& event);

  /// The profiler driving ScopedTimer attribution; null when profiling is
  /// off (timers become no-ops).
  RunProfiler* profiler() const { return profiler_; }
  void set_profiler(RunProfiler* profiler) { profiler_ = profiler; }

 private:
  struct Subscription {
    EventSink* sink;
    std::uint32_t mask;
  };

  std::vector<Subscription> sinks_;
  std::uint32_t active_mask_ = 0;
  RunProfiler* profiler_ = nullptr;
};

}  // namespace lw::obs
