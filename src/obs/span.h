// Protocol-transaction spans: folding the event bus into typed intervals.
//
// LITEWORP's headline guarantees are latencies — how fast a guard's
// watch-buffer alibi test turns a malicious relay into gamma corroborated
// alerts and then isolation — but the trace records point events only. A
// SpanBuilder is an EventSink that stitches those points into five kinds
// of multi-event transactions:
//
//   route_session   REQ flood started -> usable route cached, one per
//                   (origin, destination) pair; re-floods while the
//                   session is open count as retries.
//   alibi_window    drop watch armed -> cleared (forward overheard) or
//                   dropped (watch expired), one per
//                   (guard, forwarder, REP lineage). Child of the
//                   route_session whose REP armed it.
//   alert_round     first suspicion/detection/alert naming an accused ->
//                   its first isolation; one per accused per run. Child of
//                   the accused's open tunnel_session, if any. Carries the
//                   observe/corroborate/isolate phase decomposition of the
//                   paper's detection latency.
//   tunnel_session  attacker's first tunneled frame -> its first
//                   isolation (the wormhole's operating window).
//   join_handshake  dynamic-join start -> first authenticated neighbor.
//
// Determinism contract: spans are derived purely from the (deterministic)
// event stream on the single thread driving the run, and span ids are a
// monotone counter in open order — so span trace lines, like every other
// trace byte, are identical per seed at any sweep --threads value.
//
// Causality: a child span records its parent's sid at open time (the
// parent must already be open). A parent whose logical end arrives while
// children are still open defers its span.end until the last child closes,
// so declared parent intervals always enclose their children — the
// invariant lw-trace check #8 verifies offline.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/recorder.h"

namespace lw::obs {

enum class SpanKind : std::uint8_t {
  kRouteSession = 0,
  kAlertRound = 1,
  kAlibiWindow = 2,
  kTunnelSession = 3,
  kJoinHandshake = 4,
};
inline constexpr std::size_t kSpanKindCount = 5;

/// Short stable span-kind name used in span trace lines and sweep JSON
/// ("route_session", "alert_round", "alibi_window", "tunnel_session",
/// "join_handshake").
const char* to_string(SpanKind kind);

/// Reverse lookup for trace readers. Returns false on unknown names.
bool parse_span_kind(const std::string& name, SpanKind* out);

/// Exact summary of a raw sample vector; percentile interpolation matches
/// Histogram::summary (rank = p/100 * (n-1), linear between neighbors).
/// Span counts are small enough that no reservoir is needed, so sweeps can
/// pool the raw samples across replicas and re-summarize exactly.
HistogramSummary summarize_samples(const std::vector<double>& samples);

/// Per-kind open/close tally plus the raw closed-span durations.
struct SpanKindStats {
  std::uint64_t opened = 0;
  /// Spans closed with a terminal outcome; spans still open at run end are
  /// flushed with outcome "open" and excluded from the duration samples.
  std::uint64_t closed = 0;
  double duration_sum = 0.0;
  /// Raw durations of terminally-closed spans, in close order (sim s).
  std::vector<double> durations;
};

/// One phase of the alert-round detection-latency decomposition.
struct PhaseStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Raw per-round samples, in close order (sim s).
  std::vector<double> samples;
};

/// A finished run's span statistics; lands in RunResult and (rendered by
/// spans_to_json) under each replica's "spans" key in the sweep JSON.
struct SpanReport {
  bool enabled = false;
  std::array<SpanKindStats, kSpanKindCount> kinds;
  /// Detection-latency phases over alert rounds that reached isolation
  /// with a complete timeline (first act, suspicion, and detection all
  /// observed): observe = first suspicion - first malicious act,
  /// corroborate = first local detection - first suspicion, isolate =
  /// first isolation - first detection. The three always telescope:
  /// observe + corroborate + isolate = first isolation - first act.
  PhaseStats observe;
  PhaseStats corroborate;
  PhaseStats isolate;
  /// First-act -> first-isolation latency for every alert round whose
  /// accused acted and was isolated (the forensics latency population,
  /// phase-complete or not), in close order.
  std::vector<double> detection_latencies;
};

/// EventSink folding nbr/route/mon/atk events into spans. Register it
/// AFTER the TraceWriter so span.begin/span.end lines land immediately
/// after the event that opened/closed them; pass the same trace stream to
/// emit span lines, or null to collect statistics only.
class SpanBuilder final : public EventSink {
 public:
  explicit SpanBuilder(std::ostream* trace_out);

  void on_event(const Event& event) override;

  /// Closes every span still open (children before parents) at time `now`
  /// with outcome "open". Idempotent; events after the first flush are
  /// ignored. Call before reading report() or the trace buffer.
  void flush(Time now);

  const SpanReport& report() const { return report_; }

 private:
  struct OpenSpan {
    SpanKind kind = SpanKind::kRouteSession;
    std::uint32_t sid = 0;
    Time begin = 0.0;
    NodeId node = kInvalidNode;
    NodeId peer = kInvalidNode;
    std::uint64_t lineage = 0;
    /// Parent sid; 0 = root.
    std::uint32_t parent = 0;
    std::uint32_t retries = 0;
    std::uint32_t open_children = 0;
    /// Logical end arrived while children were open; span.end is deferred
    /// until the last child closes.
    bool end_pending = false;
    const char* pending_outcome = nullptr;
    // Alert-round phase anchors (negative = not yet seen).
    Time first_suspicion = -1.0;
    Time first_detection = -1.0;
    // Alert-round phase values, set just before close (negative = absent).
    double ph_observe = -1.0;
    double ph_corroborate = -1.0;
    double ph_isolate = -1.0;
  };

  std::uint32_t open_span(SpanKind kind, const Event& event, NodeId node,
                          NodeId peer, std::uint64_t lineage,
                          std::uint32_t parent);
  /// Ends `sid` now, or marks it end-pending while children remain open.
  void request_close(std::uint32_t sid, Time t, const char* outcome);
  /// Emits span.end, updates stats (terminal outcomes only), and closes a
  /// pending parent when this was its last open child.
  void finish(std::uint32_t sid, Time t, const char* outcome, bool terminal);
  void emit_begin(const OpenSpan& span);
  void emit_end(const OpenSpan& span, Time t, double dur, const char* outcome);

  /// The open alert round for `accused`, opened on first contact.
  std::uint32_t ensure_alert_round(const Event& event, NodeId accused);

  std::ostream* trace_out_;
  bool flushed_ = false;
  std::uint32_t next_sid_ = 1;
  /// Open spans by sid; std::map keeps flush order deterministic.
  std::map<std::uint32_t, OpenSpan> open_;

  // Key -> open sid indexes, one per span kind.
  std::map<std::pair<NodeId, NodeId>, std::uint32_t> route_open_;
  std::map<std::tuple<NodeId, NodeId, std::uint64_t>, std::uint32_t>
      alibi_open_;
  std::map<NodeId, std::uint32_t> alert_open_;
  std::map<NodeId, std::uint32_t> tunnel_open_;
  std::map<NodeId, std::uint32_t> join_open_;
  /// Accused whose alert round already closed (one round per run).
  std::set<NodeId> alert_closed_;
  /// First non-spawn attack act per attacker (phase anchor; mirrors the
  /// IncidentBuilder's first_malicious_act).
  std::map<NodeId, Time> first_act_;

  SpanReport report_;
};

/// Renders a SpanReport as a compact JSON object (deterministic field
/// order, round-trippable doubles): per-kind open/close tallies and
/// duration summaries, phase summaries, and the pooled detection-latency
/// summary. The sweep JSON embeds this verbatim under each replica's
/// "spans" key. Raw sample vectors are summarized, not dumped.
std::string spans_to_json(const SpanReport& report);

}  // namespace lw::obs
