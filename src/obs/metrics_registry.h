// Named counters and histograms fed by the event stream.
//
// The registry generalizes the hand-wired counting inside
// stats::MetricsCollector: every event kind becomes a counter named
// "<layer>.<event>" (e.g. "phy.tx", "mon.isolation"), and selected
// value-carrying events feed histograms ("route.deliver_latency",
// "mac.backoff_delay"). Counting is O(1) per event — a fixed array indexed
// by EventKind — and names are materialized only when a snapshot is taken,
// so the per-event cost is an increment.
//
// Snapshots use std::map so iteration (and hence JSON emission) is in
// deterministic name order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace lw::obs {

struct HistogramSummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Sample-keeping histogram; summary percentiles use the same linear
/// interpolation as MetricsCollector::latency_percentile.
class Histogram {
 public:
  void add(double sample) { samples_.push_back(sample); }
  std::uint64_t count() const { return samples_.size(); }
  HistogramSummary summary() const;

 private:
  std::vector<double> samples_;
};

/// Deterministic, by-name snapshot of a run's registry; stored in
/// RunResult and summed across replicas for the sweep JSON.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSummary> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// Sums `other`'s counters into this snapshot (histograms are per-run
  /// and are not merged).
  void add_counters(const RegistrySnapshot& other);
};

/// General-purpose registry for code that wants named metrics outside the
/// event stream. The event-driven path (RegistrySink) bypasses the string
/// lookup entirely.
class MetricsRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  RegistrySnapshot snapshot() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// EventSink that counts every event per kind and feeds the
/// value-carrying histograms.
class RegistrySink final : public EventSink {
 public:
  void on_event(const Event& event) override;

  /// Materializes counter/histogram names; zero-count kinds are omitted.
  RegistrySnapshot snapshot() const;

 private:
  std::uint64_t by_kind_[kEventKindCount] = {};
  Histogram deliver_latency_;
  Histogram backoff_delay_;
};

}  // namespace lw::obs
