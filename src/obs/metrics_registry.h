// Named counters and histograms fed by the event stream.
//
// The registry generalizes the hand-wired counting inside
// stats::MetricsCollector: every event kind becomes a counter named
// "<layer>.<event>" (e.g. "phy.tx", "mon.isolation"), and selected
// value-carrying events feed histograms ("route.deliver_latency",
// "mac.backoff_delay"). Counting is O(1) per event — a fixed array indexed
// by EventKind — and names are materialized only when a snapshot is taken,
// so the per-event cost is an increment.
//
// Snapshots use std::map so iteration (and hence JSON emission) is in
// deterministic name order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace lw::obs {

struct HistogramSummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// The O(1) exact aggregates of a Histogram: everything that does not need
/// the reservoir. This is what the telemetry sampler reads at every bucket
/// boundary — reading never touches (or perturbs) the reservoir state, so
/// sampling a run cannot change its final percentiles.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Bounded-memory histogram: exact count/min/max/mean plus a fixed-size
/// uniform reservoir (Vitter's Algorithm R, deterministic — the RNG is a
/// splitmix64 stream seeded from the run seed) that the summary
/// percentiles are computed over. Up to `capacity` samples the reservoir
/// holds everything, so percentiles are bit-identical to an unbounded
/// sample-keeping histogram (the pre-reservoir behavior); beyond that,
/// memory stays flat and percentiles become a uniform-subsample estimate.
/// Percentile interpolation matches MetricsCollector::latency_percentile.
class Histogram {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  Histogram() : Histogram(0) {}
  explicit Histogram(std::uint64_t seed,
                     std::size_t capacity = kDefaultCapacity);

  void add(double sample);
  std::uint64_t count() const { return count_; }
  std::size_t capacity() const { return capacity_; }
  HistogramSummary summary() const;

  /// Cheap exact aggregates (count/min/max/sum) without sorting or copying
  /// the reservoir; safe to call at any frequency.
  HistogramSnapshot snapshot() const { return {count_, min_, max_, sum_}; }

 private:
  std::uint64_t next_random();

  std::size_t capacity_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t rng_state_;
  /// The reservoir; all samples while count_ <= capacity_.
  std::vector<double> samples_;
};

/// Deterministic, by-name snapshot of a run's registry; stored in
/// RunResult and summed across replicas for the sweep JSON.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSummary> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// Sums `other`'s counters into this snapshot (histograms are per-run
  /// and are not merged).
  void add_counters(const RegistrySnapshot& other);
};

/// General-purpose registry for code that wants named metrics outside the
/// event stream. The event-driven path (RegistrySink) bypasses the string
/// lookup entirely.
class MetricsRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  RegistrySnapshot snapshot() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// EventSink that counts every event per kind and feeds the
/// value-carrying histograms. `seed` (the run seed) makes the histogram
/// reservoirs deterministic per run at any sweep thread count.
class RegistrySink final : public EventSink {
 public:
  explicit RegistrySink(std::uint64_t seed = 0)
      : deliver_latency_(seed), backoff_delay_(seed ^ 0x9E3779B97F4A7C15ull) {}

  void on_event(const Event& event) override;

  /// Materializes counter/histogram names; zero-count kinds are omitted.
  RegistrySnapshot snapshot() const;

  /// Direct histogram access for the telemetry sampler's per-bucket
  /// Histogram::snapshot() reads (const: cannot perturb the reservoirs).
  const Histogram& deliver_latency() const { return deliver_latency_; }
  const Histogram& backoff_delay() const { return backoff_delay_; }

 private:
  std::uint64_t by_kind_[kEventKindCount] = {};
  Histogram deliver_latency_;
  Histogram backoff_delay_;
};

}  // namespace lw::obs
