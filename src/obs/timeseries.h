// Deterministic sim-time telemetry series: WHEN inside a run work and
// memory happen, not just end-of-run totals.
//
// A TelemetrySampler is an EventSink that tallies per-layer event counts
// into fixed-width sim-time buckets, and at every bucket boundary absorbs a
// BucketSample the host (scenario::Network) takes through the simulator's
// tick hook: executed-event delta, queue depth and in-bucket high-water,
// and the memory gauges the paper's "lightweight" claim is about (event
// slab occupancy, live WatchBuffer entries, neighbor-table bytes,
// per-defense CostSnapshot storage).
//
// Determinism contract: every deterministic field is keyed on SIMULATED
// time and derived from simulation state only, so a run's series is
// byte-identical per seed at any sweep --threads value and across
// Release/ASan builds — the same contract the traces and counters already
// honor. The one wall-clock field group (per-layer self-time deltas, taken
// from the RunProfiler when profiling is on) is segregated exactly like
// ProfileReport timing: emitted into JSON only when timing is requested.
//
// Bucket semantics: bucket k covers [k*b, (k+1)*b) — left-closed,
// right-open — so an event at exactly a boundary lands in the NEXT bucket.
// Boundaries fire from the simulator loop before the first event at
// t >= boundary executes; a trailing partial bucket captures everything
// after the last full boundary.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/recorder.h"

namespace lw::obs {

/// Memory gauges sampled at bucket boundaries (all deterministic).
struct MemoryGauges {
  /// Simulator event-slab slots allocated (live + free); monotone.
  std::uint64_t slab_slots = 0;
  /// Live WatchBuffer entries (transmit records + drop watches), summed
  /// over every monitoring node.
  std::uint64_t watch_entries = 0;
  /// Neighbor-table storage bytes (paper cost model), summed over nodes.
  std::uint64_t neighbor_bytes = 0;
  /// Defense-backend storage bytes (CostSnapshot), summed over nodes.
  std::uint64_t defense_storage_bytes = 0;

  void max_with(const MemoryGauges& other) {
    if (other.slab_slots > slab_slots) slab_slots = other.slab_slots;
    if (other.watch_entries > watch_entries)
      watch_entries = other.watch_entries;
    if (other.neighbor_bytes > neighbor_bytes)
      neighbor_bytes = other.neighbor_bytes;
    if (other.defense_storage_bytes > defense_storage_bytes)
      defense_storage_bytes = other.defense_storage_bytes;
  }
};

/// What the host samples at each boundary (and once more at run end).
struct BucketSample {
  /// Events executed by the simulator so far (the sampler stores deltas).
  std::uint64_t events_executed = 0;
  /// Queue depth at the boundary instant.
  std::size_t queue_depth = 0;
  /// Queue high-water within the closing bucket
  /// (Simulator::take_window_max_pending).
  std::size_t queue_high_water = 0;
  MemoryGauges memory;
};

/// One closed sim-time bucket.
struct SeriesBucket {
  /// Bucket start (sim seconds); covers [start, start + bucket_seconds).
  Time start = 0.0;
  /// Events emitted into the Recorder per layer within the bucket.
  std::array<std::uint64_t, kLayerCount> layer_events{};
  /// Sum of layer_events (the bucket's overall emission rate).
  std::uint64_t events_emitted = 0;
  /// Simulator events executed within the bucket.
  std::uint64_t events_executed = 0;
  /// Data deliveries within the bucket and their summed end-to-end
  /// latency (from Histogram::snapshot deltas — per-bucket mean latency).
  std::uint64_t deliveries = 0;
  double delivery_latency_sum = 0.0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  MemoryGauges memory;
  /// Per-layer handler self-time within the bucket (wall clock,
  /// NONDETERMINISTIC; JSON emits it only when timing is requested).
  std::array<double, kLayerCount> layer_self_seconds{};
};

/// A finished run's series plus its run-wide high-water rollup.
struct SeriesReport {
  bool enabled = false;
  Duration bucket_seconds = 0.0;
  std::vector<SeriesBucket> buckets;
  /// Max over buckets (deterministic run-wide high-water figures).
  std::size_t queue_high_water = 0;
  MemoryGauges memory_high_water;
};

/// EventSink + boundary accumulator. The host owns the sampling loop:
/// it registers the sampler on the run's Recorder (event tallies) and
/// forwards every simulator tick-hook firing to close_bucket() with a
/// freshly taken BucketSample.
class TelemetrySampler final : public EventSink {
 public:
  explicit TelemetrySampler(Duration bucket_seconds);

  /// Optional wall-clock source: per-layer self-time deltas are taken from
  /// this profiler at each boundary. Null (profiling off) leaves them 0.
  void set_profiler(const RunProfiler* profiler) { profiler_ = profiler; }

  /// Optional latency source: per-bucket delivery count/latency-sum deltas
  /// come from cheap Histogram::snapshot() reads on this registry. Null
  /// leaves them 0.
  void set_registry(const RegistrySink* registry) { registry_ = registry; }

  void on_event(const Event& event) override;

  /// Closes the bucket ending at `boundary` (possibly empty). Boundaries
  /// must arrive in increasing order — the simulator tick hook guarantees
  /// both the order and the once-per-boundary cadence.
  void close_bucket(Time boundary, const BucketSample& sample);

  /// The finished report: every closed bucket plus — when any activity
  /// happened after the last boundary — a trailing partial bucket built
  /// from `final_sample`. Const so RunResult::from_metrics can transcribe
  /// from a const Network.
  SeriesReport report(const BucketSample& final_sample) const;

  Duration bucket_seconds() const { return bucket_seconds_; }

 private:
  /// Folds the open accumulators + `sample` into a SeriesBucket.
  SeriesBucket make_bucket(Time start, const BucketSample& sample) const;
  /// True when the open bucket saw any emission or execution activity.
  bool open_bucket_active(const BucketSample& sample) const;

  Duration bucket_seconds_;
  const RunProfiler* profiler_ = nullptr;
  const RegistrySink* registry_ = nullptr;

  std::vector<SeriesBucket> closed_;
  /// Open-bucket accumulators (reset at each close).
  std::array<std::uint64_t, kLayerCount> open_layer_events_{};
  std::uint64_t open_events_emitted_ = 0;
  Time open_start_ = 0.0;
  /// Totals as of the previous close (delta baselines).
  std::uint64_t prev_events_executed_ = 0;
  std::uint64_t prev_deliveries_ = 0;
  double prev_delivery_latency_sum_ = 0.0;
  std::array<double, kLayerCount> prev_self_seconds_{};
};

/// Renders a SeriesReport as a JSON object (compact, deterministic field
/// order, round-trippable doubles). `include_timing` adds the wall-clock
/// layer_self_seconds arrays; without it the output is byte-identical per
/// seed at any thread count and across build types. The sweep JSON embeds
/// this verbatim under each replica's "series" key.
std::string series_to_json(const SeriesReport& report, bool include_timing);

}  // namespace lw::obs
