// Per-run observability switches, carried inside ExperimentConfig.
//
// All off by default: a default-configured run builds no Recorder at all
// and every emit site reduces to a null-pointer compare.
#pragma once

#include <cstdint>

#include "obs/event.h"

namespace lw::obs {

struct Options {
  /// Record a JSONL event trace into RunResult::trace_jsonl.
  bool trace = false;
  /// Layers included in the trace (metrics/profiling always see all).
  std::uint32_t trace_layers = kAllLayers;
  /// Count events into a MetricsRegistry snapshot (RunResult::registry).
  bool counters = false;
  /// Profile the run (RunResult::profile): per-layer wall time and event
  /// counts, events/second, simulator queue high-water mark.
  bool profile = false;
  /// Sample a deterministic sim-time telemetry series
  /// (RunResult::series): per-bucket layer event rates, queue depth and
  /// high-water, memory gauges. Implies counters (the sampler reads the
  /// registry's latency histogram per bucket).
  bool series = false;
  /// Series bucket width in simulated seconds.
  double series_bucket = 1.0;
  /// Live progress view on stderr while the run executes (wall-clock
  /// throttled; display only — never affects results).
  bool watch = false;
  /// Fold monitor/attack events into labeled detection incidents
  /// (RunResult::incidents / RunResult::forensics): per accused node the
  /// accusing guards, suspicion kinds, MalC/alert timeline, detection
  /// latency, and a true/false-positive label cross-checked against
  /// attack-layer ground truth.
  bool forensics = false;
  /// Fold nbr/route/mon/atk events into typed protocol-transaction spans
  /// (RunResult::spans): route-discovery sessions, alibi windows, alert
  /// rounds with the observe/corroborate/isolate latency decomposition,
  /// tunnel sessions, join handshakes. When trace is also on, span
  /// begin/end lines are appended to the JSONL trace.
  bool spans = false;

  bool any() const {
    return trace || counters || profile || series || forensics || spans;
  }
};

}  // namespace lw::obs
