// Run profiling: where a simulation run spends its wall time.
//
// A RunProfiler is an EventSink (per-layer event counts come from the
// stream for free) plus a scoped-timer facility giving per-layer SELF wall
// time: ScopedTimer instances nest, and a child's elapsed time is
// subtracted from its parent's attribution, so layer times sum to roughly
// the instrumented total instead of double-counting (a routing handler
// that triggers a PHY transmit attributes the radio work to PHY, not to
// routing).
//
// Timing fields are wall-clock and therefore nondeterministic; everything
// else in a ProfileReport (event counts, max queue depth) is deterministic
// for a given seed. The sweep JSON keeps the two groups segregated so
// determinism diffs stay clean.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/recorder.h"

namespace lw::obs {

struct LayerProfile {
  std::uint64_t events = 0;     // events emitted by this layer
  double self_seconds = 0.0;    // wall time inside this layer's handlers
};

/// One run's profile, assembled by scenario::Network after the run.
struct ProfileReport {
  bool enabled = false;
  double wall_seconds = 0.0;          // whole-run wall time
  std::uint64_t events_executed = 0;  // simulator events run
  std::size_t max_queue_depth = 0;    // simulator queue high-water mark
  double virtual_seconds = 0.0;       // simulated duration
  std::array<LayerProfile, kLayerCount> layers{};

  double events_per_virtual_second() const {
    return virtual_seconds > 0.0
               ? static_cast<double>(events_executed) / virtual_seconds
               : 0.0;
  }
  double events_per_wall_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(events_executed) / wall_seconds
               : 0.0;
  }
};

/// Sum of a sweep point's replica profiles (wall times add, queue depth
/// takes the max).
struct ProfileTotals {
  bool enabled = false;
  int runs = 0;
  double wall_seconds = 0.0;
  std::uint64_t events_executed = 0;
  std::size_t max_queue_depth = 0;
  double virtual_seconds = 0.0;
  std::array<LayerProfile, kLayerCount> layers{};

  void accumulate(const ProfileReport& report);
};

class ScopedTimer;

class RunProfiler final : public EventSink {
 public:
  void on_event(const Event& event) override {
    ++layers_[static_cast<std::size_t>(layer_of(event.kind))].events;
  }

  const std::array<LayerProfile, kLayerCount>& layers() const {
    return layers_;
  }

 private:
  friend class ScopedTimer;
  void add_self_time(Layer layer, double seconds) {
    layers_[static_cast<std::size_t>(layer)].self_seconds += seconds;
  }

  std::array<LayerProfile, kLayerCount> layers_{};
  ScopedTimer* current_ = nullptr;  // innermost open timer (nesting chain)
};

/// RAII layer timer. No-op when constructed with a null profiler, so emit
/// sites can write `ScopedTimer timer(rec ? rec->profiler() : nullptr, L)`
/// unconditionally.
class ScopedTimer {
 public:
  ScopedTimer(RunProfiler* profiler, Layer layer)
      : profiler_(profiler), layer_(layer) {
    if (profiler_ == nullptr) return;
    parent_ = profiler_->current_;
    profiler_->current_ = this;
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (profiler_ == nullptr) return;
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    profiler_->add_self_time(layer_, elapsed - child_seconds_);
    profiler_->current_ = parent_;
    if (parent_ != nullptr) parent_->child_seconds_ += elapsed;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  RunProfiler* profiler_;
  Layer layer_;
  ScopedTimer* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  double child_seconds_ = 0.0;
};

}  // namespace lw::obs
