#include "obs/profiler.h"

#include <algorithm>

namespace lw::obs {

void ProfileTotals::accumulate(const ProfileReport& report) {
  if (!report.enabled) return;
  enabled = true;
  ++runs;
  wall_seconds += report.wall_seconds;
  events_executed += report.events_executed;
  max_queue_depth = std::max(max_queue_depth, report.max_queue_depth);
  virtual_seconds += report.virtual_seconds;
  for (std::size_t i = 0; i < kLayerCount; ++i) {
    layers[i].events += report.layers[i].events;
    layers[i].self_seconds += report.layers[i].self_seconds;
  }
}

}  // namespace lw::obs
