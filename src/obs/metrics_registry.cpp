#include "obs/metrics_registry.h"

#include <algorithm>

namespace lw::obs {

Histogram::Histogram(std::uint64_t seed, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      // splitmix64 state offset so seed 0 still produces a usable stream.
      rng_state_(seed + 0x9E3779B97F4A7C15ull) {}

std::uint64_t Histogram::next_random() {
  // splitmix64: tiny, deterministic, and statistically fine for
  // reservoir-slot selection.
  std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void Histogram::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  sum_ += sample;
  ++count_;
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    return;
  }
  // Algorithm R: the new sample replaces a random slot with probability
  // capacity / count, keeping the reservoir a uniform subsample.
  const std::uint64_t slot = next_random() % count_;
  if (slot < capacity_) samples_[static_cast<std::size_t>(slot)] = sample;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  if (count_ == 0) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.count = count_;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(count_);
  const auto percentile = [&sorted](double p) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto index = static_cast<std::size_t>(rank);
    if (index + 1 >= sorted.size()) return sorted.back();
    const double frac = rank - static_cast<double>(index);
    return sorted[index] * (1.0 - frac) + sorted[index + 1] * frac;
  };
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  return s;
}

void RegistrySnapshot::add_counters(const RegistrySnapshot& other) {
  for (const auto& [name, count] : other.counters) counters[name] += count;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  snap.counters = counters_;
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist.summary());
  }
  return snap;
}

void RegistrySink::on_event(const Event& event) {
  ++by_kind_[static_cast<std::size_t>(event.kind)];
  if (event.kind == EventKind::kRouteDeliver) {
    deliver_latency_.add(event.value);
  } else if (event.kind == EventKind::kMacBackoff) {
    backoff_delay_.add(event.value);
  }
}

RegistrySnapshot RegistrySink::snapshot() const {
  RegistrySnapshot snap;
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (by_kind_[i] == 0) continue;
    const EventKind kind = static_cast<EventKind>(i);
    std::string name = to_string(layer_of(kind));
    name += '.';
    name += to_string(kind);
    snap.counters.emplace(std::move(name), by_kind_[i]);
  }
  if (deliver_latency_.count() > 0) {
    snap.histograms.emplace("route.deliver_latency",
                            deliver_latency_.summary());
  }
  if (backoff_delay_.count() > 0) {
    snap.histograms.emplace("mac.backoff_delay", backoff_delay_.summary());
  }
  return snap;
}

}  // namespace lw::obs
