#include "obs/metrics_registry.h"

#include <algorithm>

namespace lw::obs {

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  const auto percentile = [&sorted](double p) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto index = static_cast<std::size_t>(rank);
    if (index + 1 >= sorted.size()) return sorted.back();
    const double frac = rank - static_cast<double>(index);
    return sorted[index] * (1.0 - frac) + sorted[index + 1] * frac;
  };
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  return s;
}

void RegistrySnapshot::add_counters(const RegistrySnapshot& other) {
  for (const auto& [name, count] : other.counters) counters[name] += count;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  snap.counters = counters_;
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist.summary());
  }
  return snap;
}

void RegistrySink::on_event(const Event& event) {
  ++by_kind_[static_cast<std::size_t>(event.kind)];
  if (event.kind == EventKind::kRouteDeliver) {
    deliver_latency_.add(event.value);
  } else if (event.kind == EventKind::kMacBackoff) {
    backoff_delay_.add(event.value);
  }
}

RegistrySnapshot RegistrySink::snapshot() const {
  RegistrySnapshot snap;
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (by_kind_[i] == 0) continue;
    const EventKind kind = static_cast<EventKind>(i);
    std::string name = to_string(layer_of(kind));
    name += '.';
    name += to_string(kind);
    snap.counters.emplace(std::move(name), by_kind_[i]);
  }
  if (deliver_latency_.count() > 0) {
    snap.histograms.emplace("route.deliver_latency",
                            deliver_latency_.summary());
  }
  if (backoff_delay_.count() > 0) {
    snap.histograms.emplace("mac.backoff_delay", backoff_delay_.summary());
  }
  return snap;
}

}  // namespace lw::obs
