// JSONL event trace: the machine-readable replacement for an ns-2 trace
// file.
//
// One JSON object per line, schema documented in docs/TRACE_FORMAT.md.
// All formatting is locale-independent fixed printf
// formatting, and events arrive in deterministic simulator order, so the
// trace of a fixed-seed run is byte-identical across repeated runs and
// across sweep thread counts (enforced by the golden-trace test).
#pragma once

#include <ostream>

#include "obs/recorder.h"

namespace lw::obs {

class TraceWriter final : public EventSink {
 public:
  /// The stream must outlive the writer.
  explicit TraceWriter(std::ostream& out) : out_(out) {}

  void on_event(const Event& event) override;

 private:
  std::ostream& out_;
};

}  // namespace lw::obs
