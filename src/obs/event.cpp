#include "obs/event.h"

#include <sstream>
#include <stdexcept>

namespace lw::obs {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kPhy:
      return "phy";
    case Layer::kMac:
      return "mac";
    case Layer::kNeighbor:
      return "nbr";
    case Layer::kRouting:
      return "route";
    case Layer::kMonitor:
      return "mon";
    case Layer::kAttack:
      return "atk";
    case Layer::kFault:
      return "flt";
  }
  return "?";
}

std::uint32_t parse_layer_mask(const std::string& spec) {
  if (spec.empty() || spec == "all") return kAllLayers;
  std::uint32_t mask = 0;
  std::istringstream in(spec);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (name.empty()) continue;
    bool found = false;
    for (std::size_t i = 0; i < kLayerCount; ++i) {
      const Layer layer = static_cast<Layer>(i);
      if (name == to_string(layer)) {
        mask |= layer_bit(layer);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument(
          "unknown trace layer '" + name +
          "' (expected phy, mac, nbr, route, mon, atk, flt, or all)");
    }
  }
  return mask;
}

const char* to_string(DefenseTag tag) {
  switch (tag) {
    case DefenseTag::kLiteworp:
      return "liteworp";
    case DefenseTag::kLeash:
      return "leash";
    case DefenseTag::kZScore:
      return "zscore";
    case DefenseTag::kNone:
      return "none";
  }
  return "?";
}

bool parse_defense_tag(const std::string& name, DefenseTag* out) {
  constexpr DefenseTag kTags[] = {DefenseTag::kLiteworp, DefenseTag::kLeash,
                                  DefenseTag::kZScore, DefenseTag::kNone};
  for (DefenseTag tag : kTags) {
    if (name == to_string(tag)) {
      if (out != nullptr) *out = tag;
      return true;
    }
  }
  return false;
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPhyTx:
      return "tx";
    case EventKind::kPhyRx:
      return "rx";
    case EventKind::kPhyCollision:
      return "collision";
    case EventKind::kPhyLoss:
      return "loss";
    case EventKind::kMacBackoff:
      return "backoff";
    case EventKind::kMacBusyDrop:
      return "busy_drop";
    case EventKind::kMacOverhear:
      return "overhear";
    case EventKind::kNbrHello:
      return "hello";
    case EventKind::kNbrReply:
      return "reply";
    case EventKind::kNbrList:
      return "list";
    case EventKind::kNbrAdmit:
      return "admit";
    case EventKind::kNbrReject:
      return "reject";
    case EventKind::kNbrJoinStart:
      return "join_start";
    case EventKind::kNbrJoinComplete:
      return "join_complete";
    case EventKind::kRouteDiscovery:
      return "discovery";
    case EventKind::kRouteEstablished:
      return "established";
    case EventKind::kRouteForward:
      return "forward";
    case EventKind::kRouteDeliver:
      return "deliver";
    case EventKind::kRouteDrop:
      return "drop";
    case EventKind::kRouteError:
      return "error";
    case EventKind::kMonWatchAdd:
      return "watch_add";
    case EventKind::kMonWatchClear:
      return "watch_clear";
    case EventKind::kMonWatchExpire:
      return "watch_expire";
    case EventKind::kMonSuspicion:
      return "suspicion";
    case EventKind::kMonDetection:
      return "detection";
    case EventKind::kMonAlert:
      return "alert";
    case EventKind::kMonIsolation:
      return "isolation";
    case EventKind::kAtkTunnel:
      return "tunnel";
    case EventKind::kAtkReplay:
      return "replay";
    case EventKind::kAtkDrop:
      return "drop";
    case EventKind::kAtkSpawn:
      return "spawn";
    case EventKind::kFltCrash:
      return "crash";
    case EventKind::kFltRecover:
      return "recover";
    case EventKind::kFltLinkDown:
      return "link_down";
    case EventKind::kFltLinkUp:
      return "link_up";
    case EventKind::kFltFrame:
      return "frame";
    case EventKind::kFltCorrupt:
      return "corrupt";
  }
  return "?";
}

Layer layer_of(EventKind kind) {
  switch (kind) {
    case EventKind::kPhyTx:
    case EventKind::kPhyRx:
    case EventKind::kPhyCollision:
    case EventKind::kPhyLoss:
      return Layer::kPhy;
    case EventKind::kMacBackoff:
    case EventKind::kMacBusyDrop:
    case EventKind::kMacOverhear:
      return Layer::kMac;
    case EventKind::kNbrHello:
    case EventKind::kNbrReply:
    case EventKind::kNbrList:
    case EventKind::kNbrAdmit:
    case EventKind::kNbrReject:
    case EventKind::kNbrJoinStart:
    case EventKind::kNbrJoinComplete:
      return Layer::kNeighbor;
    case EventKind::kRouteDiscovery:
    case EventKind::kRouteEstablished:
    case EventKind::kRouteForward:
    case EventKind::kRouteDeliver:
    case EventKind::kRouteDrop:
    case EventKind::kRouteError:
      return Layer::kRouting;
    case EventKind::kMonWatchAdd:
    case EventKind::kMonWatchClear:
    case EventKind::kMonWatchExpire:
    case EventKind::kMonSuspicion:
    case EventKind::kMonDetection:
    case EventKind::kMonAlert:
    case EventKind::kMonIsolation:
      return Layer::kMonitor;
    case EventKind::kAtkTunnel:
    case EventKind::kAtkReplay:
    case EventKind::kAtkDrop:
    case EventKind::kAtkSpawn:
      return Layer::kAttack;
    case EventKind::kFltCrash:
    case EventKind::kFltRecover:
    case EventKind::kFltLinkDown:
    case EventKind::kFltLinkUp:
    case EventKind::kFltFrame:
    case EventKind::kFltCorrupt:
      return Layer::kFault;
  }
  return Layer::kPhy;
}

bool parse_event_kind(const std::string& layer, const std::string& event,
                      EventKind* out) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const EventKind kind = static_cast<EventKind>(i);
    if (event == to_string(kind) && layer == to_string(layer_of(kind))) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace lw::obs
