#include "obs/timeseries.h"

#include <sstream>

namespace lw::obs {
namespace {

/// Matches the sweep JSON emitter: round-trippable doubles, no locale.
void append_double(std::ostringstream& out, double value) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << value;
  out << tmp.str();
}

void append_gauges(std::ostringstream& out, const MemoryGauges& gauges) {
  out << "{\"slab_slots\":" << gauges.slab_slots
      << ",\"watch_entries\":" << gauges.watch_entries
      << ",\"neighbor_bytes\":" << gauges.neighbor_bytes
      << ",\"defense_storage_bytes\":" << gauges.defense_storage_bytes << "}";
}

}  // namespace

TelemetrySampler::TelemetrySampler(Duration bucket_seconds)
    : bucket_seconds_(bucket_seconds) {}

void TelemetrySampler::on_event(const Event& event) {
  ++open_layer_events_[static_cast<std::size_t>(layer_of(event.kind))];
  ++open_events_emitted_;
}

SeriesBucket TelemetrySampler::make_bucket(Time start,
                                           const BucketSample& sample) const {
  SeriesBucket bucket;
  bucket.start = start;
  bucket.layer_events = open_layer_events_;
  bucket.events_emitted = open_events_emitted_;
  bucket.events_executed = sample.events_executed - prev_events_executed_;
  if (registry_ != nullptr) {
    const HistogramSnapshot lat = registry_->deliver_latency().snapshot();
    bucket.deliveries = lat.count - prev_deliveries_;
    bucket.delivery_latency_sum = lat.sum - prev_delivery_latency_sum_;
  }
  bucket.queue_depth = sample.queue_depth;
  bucket.queue_high_water = sample.queue_high_water;
  bucket.memory = sample.memory;
  if (profiler_ != nullptr) {
    const auto& layers = profiler_->layers();
    for (std::size_t i = 0; i < kLayerCount; ++i) {
      bucket.layer_self_seconds[i] =
          layers[i].self_seconds - prev_self_seconds_[i];
    }
  }
  return bucket;
}

bool TelemetrySampler::open_bucket_active(const BucketSample& sample) const {
  return open_events_emitted_ > 0 ||
         sample.events_executed > prev_events_executed_;
}

void TelemetrySampler::close_bucket(Time boundary, const BucketSample& sample) {
  closed_.push_back(make_bucket(open_start_, sample));
  open_start_ = boundary;
  open_layer_events_ = {};
  open_events_emitted_ = 0;
  prev_events_executed_ = sample.events_executed;
  if (registry_ != nullptr) {
    const HistogramSnapshot lat = registry_->deliver_latency().snapshot();
    prev_deliveries_ = lat.count;
    prev_delivery_latency_sum_ = lat.sum;
  }
  if (profiler_ != nullptr) {
    const auto& layers = profiler_->layers();
    for (std::size_t i = 0; i < kLayerCount; ++i) {
      prev_self_seconds_[i] = layers[i].self_seconds;
    }
  }
}

SeriesReport TelemetrySampler::report(const BucketSample& final_sample) const {
  SeriesReport report;
  report.enabled = true;
  report.bucket_seconds = bucket_seconds_;
  report.buckets = closed_;
  // Tail activity after the last boundary becomes a trailing partial
  // bucket; a quiet tail (e.g. duration an exact multiple of the bucket)
  // adds nothing, keeping the series free of an all-zero sentinel row.
  if (open_bucket_active(final_sample)) {
    report.buckets.push_back(make_bucket(open_start_, final_sample));
  }
  for (const SeriesBucket& bucket : report.buckets) {
    if (bucket.queue_high_water > report.queue_high_water) {
      report.queue_high_water = bucket.queue_high_water;
    }
    report.memory_high_water.max_with(bucket.memory);
  }
  return report;
}

std::string series_to_json(const SeriesReport& report, bool include_timing) {
  std::ostringstream out;
  out << "{\"bucket_seconds\":";
  append_double(out, report.bucket_seconds);
  out << ",\"queue_high_water\":" << report.queue_high_water
      << ",\"memory_high_water\":";
  append_gauges(out, report.memory_high_water);
  out << ",\"buckets\":[";
  bool first_bucket = true;
  for (const SeriesBucket& bucket : report.buckets) {
    if (!first_bucket) out << ",";
    first_bucket = false;
    out << "{\"start\":";
    append_double(out, bucket.start);
    out << ",\"events_emitted\":" << bucket.events_emitted
        << ",\"events_executed\":" << bucket.events_executed
        << ",\"layers\":{";
    bool first_layer = true;
    for (std::size_t i = 0; i < kLayerCount; ++i) {
      if (bucket.layer_events[i] == 0) continue;
      if (!first_layer) out << ",";
      first_layer = false;
      out << "\"" << to_string(static_cast<Layer>(i))
          << "\":" << bucket.layer_events[i];
    }
    out << "},\"deliveries\":" << bucket.deliveries
        << ",\"delivery_latency_sum\":";
    append_double(out, bucket.delivery_latency_sum);
    out << ",\"queue_depth\":" << bucket.queue_depth
        << ",\"queue_high_water\":" << bucket.queue_high_water
        << ",\"memory\":";
    append_gauges(out, bucket.memory);
    if (include_timing) {
      out << ",\"self_seconds\":{";
      bool first_timed = true;
      for (std::size_t i = 0; i < kLayerCount; ++i) {
        if (bucket.layer_self_seconds[i] == 0.0) continue;
        if (!first_timed) out << ",";
        first_timed = false;
        out << "\"" << to_string(static_cast<Layer>(i)) << "\":";
        append_double(out, bucket.layer_self_seconds[i]);
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace lw::obs
