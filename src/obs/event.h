// Typed protocol events: the vocabulary of the observability layer.
//
// Every layer of the stack (PHY, MAC, neighbor discovery, routing, the
// LITEWORP monitor, and the attack agents) emits Events into a Recorder.
// An Event is a flat, cheap-to-construct record; the optional packet
// pointer is valid ONLY for the duration of the synchronous sink dispatch
// (sinks must copy what they need, never retain the pointer).
#pragma once

#include <cstdint>
#include <string>

#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::pkt {
struct Packet;
}

namespace lw::obs {

/// The stack layer an event originates from. Doubles as the unit of
/// trace filtering and per-layer profiling.
enum class Layer : std::uint8_t {
  kPhy = 0,
  kMac = 1,
  kNeighbor = 2,
  kRouting = 3,
  kMonitor = 4,
  kAttack = 5,
  kFault = 6,
};
inline constexpr std::size_t kLayerCount = 7;

constexpr std::uint32_t layer_bit(Layer layer) {
  return 1u << static_cast<std::uint32_t>(layer);
}
inline constexpr std::uint32_t kAllLayers = (1u << kLayerCount) - 1;

/// Short stable layer name used in trace filters and metric names
/// ("phy", "mac", "nbr", "route", "mon", "atk", "flt").
const char* to_string(Layer layer);

/// Parses a comma-separated layer list ("phy,mac,mon") into a mask.
/// "all" (or an empty string) selects every layer. Throws
/// std::invalid_argument on an unknown layer name.
std::uint32_t parse_layer_mask(const std::string& spec);

/// The defense backend an event originates from. kLiteworp is 0 so that
/// default-constructed events (and every trace written before backends
/// existed) read as the default LITEWORP monitor; the trace writer omits
/// the "def" key for it, keeping clean-run traces byte-identical.
enum class DefenseTag : std::uint8_t {
  kLiteworp = 0,
  kLeash = 1,
  kZScore = 2,
  kNone = 3,
};

/// Short stable backend name used in traces and incident reports
/// ("liteworp", "leash", "zscore", "none").
const char* to_string(DefenseTag tag);

/// Reverse lookup for trace readers. Returns false on unknown names.
bool parse_defense_tag(const std::string& name, DefenseTag* out);

enum class EventKind : std::uint8_t {
  // ---- PHY (medium) ----
  kPhyTx = 0,        // frame put on the air        peer: -      value: airtime
  kPhyRx,            // frame decoded by a receiver peer: receiver
  kPhyCollision,     // reception lost to overlap   peer: receiver
  kPhyLoss,          // reception lost to channel   peer: receiver

  // ---- MAC ----
  kMacBackoff,       // carrier busy, backoff armed value: delay [s]
  kMacBusyDrop,      // frame dropped, retries out
  kMacOverhear,      // decoded frame not addressed to us  peer: claimed tx

  // ---- Neighbor discovery / admission ----
  kNbrHello,         // HELLO broadcast
  kNbrReply,         // authenticated HELLO reply   peer: announcer
  kNbrList,          // R_A list broadcast          value: list size
  kNbrAdmit,         // frame passed admission      peer: claimed tx
  kNbrReject,        // frame failed admission      peer: claimed tx
  kNbrJoinStart,     // dynamic-join handshake started (joiner side)
  kNbrJoinComplete,  // first neighbor authenticated  peer: challenger

  // ---- Routing ----
  kRouteDiscovery,   // REQ flood started           peer: destination
  kRouteEstablished, // usable route cached         peer: destination value: hops
  kRouteForward,     // DATA handed toward next hop peer: next hop
                     //   (emitted at the origin AND at every forwarder)
  kRouteDeliver,     // DATA reached destination    value: e2e latency [s]
  kRouteDrop,        // DATA dropped (no route)
  kRouteError,       // RERR originated             peer: broken node

  // ---- LITEWORP monitor ----
  kMonWatchAdd,      // drop watch armed            peer: obligated forwarder
  kMonWatchClear,    // watched forward overheard   peer: obligated forwarder
  kMonWatchExpire,   // watch expired -> drop       peer: obligated forwarder
  kMonSuspicion,     // MalC incremented            peer: suspect  value: MalC
  kMonDetection,     // MalC crossed C_t            peer: suspect
  kMonAlert,         // alert transmitted           peer: accused
  kMonIsolation,     // gamma alerts -> isolated    peer: accused  value: alerts

  // ---- Attack (ground truth) ----
  kAtkTunnel,        // frame entered the tunnel    peer: colluder
  kAtkReplay,        // tunneled frame replayed
  kAtkDrop,          // data swallowed
  kAtkSpawn,         // node IS malicious (emitted once at t=0; the
                     // ground-truth anchor offline incident labeling
                     // cross-checks isolations against)

  // ---- Fault injection (ground truth; absent unless a FaultPlan runs) ----
  kFltCrash,         // node crashed               value: recovery time (<0: none)
  kFltRecover,       // node rebooted, rejoining
  kFltLinkDown,      // link outage window opened   peer: other endpoint
                     //   value: extra loss prob (1 = hard outage)
  kFltLinkUp,        // link outage window closed   peer: other endpoint
  kFltFrame,         // compromised guard sent a false alert   peer: victim
  kFltCorrupt,       // frame bytes flipped in flight          peer: receiver
};
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kFltCorrupt) + 1;

/// Short stable event name ("tx", "watch_add", ...); combined with the
/// layer it forms the metrics-registry counter name "<layer>.<event>".
const char* to_string(EventKind kind);

/// The layer an event kind belongs to.
Layer layer_of(EventKind kind);

/// Reverse lookup for trace readers: resolves ("mon", "suspicion") back to
/// EventKind::kMonSuspicion. The layer disambiguates duplicated short
/// names ("route"/"atk" both have a "drop"). Returns false on unknown
/// names.
bool parse_event_kind(const std::string& layer, const std::string& event,
                      EventKind* out);

struct Event {
  Time t = 0.0;
  EventKind kind = EventKind::kPhyTx;
  /// The acting node (transmitter, guard, forwarder, ...).
  NodeId node = kInvalidNode;
  /// The counterpart, when one exists (receiver, suspect, destination).
  NodeId peer = kInvalidNode;
  /// Kind-specific scalar (latency, backoff delay, MalC, hop count).
  double value = 0.0;
  /// Kind-specific discriminator. kMonSuspicion: 0 = fabrication, 1 = drop
  /// (the two suspicion kinds of Section 4.2), 2 = statistical anomaly
  /// (Z-score backend); 0 for every other kind.
  std::uint8_t detail = 0;
  /// The defense backend that emitted the event (DefenseTag); meaningful
  /// for mon.* events only. 0 (= kLiteworp) everywhere else.
  std::uint8_t def = 0;
  /// The packet involved, when one exists. Valid only during dispatch.
  const pkt::Packet* packet = nullptr;
  /// Causal lineage for packet-less events (route.discovery carries the
  /// REQ's lineage, mon.watch_expire the arming REP's). Never serialized
  /// by the TraceWriter — the span builder uses it to stitch parent/child
  /// causality without changing a single trace byte. 0 = no hint.
  LineageId lineage_hint = 0;
};

/// Event::detail values for kMonSuspicion.
inline constexpr std::uint8_t kSuspicionFabrication = 0;
inline constexpr std::uint8_t kSuspicionDrop = 1;
inline constexpr std::uint8_t kSuspicionAnomaly = 2;

}  // namespace lw::obs
