#include "obs/recorder.h"

namespace lw::obs {

void Recorder::add_sink(EventSink* sink, std::uint32_t layer_mask) {
  if (sink == nullptr || layer_mask == 0) return;
  sinks_.push_back({sink, layer_mask});
  active_mask_ |= layer_mask;
}

void Recorder::emit(const Event& event) {
  const std::uint32_t bit = layer_bit(layer_of(event.kind));
  for (const Subscription& sub : sinks_) {
    if (sub.mask & bit) sub.sink->on_event(event);
  }
}

}  // namespace lw::obs
