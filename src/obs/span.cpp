#include "obs/span.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "packet/packet.h"

namespace lw::obs {
namespace {

/// Matches the sweep JSON emitter: round-trippable doubles, no locale.
void append_double(std::ostringstream& out, double value) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << value;
  out << tmp.str();
}

void append_summary(std::ostringstream& out, const HistogramSummary& s) {
  out << "{\"count\":" << s.count << ",\"min\":";
  append_double(out, s.min);
  out << ",\"max\":";
  append_double(out, s.max);
  out << ",\"mean\":";
  append_double(out, s.mean);
  out << ",\"p50\":";
  append_double(out, s.p50);
  out << ",\"p95\":";
  append_double(out, s.p95);
  out << "}";
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRouteSession:
      return "route_session";
    case SpanKind::kAlertRound:
      return "alert_round";
    case SpanKind::kAlibiWindow:
      return "alibi_window";
    case SpanKind::kTunnelSession:
      return "tunnel_session";
    case SpanKind::kJoinHandshake:
      return "join_handshake";
  }
  return "?";
}

bool parse_span_kind(const std::string& name, SpanKind* out) {
  for (std::size_t i = 0; i < kSpanKindCount; ++i) {
    const SpanKind kind = static_cast<SpanKind>(i);
    if (name == to_string(kind)) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

HistogramSummary summarize_samples(const std::vector<double>& samples) {
  HistogramSummary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(sorted.size());
  const auto percentile = [&sorted](double p) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto index = static_cast<std::size_t>(rank);
    if (index + 1 >= sorted.size()) return sorted.back();
    const double frac = rank - static_cast<double>(index);
    return sorted[index] * (1.0 - frac) + sorted[index + 1] * frac;
  };
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  return s;
}

SpanBuilder::SpanBuilder(std::ostream* trace_out) : trace_out_(trace_out) {
  report_.enabled = true;
}

std::uint32_t SpanBuilder::open_span(SpanKind kind, const Event& event,
                                     NodeId node, NodeId peer,
                                     std::uint64_t lineage,
                                     std::uint32_t parent) {
  OpenSpan span;
  span.kind = kind;
  span.sid = next_sid_++;
  span.begin = event.t;
  span.node = node;
  span.peer = peer;
  span.lineage = lineage;
  span.parent = parent;
  if (parent != 0) {
    auto it = open_.find(parent);
    if (it != open_.end()) {
      ++it->second.open_children;
    } else {
      span.parent = 0;  // parent already gone; orphaned child is a root
    }
  }
  ++report_.kinds[static_cast<std::size_t>(kind)].opened;
  emit_begin(span);
  const std::uint32_t sid = span.sid;
  open_.emplace(sid, span);
  return sid;
}

void SpanBuilder::request_close(std::uint32_t sid, Time t,
                                const char* outcome) {
  auto it = open_.find(sid);
  if (it == open_.end()) return;
  if (it->second.open_children > 0) {
    // Enclosure guarantee: the parent interval must cover every child, so
    // the span.end waits for the last open child.
    it->second.end_pending = true;
    it->second.pending_outcome = outcome;
    return;
  }
  finish(sid, t, outcome, /*terminal=*/true);
}

void SpanBuilder::finish(std::uint32_t sid, Time t, const char* outcome,
                         bool terminal) {
  auto it = open_.find(sid);
  if (it == open_.end()) return;
  const OpenSpan span = it->second;
  open_.erase(it);
  const double dur = t - span.begin;
  emit_end(span, t, dur, outcome);
  SpanKindStats& stats = report_.kinds[static_cast<std::size_t>(span.kind)];
  if (terminal) {
    ++stats.closed;
    stats.duration_sum += dur;
    stats.durations.push_back(dur);
  }
  if (span.parent != 0) {
    auto parent = open_.find(span.parent);
    if (parent != open_.end() && parent->second.open_children > 0) {
      --parent->second.open_children;
      if (parent->second.open_children == 0 && parent->second.end_pending) {
        finish(span.parent, t, parent->second.pending_outcome,
               /*terminal=*/true);
      }
    }
  }
}

void SpanBuilder::emit_begin(const OpenSpan& span) {
  if (trace_out_ == nullptr) return;
  char buffer[256];
  int n = std::snprintf(
      buffer, sizeof(buffer),
      "{\"t\":%.9f,\"layer\":\"span\",\"event\":\"begin\",\"span\":\"%s\","
      "\"sid\":%" PRIu32 ",\"node\":%" PRIu32,
      span.begin, to_string(span.kind), span.sid,
      static_cast<std::uint32_t>(span.node));
  trace_out_->write(buffer, n);
  if (span.peer != kInvalidNode) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"peer\":%" PRIu32,
                      static_cast<std::uint32_t>(span.peer));
    trace_out_->write(buffer, n);
  }
  if (span.parent != 0) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"parent\":%" PRIu32,
                      span.parent);
    trace_out_->write(buffer, n);
  }
  if (span.lineage != 0) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"lin\":%" PRIu64,
                      static_cast<std::uint64_t>(span.lineage));
    trace_out_->write(buffer, n);
  }
  trace_out_->write("}\n", 2);
}

void SpanBuilder::emit_end(const OpenSpan& span, Time t, double dur,
                           const char* outcome) {
  if (trace_out_ == nullptr) return;
  char buffer[320];
  int n = std::snprintf(
      buffer, sizeof(buffer),
      "{\"t\":%.9f,\"layer\":\"span\",\"event\":\"end\",\"span\":\"%s\","
      "\"sid\":%" PRIu32 ",\"node\":%" PRIu32,
      t, to_string(span.kind), span.sid,
      static_cast<std::uint32_t>(span.node));
  trace_out_->write(buffer, n);
  if (span.peer != kInvalidNode) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"peer\":%" PRIu32,
                      static_cast<std::uint32_t>(span.peer));
    trace_out_->write(buffer, n);
  }
  n = std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.9f,\"outcome\":\"%s\"",
                    dur, outcome);
  trace_out_->write(buffer, n);
  if (span.retries > 0) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"retries\":%" PRIu32,
                      span.retries);
    trace_out_->write(buffer, n);
  }
  if (span.ph_observe >= 0.0 && span.ph_corroborate >= 0.0 &&
      span.ph_isolate >= 0.0) {
    n = std::snprintf(buffer, sizeof(buffer),
                      ",\"observe\":%.9f,\"corroborate\":%.9f,"
                      "\"isolate\":%.9f",
                      span.ph_observe, span.ph_corroborate, span.ph_isolate);
    trace_out_->write(buffer, n);
  }
  trace_out_->write("}\n", 2);
}

std::uint32_t SpanBuilder::ensure_alert_round(const Event& event,
                                              NodeId accused) {
  auto it = alert_open_.find(accused);
  if (it != alert_open_.end()) return it->second;
  if (alert_closed_.count(accused) != 0) return 0;
  // Parent: the accused's wormhole operating window, when one is open
  // (it begins at the first tunneled frame, which precedes any evidence
  // a guard could gather about it).
  std::uint32_t parent = 0;
  auto tunnel = tunnel_open_.find(accused);
  if (tunnel != tunnel_open_.end()) parent = tunnel->second;
  const std::uint32_t sid = open_span(SpanKind::kAlertRound, event,
                                      /*node=*/accused, /*peer=*/event.node,
                                      /*lineage=*/0, parent);
  alert_open_.emplace(accused, sid);
  return sid;
}

void SpanBuilder::on_event(const Event& event) {
  if (flushed_) return;
  switch (event.kind) {
    case EventKind::kRouteDiscovery: {
      const auto key = std::make_pair(event.node, event.peer);
      auto it = route_open_.find(key);
      if (it != route_open_.end()) {
        // Retry flood for an already-open discovery session.
        auto span = open_.find(it->second);
        if (span != open_.end()) ++span->second.retries;
        break;
      }
      const std::uint32_t sid =
          open_span(SpanKind::kRouteSession, event, event.node, event.peer,
                    event.lineage_hint, /*parent=*/0);
      route_open_.emplace(key, sid);
      break;
    }
    case EventKind::kRouteEstablished: {
      auto it = route_open_.find(std::make_pair(event.node, event.peer));
      if (it == route_open_.end()) break;
      const std::uint32_t sid = it->second;
      route_open_.erase(it);
      request_close(sid, event.t, "established");
      break;
    }
    case EventKind::kMonWatchAdd: {
      if (event.packet == nullptr) break;
      const auto key = std::make_tuple(event.node, event.peer,
                                       static_cast<std::uint64_t>(
                                           event.packet->lineage));
      if (alibi_open_.count(key) != 0) break;
      // Parent: the discovery session this REP answers. The REP carries
      // the full source route origin..destination.
      std::uint32_t parent = 0;
      if (!event.packet->route.empty()) {
        auto session = route_open_.find(std::make_pair(
            event.packet->route.front(), event.packet->route.back()));
        if (session != route_open_.end()) parent = session->second;
      }
      const std::uint32_t sid =
          open_span(SpanKind::kAlibiWindow, event, event.node, event.peer,
                    event.packet->lineage, parent);
      alibi_open_.emplace(key, sid);
      break;
    }
    case EventKind::kMonWatchClear:
    case EventKind::kMonWatchExpire: {
      // A cleared watch carries the overheard forward (which inherits the
      // arming REP's lineage verbatim); an expired watch has no packet, so
      // the emit site captures the lineage into the hint field.
      const std::uint64_t lineage =
          event.packet != nullptr
              ? static_cast<std::uint64_t>(event.packet->lineage)
              : static_cast<std::uint64_t>(event.lineage_hint);
      auto it = alibi_open_.find(std::make_tuple(event.node, event.peer,
                                                 lineage));
      if (it == alibi_open_.end()) break;
      const std::uint32_t sid = it->second;
      alibi_open_.erase(it);
      request_close(sid, event.t,
                    event.kind == EventKind::kMonWatchClear ? "cleared"
                                                            : "dropped");
      break;
    }
    case EventKind::kMonSuspicion:
    case EventKind::kMonDetection:
    case EventKind::kMonAlert: {
      const std::uint32_t sid = ensure_alert_round(event, event.peer);
      if (sid == 0) break;
      OpenSpan& span = open_.at(sid);
      if (event.kind == EventKind::kMonSuspicion &&
          span.first_suspicion < 0.0) {
        span.first_suspicion = event.t;
      }
      if (event.kind == EventKind::kMonDetection &&
          span.first_detection < 0.0) {
        span.first_detection = event.t;
      }
      break;
    }
    case EventKind::kMonIsolation: {
      const NodeId accused = event.peer;
      auto round = alert_open_.find(accused);
      if (round != alert_open_.end()) {
        const std::uint32_t sid = round->second;
        alert_open_.erase(round);
        alert_closed_.insert(accused);
        OpenSpan& span = open_.at(sid);
        auto act = first_act_.find(accused);
        if (act != first_act_.end()) {
          report_.detection_latencies.push_back(event.t - act->second);
          if (span.first_suspicion >= 0.0 && span.first_detection >= 0.0) {
            span.ph_observe = span.first_suspicion - act->second;
            span.ph_corroborate = span.first_detection - span.first_suspicion;
            span.ph_isolate = event.t - span.first_detection;
            report_.observe.samples.push_back(span.ph_observe);
            report_.observe.sum += span.ph_observe;
            ++report_.observe.count;
            report_.corroborate.samples.push_back(span.ph_corroborate);
            report_.corroborate.sum += span.ph_corroborate;
            ++report_.corroborate.count;
            report_.isolate.samples.push_back(span.ph_isolate);
            report_.isolate.sum += span.ph_isolate;
            ++report_.isolate.count;
          }
        }
        request_close(sid, event.t, "isolated");
      }
      auto tunnel = tunnel_open_.find(accused);
      if (tunnel != tunnel_open_.end()) {
        const std::uint32_t sid = tunnel->second;
        tunnel_open_.erase(tunnel);
        request_close(sid, event.t, "isolated");
      }
      break;
    }
    case EventKind::kAtkTunnel: {
      first_act_.emplace(event.node, event.t);
      if (tunnel_open_.count(event.node) == 0) {
        const std::uint32_t sid =
            open_span(SpanKind::kTunnelSession, event, event.node, event.peer,
                      /*lineage=*/0, /*parent=*/0);
        tunnel_open_.emplace(event.node, sid);
      }
      break;
    }
    case EventKind::kAtkReplay:
    case EventKind::kAtkDrop:
      first_act_.emplace(event.node, event.t);
      break;
    case EventKind::kNbrJoinStart: {
      auto it = join_open_.find(event.node);
      if (it != join_open_.end()) {
        auto span = open_.find(it->second);
        if (span != open_.end()) ++span->second.retries;
        break;
      }
      const std::uint32_t sid =
          open_span(SpanKind::kJoinHandshake, event, event.node,
                    kInvalidNode, /*lineage=*/0, /*parent=*/0);
      join_open_.emplace(event.node, sid);
      break;
    }
    case EventKind::kNbrJoinComplete: {
      auto it = join_open_.find(event.node);
      if (it == join_open_.end()) break;
      const std::uint32_t sid = it->second;
      join_open_.erase(it);
      open_.at(sid).peer = event.peer;  // the authenticating neighbor
      request_close(sid, event.t, "joined");
      break;
    }
    default:
      break;
  }
}

void SpanBuilder::flush(Time now) {
  if (flushed_) return;
  flushed_ = true;
  // Children always carry a larger sid than their parent (the parent must
  // be open when the child opens), so descending order closes leaves
  // first; an end-pending parent then finishes through the normal cascade
  // with its real outcome.
  std::vector<std::uint32_t> sids;
  sids.reserve(open_.size());
  for (const auto& [sid, span] : open_) sids.push_back(sid);
  for (auto it = sids.rbegin(); it != sids.rend(); ++it) {
    auto span = open_.find(*it);
    if (span == open_.end()) continue;  // closed by a child's cascade
    if (span->second.end_pending) continue;
    finish(*it, now, "open", /*terminal=*/false);
  }
  // Any survivors were end-pending parents whose children were also
  // end-pending (cannot happen today, but stay safe): force-close them.
  while (!open_.empty()) {
    const std::uint32_t sid = open_.rbegin()->first;
    finish(sid, now, open_.rbegin()->second.pending_outcome, true);
  }
  route_open_.clear();
  alibi_open_.clear();
  alert_open_.clear();
  tunnel_open_.clear();
  join_open_.clear();
}

std::string spans_to_json(const SpanReport& report) {
  std::ostringstream out;
  out << "{\"kinds\":{";
  bool first = true;
  for (std::size_t i = 0; i < kSpanKindCount; ++i) {
    const SpanKindStats& stats = report.kinds[i];
    if (stats.opened == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << to_string(static_cast<SpanKind>(i))
        << "\":{\"opened\":" << stats.opened << ",\"closed\":" << stats.closed
        << ",\"duration\":";
    append_summary(out, summarize_samples(stats.durations));
    out << "}";
  }
  out << "}";
  if (report.observe.count > 0) {
    const auto phase = [&out](const char* name, const PhaseStats& stats) {
      out << "\"" << name << "\":{\"sum\":";
      append_double(out, stats.sum);
      out << ",\"summary\":";
      append_summary(out, summarize_samples(stats.samples));
      out << "}";
    };
    out << ",\"phases\":{";
    phase("observe", report.observe);
    out << ",";
    phase("corroborate", report.corroborate);
    out << ",";
    phase("isolate", report.isolate);
    out << "}";
  }
  if (!report.detection_latencies.empty()) {
    out << ",\"detection_latency\":";
    append_summary(out, summarize_samples(report.detection_latencies));
  }
  out << "}";
  return out.str();
}

}  // namespace lw::obs
