#include "obs/trace_writer.h"

#include <cinttypes>
#include <cstdio>

#include "packet/packet.h"

namespace lw::obs {

void TraceWriter::on_event(const Event& event) {
  // printf-family formatting: byte-deterministic and locale-independent,
  // unlike ostream floats.
  char buffer[256];
  int n = std::snprintf(buffer, sizeof(buffer),
                        "{\"t\":%.9f,\"layer\":\"%s\",\"event\":\"%s\","
                        "\"node\":%" PRIu32,
                        event.t, to_string(layer_of(event.kind)),
                        to_string(event.kind),
                        static_cast<std::uint32_t>(event.node));
  out_.write(buffer, n);
  if (event.peer != kInvalidNode) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"peer\":%" PRIu32,
                      static_cast<std::uint32_t>(event.peer));
    out_.write(buffer, n);
  }
  if (event.packet != nullptr) {
    n = std::snprintf(buffer, sizeof(buffer),
                      ",\"pkt\":\"%s\",\"origin\":%" PRIu32 ",\"seq\":%" PRIu64
                      ",\"lin\":%" PRIu64,
                      pkt::to_string(event.packet->type),
                      static_cast<std::uint32_t>(event.packet->origin),
                      static_cast<std::uint64_t>(event.packet->seq),
                      static_cast<std::uint64_t>(event.packet->lineage));
    out_.write(buffer, n);
  }
  if (event.kind == EventKind::kMonSuspicion) {
    const char* sus = event.detail == kSuspicionDrop      ? "drop"
                      : event.detail == kSuspicionAnomaly ? "anom"
                                                          : "fab";
    n = std::snprintf(buffer, sizeof(buffer), ",\"sus\":\"%s\"", sus);
    out_.write(buffer, n);
  }
  if (event.def != 0) {
    // Non-default backend attribution; omitted for the default LITEWORP
    // monitor so pre-existing golden traces stay byte-identical.
    n = std::snprintf(buffer, sizeof(buffer), ",\"def\":\"%s\"",
                      to_string(static_cast<DefenseTag>(event.def)));
    out_.write(buffer, n);
  }
  if (event.value != 0.0) {
    n = std::snprintf(buffer, sizeof(buffer), ",\"value\":%.9g", event.value);
    out_.write(buffer, n);
  }
  out_.write("}\n", 2);
}

}  // namespace lw::obs
