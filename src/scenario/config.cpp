#include "scenario/config.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "topology/field.h"

namespace lw::scenario {

ExperimentConfig ExperimentConfig::table2_defaults() {
  ExperimentConfig config;
  config.node_count = 100;
  config.radio_range = 30.0;
  config.target_neighbors = 8.0;
  config.phy.bandwidth_bps = 40000.0;
  config.routing.route_timeout = 50.0;
  // Table 2 quotes lambda = 1/10 s; on our plain-CSMA 40 kbps channel that
  // sits just past the congestion cliff (collision rates ~25%, far above
  // the P_C ~= 0.05-0.13 the paper's own coverage analysis assumes).
  // 1/20 s lands the channel exactly at the analysis' operating point
  // (~10% collisions at N_B = 8) — see DESIGN.md, calibration notes.
  config.traffic.data_rate = 1.0 / 20.0;
  config.traffic.destination_change_rate = 1.0 / 200.0;
  config.attack.start_time = 50.0;
  config.malicious_count = 2;
  config.duration = 2000.0;
  config.finalize();
  return config;
}

void ExperimentConfig::finalize() {
  // Secure-discovery window: the system model promises discovery completes
  // cleanly within T_ND of deployment.
  const Duration t_nd = nbr::discovery_complete_time(discovery);
  phy.collision_free_until = oracle_discovery ? 0.0 : t_nd;
  defense.leash.range = radio_range;
  defense.leash.bandwidth_bps = phy.bandwidth_bps;
  defense.leash.propagation_speed = phy.propagation_speed;
  defense.finalize();
  if (traffic.start_time < t_nd) traffic.start_time = t_nd + 1.0;
  if (attack.start_time < traffic.start_time) {
    attack.start_time = traffic.start_time;
  }
  // The telemetry sampler reads the registry's latency histogram at every
  // bucket boundary, so a series run always counts.
  if (obs.series) obs.counters = true;
}

void ExperimentConfig::validate() const {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument("ExperimentConfig: " + what);
  };
  if (node_count == 0) reject("node_count must be positive");
  if (radio_range <= 0.0) reject("radio_range must be positive");
  if (target_neighbors <= 0.0 && !field_side && !positions) {
    reject("target_neighbors must be positive to derive the field side");
  }
  if (duration < 0.0) reject("duration must be non-negative");
  if (late_joiners > 0 && oracle_discovery) {
    reject(
        "late_joiners require the real discovery protocol "
        "(oracle_discovery = false): oracle tables would know undeployed "
        "nodes");
  }
  if (malicious_count > node_count) {
    reject(
        "malicious_count exceeds node_count (attackers are insiders of "
        "the initial deployment)");
  }
  if (!malicious_nodes.empty() &&
      malicious_nodes.size() != malicious_count) {
    reject("malicious_nodes and malicious_count disagree");
  }
  if (positions && positions->size() != node_count + late_joiners) {
    reject("explicit positions must cover node_count + late_joiners nodes");
  }
  if (traffic.data_rate < 0.0) reject("data_rate must be non-negative");
  if ((obs.series || obs.watch) && obs.series_bucket <= 0.0) {
    reject("series_bucket must be positive");
  }
  // DefenseConfig throws its own "DefenseConfig: ..." invalid_argument
  // naming the offending backend parameter.
  defense.validate();
  // FaultPlan throws its own "FaultPlan: ..." invalid_argument with the
  // offending entry spelled out.
  fault.validate(node_count + late_joiners);
}

std::string ExperimentConfig::summary() const {
  const double side =
      field_side.value_or(topo::field_side_for_density(
          node_count, radio_range, target_neighbors));
  std::ostringstream out;
  out << "nodes N             : " << node_count << '\n'
      << "tx range r          : " << radio_range << " m\n"
      << "field               : " << side << " x " << side << " m\n"
      << "target N_B          : " << target_neighbors << '\n'
      << "channel bandwidth   : " << phy.bandwidth_bps / 1000.0 << " kbps\n"
      << "data rate lambda    : " << traffic.data_rate << " pkt/s per node\n"
      << "dest change rate    : " << traffic.destination_change_rate
      << " /s per node\n"
      << "TOut_Route          : " << routing.route_timeout << " s\n"
      << "watch timeout delta : " << defense.liteworp.watch_timeout << " s\n"
      << "V_f / V_d / C_t     : " << defense.liteworp.malc_fabrication
      << " / " << defense.liteworp.malc_drop << " / "
      << defense.liteworp.malc_threshold << '\n'
      << "gamma               : " << defense.liteworp.detection_confidence
      << '\n'
      << "MalC window kappa   : " << defense.liteworp.window_packets
      << " packets\n"
      << "malicious M         : " << malicious_count << " ("
      << attack::to_string(attack.mode) << ", start "
      << attack.start_time << " s)\n"
      << "defense             : " << defense.name << '\n'
      << "duration            : " << duration << " s\n"
      << "seed                : " << seed << '\n';
  return out.str();
}

}  // namespace lw::scenario
