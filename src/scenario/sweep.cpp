#include "scenario/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace lw::scenario {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

ExperimentConfig point_config(const SweepSpec& spec, const SweepPoint& point) {
  ExperimentConfig config = spec.base;
  if (point.mutate) point.mutate(config);
  config.finalize();
  config.validate();
  return config;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec) {
  if (spec.runs <= 0) {
    throw std::invalid_argument("sweep: runs must be positive");
  }
  if (spec.points.empty()) {
    throw std::invalid_argument("sweep: at least one point required");
  }

  const auto sweep_start = Clock::now();
  const std::size_t point_count = spec.points.size();
  const std::size_t runs = static_cast<std::size_t>(spec.runs);
  const std::size_t total_jobs = point_count * runs;

  // Build every point's config up front so contradictions surface on the
  // calling thread before any worker spins up.
  std::vector<ExperimentConfig> configs;
  configs.reserve(point_count);
  for (const SweepPoint& point : spec.points) {
    configs.push_back(point_config(spec, point));
  }

  std::vector<std::vector<RunResult>> replicas(point_count,
                                               std::vector<RunResult>(runs));
  std::vector<std::vector<double>> durations(point_count,
                                             std::vector<double>(runs, 0.0));

  std::mutex mutex;  // guards `done` / `error` / the drain and progress hooks
  std::size_t done = 0;
  std::size_t skipped = 0;
  std::exception_ptr error;
  // Spec-order drain cursor: job j = p*runs + i is drained only after jobs
  // 0..j-1 have been, no matter which worker finishes when.
  std::vector<char> finished(total_jobs, 0);
  // Replicas skipped by cancellation: never handed to spec.drain.
  std::vector<char> undrainable(total_jobs, 0);
  std::size_t drain_next = 0;

  auto cancelled = [&spec] { return spec.cancel && *spec.cancel != 0; };

  auto job = [&](std::size_t p, std::size_t i) {
    const std::uint64_t seed = spec.base_seed + spec.points[p].seed_offset +
                               static_cast<std::uint64_t>(i);
    bool drainable = true;
    if (cancelled()) {
      // Skip without running: the replica is flagged so the reduction and
      // the JSON report it honestly instead of averaging a zero-filled run.
      RunResult& out = replicas[p][i];
      out.seed = seed;
      out.failed = true;
      out.fail_reason = "cancelled";
      drainable = false;
      std::lock_guard<std::mutex> lock(mutex);
      ++skipped;
    } else {
      try {
        ExperimentConfig config = configs[p];
        config.seed = seed;
        const auto start = Clock::now();
        RunResult result =
            run_experiment(std::move(config), spec.run_timeout_seconds);
        durations[p][i] = seconds_since(start);
        replicas[p][i] = std::move(result);
      } catch (const sim::WallClockTimeout& timeout) {
        // A stuck point becomes a failed replica, not a hung pool.
        RunResult& out = replicas[p][i];
        out.seed = seed;
        out.failed = true;
        std::ostringstream reason;
        reason << "wall-clock timeout after " << timeout.limit_seconds
               << " s (virtual t=" << timeout.reached << ")";
        out.fail_reason = reason.str();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    ++done;
    finished[p * runs + i] = 1;
    if (!drainable) undrainable[p * runs + i] = 1;
    if (spec.drain && !error) {
      while (drain_next < total_jobs && finished[drain_next] != 0) {
        const std::size_t dp = drain_next / runs;
        const std::size_t di = drain_next % runs;
        if (undrainable[drain_next] == 0) {
          spec.drain(dp, di, replicas[dp][di]);
        }
        ++drain_next;
      }
    }
    if (spec.progress) spec.progress(done, total_jobs);
  };

  std::size_t threads = spec.threads == 0
                            ? ThreadPool::hardware_threads()
                            : static_cast<std::size_t>(
                                  spec.threads < 1 ? 1 : spec.threads);
  threads = std::min(threads, total_jobs);

  if (threads <= 1) {
    for (std::size_t p = 0; p < point_count; ++p) {
      for (std::size_t i = 0; i < runs; ++i) job(p, i);
    }
  } else {
    ThreadPool pool(threads);
    for (std::size_t p = 0; p < point_count; ++p) {
      for (std::size_t i = 0; i < runs; ++i) {
        pool.submit([&job, p, i] { job(p, i); });
      }
    }
    pool.wait_idle();
  }
  if (error) std::rethrow_exception(error);

  // Deterministic reduction: spec order, never completion order.
  SweepResult result;
  result.points.resize(point_count);
  for (std::size_t p = 0; p < point_count; ++p) {
    SweepPointResult& out = result.points[p];
    out.label = spec.points[p].label;
    out.replicas = std::move(replicas[p]);
    out.aggregate = Aggregate::reduce(out.replicas);
    for (double secs : durations[p]) out.cpu_seconds += secs;
    for (const RunResult& r : out.replicas) {
      out.counters.add_counters(r.registry);
      out.profile.accumulate(r.profile);
    }
  }
  result.threads_used = static_cast<int>(threads);
  result.wall_seconds = seconds_since(sweep_start);
  result.interrupted = cancelled();
  result.jobs_skipped = skipped;
  return result;
}

Aggregate average_runs(ExperimentConfig config, int runs,
                       std::uint64_t base_seed, int threads) {
  SweepSpec spec;
  spec.base = std::move(config);
  spec.points.push_back({"", nullptr, 0});
  spec.runs = runs;
  spec.base_seed = base_seed;
  spec.threads = threads;
  return run_sweep(spec).points.front().aggregate;
}

namespace {

/// Minimal JSON emitter (no dependency): escapes strings, prints doubles
/// round-trippably.
class JsonOut {
 public:
  JsonOut() {
    out_.precision(std::numeric_limits<double>::max_digits10);
  }

  /// Injects pre-rendered JSON (e.g. a series object) as the current value.
  JsonOut& raw(const std::string& text) {
    comma();
    out_ << text;
    return *this;
  }
  JsonOut& key(const char* name) {
    comma();
    out_ << '"' << name << "\":";
    fresh_ = true;
    return *this;
  }
  JsonOut& value(double v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonOut& value(std::uint64_t v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonOut& value(bool v) {
    comma();
    out_ << (v ? "true" : "false");
    return *this;
  }
  JsonOut& value(const std::string& v) {
    comma();
    out_ << '"';
    for (char c : v) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          out_ << c;
      }
    }
    out_ << '"';
    return *this;
  }
  JsonOut& null() {
    comma();
    out_ << "null";
    return *this;
  }
  JsonOut& open(char bracket) {
    comma();
    out_ << bracket;
    fresh_ = true;
    return *this;
  }
  JsonOut& close(char bracket) {
    out_ << bracket;
    fresh_ = false;
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  void comma() {
    if (!fresh_) out_ << ',';
    fresh_ = false;
  }

  std::ostringstream out_;
  bool fresh_ = true;
};

void emit_aggregate(JsonOut& json, const Aggregate& agg) {
  json.open('{');
  json.key("runs").value(static_cast<std::uint64_t>(agg.runs));
  json.key("data_originated").value(agg.data_originated);
  json.key("data_dropped_malicious").value(agg.data_dropped_malicious);
  json.key("fraction_dropped").value(agg.fraction_dropped);
  json.key("fraction_dropped_sem").value(agg.fraction_dropped_sem);
  json.key("routes_established").value(agg.routes_established);
  json.key("wormhole_routes").value(agg.wormhole_routes);
  json.key("fraction_wormhole_routes").value(agg.fraction_wormhole_routes);
  json.key("fraction_wormhole_routes_sem")
      .value(agg.fraction_wormhole_routes_sem);
  json.key("false_isolations").value(agg.false_isolations);
  json.key("detection_probability").value(agg.detection_probability);
  json.key("detection_probability_sem").value(agg.detection_probability_sem);
  json.key("mean_isolation_latency");
  if (agg.mean_isolation_latency) {
    json.value(*agg.mean_isolation_latency);
  } else {
    json.null();
  }
  json.key("runs_fully_isolated")
      .value(static_cast<std::uint64_t>(agg.runs_fully_isolated));
  // Robustness keys appear only for fault-plan sweeps (or when replicas
  // failed), keeping clean-run JSON byte-identical to previous releases.
  if (agg.failed_runs > 0) {
    json.key("failed_runs").value(static_cast<std::uint64_t>(agg.failed_runs));
  }
  if (agg.fault_active) {
    json.key("nodes_crashed").value(agg.nodes_crashed);
    json.key("nodes_recovered").value(agg.nodes_recovered);
    json.key("mean_recovery_latency").value(agg.mean_recovery_latency);
    json.key("recovery_samples").value(agg.recovery_samples);
    json.key("framed_accusations").value(agg.framed_accusations);
    json.key("framed_isolations").value(agg.framed_isolations);
  }
  json.close('}');
}

void emit_replica(JsonOut& json, const RunResult& r, bool include_timing) {
  json.open('{');
  json.key("seed").value(static_cast<std::uint64_t>(r.seed));
  if (r.failed) {
    // A failed replica's outputs are meaningless; emit the marker alone so
    // downstream consumers cannot mistake zeros for results.
    json.key("failed").value(true);
    json.key("fail_reason").value(r.fail_reason);
    json.close('}');
    return;
  }
  json.key("average_degree").value(r.average_degree);
  json.key("data_originated").value(r.data_originated);
  json.key("data_delivered").value(r.data_delivered);
  json.key("data_dropped_malicious").value(r.data_dropped_malicious);
  json.key("data_dropped_no_route").value(r.data_dropped_no_route);
  json.key("routes_established").value(r.routes_established);
  json.key("wormhole_routes").value(r.wormhole_routes);
  json.key("routes_via_malicious").value(r.routes_via_malicious);
  json.key("false_isolations").value(r.false_isolations);
  json.key("local_detections").value(r.local_detections);
  json.key("alerts_sent").value(r.alerts_sent);
  json.key("malicious_count")
      .value(static_cast<std::uint64_t>(r.malicious_count));
  json.key("malicious_isolated")
      .value(static_cast<std::uint64_t>(r.malicious_isolated));
  json.key("isolation_latency");
  if (r.isolation_latency) {
    json.value(*r.isolation_latency);
  } else {
    json.null();
  }
  json.key("frames_transmitted").value(r.frames_transmitted);
  json.key("frames_delivered").value(r.frames_delivered);
  json.key("frames_collided").value(r.frames_collided);
  json.key("mean_delivery_latency").value(r.mean_delivery_latency);
  json.key("defense").open('{');
  json.key("name").value(r.defense_name);
  json.key("frames_observed").value(r.defense_cost.frames_observed);
  json.key("admission_checks").value(r.defense_cost.admission_checks);
  json.key("admission_rejects").value(r.defense_cost.admission_rejects);
  json.key("control_messages").value(r.defense_cost.control_messages);
  json.key("control_bytes").value(r.defense_cost.control_bytes);
  json.key("storage_bytes").value(r.defense_cost.storage_bytes);
  json.close('}');
  if (r.fault_active) {
    json.key("fault").open('{');
    json.key("nodes_crashed").value(r.nodes_crashed);
    json.key("nodes_recovered").value(r.nodes_recovered);
    json.key("recovery_latencies").open('[');
    for (Duration latency : r.recovery_latencies) json.value(latency);
    json.close(']');
    json.close('}');
  }
  if (r.forensics.enabled) {
    json.key("forensics").open('{');
    json.key("incidents").value(r.forensics.incidents);
    json.key("isolated_incidents").value(r.forensics.isolated_incidents);
    json.key("true_positives").value(r.forensics.true_positives);
    json.key("false_positives").value(r.forensics.false_positives);
    if (r.forensics.framed_accusations > 0) {
      json.key("framed_accusations").value(r.forensics.framed_accusations);
      json.key("framed_isolations").value(r.forensics.framed_isolations);
    }
    json.key("precision").value(r.forensics.precision());
    json.key("mean_detection_latency")
        .value(r.forensics.mean_detection_latency);
    json.key("latency_samples").value(r.forensics.latency_samples);
    json.key("incident_list").open('[');
    for (const forensics::Incident& inc : r.incidents) {
      json.open('{');
      json.key("accused").value(static_cast<std::uint64_t>(inc.accused));
      json.key("def").value(std::string(obs::to_string(inc.defense)));
      json.key("malicious").value(inc.ground_truth_malicious);
      json.key("isolated").value(inc.isolated());
      json.key("label").value(std::string(inc.label()));
      json.key("guards")
          .value(static_cast<std::uint64_t>(inc.accusing_guards.size()));
      json.key("detections").value(inc.detections);
      json.key("detection_latency").value(inc.detection_latency());
      json.close('}');
    }
    json.close(']');
    json.close('}');
  }
  if (r.series.enabled) {
    // Pre-rendered by the obs layer so the golden-series test and the
    // sweep JSON share one byte-exact serialization.
    json.key("series").raw(obs::series_to_json(r.series, include_timing));
  }
  if (r.spans.enabled) {
    // Pre-rendered by the obs layer (same pattern as "series"); absent
    // entirely when spans are off so existing output stays byte-identical.
    json.key("spans").raw(obs::spans_to_json(r.spans));
  }
  json.close('}');
}

void emit_counters(JsonOut& json, const obs::RegistrySnapshot& counters) {
  json.open('{');
  for (const auto& [name, count] : counters.counters) {
    json.key(name.c_str()).value(count);
  }
  json.close('}');
}

void emit_profile(JsonOut& json, const obs::ProfileTotals& profile,
                  bool include_timing) {
  // Deterministic fields first (always emitted); wall-clock fields only on
  // request, so the default JSON stays thread-count invariant.
  json.open('{');
  json.key("runs").value(static_cast<std::uint64_t>(profile.runs));
  json.key("events_executed").value(profile.events_executed);
  json.key("max_queue_depth")
      .value(static_cast<std::uint64_t>(profile.max_queue_depth));
  json.key("virtual_seconds").value(profile.virtual_seconds);
  json.key("events_per_virtual_second")
      .value(profile.virtual_seconds > 0.0
                 ? static_cast<double>(profile.events_executed) /
                       profile.virtual_seconds
                 : 0.0);
  json.key("layer_events").open('{');
  for (std::size_t i = 0; i < obs::kLayerCount; ++i) {
    json.key(obs::to_string(static_cast<obs::Layer>(i)))
        .value(profile.layers[i].events);
  }
  json.close('}');
  if (include_timing) {
    json.key("timing").open('{');
    json.key("wall_seconds").value(profile.wall_seconds);
    json.key("events_per_wall_second")
        .value(profile.wall_seconds > 0.0
                   ? static_cast<double>(profile.events_executed) /
                         profile.wall_seconds
                   : 0.0);
    json.key("layer_self_seconds").open('{');
    for (std::size_t i = 0; i < obs::kLayerCount; ++i) {
      json.key(obs::to_string(static_cast<obs::Layer>(i)))
          .value(profile.layers[i].self_seconds);
    }
    json.close('}');
    json.close('}');
  }
  json.close('}');
}

}  // namespace

std::string to_json(const SweepResult& result, bool include_timing) {
  // Timing fields (wall_seconds, cpu_seconds, threads_used) are emitted
  // only under `include_timing`: the default JSON is byte-identical across
  // --threads values, so outputs can be diffed to verify determinism.
  JsonOut json;
  json.open('{');
  json.key("points").open('[');
  for (const SweepPointResult& point : result.points) {
    json.open('{');
    json.key("label").value(point.label);
    json.key("aggregate");
    emit_aggregate(json, point.aggregate);
    if (!point.counters.empty()) {
      json.key("counters");
      emit_counters(json, point.counters);
    }
    if (point.profile.enabled) {
      json.key("profile");
      emit_profile(json, point.profile, include_timing);
    }
    json.key("replicas").open('[');
    for (const RunResult& r : point.replicas) {
      emit_replica(json, r, include_timing);
    }
    json.close(']');
    json.close('}');
  }
  json.close(']');
  // Present only on interrupted sweeps; absent keys keep complete-run JSON
  // byte-identical across releases and thread counts.
  if (result.interrupted) {
    json.key("interrupted").value(true);
    json.key("jobs_skipped")
        .value(static_cast<std::uint64_t>(result.jobs_skipped));
  }
  if (include_timing) {
    json.key("sweep_timing").open('{');
    json.key("wall_seconds").value(result.wall_seconds);
    json.key("threads_used")
        .value(static_cast<std::uint64_t>(result.threads_used));
    double cpu = 0.0;
    for (const SweepPointResult& point : result.points) {
      cpu += point.cpu_seconds;
    }
    json.key("cpu_seconds").value(cpu);
    json.close('}');
  }
  json.close('}');
  return json.str();
}

}  // namespace lw::scenario
