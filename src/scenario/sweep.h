// Parallel sweep engine: a grid of (config point x seed replica) jobs
// fanned across a worker pool, reduced into per-point Aggregates.
//
// Determinism guarantee: each job's config depends only on the spec (seeds
// are assigned by grid index, never by completion order) and every job runs
// its own independent Simulator, so per-point results are bit-identical for
// every thread count. Reduction happens in spec order after all jobs have
// finished; threads only change wall-clock time.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/runner.h"

namespace lw::scenario {

/// One grid point: a label plus a mutation applied to the base config.
struct SweepPoint {
  std::string label;
  /// Applied to a copy of the base config; null keeps the base as-is.
  std::function<void(ExperimentConfig&)> mutate;
  /// Added to the spec's base_seed for this point's replicas. Leave 0 to
  /// share seeds across points (paired comparisons on common random
  /// numbers, the benches' default).
  std::uint64_t seed_offset = 0;
};

struct SweepSpec {
  ExperimentConfig base;
  std::vector<SweepPoint> points;
  /// Seed replicas per point; replica i runs seed base_seed + offset + i.
  int runs = 1;
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 means one per hardware thread, 1 runs inline on the
  /// calling thread (no pool at all).
  int threads = 1;
  /// Invoked after each finished job with (jobs_done, jobs_total). Runs on
  /// whichever worker finished the job, under the engine's lock: keep it
  /// cheap and thread-agnostic (e.g. a progress line to stderr).
  std::function<void(std::size_t, std::size_t)> progress;
  /// Invoked exactly once per finished replica in strict spec order
  /// (point 0 replica 0, 1, ...; then point 1, ...) regardless of worker
  /// interleaving, under the engine's lock. The RunResult is mutable so the
  /// callback can stream-and-clear heavy fields (trace_jsonl) before the
  /// engine stores the replica: streamed output is byte-identical at any
  /// thread count. Not called once a job has errored, and not called for
  /// replicas skipped by cancellation.
  std::function<void(std::size_t point, std::size_t replica, RunResult&)>
      drain;

  /// Cooperative cancellation (SIGINT/SIGTERM): when the pointed-to flag
  /// becomes nonzero, jobs not yet started are skipped (their replicas are
  /// marked failed with reason "cancelled"), in-flight jobs finish and are
  /// drained normally, and run_sweep returns with `interrupted` set — so
  /// an interrupted --json / --trace-out sweep still emits complete,
  /// parseable output for every point that ran.
  const volatile std::sig_atomic_t* cancel = nullptr;

  /// Per-replica wall-clock watchdog (seconds; 0 disables): a run still
  /// executing this much real time later is aborted via
  /// sim::WallClockTimeout and recorded as a failed replica instead of
  /// hanging the worker pool forever.
  double run_timeout_seconds = 0.0;
};

/// One swept point's outputs, in spec order.
struct SweepPointResult {
  std::string label;
  Aggregate aggregate;
  /// Raw per-replica results in seed order (for series/deadline
  /// post-processing the Aggregate does not cover).
  std::vector<RunResult> replicas;
  /// Summed replica run times: the serial cost of this point.
  double cpu_seconds = 0.0;
  /// Summed replica event counters (empty unless base.obs.counters).
  obs::RegistrySnapshot counters;
  /// Summed replica profiles (enabled mirrors base.obs.profile).
  obs::ProfileTotals profile;
};

struct SweepResult {
  std::vector<SweepPointResult> points;
  /// End-to-end wall-clock of the whole sweep.
  double wall_seconds = 0.0;
  int threads_used = 1;
  /// True when the spec's cancel flag fired before every job completed.
  bool interrupted = false;
  /// Jobs skipped due to cancellation (their replicas carry failed=true).
  std::size_t jobs_skipped = 0;
};

/// Runs |points| x runs independent simulations. Each point's config is
/// finalized and validated before any job starts; config errors throw
/// std::invalid_argument from the calling thread.
SweepResult run_sweep(const SweepSpec& spec);

/// Machine-readable dump: point labels, Aggregates, per-replica counters,
/// and (when enabled) per-point event counters and profiler totals.
/// Timing fields (wall/self seconds, threads) are emitted only with
/// `include_timing`, so the default output is byte-identical across
/// thread counts (diff two runs to check determinism); deterministic
/// profile fields (event counts, queue depth) are always included.
std::string to_json(const SweepResult& result, bool include_timing = false);

}  // namespace lw::scenario
