// Builds and runs one complete simulated deployment.
//
// Responsible for everything a node cannot do for itself: placing the
// field (with retries until it is connected and the malicious nodes are
// far enough apart), wiring medium/keys/metrics, selecting the attackers,
// and driving the clock.
#pragma once

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attack/coordinator.h"
#include "fault/injector.h"
#include "forensics/incident.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_writer.h"
#include "phy/medium.h"
#include "scenario/node.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "topology/disc_graph.h"

namespace lw::scenario {

/// The Network doubles as the fault injector's host: it is the only layer
/// that can both silence a radio in the medium and wipe a node's protocol
/// stack coherently.
class Network : public fault::FaultHost {
 public:
  /// Builds the metrics collector; overridable so tools can subclass
  /// MetricsCollector for richer observability.
  using MetricsFactory = std::function<std::unique_ptr<stats::MetricsCollector>(
      const sim::Simulator&, const topo::DiscGraph&, std::vector<NodeId>)>;

  explicit Network(ExperimentConfig config, MetricsFactory metrics = {});
  ~Network() override;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Runs to the configured duration.
  void run();

  /// Advances the clock to `t` (monotonic across calls).
  void run_until(Time t);

  const ExperimentConfig& config() const { return config_; }
  sim::Simulator& simulator() { return simulator_; }
  const topo::DiscGraph& graph() const { return *graph_; }
  phy::Medium& medium() { return *medium_; }
  const phy::Medium& medium() const { return *medium_; }
  stats::MetricsCollector& metrics() { return *metrics_; }
  const stats::MetricsCollector& metrics() const { return *metrics_; }
  const std::vector<NodeId>& malicious_ids() const { return malicious_ids_; }
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t size() const { return nodes_.size(); }

  /// Ground-truth average degree of the built topology.
  double average_degree() const { return graph_->average_degree(); }

  // ---- Observability (config().obs selects what is live) ----

  /// The run's event recorder. Always present: config().obs selects the
  /// built-in sinks (trace/counters/profile), and callers may add their
  /// own (e.g. phy::TextTrace) before running.
  obs::Recorder& recorder() { return *recorder_; }

  /// JSONL trace accumulated so far (empty unless obs.trace). Buffered in
  /// memory so sweeps can write per-run traces in spec order regardless of
  /// worker-thread interleaving. When spans are on, reading the trace
  /// first flushes still-open spans (their span.end lines must land in
  /// the buffer), so call after the run completes.
  std::string trace_jsonl() const;

  /// Counter/histogram snapshot (empty unless obs.counters).
  obs::RegistrySnapshot registry_snapshot() const {
    return registry_ ? registry_->snapshot() : obs::RegistrySnapshot{};
  }

  /// Profiling report; enabled flag mirrors obs.profile. Wall time covers
  /// the run()/run_until() calls made so far.
  obs::ProfileReport profile() const;

  /// Sim-time telemetry series sampled at obs.series_bucket boundaries
  /// (enabled flag false unless obs.series). Deterministic: byte-identical
  /// JSON per seed at any sweep thread count and across build types.
  obs::SeriesReport series() const;

  /// Labeled detection incidents folded live from the event stream (empty
  /// unless obs.forensics). Sorted by accused node id.
  std::vector<forensics::Incident> incidents() const {
    return incident_builder_ ? incident_builder_->build()
                             : std::vector<forensics::Incident>{};
  }

  /// Protocol-transaction span statistics (enabled flag false unless
  /// obs.spans). Flushes still-open spans at the current sim time on
  /// first read, so call after the run completes.
  obs::SpanReport spans() const;

  /// Aggregate forensics summary; enabled flag mirrors obs.forensics.
  forensics::ForensicsSummary forensics_summary() const {
    return incident_builder_ ? incident_builder_->summarize()
                             : forensics::ForensicsSummary{};
  }

  /// Network-wide defense overhead: per-node CostSnapshots summed in
  /// node-id order (deterministic).
  defense::CostSnapshot defense_cost() const;

  // ---- Robustness outputs (all zero/empty on fault-free runs) ----

  /// Number of crash / recovery faults actually executed.
  std::uint64_t fault_crashes() const { return fault_crashes_; }
  std::uint64_t fault_recoveries() const { return fault_recoveries_; }

  /// Every completed crash-recovery latency sample across all nodes
  /// (recover() -> first re-authenticated neighbor), in node-id order.
  std::vector<Duration> recovery_latencies() const;

  // ---- fault::FaultHost (driven by the injector; public for tests) ----
  void crash_node(NodeId node) override;
  void recover_node(NodeId node) override;
  void set_link_fault(NodeId a, NodeId b, double extra_loss) override;
  void clear_link_fault(NodeId a, NodeId b) override;
  void set_corruption(NodeId node, double probability) override;
  void clear_corruption(NodeId node) override;
  /// Up to `count` honest, alive, monitoring neighbors of `victim`,
  /// ascending by id — the injector's deterministic guard pick.
  std::vector<NodeId> framing_guards(NodeId victim,
                                     std::size_t count) const override;
  void emit_false_alert(NodeId guard, NodeId victim) override;

 private:
  topo::DiscGraph build_topology(const RngFactory& rngs);
  /// Deterministic boundary snapshot for the telemetry sampler: queue
  /// state from the simulator, memory gauges summed over nodes in id
  /// order.
  obs::BucketSample take_bucket_sample();
  /// Wall-throttled stderr progress line (obs.watch); display only.
  void print_watch_line(Time boundary);
  std::vector<NodeId> pick_malicious(const topo::DiscGraph& graph, Rng& rng,
                                     std::size_t count) const;
  void configure_attack();

  ExperimentConfig config_;
  sim::Simulator simulator_;
  crypto::KeyManager keys_;
  pkt::PacketFactory factory_;
  std::ostringstream trace_buffer_;
  std::unique_ptr<obs::TraceWriter> trace_writer_;
  std::unique_ptr<obs::SpanBuilder> span_builder_;
  std::unique_ptr<obs::RegistrySink> registry_;
  std::unique_ptr<forensics::IncidentBuilder> incident_builder_;
  std::unique_ptr<obs::RunProfiler> profiler_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
  std::unique_ptr<obs::Recorder> recorder_;
  double wall_seconds_ = 0.0;
  /// Wall-clock throttle + run start for the --watch progress line.
  std::chrono::steady_clock::time_point watch_started_{};
  std::chrono::steady_clock::time_point watch_next_print_{};
  bool watch_running_ = false;
  /// atk.spawn ground-truth events go out once, on the first run call.
  bool spawns_emitted_ = false;
  std::unique_ptr<topo::DiscGraph> graph_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<NodeId> malicious_ids_;
  std::unique_ptr<stats::MetricsCollector> metrics_;
  std::unique_ptr<attack::WormholeCoordinator> coordinator_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Present only when config_.fault is non-empty (zero-cost otherwise).
  std::unique_ptr<fault::Injector> injector_;
  std::uint64_t fault_crashes_ = 0;
  std::uint64_t fault_recoveries_ = 0;
};

}  // namespace lw::scenario
