// Builds and runs one complete simulated deployment.
//
// Responsible for everything a node cannot do for itself: placing the
// field (with retries until it is connected and the malicious nodes are
// far enough apart), wiring medium/keys/metrics, selecting the attackers,
// and driving the clock.
#pragma once

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attack/coordinator.h"
#include "forensics/incident.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace_writer.h"
#include "phy/medium.h"
#include "scenario/node.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "topology/disc_graph.h"

namespace lw::scenario {

class Network {
 public:
  /// Builds the metrics collector; overridable so tools can subclass
  /// MetricsCollector for richer observability.
  using MetricsFactory = std::function<std::unique_ptr<stats::MetricsCollector>(
      const sim::Simulator&, const topo::DiscGraph&, std::vector<NodeId>)>;

  explicit Network(ExperimentConfig config, MetricsFactory metrics = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Runs to the configured duration.
  void run();

  /// Advances the clock to `t` (monotonic across calls).
  void run_until(Time t);

  const ExperimentConfig& config() const { return config_; }
  sim::Simulator& simulator() { return simulator_; }
  const topo::DiscGraph& graph() const { return *graph_; }
  phy::Medium& medium() { return *medium_; }
  const phy::Medium& medium() const { return *medium_; }
  stats::MetricsCollector& metrics() { return *metrics_; }
  const stats::MetricsCollector& metrics() const { return *metrics_; }
  const std::vector<NodeId>& malicious_ids() const { return malicious_ids_; }
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t size() const { return nodes_.size(); }

  /// Ground-truth average degree of the built topology.
  double average_degree() const { return graph_->average_degree(); }

  // ---- Observability (config().obs selects what is live) ----

  /// The run's event recorder. Always present: config().obs selects the
  /// built-in sinks (trace/counters/profile), and callers may add their
  /// own (e.g. phy::TextTrace) before running.
  obs::Recorder& recorder() { return *recorder_; }

  /// JSONL trace accumulated so far (empty unless obs.trace). Buffered in
  /// memory so sweeps can write per-run traces in spec order regardless of
  /// worker-thread interleaving.
  std::string trace_jsonl() const { return trace_buffer_.str(); }

  /// Counter/histogram snapshot (empty unless obs.counters).
  obs::RegistrySnapshot registry_snapshot() const {
    return registry_ ? registry_->snapshot() : obs::RegistrySnapshot{};
  }

  /// Profiling report; enabled flag mirrors obs.profile. Wall time covers
  /// the run()/run_until() calls made so far.
  obs::ProfileReport profile() const;

  /// Labeled detection incidents folded live from the event stream (empty
  /// unless obs.forensics). Sorted by accused node id.
  std::vector<forensics::Incident> incidents() const {
    return incident_builder_ ? incident_builder_->build()
                             : std::vector<forensics::Incident>{};
  }

  /// Aggregate forensics summary; enabled flag mirrors obs.forensics.
  forensics::ForensicsSummary forensics_summary() const {
    return incident_builder_ ? incident_builder_->summarize()
                             : forensics::ForensicsSummary{};
  }

 private:
  topo::DiscGraph build_topology(const RngFactory& rngs);
  std::vector<NodeId> pick_malicious(const topo::DiscGraph& graph, Rng& rng,
                                     std::size_t count) const;
  void configure_attack();

  ExperimentConfig config_;
  sim::Simulator simulator_;
  crypto::KeyManager keys_;
  pkt::PacketFactory factory_;
  std::ostringstream trace_buffer_;
  std::unique_ptr<obs::TraceWriter> trace_writer_;
  std::unique_ptr<obs::RegistrySink> registry_;
  std::unique_ptr<forensics::IncidentBuilder> incident_builder_;
  std::unique_ptr<obs::RunProfiler> profiler_;
  std::unique_ptr<obs::Recorder> recorder_;
  double wall_seconds_ = 0.0;
  /// atk.spawn ground-truth events go out once, on the first run call.
  bool spawns_emitted_ = false;
  std::unique_ptr<topo::DiscGraph> graph_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<NodeId> malicious_ids_;
  std::unique_ptr<stats::MetricsCollector> metrics_;
  std::unique_ptr<attack::WormholeCoordinator> coordinator_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace lw::scenario
