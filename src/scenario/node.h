// Concrete node: the full protocol stack wired together.
//
// Owns the radio, MAC, neighbor state, routing, and optionally either a
// LITEWORP monitor (honest nodes) or a malicious agent (attackers), and
// implements the frame dispatch:
//
//   radio decode -> [malicious intercept] -> [monitor tap] ->
//   [admission checks] -> protocol handler (discovery / alert / routing)
#pragma once

#include <memory>

#include "attack/malicious_agent.h"
#include "leash/leash.h"
#include "liteworp/monitor.h"
#include "neighbor/admission.h"
#include "neighbor/discovery.h"
#include "neighbor/dynamic_join.h"
#include "node/node_env.h"
#include "routing/routing.h"
#include "routing/traffic.h"
#include "scenario/config.h"
#include "stats/metrics.h"

namespace lw::scenario {

class Node final : public node::NodeEnv {
 public:
  /// `recorder` (optional) is the run's observability recorder; the node
  /// exposes it to its protocol agents via NodeEnv::obs() and emits MAC
  /// overhear plus admission verdict events itself.
  Node(NodeId id, const ExperimentConfig& config, sim::Simulator& simulator,
       phy::Medium& medium, const crypto::KeyManager& keys,
       pkt::PacketFactory& factory, stats::MetricsCollector* metrics,
       Rng rng, bool malicious, attack::WormholeCoordinator* coordinator,
       obs::Recorder* recorder = nullptr);

  ~Node() override;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Starts discovery (or oracle-bootstraps it) and the traffic generator.
  void start(const topo::DiscGraph& graph);

  /// Late deployment: the node joins a live network through the dynamic
  /// challenge-response protocol instead of the deployment-time discovery;
  /// its own traffic begins once the join settles.
  void start_late();

  bool deployed() const { return deployed_; }

  // NodeEnv
  NodeId id() const override { return id_; }
  sim::Simulator& simulator() override { return simulator_; }
  pkt::PacketFactory& packet_factory() override { return factory_; }
  const crypto::KeyManager& keys() const override { return keys_; }
  Rng& rng() override { return rng_; }
  void send(pkt::Packet packet, mac::SendOptions options = {}) override;
  std::size_t mac_queue_depth() const override { return mac_.queue_depth(); }
  obs::Recorder* obs() override { return recorder_; }

  bool malicious() const { return malicious_agent_ != nullptr; }
  phy::Radio& radio() { return radio_; }
  nbr::NeighborTable& table() { return table_; }
  const nbr::NeighborTable& table() const { return table_; }
  nbr::DiscoveryAgent& discovery() { return discovery_; }
  nbr::DynamicJoinAgent& join_agent() { return join_; }
  routing::OnDemandRouting& routing() { return routing_; }
  routing::TrafficGenerator& traffic() { return traffic_; }
  lite::LocalMonitor* monitor() { return monitor_.get(); }
  const lite::LocalMonitor* monitor() const { return monitor_.get(); }
  attack::MaliciousAgent* malicious_agent() { return malicious_agent_.get(); }
  const nbr::AdmissionStats& admission_stats() const {
    return admission_stats_;
  }
  const mac::MacStats& mac_stats() const { return mac_.stats(); }
  const leash::LeashStats& leash_stats() const { return leash_.stats(); }
  leash::LeashChecker& leash() { return leash_; }

 private:
  void handle_frame(const pkt::Packet& packet);

  NodeId id_;
  const ExperimentConfig& config_;
  sim::Simulator& simulator_;
  const crypto::KeyManager& keys_;
  pkt::PacketFactory& factory_;
  Rng rng_;
  obs::Recorder* recorder_;

  phy::Radio radio_;
  mac::CsmaMac mac_;
  nbr::NeighborTable table_;
  nbr::DiscoveryAgent discovery_;
  nbr::DynamicJoinAgent join_;
  routing::OnDemandRouting routing_;
  routing::TrafficGenerator traffic_;
  bool deployed_ = false;
  leash::LeashChecker leash_;
  std::unique_ptr<lite::LocalMonitor> monitor_;
  std::unique_ptr<attack::MaliciousAgent> malicious_agent_;
  nbr::AdmissionStats admission_stats_;
};

}  // namespace lw::scenario
