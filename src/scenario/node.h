// Concrete node: the full protocol stack wired together.
//
// Owns the radio, MAC, neighbor state, routing, and either a defense
// backend (honest nodes; selected by config.defense.name through
// defense::make) or a malicious agent (attackers), and implements the
// frame dispatch:
//
//   radio decode -> [malicious intercept] -> [defense observe tap] ->
//   [defense admit verdict] -> protocol handler (discovery/alert/routing)
#pragma once

#include <memory>

#include "attack/malicious_agent.h"
#include "defense/defense.h"
#include "neighbor/admission.h"
#include "neighbor/discovery.h"
#include "neighbor/dynamic_join.h"
#include "node/node_env.h"
#include "routing/routing.h"
#include "routing/traffic.h"
#include "scenario/config.h"
#include "stats/metrics.h"

namespace lw::scenario {

class Node final : public node::NodeEnv {
 public:
  /// `recorder` (optional) is the run's observability recorder; the node
  /// exposes it to its protocol agents via NodeEnv::obs() and emits MAC
  /// overhear plus admission verdict events itself.
  Node(NodeId id, const ExperimentConfig& config, sim::Simulator& simulator,
       phy::Medium& medium, const crypto::KeyManager& keys,
       pkt::PacketFactory& factory, stats::MetricsCollector* metrics,
       Rng rng, bool malicious, attack::WormholeCoordinator* coordinator,
       obs::Recorder* recorder = nullptr);

  ~Node() override;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Starts discovery (or oracle-bootstraps it) and the traffic generator.
  void start(const topo::DiscGraph& graph);

  /// Late deployment: the node joins a live network through the dynamic
  /// challenge-response protocol instead of the deployment-time discovery;
  /// its own traffic begins once the join settles.
  void start_late();

  bool deployed() const { return deployed_; }

  // ---- Fault-plan support (driven by Network as fault::FaultHost) ----

  /// Turns on the crash-resilience behaviors that a clean run must not pay
  /// for: neighbor aging (crashed peers fall out of the table and become
  /// re-challengeable) and MAC send-failure -> route eviction. Called once,
  /// before the run starts, only when the experiment has a FaultPlan.
  void enable_hardening(Duration age_timeout, Duration sweep_interval);

  /// Powers the node down: MAC queue, exchanges and timers die, routing
  /// and neighbor state is wiped, traffic stops, the monitor forgets
  /// everything. Frames it already has on the air finish (crash
  /// granularity is the frame boundary); the medium silences it otherwise.
  void crash();

  /// Reboots the node: it re-enters through the dynamic-join
  /// challenge-response path exactly like a late-deployed node, and its
  /// traffic resumes once the join settles.
  void recover();

  bool alive() const { return alive_; }

  /// Time from recover() until the node re-authenticated its first
  /// neighbor; negative while (or if) that has not happened. One value per
  /// completed recovery, in order.
  const std::vector<Duration>& recovery_latencies() const {
    return recovery_latencies_;
  }

  // NodeEnv
  NodeId id() const override { return id_; }
  sim::Simulator& simulator() override { return simulator_; }
  pkt::PacketFactory& packet_factory() override { return factory_; }
  const crypto::KeyManager& keys() const override { return keys_; }
  Rng& rng() override { return rng_; }
  void send(pkt::Packet packet, mac::SendOptions options = {}) override;
  std::size_t mac_queue_depth() const override { return mac_.queue_depth(); }
  obs::Recorder* obs() override { return recorder_; }

  bool malicious() const { return malicious_agent_ != nullptr; }
  phy::Radio& radio() { return radio_; }
  nbr::NeighborTable& table() { return table_; }
  const nbr::NeighborTable& table() const { return table_; }
  nbr::DiscoveryAgent& discovery() { return discovery_; }
  nbr::DynamicJoinAgent& join_agent() { return join_; }
  routing::OnDemandRouting& routing() { return routing_; }
  routing::TrafficGenerator& traffic() { return traffic_; }
  /// The active defense backend; null on malicious nodes (except the
  /// leash, which is a receive-side filter every node applies).
  defense::Defense* defense() { return defense_.get(); }
  const defense::Defense* defense() const { return defense_.get(); }
  /// The wrapped LITEWORP monitor when the active backend has one.
  lite::LocalMonitor* monitor() {
    return defense_ ? defense_->local_monitor() : nullptr;
  }
  const lite::LocalMonitor* monitor() const {
    return defense_ ? defense_->local_monitor() : nullptr;
  }
  attack::MaliciousAgent* malicious_agent() { return malicious_agent_.get(); }
  const nbr::AdmissionStats& admission_stats() const {
    static const nbr::AdmissionStats kNoChecks;
    return defense_ ? defense_->admission_stats() : kNoChecks;
  }
  const mac::MacStats& mac_stats() const { return mac_.stats(); }
  /// Own (GPS-style) location, forwarded to the defense backend (the
  /// geographical leash needs it; everyone else ignores it).
  void set_own_position(double x, double y) {
    if (defense_) defense_->set_own_position(x, y);
  }

 private:
  void handle_frame(const pkt::Packet& packet);
  void touch_neighbor(NodeId peer);
  void age_out_neighbors();
  void schedule_age_sweep();

  NodeId id_;
  const ExperimentConfig& config_;
  sim::Simulator& simulator_;
  const crypto::KeyManager& keys_;
  pkt::PacketFactory& factory_;
  Rng rng_;
  obs::Recorder* recorder_;

  phy::Radio radio_;
  mac::CsmaMac mac_;
  nbr::NeighborTable table_;
  nbr::DiscoveryAgent discovery_;
  nbr::DynamicJoinAgent join_;
  routing::OnDemandRouting routing_;
  routing::TrafficGenerator traffic_;
  bool deployed_ = false;
  bool alive_ = true;
  // Crash-resilience knobs; inert (hardening_ false) on clean runs.
  bool hardening_ = false;
  Duration age_timeout_ = 0.0;
  Duration sweep_interval_ = 0.0;
  Time harden_start_ = 0.0;
  /// Last time each peer was heard (indexed by id; -1 = never).
  std::vector<Time> last_heard_;
  /// Recovery-latency measurement: recover() arms recover_started_; the
  /// first re-authenticated neighbor closes the sample.
  Time recover_started_ = -1.0;
  std::vector<Duration> recovery_latencies_;
  std::unique_ptr<defense::Defense> defense_;
  std::unique_ptr<attack::MaliciousAgent> malicious_agent_;
};

}  // namespace lw::scenario
