#include "scenario/network.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "topology/field.h"
#include "util/logging.h"

namespace lw::scenario {
namespace {

/// A relay attacker needs two honest neighbors that cannot hear each other.
bool has_relay_victims(const topo::DiscGraph& graph, NodeId x,
                       const std::vector<NodeId>& malicious) {
  const auto& neighbors = graph.neighbors(x);
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
      NodeId a = neighbors[i];
      NodeId b = neighbors[j];
      if (graph.is_neighbor(a, b)) continue;
      if (std::find(malicious.begin(), malicious.end(), a) != malicious.end())
        continue;
      if (std::find(malicious.begin(), malicious.end(), b) != malicious.end())
        continue;
      return true;
    }
  }
  return false;
}

}  // namespace

Network::Network(ExperimentConfig config, MetricsFactory metrics)
    : config_(std::move(config)), keys_(config_.key_master_secret) {
  config_.finalize();
  // Dense O(1) pairwise-key table for every id this deployment can mint.
  keys_.reserve_nodes(config_.node_count + config_.late_joiners);
  RngFactory rngs(config_.seed);

  // The recorder always exists so callers can attach their own sinks
  // (e.g. phy::TextTrace) right after construction; with no sinks every
  // emit site short-circuits on the wants() mask test.
  recorder_ = std::make_unique<obs::Recorder>();
  if (config_.obs.trace) {
    trace_writer_ = std::make_unique<obs::TraceWriter>(trace_buffer_);
    recorder_->add_sink(trace_writer_.get(), config_.obs.trace_layers);
  }
  if (config_.obs.spans) {
    // Registered AFTER the trace writer so each span.begin/span.end line
    // lands immediately after the event that opened/closed it. Span lines
    // are written only when a trace is being recorded; otherwise the
    // builder collects statistics alone.
    span_builder_ = std::make_unique<obs::SpanBuilder>(
        config_.obs.trace ? &trace_buffer_ : nullptr);
    recorder_->add_sink(span_builder_.get(),
                        obs::layer_bit(obs::Layer::kNeighbor) |
                            obs::layer_bit(obs::Layer::kRouting) |
                            obs::layer_bit(obs::Layer::kMonitor) |
                            obs::layer_bit(obs::Layer::kAttack));
  }
  if (config_.obs.counters) {
    // Seeded so reservoir histograms are reproducible per run (and hence
    // identical across sweep thread counts).
    registry_ = std::make_unique<obs::RegistrySink>(config_.seed);
    recorder_->add_sink(registry_.get());
  }
  if (config_.obs.forensics) {
    incident_builder_ = std::make_unique<forensics::IncidentBuilder>();
    recorder_->add_sink(incident_builder_.get(),
                        obs::layer_bit(obs::Layer::kMonitor) |
                            obs::layer_bit(obs::Layer::kAttack) |
                            obs::layer_bit(obs::Layer::kFault));
  }
  if (config_.obs.profile) {
    profiler_ = std::make_unique<obs::RunProfiler>();
    recorder_->add_sink(profiler_.get());
    recorder_->set_profiler(profiler_.get());
  }
  if (config_.obs.series) {
    sampler_ = std::make_unique<obs::TelemetrySampler>(
        config_.obs.series_bucket);
    sampler_->set_registry(registry_.get());    // finalize() forces counters
    sampler_->set_profiler(profiler_.get());    // null when profiling off
    recorder_->add_sink(sampler_.get());
  }
  if (config_.obs.series || config_.obs.watch) {
    // The boundary hook only OBSERVES (sampler close + watch print), so
    // arming it changes no event, counter, or trace byte of the run.
    simulator_.set_tick_hook(config_.obs.series_bucket, [this](Time boundary) {
      if (sampler_) sampler_->close_bucket(boundary, take_bucket_sample());
      if (config_.obs.watch) print_watch_line(boundary);
    });
  }

  graph_ = std::make_unique<topo::DiscGraph>(build_topology(rngs));
  medium_ = std::make_unique<phy::Medium>(simulator_, *graph_, config_.phy,
                                          rngs.stream("phy-loss"));
  medium_->set_recorder(recorder_.get());
  metrics_ = metrics ? metrics(simulator_, *graph_, malicious_ids_)
                     : std::make_unique<stats::MetricsCollector>(
                           simulator_, *graph_, malicious_ids_);
  coordinator_ = std::make_unique<attack::WormholeCoordinator>(
      simulator_, config_.attack);

  const std::size_t total = config_.node_count + config_.late_joiners;
  nodes_.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    const bool malicious =
        std::find(malicious_ids_.begin(), malicious_ids_.end(), id) !=
        malicious_ids_.end();
    nodes_.push_back(std::make_unique<Node>(
        id, config_, simulator_, *medium_, keys_, factory_, metrics_.get(),
        rngs.stream("node", id), malicious, coordinator_.get(),
        recorder_.get()));
    // Geographical leashes need each node's own (GPS-style) location.
    const topo::Position& at = graph_->position(id);
    nodes_.back()->set_own_position(at.x, at.y);
  }
  configure_attack();
  for (NodeId id = 0; id < config_.node_count; ++id) {
    nodes_[id]->start(*graph_);
  }
  for (std::size_t j = 0; j < config_.late_joiners; ++j) {
    Node* joiner = nodes_[config_.node_count + j].get();
    simulator_.schedule_at(
        config_.late_join_time +
            static_cast<double>(j) * config_.late_join_stagger,
        [joiner] { joiner->start_late(); });
  }

  // Fault injection: armed only for a non-empty plan, so clean runs
  // schedule zero extra events, draw zero extra random numbers, and take
  // zero extra branches (the medium's fault paths stay disabled).
  if (!config_.fault.empty()) {
    medium_->enable_faults(rngs.stream("fault"));
    for (auto& hardened : nodes_) {
      hardened->enable_hardening(config_.fault.neighbor_age_timeout,
                                 config_.fault.neighbor_age_sweep_interval);
    }
    injector_ = std::make_unique<fault::Injector>(simulator_, recorder_.get(),
                                                  config_.fault, *this);
    injector_->arm();
  }
}

Network::~Network() = default;

/// True if the subgraph induced by nodes [0, count) is connected.
static bool initial_subgraph_connected(const topo::DiscGraph& graph,
                                       std::size_t count) {
  if (count == 0) return true;
  std::vector<bool> seen(graph.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    NodeId current = stack.back();
    stack.pop_back();
    for (NodeId next : graph.neighbors(current)) {
      if (next >= count || seen[next]) continue;
      seen[next] = true;
      ++visited;
      stack.push_back(next);
    }
  }
  return visited == count;
}

topo::DiscGraph Network::build_topology(const RngFactory& rngs) {
  if (config_.late_joiners > 0 && config_.oracle_discovery) {
    throw std::invalid_argument(
        "late joiners require the real discovery protocol (oracle tables "
        "would know undeployed nodes)");
  }
  const std::size_t total = config_.node_count + config_.late_joiners;

  if (config_.positions) {
    if (config_.positions->size() != total) {
      throw std::invalid_argument(
          "explicit positions must cover node_count + late_joiners nodes");
    }
    topo::DiscGraph graph(*config_.positions, config_.radio_range);
    if (!config_.malicious_nodes.empty()) {
      for (NodeId id : config_.malicious_nodes) {
        if (id >= total) throw std::invalid_argument("malicious id OOB");
      }
      malicious_ids_ = config_.malicious_nodes;
    } else if (config_.malicious_count > 0) {
      Rng pick_rng = rngs.stream("malicious", 0);
      malicious_ids_ = pick_malicious(graph, pick_rng,
                                      config_.malicious_count);
      if (malicious_ids_.empty()) {
        throw std::runtime_error(
            "explicit topology cannot satisfy the malicious-node "
            "constraints");
      }
    }
    return graph;
  }

  const double side = config_.field_side.value_or(topo::field_side_for_density(
      total, config_.radio_range, config_.target_neighbors));
  const topo::Field field{side, side};

  for (int attempt = 0; attempt < config_.max_topology_retries; ++attempt) {
    Rng place_rng = rngs.stream("topology", static_cast<std::uint64_t>(attempt));
    topo::DiscGraph graph(topo::place_uniform(field, total, place_rng),
                          config_.radio_range);
    if (!graph.connected()) continue;
    // The network must also function before the joiners arrive.
    if (!initial_subgraph_connected(graph, config_.node_count)) continue;

    if (!config_.malicious_nodes.empty()) {
      for (NodeId id : config_.malicious_nodes) {
        if (id >= total) throw std::invalid_argument("malicious id OOB");
      }
      malicious_ids_ = config_.malicious_nodes;
      return graph;
    }

    Rng pick_rng = rngs.stream("malicious", static_cast<std::uint64_t>(attempt));
    std::vector<NodeId> malicious =
        pick_malicious(graph, pick_rng, config_.malicious_count);
    if (config_.malicious_count > 0 && malicious.empty()) continue;

    malicious_ids_ = std::move(malicious);
    return graph;
  }
  throw std::runtime_error(
      "could not build a connected topology satisfying the malicious-node "
      "constraints; relax the configuration");
}

std::vector<NodeId> Network::pick_malicious(const topo::DiscGraph& graph,
                                            Rng& rng,
                                            std::size_t count) const {
  if (count == 0) return {};
  if (count >= graph.size()) {
    throw std::invalid_argument("more malicious nodes than nodes");
  }
  constexpr int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<NodeId> picked;
    while (picked.size() < count) {
      // Attackers come from the initial deployment (insiders from day one).
      NodeId candidate =
          static_cast<NodeId>(rng.uniform_int(0, config_.node_count - 1));
      if (std::find(picked.begin(), picked.end(), candidate) == picked.end()) {
        picked.push_back(candidate);
      }
    }
    bool separated = true;
    for (std::size_t i = 0; i < picked.size() && separated; ++i) {
      for (std::size_t j = i + 1; j < picked.size(); ++j) {
        auto hops = graph.hop_distance(picked[i], picked[j]);
        if (!hops || *hops < config_.min_malicious_hop_separation) {
          separated = false;
          break;
        }
      }
    }
    if (!separated) continue;
    if (config_.attack.mode == attack::WormholeMode::kRelay) {
      const bool viable =
          std::all_of(picked.begin(), picked.end(), [&](NodeId x) {
            return has_relay_victims(graph, x, picked);
          });
      if (!viable) continue;
    }
    return picked;
  }
  return {};
}

void Network::configure_attack() {
  for (std::size_t i = 0; i < malicious_ids_.size(); ++i) {
    for (std::size_t j = i + 1; j < malicious_ids_.size(); ++j) {
      const NodeId a = malicious_ids_[i];
      const NodeId b = malicious_ids_[j];
      coordinator_->set_hop_distance(a, b,
                                     graph_->hop_distance(a, b).value_or(1));
    }
  }

  if (config_.attack.mode == attack::WormholeMode::kRelay) {
    for (NodeId x : malicious_ids_) {
      // Pick the farthest-apart non-adjacent honest neighbor pair: the most
      // convincing fake link.
      const auto& neighbors = graph_->neighbors(x);
      NodeId best_a = kInvalidNode;
      NodeId best_b = kInvalidNode;
      double best_gap = -1.0;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
          NodeId a = neighbors[i];
          NodeId b = neighbors[j];
          if (graph_->is_neighbor(a, b)) continue;
          if (metrics_->is_malicious(a) || metrics_->is_malicious(b)) continue;
          const double gap = graph_->distance(a, b);
          if (gap > best_gap) {
            best_gap = gap;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a != kInvalidNode) {
        nodes_[x]->malicious_agent()->set_relay_victims(best_a, best_b);
        LW_INFO << "relay attacker " << x << " victims " << best_a << " / "
                << best_b;
      }
    }
  }

  if (config_.attack.mode == attack::WormholeMode::kHighPower) {
    for (NodeId x : malicious_ids_) {
      medium_->set_rx_range_multiplier(x, config_.attack.high_power_multiplier);
    }
  }
}

void Network::crash_node(NodeId node) {
  nodes_.at(node)->crash();
  medium_->set_node_down(node, true);
  ++fault_crashes_;
}

void Network::recover_node(NodeId node) {
  medium_->set_node_down(node, false);
  nodes_.at(node)->recover();
  ++fault_recoveries_;
}

std::vector<Duration> Network::recovery_latencies() const {
  std::vector<Duration> latencies;
  for (const auto& node : nodes_) {
    const auto& samples = node->recovery_latencies();
    latencies.insert(latencies.end(), samples.begin(), samples.end());
  }
  return latencies;
}

void Network::set_link_fault(NodeId a, NodeId b, double extra_loss) {
  medium_->set_link_fault(a, b, extra_loss);
}

void Network::clear_link_fault(NodeId a, NodeId b) {
  medium_->clear_link_fault(a, b);
}

void Network::set_corruption(NodeId node, double probability) {
  medium_->set_corruption(node, probability);
}

void Network::clear_corruption(NodeId node) {
  medium_->clear_corruption(node);
}

std::vector<NodeId> Network::framing_guards(NodeId victim,
                                            std::size_t count) const {
  std::vector<NodeId> candidates(graph_->neighbors(victim).begin(),
                                 graph_->neighbors(victim).end());
  std::sort(candidates.begin(), candidates.end());
  std::vector<NodeId> guards;
  for (NodeId id : candidates) {
    if (guards.size() >= count) break;
    const Node& node = *nodes_.at(id);
    if (node.malicious() || !node.alive() || !node.deployed()) continue;
    guards.push_back(id);
  }
  return guards;
}

void Network::emit_false_alert(NodeId guard, NodeId victim) {
  Node& framer = *nodes_.at(guard);
  if (!framer.alive() || framer.defense() == nullptr) return;
  framer.defense()->emit_false_alert(victim);
}

obs::BucketSample Network::take_bucket_sample() {
  obs::BucketSample sample;
  sample.events_executed = simulator_.executed();
  sample.queue_depth = simulator_.pending();
  sample.queue_high_water = simulator_.take_window_max_pending();
  sample.memory.slab_slots = simulator_.slab_slots();
  // Per-node gauges summed in id order: deterministic, and cheap enough
  // for once-per-bucket (not per-event) cadence.
  for (const auto& node : nodes_) {
    if (const lite::LocalMonitor* monitor = node->monitor()) {
      sample.memory.watch_entries += monitor->watch_buffer().transmit_records();
      sample.memory.watch_entries += monitor->watch_buffer().drop_watches();
    }
    sample.memory.neighbor_bytes += node->table().storage_bytes();
    if (const defense::Defense* defense = node->defense()) {
      sample.memory.defense_storage_bytes += defense->cost().storage_bytes;
    }
  }
  return sample;
}

std::string Network::trace_jsonl() const {
  // Still-open spans must close (outcome "open") before the buffer is
  // read; flush is idempotent and only appends trace bytes, never changes
  // simulation state, so the const_cast stays honest about the run.
  if (span_builder_) {
    const_cast<Network*>(this)->span_builder_->flush(simulator_.now());
  }
  return trace_buffer_.str();
}

obs::SpanReport Network::spans() const {
  if (!span_builder_) return {};
  const_cast<Network*>(this)->span_builder_->flush(simulator_.now());
  return span_builder_->report();
}

obs::SeriesReport Network::series() const {
  if (!sampler_) return {};
  // The final sample closes the trailing partial bucket. take_bucket_sample
  // mutates only the observation window (window-max reset), never the run,
  // so the const_cast stays honest about simulation state.
  return sampler_->report(const_cast<Network*>(this)->take_bucket_sample());
}

void Network::print_watch_line(Time boundary) {
  const auto now = std::chrono::steady_clock::now();
  if (watch_running_ && now < watch_next_print_) return;
  watch_next_print_ = now + std::chrono::milliseconds(250);
  if (!watch_running_) {
    watch_started_ = now;
    watch_running_ = true;
  }
  const double wall =
      std::chrono::duration<double>(now - watch_started_).count();
  const double duration = config_.duration;
  const double fraction = duration > 0.0 ? boundary / duration : 0.0;
  const double eta =
      fraction > 0.0 ? wall * (1.0 - fraction) / fraction : 0.0;
  const double rate = wall > 0.0 ? simulator_.executed() / wall : 0.0;
  std::fprintf(stderr,
               "\r[watch] t=%.1f/%.1fs (%3.0f%%)  events %llu (%.0f/s wall)  "
               "queue %zu (hw %zu)  eta %.1fs   ",
               boundary, duration, 100.0 * fraction,
               static_cast<unsigned long long>(simulator_.executed()), rate,
               simulator_.pending(), simulator_.max_pending(), eta);
  std::fflush(stderr);
}

defense::CostSnapshot Network::defense_cost() const {
  defense::CostSnapshot total;
  for (const auto& node : nodes_) {
    if (node->defense()) total.accumulate(node->defense()->cost());
  }
  return total;
}

void Network::run() { run_until(config_.duration); }

void Network::run_until(Time t) {
  // Ground-truth anchor for forensics: one atk.spawn per malicious node,
  // leading the trace at t=0, so passive attackers are still labeled
  // malicious from the trace alone. Emitted on the first run call — after
  // callers have attached their own sinks, and without a scheduled event
  // that would perturb the events_executed counter.
  if (!spawns_emitted_) {
    spawns_emitted_ = true;
    if (recorder_->wants(obs::Layer::kAttack)) {
      for (NodeId bad : malicious_ids_) {
        obs::Event spawn;
        spawn.t = simulator_.now();
        spawn.kind = obs::EventKind::kAtkSpawn;
        spawn.node = bad;
        recorder_->emit(spawn);
      }
    }
  }
  const auto start = std::chrono::steady_clock::now();
  simulator_.run_until(t);
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (watch_running_) {
    // Terminate the carriage-return progress line so subsequent stderr
    // output starts on a fresh line.
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    watch_running_ = false;
  }
}

obs::ProfileReport Network::profile() const {
  obs::ProfileReport report;
  report.enabled = config_.obs.profile;
  report.wall_seconds = wall_seconds_;
  report.events_executed = simulator_.executed();
  report.max_queue_depth = simulator_.max_pending();
  report.virtual_seconds = simulator_.now();
  if (profiler_) report.layers = profiler_->layers();
  return report;
}

}  // namespace lw::scenario
