// Experiment configuration (Table 2 of the paper plus protocol constants).
//
// ExperimentConfig::table2_defaults() reproduces the paper's simulation
// setup: r = 30 m, N_B = 8, lambda = 1/10 s, destination change rate =
// 1/200 s, TOut_Route = 50 s, 40 kbps channel, attack at 50 s, 2000 s runs,
// field side scaled with sqrt(N) to keep density fixed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "attack/coordinator.h"
#include "defense/defense.h"
#include "fault/plan.h"
#include "mac/csma_mac.h"
#include "neighbor/discovery.h"
#include "obs/options.h"
#include "neighbor/dynamic_join.h"
#include "phy/phy_params.h"
#include "routing/routing.h"
#include "routing/traffic.h"
#include "topology/field.h"
#include "util/sim_time.h"

namespace lw::scenario {

struct ExperimentConfig {
  // ---- Topology ----
  std::size_t node_count = 100;
  double radio_range = 30.0;
  /// Target average neighbor count N_B; determines the field side.
  double target_neighbors = 8.0;
  /// Explicit field side (meters); overrides the density-derived side.
  std::optional<double> field_side;
  /// Explicit node positions (e.g. the paper's Figure 1/2 chain
  /// topologies); overrides random placement entirely. Must cover
  /// node_count + late_joiners nodes.
  std::optional<std::vector<topo::Position>> positions;
  /// Topology attempts until the constraints (connectivity, malicious
  /// separation) hold.
  int max_topology_retries = 200;

  // ---- Determinism ----
  std::uint64_t seed = 1;
  std::uint64_t key_master_secret = 0x11223344AABBCCDDull;

  // ---- Stack parameters ----
  phy::PhyParams phy;
  mac::MacParams mac;
  nbr::DiscoveryParams discovery;
  nbr::JoinParams join;
  routing::RoutingParams routing;
  routing::TrafficParams traffic;
  /// Defense backend selection plus every backend's parameter block
  /// (defense.name picks one of defense::registry()). finalize() aligns
  /// the leash block's range/bandwidth with the PHY and syncs the
  /// per-backend master switches with the selection.
  defense::DefenseConfig defense;

  // ---- Incremental deployment (Sections 4.1 / 7) ----
  /// Nodes beyond node_count that join the live network later via the
  /// dynamic challenge-response discovery. Requires oracle_discovery off.
  std::size_t late_joiners = 0;
  /// When the first late node joins; subsequent joiners are staggered.
  Time late_join_time = 120.0;
  Duration late_join_stagger = 10.0;

  // ---- Attack ----
  /// M in the paper; 0 disables the attack entirely.
  std::size_t malicious_count = 2;
  /// Explicit attacker identities (e.g. Figure 1's X and Y); overrides
  /// the random separated pick. Ignored when empty.
  std::vector<NodeId> malicious_nodes;
  attack::AttackParams attack;
  /// Malicious nodes are placed pairwise farther apart than this many hops
  /// ("more than 2 hops away from each other").
  std::size_t min_malicious_hop_separation = 3;

  // ---- Fault injection (robustness experiments) ----
  /// Scheduled crashes, link outages, guard framing and frame corruption.
  /// Empty by default; an empty plan is guaranteed zero-cost (no events
  /// scheduled, traces byte-identical to a build without faults).
  fault::FaultPlan fault;

  // ---- Run ----
  Time duration = 2000.0;
  /// Bootstrap neighbor tables from geometry instead of running the
  /// discovery message exchange (fast unit-test mode).
  bool oracle_discovery = false;

  // ---- Observability ----
  /// Typed event recording (trace / counters / profiling). All off by
  /// default; the stack then skips every emit site on a null check.
  obs::Options obs;

  /// The paper's Table 2 setup. defense.name selects protected
  /// ("liteworp", the default) vs baseline ("none") runs.
  static ExperimentConfig table2_defaults();

  /// Recomputes derived values (field side, collision-free discovery
  /// window, traffic start) after fields are edited. Idempotent.
  /// run_experiment and the sweep engine call it internally, so forgetting
  /// it is no longer possible on those paths.
  void finalize();

  /// Rejects contradictory setups (e.g. late joiners with oracle
  /// discovery) with std::invalid_argument instead of silent misbehavior.
  /// Called internally by run_experiment and the sweep engine.
  void validate() const;

  /// Human-readable parameter dump (Table 2 bench).
  std::string summary() const;
};

}  // namespace lw::scenario
