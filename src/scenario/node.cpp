#include "scenario/node.h"

#include "obs/profiler.h"
#include "util/logging.h"

namespace lw::scenario {

Node::Node(NodeId id, const ExperimentConfig& config,
           sim::Simulator& simulator, phy::Medium& medium,
           const crypto::KeyManager& keys, pkt::PacketFactory& factory,
           stats::MetricsCollector* metrics, Rng rng, bool malicious,
           attack::WormholeCoordinator* coordinator, obs::Recorder* recorder)
    : id_(id),
      config_(config),
      simulator_(simulator),
      keys_(keys),
      factory_(factory),
      rng_(rng),
      recorder_(recorder),
      radio_(id),
      mac_(simulator, medium, radio_, Rng(rng_.engine()()), config.mac,
           recorder),
      discovery_(*this, table_, config.discovery),
      join_(*this, table_, config.join),
      routing_(*this, table_, config.routing, metrics),
      traffic_(*this, routing_, config.node_count, config.traffic) {
  if (malicious) {
    malicious_agent_ = std::make_unique<attack::MaliciousAgent>(
        *this, table_, *coordinator, metrics);
    // The leash is a receive-side filter every node applies (a malicious
    // node still checks stamps on frames it processes); detection backends
    // never run on the nodes they would be detecting.
    if (config.defense.name == "leash") {
      defense_ = defense::make(
          config.defense, {.env = *this, .table = table_, .routing = routing_,
                           .observer = metrics});
    }
  } else {
    defense_ = defense::make(
        config.defense, {.env = *this, .table = table_, .routing = routing_,
                         .observer = metrics});
  }
  medium.attach(&radio_);
  mac_.set_upcall([this](const pkt::Packet& p) { handle_frame(p); });
}

Node::~Node() = default;

void Node::start(const topo::DiscGraph& graph) {
  deployed_ = true;
  if (config_.oracle_discovery) {
    discovery_.bootstrap_from_oracle(graph);
  } else {
    discovery_.start();
  }
  if (defense_) defense_->start();
  traffic_.start();
}

void Node::start_late() {
  deployed_ = true;
  if (defense_) defense_->start();
  join_.start_join();
  traffic_.start_at(simulator_.now() + config_.join.settle_time + 4.0);
}

void Node::enable_hardening(Duration age_timeout, Duration sweep_interval) {
  if (hardening_) return;
  hardening_ = true;
  age_timeout_ = age_timeout;
  sweep_interval_ = sweep_interval;
  harden_start_ = simulator_.now();
  // A next hop that exhausts link-layer retries is unreachable (crashed or
  // isolated): tear down every cached route through it so the next packet
  // re-discovers instead of feeding a black hole.
  mac_.set_send_failed(
      [this](const pkt::Packet& p) { routing_.on_send_failed(p); });
  // Recovery latency: the sample closes when a rebooted node first
  // re-authenticates a neighbor through the challenge-response join.
  join_.set_on_neighbor_gained([this](NodeId) {
    if (recover_started_ < 0.0) return;
    recovery_latencies_.push_back(simulator_.now() - recover_started_);
    recover_started_ = -1.0;
  });
  schedule_age_sweep();
}

void Node::crash() {
  alive_ = false;
  deployed_ = false;
  mac_.reset();
  radio_.reset_timing();
  routing_.reset();
  traffic_.stop();
  join_.reset();
  if (defense_) defense_->reset();
  table_.clear();
  last_heard_.assign(last_heard_.size(), -1.0);
}

void Node::recover() {
  alive_ = true;
  deployed_ = true;
  harden_start_ = simulator_.now();
  recover_started_ = simulator_.now();
  // Identical to a late deployment: the challenge-response join is how a
  // rebooted node proves itself back into its old neighborhood (peers hold
  // it as known-but-not-admitted, so their hellos get re-challenged).
  if (defense_) defense_->start();
  join_.start_join();
  traffic_.start_at(simulator_.now() + config_.join.settle_time + 4.0);
}

void Node::touch_neighbor(NodeId peer) {
  if (peer == kInvalidNode || peer == id_) return;
  if (peer >= last_heard_.size()) last_heard_.resize(peer + 1, -1.0);
  last_heard_[peer] = simulator_.now();
}

void Node::age_out_neighbors() {
  const Time now = simulator_.now();
  // Copy: expire_neighbor edits the order vector we iterate.
  const util::PoolVector<NodeId> neighbors = table_.neighbors();
  for (NodeId peer : neighbors) {
    if (table_.is_revoked(peer)) continue;  // isolation outlives silence
    const Time heard =
        peer < last_heard_.size() ? last_heard_[peer] : -1.0;
    const Time baseline = heard < 0.0 ? harden_start_ : heard;
    if (now - baseline < age_timeout_) continue;
    LW_INFO << "node " << id_ << " aged out silent neighbor " << peer
            << " at t=" << now;
    table_.expire_neighbor(peer);
    join_.forget(peer);  // its next JOIN_HELLO gets a fresh challenge
    routing_.cache().evict_containing(peer);
  }
}

void Node::schedule_age_sweep() {
  simulator_.schedule(sweep_interval_, [this] {
    if (alive_) age_out_neighbors();
    schedule_age_sweep();
  });
}

void Node::send(pkt::Packet packet, mac::SendOptions options) {
  if (!alive_) return;  // a crashed node's stale timers fire into the void
  if (packet.claimed_tx == kInvalidNode) packet.claimed_tx = id_;
  // A node is a guard of its own outgoing links: feed the defense with the
  // control traffic we transmit so the fabrication/drop checks have our
  // transmit records.
  if (defense_ && pkt::is_watched_control(packet.type)) {
    defense_->observe(packet);
  }
  mac_.send(std::move(packet), options);
}

void Node::handle_frame(const pkt::Packet& packet) {
  if (!deployed_) return;  // not in the field yet (or crashed)
  if (hardening_) touch_neighbor(packet.claimed_tx);

  obs::RunProfiler* profiler = recorder_ ? recorder_->profiler() : nullptr;

  // Promiscuous decode of a unicast meant for someone else: the raw
  // material of both LITEWORP guarding and the watch-buffer bookkeeping.
  if (recorder_ && recorder_->wants(obs::Layer::kMac) &&
      packet.link_dst != kInvalidNode && packet.link_dst != id_) {
    recorder_->emit({.t = simulator_.now(),
                     .kind = obs::EventKind::kMacOverhear,
                     .node = id_,
                     .peer = packet.claimed_tx,
                     .packet = &packet});
  }

  // Byzantine nodes act first; a consumed frame never reaches the honest
  // stack.
  if (malicious_agent_) {
    obs::ScopedTimer timer(profiler, obs::Layer::kAttack);
    if (malicious_agent_->intercept(packet)) return;
  }

  // Honest promiscuous tap: guards watch everything they can decode.
  if (defense_) {
    obs::ScopedTimer timer(profiler, obs::Layer::kMonitor);
    defense_->observe(packet);
  }

  switch (packet.type) {
    case pkt::PacketType::kHello:
    case pkt::PacketType::kHelloReply:
    case pkt::PacketType::kNeighborList: {
      obs::ScopedTimer timer(profiler, obs::Layer::kNeighbor);
      discovery_.handle(packet);
      return;
    }

    case pkt::PacketType::kAlert:
      if (defense_) {
        obs::ScopedTimer timer(profiler, obs::Layer::kMonitor);
        defense_->handle_alert(packet);
      }
      return;

    case pkt::PacketType::kRouteRequest:
    case pkt::PacketType::kRouteReply:
    case pkt::PacketType::kData:
    case pkt::PacketType::kRouteError: {
      // Only frames addressed to us (or broadcast) are processed further.
      if (packet.link_dst != kInvalidNode && packet.link_dst != id_) return;
      // Receiver-side defense verdict (admission checks, leash bounds, or
      // revocation enforcement, depending on the backend).
      if (defense_ && !defense_->admit(packet)) return;
      obs::ScopedTimer timer(profiler, obs::Layer::kRouting);
      routing_.handle(packet);
      return;
    }

    case pkt::PacketType::kJoinHello:
    case pkt::PacketType::kJoinChallenge:
    case pkt::PacketType::kJoinResponse: {
      obs::ScopedTimer timer(profiler, obs::Layer::kNeighbor);
      join_.handle(packet);
      return;
    }

    case pkt::PacketType::kAck:
    case pkt::PacketType::kRts:
    case pkt::PacketType::kCts:
      return;  // consumed inside the MAC; never reaches the node
  }
}

}  // namespace lw::scenario
