#include "scenario/runner.h"
#include <cmath>
#include <utility>

namespace lw::scenario {

RunResult RunResult::from_metrics(const Network& network) {
  const stats::MetricsCollector& m = network.metrics();
  const phy::MediumStats& phy = network.medium().stats();

  RunResult r;
  r.seed = network.config().seed;
  r.average_degree = network.average_degree();
  r.data_originated = m.data_originated;
  r.data_delivered = m.data_delivered;
  r.data_dropped_malicious = m.data_dropped_malicious;
  r.data_dropped_no_route = m.data_dropped_no_route;
  r.discoveries = m.discoveries;
  r.routes_established = m.routes_established;
  r.wormhole_routes = m.wormhole_routes;
  r.routes_via_malicious = m.routes_via_malicious;
  r.wormhole_replays = m.wormhole_replays;
  r.suspicions_fabrication = m.suspicions_fabrication;
  r.suspicions_drop = m.suspicions_drop;
  r.suspicions_anomaly = m.suspicions_anomaly;
  r.false_suspicions = m.false_suspicions;
  r.local_detections = m.local_detections;
  r.alerts_sent = m.alerts_sent;
  r.isolation_events = m.isolation_events;
  r.false_isolations = m.false_isolations;
  r.malicious_count = network.malicious_ids().size();
  r.malicious_isolated = m.malicious_isolated_count();
  r.all_isolated = m.all_malicious_isolated();
  r.isolation_latency =
      m.isolation_latency(network.config().attack.start_time);
  r.frames_transmitted = phy.frames_transmitted;
  r.frames_delivered = phy.frames_delivered;
  r.frames_collided = phy.frames_collided;
  r.mean_delivery_latency = m.mean_delivery_latency();
  r.p95_delivery_latency = m.latency_percentile(95.0);
  r.duration = network.config().duration;
  r.attack_start = network.config().attack.start_time;
  r.defense_name = network.config().defense.name;
  r.defense_cost = network.defense_cost();
  r.fault_active = !network.config().fault.empty();
  r.nodes_crashed = network.fault_crashes();
  r.nodes_recovered = network.fault_recoveries();
  r.recovery_latencies = network.recovery_latencies();
  r.drop_times.assign(m.drop_times.begin(), m.drop_times.end());
  r.wormhole_route_times.assign(m.wormhole_route_times.begin(),
                                m.wormhole_route_times.end());
  r.trace_jsonl = network.trace_jsonl();
  r.registry = network.registry_snapshot();
  r.profile = network.profile();
  r.incidents = network.incidents();
  r.forensics = network.forensics_summary();
  r.series = network.series();
  r.spans = network.spans();
  return r;
}

RunResult run_experiment(ExperimentConfig config,
                         double wall_timeout_seconds) {
  config.finalize();
  config.validate();
  Network network(std::move(config));
  network.simulator().set_wall_timeout(wall_timeout_seconds);
  network.run();
  return RunResult::from_metrics(network);
}

std::vector<SeriesPoint> cumulative_series(const std::vector<Time>& times,
                                           Time horizon, Time dt) {
  std::vector<SeriesPoint> series;
  std::size_t index = 0;
  for (Time t = 0.0; t <= horizon + dt / 2; t += dt) {
    while (index < times.size() && times[index] <= t) ++index;
    series.push_back({t, static_cast<double>(index)});
  }
  return series;
}

namespace {

/// Welford online mean/variance; reports the standard error of the mean.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  double mean() const { return mean_; }
  double sem() const {
    if (n_ < 2) return 0.0;
    const double variance = m2_ / static_cast<double>(n_ - 1);
    return std::sqrt(variance / static_cast<double>(n_));
  }

 private:
  int n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace

Aggregate Aggregate::reduce(const std::vector<RunResult>& all_results) {
  Aggregate agg;
  // Failed replicas (watchdog kills) carry no meaningful outputs: count
  // them, then average only over the completed runs.
  std::vector<const RunResult*> results;
  results.reserve(all_results.size());
  for (const RunResult& r : all_results) {
    if (r.failed) {
      ++agg.failed_runs;
    } else {
      results.push_back(&r);
    }
  }
  agg.runs = static_cast<int>(results.size());
  if (results.empty()) return agg;

  double latency_sum = 0.0;
  int latency_runs = 0;
  double recovery_sum = 0.0;
  RunningStat dropped;
  RunningStat wormhole_fraction;
  RunningStat detected;

  for (const RunResult* rp : results) {
    const RunResult& r = *rp;
    if (r.fault_active) {
      agg.fault_active = true;
      agg.nodes_crashed += static_cast<double>(r.nodes_crashed);
      agg.nodes_recovered += static_cast<double>(r.nodes_recovered);
      for (Duration latency : r.recovery_latencies) {
        recovery_sum += latency;
        ++agg.recovery_samples;
      }
      agg.framed_accusations +=
          static_cast<double>(r.forensics.framed_accusations);
      agg.framed_isolations +=
          static_cast<double>(r.forensics.framed_isolations);
    }
    agg.data_originated += static_cast<double>(r.data_originated);
    agg.data_dropped_malicious +=
        static_cast<double>(r.data_dropped_malicious);
    dropped.add(r.fraction_dropped());
    agg.routes_established += static_cast<double>(r.routes_established);
    agg.wormhole_routes += static_cast<double>(r.wormhole_routes);
    wormhole_fraction.add(r.fraction_wormhole_routes());
    agg.false_isolations += static_cast<double>(r.false_isolations);
    if (r.malicious_count > 0) {
      detected.add(static_cast<double>(r.malicious_isolated) /
                   static_cast<double>(r.malicious_count));
    } else {
      detected.add(1.0);  // nothing to detect
    }
    if (r.isolation_latency) {
      latency_sum += *r.isolation_latency;
      ++latency_runs;
      ++agg.runs_fully_isolated;
    }
  }

  const double n = static_cast<double>(results.size());
  agg.data_originated /= n;
  agg.data_dropped_malicious /= n;
  agg.fraction_dropped = dropped.mean();
  agg.fraction_dropped_sem = dropped.sem();
  agg.routes_established /= n;
  agg.wormhole_routes /= n;
  agg.fraction_wormhole_routes = wormhole_fraction.mean();
  agg.fraction_wormhole_routes_sem = wormhole_fraction.sem();
  agg.false_isolations /= n;
  agg.detection_probability = detected.mean();
  agg.detection_probability_sem = detected.sem();
  if (latency_runs > 0) {
    agg.mean_isolation_latency = latency_sum / latency_runs;
  }
  agg.nodes_crashed /= n;
  agg.nodes_recovered /= n;
  agg.framed_accusations /= n;
  agg.framed_isolations /= n;
  if (agg.recovery_samples > 0) {
    agg.mean_recovery_latency =
        recovery_sum / static_cast<double>(agg.recovery_samples);
  }
  return agg;
}

}  // namespace lw::scenario
