// Experiment runner: one run -> RunResult; many seeds -> Aggregate.
//
// The benches that regenerate the paper's figures are thin loops over
// these helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "scenario/network.h"

namespace lw::scenario {

/// Scalar outputs of one run (Section 6 output parameters).
struct RunResult {
  std::uint64_t seed = 0;
  double average_degree = 0.0;

  /// Set when the run did not complete (wall-clock watchdog fired); every
  /// other field is then meaningless. Failed replicas are excluded from
  /// Aggregate::reduce and flagged in the sweep JSON.
  bool failed = false;
  std::string fail_reason;

  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped_malicious = 0;
  std::uint64_t data_dropped_no_route = 0;
  std::uint64_t discoveries = 0;
  std::uint64_t routes_established = 0;
  std::uint64_t wormhole_routes = 0;
  std::uint64_t routes_via_malicious = 0;
  std::uint64_t wormhole_replays = 0;

  std::uint64_t suspicions_fabrication = 0;
  std::uint64_t suspicions_drop = 0;
  std::uint64_t suspicions_anomaly = 0;
  std::uint64_t false_suspicions = 0;
  std::uint64_t local_detections = 0;
  std::uint64_t alerts_sent = 0;
  std::uint64_t isolation_events = 0;
  std::uint64_t false_isolations = 0;

  std::size_t malicious_count = 0;
  std::size_t malicious_isolated = 0;
  bool all_isolated = false;
  std::optional<Duration> isolation_latency;

  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_collided = 0;

  double mean_delivery_latency = 0.0;
  double p95_delivery_latency = 0.0;

  Time duration = 0.0;
  Time attack_start = 0.0;

  // ---- Defense identity + overhead (uniform across backends) ----
  /// The active backend's registered name ("liteworp", "leash", ...).
  std::string defense_name;
  /// Network-wide overhead counters summed over all nodes in id order.
  defense::CostSnapshot defense_cost;

  // ---- Robustness outputs (a FaultPlan ran; all zero/empty otherwise) ----
  /// True when the run executed a non-empty FaultPlan; gates the fault
  /// block in the sweep JSON so clean output stays byte-identical.
  bool fault_active = false;
  std::uint64_t nodes_crashed = 0;
  std::uint64_t nodes_recovered = 0;
  /// Crash-recovery latencies (recover -> first re-authenticated
  /// neighbor), one per completed recovery.
  std::vector<Duration> recovery_latencies;

  /// Times of each wormhole-dropped data packet (Figure 8 series).
  std::vector<Time> drop_times;
  /// Times of each wormhole route establishment.
  std::vector<Time> wormhole_route_times;

  // ---- Observability outputs (populated per config.obs) ----
  /// The run's JSONL event trace; empty unless obs.trace. Buffered here so
  /// sweeps can write traces in spec order at any thread count.
  std::string trace_jsonl;
  /// Event-counter snapshot; empty unless obs.counters.
  obs::RegistrySnapshot registry;
  /// Profiling report; enabled mirrors obs.profile.
  obs::ProfileReport profile;
  /// Labeled detection incidents + rollup; enabled mirrors obs.forensics.
  std::vector<forensics::Incident> incidents;
  forensics::ForensicsSummary forensics;
  /// Sim-time telemetry series; enabled mirrors obs.series.
  obs::SeriesReport series;
  /// Protocol-transaction spans; enabled mirrors obs.spans.
  obs::SpanReport spans;

  double fraction_dropped() const {
    return data_originated == 0
               ? 0.0
               : static_cast<double>(data_dropped_malicious) /
                     static_cast<double>(data_originated);
  }
  double fraction_wormhole_routes() const {
    return routes_established == 0
               ? 0.0
               : static_cast<double>(wormhole_routes) /
                     static_cast<double>(routes_established);
  }

  /// Extracts every output parameter from a finished network's collectors
  /// (metrics, PHY stats, topology) — the single transcription point.
  static RunResult from_metrics(const Network& network);
};

/// Builds a network from `config`, runs it to completion, extracts results.
/// Calls config.finalize() and config.validate() internally, so callers
/// cannot forget either. With `wall_timeout_seconds` > 0 a run still
/// executing that much real time later throws sim::WallClockTimeout (the
/// sweep engine converts that into a failed replica).
RunResult run_experiment(ExperimentConfig config,
                         double wall_timeout_seconds = 0.0);

/// Point of a time series.
struct SeriesPoint {
  Time t = 0.0;
  double value = 0.0;
};

/// Cumulative count of `times` sampled every `dt` over [0, horizon].
std::vector<SeriesPoint> cumulative_series(const std::vector<Time>& times,
                                           Time horizon, Time dt);

/// Seed-averaged scalar outputs with standard errors of the means.
struct Aggregate {
  int runs = 0;
  double data_originated = 0.0;
  double data_dropped_malicious = 0.0;
  double fraction_dropped = 0.0;
  double fraction_dropped_sem = 0.0;
  double routes_established = 0.0;
  double wormhole_routes = 0.0;
  double fraction_wormhole_routes = 0.0;
  double fraction_wormhole_routes_sem = 0.0;
  double false_isolations = 0.0;
  /// Fraction of malicious nodes completely isolated, averaged over runs.
  double detection_probability = 0.0;
  double detection_probability_sem = 0.0;
  /// Mean isolation latency over runs that reached complete isolation.
  std::optional<Duration> mean_isolation_latency;
  int runs_fully_isolated = 0;

  // ---- Robustness rollup (nonzero only when replicas ran FaultPlans) ----
  /// Replicas excluded from the averages because they failed (watchdog).
  int failed_runs = 0;
  /// True when any replica ran a non-empty FaultPlan.
  bool fault_active = false;
  double nodes_crashed = 0.0;
  double nodes_recovered = 0.0;
  /// Mean crash-recovery latency over all completed recoveries.
  double mean_recovery_latency = 0.0;
  std::uint64_t recovery_samples = 0;
  /// Framing outcome (forensics flt.frame ground truth), averaged.
  double framed_accusations = 0.0;
  double framed_isolations = 0.0;

  /// The one aggregation code path (means + SEMs): used by average_runs and
  /// the sweep engine. Order-sensitive only in float-rounding terms, so
  /// callers must pass results in seed order for bit-identical output.
  static Aggregate reduce(const std::vector<RunResult>& results);
};

/// Runs `runs` replicas with seeds base_seed, base_seed+1, ... and averages.
/// Implemented as a single-point sweep; `threads` > 1 (or 0 = all cores)
/// fans the replicas across workers with bit-identical results.
Aggregate average_runs(ExperimentConfig config, int runs,
                       std::uint64_t base_seed, int threads = 1);

}  // namespace lw::scenario
