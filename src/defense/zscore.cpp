#include "defense/zscore.h"

#include <algorithm>
#include <cmath>

#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::defense {

ZScoreDefense::ZScoreDefense(const DefenseConfig& config, const Wiring& wiring)
    : env_(wiring.env),
      table_(wiring.table),
      routing_(wiring.routing),
      params_(config.zscore),
      observer_(wiring.observer) {
  if (params_.enabled) judged_.reserve(4096);
}

void ZScoreDefense::reset() {
  ++epoch_;
  watch_.clear();
  stats_.clear();
  detected_.clear();
  isolated_.clear();
  alert_buffer_.clear();
  judged_.clear();
  seen_alerts_.clear();
  last_alert_.clear();
}

void ZScoreDefense::observe(const pkt::Packet& packet) {
  if (!params_.enabled) return;
  ++frames_observed_;
  if (!pkt::is_watched_control(packet.type)) return;
  observe_control(packet);
}

void ZScoreDefense::observe_control(const pkt::Packet& packet) {
  const NodeId sender = packet.claimed_tx;
  if (detected_.count(sender) != 0) {
    // Same persistence rule as the LITEWORP guard: a convicted node still
    // pushing control traffic means some neighbors have not isolated it
    // yet. Re-send the accusation, rate-limited.
    Time& last = last_alert_[sender];
    if (env_.now() - last >= params_.realert_interval) {
      last = env_.now();
      send_alert(sender);
    }
    return;
  }
  const bool sender_known =
      sender == env_.id() || table_.is_active_neighbor(sender);
  if (!sender_known) return;  // only first-hop neighbors are scored

  // Judge BEFORE recording, so a replay cannot be its own alibi for
  // has_any_transmit (same discipline as the LITEWORP fabrication check).
  judge_forward(packet);
  watch_.record_transmit(packet.flow_key(), sender, env_.now(),
                         params_.transmit_record_ttl);
}

void ZScoreDefense::judge_forward(const pkt::Packet& packet) {
  const NodeId sender = packet.claimed_tx;
  const NodeId prev = packet.announced_prev_hop;
  if (prev == kInvalidNode) return;   // originations carry no claim to test
  if (sender == env_.id()) return;    // we do not score ourselves
  const bool prev_known = prev == env_.id() || table_.is_active_neighbor(prev);
  if (!prev_known || !table_.is_active_neighbor(sender)) return;

  // One verdict per (flow, forwarder), however many link-layer
  // retransmissions we overhear.
  if (judged_.size() > 8192) judged_.clear();  // bound stale flows
  if (!judged_.insert(lite::FlowNodeKey{packet.flow_key(), sender}).second) {
    return;
  }

  NeighborStats& stats = stats_[sender];
  ++stats.observed;
  if (watch_.has_any_transmit(packet.flow_key(), env_.now())) return;
  // Forward of a flow this node never overheard at all: the wormhole
  // replay signature, scored statistically instead of per-packet.
  ++stats.anomalies;
  if (observer_) {
    observer_->on_suspicion(env_.id(), sender, lite::Suspicion::kAnomaly);
  }
  emit_mon(obs::EventKind::kMonSuspicion, sender, zscore_of(sender),
           obs::kSuspicionAnomaly);
  maybe_detect(sender);
}

double ZScoreDefense::anomaly_rate(NodeId neighbor) const {
  auto it = stats_.find(neighbor);
  if (it == stats_.end() || it->second.observed == 0) return 0.0;
  return static_cast<double>(it->second.anomalies) /
         static_cast<double>(it->second.observed);
}

double ZScoreDefense::zscore_of(NodeId neighbor) const {
  auto self = stats_.find(neighbor);
  if (self == stats_.end() ||
      self->second.observed < static_cast<std::uint64_t>(params_.min_samples)) {
    return 0.0;
  }
  int peers = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [id, stats] : stats_) {
    if (id == neighbor) continue;
    if (stats.observed < static_cast<std::uint64_t>(params_.min_samples)) {
      continue;
    }
    const double rate = static_cast<double>(stats.anomalies) /
                        static_cast<double>(stats.observed);
    ++peers;
    sum += rate;
    sum_sq += rate * rate;
  }
  // The suspect itself counts toward the peer quorum: min_peers = 3 means
  // "the suspect plus at least two others to form a baseline".
  if (peers + 1 < params_.min_peers) return 0.0;
  const double mean = sum / peers;
  double variance = sum_sq / peers - mean * mean;
  if (variance < 0.0) variance = 0.0;  // rounding
  const double std = std::max(std::sqrt(variance), params_.std_floor);
  return (anomaly_rate(neighbor) - mean) / std;
}

void ZScoreDefense::maybe_detect(NodeId suspect) {
  const NeighborStats& stats = stats_.at(suspect);
  if (stats.observed < static_cast<std::uint64_t>(params_.min_samples)) return;
  const double rate = static_cast<double>(stats.anomalies) /
                      static_cast<double>(stats.observed);
  if (rate < params_.min_anomaly_rate) return;
  if (zscore_of(suspect) < params_.z_threshold) return;
  detect_and_alert(suspect);
}

void ZScoreDefense::detect_and_alert(NodeId suspect) {
  detected_.insert(suspect);
  isolated_.insert(suspect);
  table_.revoke(suspect);
  routing_.on_revoked(suspect);
  if (observer_) observer_->on_local_detection(env_.id(), suspect);
  emit_mon(obs::EventKind::kMonDetection, suspect, zscore_of(suspect));
  LW_INFO << "zscore guard " << env_.id() << " detected node " << suspect
          << " at t=" << env_.now();

  if (observer_) observer_->on_alert_sent(env_.id(), suspect);
  last_alert_[suspect] = env_.now();
  send_alert(suspect);
  for (int repeat = 1; repeat < params_.alert_repeats; ++repeat) {
    env_.simulator().schedule(repeat * params_.alert_repeat_gap,
                              [this, suspect, epoch = epoch_] {
                                if (epoch == epoch_) send_alert(suspect);
                              });
  }
}

void ZScoreDefense::send_alert(NodeId suspect) {
  const util::PoolVector<NodeId>* recipients = table_.list_of(suspect);
  pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
  alert.origin = env_.id();
  alert.seq = ++alert_seq_;  // fresh flow per (re)transmission
  alert.accused = suspect;
  alert.accusing_guard = env_.id();
  alert.ttl = static_cast<std::uint8_t>(params_.alert_ttl);
  alert.auth_payload_into(auth_buf_);
  const util::PoolString& payload = auth_buf_;
  if (recipients != nullptr) {
    sign_peers_.clear();
    for (NodeId recipient : *recipients) {
      if (recipient == env_.id() || recipient == suspect) continue;
      sign_peers_.push_back(recipient);
    }
    // One multi-buffer sweep tags the payload for every recipient at once.
    sign_tags_.resize(sign_peers_.size());
    env_.keys().sign_batch(env_.id(), sign_peers_, payload,
                           sign_tags_.data());
    alert.alert_auth.reserve(sign_peers_.size());
    for (std::size_t i = 0; i < sign_peers_.size(); ++i) {
      alert.alert_auth.push_back({sign_peers_[i], sign_tags_[i]});
    }
  }
  seen_alerts_.insert(alert.flow_key());  // do not re-process our own
  ++alerts_transmitted_;
  alert_bytes_ += alert.wire_size();
  emit_mon(obs::EventKind::kMonAlert, suspect, 0.0);
  env_.send(std::move(alert), {.flood_jitter = true});
}

void ZScoreDefense::emit_false_alert(NodeId victim) {
  if (!params_.enabled) return;
  // Compromised guard: a genuine-looking authenticated accusation with no
  // statistics behind it. No local revocation (same as the LITEWORP
  // framer): the gamma threshold is what must hold the line.
  send_alert(victim);
}

void ZScoreDefense::handle_alert(const pkt::Packet& packet) {
  if (!params_.enabled) return;
  if (packet.origin == env_.id()) return;
  if (!seen_alerts_.insert(packet.flow_key()).second) return;
  relay_alert(packet);

  const NodeId guard = packet.accusing_guard;
  const NodeId accused = packet.accused;
  if (guard != packet.origin) return;           // malformed
  if (!table_.knows_neighbor(accused)) return;  // not my concern
  if (!table_.in_list_of(accused, guard)) return;

  auto entry = std::find_if(
      packet.alert_auth.begin(), packet.alert_auth.end(),
      [this](const pkt::AlertAuth& a) { return a.recipient == env_.id(); });
  if (entry == packet.alert_auth.end()) return;
  packet.auth_payload_into(auth_buf_);
  if (!env_.keys().verify(guard, env_.id(), auth_buf_, entry->tag)) {
    LW_WARN << "node " << env_.id() << ": unauthentic alert claiming guard "
            << guard;
    return;
  }

  auto& guards = alert_buffer_[accused];
  guards.insert(guard);
  if (isolated_.count(accused) != 0) return;
  if (static_cast<int>(guards.size()) >= params_.detection_confidence) {
    isolate(accused, static_cast<int>(guards.size()));
  }
  // No corroboration shortcut: this detector has no per-packet counter
  // whose bar a circulating accusation could lower.
}

void ZScoreDefense::isolate(NodeId suspect, int alerts) {
  isolated_.insert(suspect);
  table_.revoke(suspect);
  routing_.on_revoked(suspect);
  if (observer_) observer_->on_isolation(env_.id(), suspect, alerts);
  emit_mon(obs::EventKind::kMonIsolation, suspect,
           static_cast<double>(alerts));
  LW_INFO << "node " << env_.id() << " isolated " << suspect << " after "
          << alerts << " alerts at t=" << env_.now();
}

void ZScoreDefense::relay_alert(const pkt::Packet& packet) {
  if (packet.ttl == 0) return;
  pkt::Packet relay = env_.packet_factory().forward_copy(packet);
  relay.ttl = packet.ttl - 1;
  relay.announced_prev_hop = packet.claimed_tx;
  relay.claimed_tx = kInvalidNode;
  env_.send(std::move(relay), {.flood_jitter = true});
}

bool ZScoreDefense::admit(const pkt::Packet& packet) {
  if (!params_.enabled) return true;
  // Isolation enforcement only: no traffic from (or via) a revoked node.
  // The statistical evidence itself never drops individual frames.
  admission_stats_.accepted += 1;  // provisional; flipped below on reject
  const bool revoked_sender = table_.is_revoked(packet.claimed_tx);
  const bool revoked_prev = packet.announced_prev_hop != kInvalidNode &&
                            table_.is_revoked(packet.announced_prev_hop);
  if (!revoked_sender && !revoked_prev) return true;
  admission_stats_.accepted -= 1;
  if (revoked_sender) {
    ++admission_stats_.revoked_sender;
  } else {
    ++admission_stats_.revoked_prev_hop;
  }
  return false;
}

int ZScoreDefense::alert_count(NodeId suspect) const {
  auto it = alert_buffer_.find(suspect);
  return it == alert_buffer_.end() ? 0 : static_cast<int>(it->second.size());
}

CostSnapshot ZScoreDefense::cost() const {
  std::size_t alert_entries = 0;
  for (const auto& [accused, guards] : alert_buffer_) {
    (void)accused;
    alert_entries += guards.size();
  }
  return {.frames_observed = frames_observed_,
          .admission_checks =
              admission_stats_.accepted + admission_stats_.total_rejected(),
          .admission_rejects = admission_stats_.total_rejected(),
          .control_messages = alerts_transmitted_,
          .control_bytes = alert_bytes_,
          // Watch buffer + 16 bytes per neighbor statistic + 4-byte alert
          // entries (the LITEWORP storage model extended with the stats).
          .storage_bytes = watch_.storage_bytes() + 16 * stats_.size() +
                           4 * alert_entries};
}

void ZScoreDefense::emit_mon(obs::EventKind kind, NodeId peer, double value,
                             std::uint8_t detail) {
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
    r->emit({.t = env_.now(),
             .kind = kind,
             .node = env_.id(),
             .peer = peer,
             .value = value,
             .detail = detail,
             .def = static_cast<std::uint8_t>(obs::DefenseTag::kZScore)});
  }
}

}  // namespace lw::defense
