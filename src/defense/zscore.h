// Z-score neighbor-table detector (after arXiv 2505.09405).
//
// Receiver-side statistical cousin of the LITEWORP fabrication check: where
// LITEWORP convicts on per-packet evidence (V_f per fabricated forward),
// this backend convicts on a per-neighbor anomaly RATE that is an outlier
// among the node's other neighbors. An "anomaly" is a judged control
// forward whose flow this node never overheard from anyone — the wormhole
// replay signature — so a tunnel endpoint anomalizes nearly everything it
// forwards while honest neighbors only anomalize on rare collision losses.
//
// Conviction requires all three of:
//   * enough samples on the suspect (min_samples) and enough qualified
//     peers to form a baseline (min_peers),
//   * an absolute anomaly rate of at least min_anomaly_rate,
//   * a leave-one-out z-score of at least z_threshold against the other
//     qualified neighbors' rates (std floored at std_floor).
//
// Convicted neighbors are revoked locally and accused through the same
// authenticated two-hop ALERT protocol as LITEWORP (distinct-accuser gamma
// isolation, TTL relay, epoch-guarded repeats), minus the corroboration
// shortcut — this detector has no MalC to lower a bar on.
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "crypto/hmac.h"
#include "defense/defense.h"
#include "liteworp/watch_buffer.h"

namespace lw::defense {

class ZScoreDefense final : public Defense {
 public:
  ZScoreDefense(const DefenseConfig& config, const Wiring& wiring);

  obs::DefenseTag tag() const override { return obs::DefenseTag::kZScore; }
  void reset() override;
  void observe(const pkt::Packet& packet) override;
  bool admit(const pkt::Packet& packet) override;
  void handle_alert(const pkt::Packet& packet) override;
  void emit_false_alert(NodeId victim) override;
  CostSnapshot cost() const override;
  const nbr::AdmissionStats& admission_stats() const override {
    return admission_stats_;
  }

  // ---- Introspection (tests) ----
  double anomaly_rate(NodeId neighbor) const;
  /// Leave-one-out z-score of `neighbor` against the other qualified
  /// neighbors; 0 while the baseline is too thin (min_peers).
  double zscore_of(NodeId neighbor) const;
  bool locally_detected(NodeId suspect) const {
    return detected_.count(suspect) != 0;
  }
  int alert_count(NodeId suspect) const;
  const ZScoreParams& params() const { return params_; }

 private:
  struct NeighborStats {
    std::uint64_t observed = 0;   // judged forwards
    std::uint64_t anomalies = 0;  // ... of flows never heard at all
  };

  void observe_control(const pkt::Packet& packet);
  void judge_forward(const pkt::Packet& packet);
  void maybe_detect(NodeId suspect);
  void detect_and_alert(NodeId suspect);
  void send_alert(NodeId suspect);
  void isolate(NodeId suspect, int alerts);
  void relay_alert(const pkt::Packet& packet);
  void emit_mon(obs::EventKind kind, NodeId peer, double value,
                std::uint8_t detail = 0);

  node::NodeEnv& env_;
  nbr::NeighborTable& table_;
  routing::OnDemandRouting& routing_;
  ZScoreParams params_;
  DetectionObserver* observer_;
  util::PoolString auth_buf_;
  /// Scratch for the batched alert-signing fan-out (recycled per alert).
  util::PoolVector<NodeId> sign_peers_;
  util::PoolVector<crypto::AuthTag> sign_tags_;

  lite::WatchBuffer watch_;
  /// Ordered map: the leave-one-out baseline iterates it, and ordered
  /// iteration keeps the floating-point summation order deterministic.
  std::map<NodeId, NeighborStats> stats_;
  std::unordered_set<NodeId> detected_;  // convicted locally
  std::unordered_set<NodeId> isolated_;  // revoked (locally or by alerts)
  std::unordered_map<NodeId, std::unordered_set<NodeId>> alert_buffer_;
  /// (flow, forwarder) pairs already judged (one verdict per packet).
  std::unordered_set<lite::FlowNodeKey, lite::FlowNodeKeyHash> judged_;
  std::unordered_set<FlowKey> seen_alerts_;
  std::unordered_map<NodeId, Time> last_alert_;
  nbr::AdmissionStats admission_stats_;
  SeqNo alert_seq_ = 0;
  std::uint64_t frames_observed_ = 0;
  std::uint64_t alerts_transmitted_ = 0;
  std::uint64_t alert_bytes_ = 0;
  /// Bumped by reset(); disarms scheduled alert repeats from before a crash.
  int epoch_ = 0;
};

}  // namespace lw::defense
