// Pluggable wormhole-defense backends.
//
// Every countermeasure the repo evaluates — LITEWORP's guard-based local
// monitoring, packet leashes, the Z-score neighbor-table detector, and the
// undefended baseline — plugs into one interface with uniform hooks:
//
//   observe(frame)    promiscuous tap: every frame the radio decodes, plus
//                     every watched control frame the node itself sends;
//   admit(frame)      receiver-side verdict on a routed frame BEFORE it
//                     reaches the routing layer (false = drop);
//   handle_alert()    backend-specific control traffic (ALERT frames);
//   cost()            uniform overhead accounting for head-to-head benches.
//
// The scenario layer selects a backend by name through defense::make(); the
// per-backend parameter blocks live in DefenseConfig, validated alongside
// the rest of ExperimentConfig. Detection outcomes flow through the shared
// DetectionObserver (ground-truth classification in stats::MetricsCollector)
// and through def-tagged mon.* trace events (forensics attribution).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "leash/leash.h"
#include "liteworp/monitor.h"
#include "neighbor/admission.h"
#include "node/node_env.h"
#include "obs/event.h"
#include "routing/routing.h"

namespace lw::defense {

/// Detection hooks every backend reports through. The LITEWORP observer
/// vocabulary (suspicion / local detection / alert / isolation) turned out
/// to fit every backend, so it IS the shared vocabulary.
using DetectionObserver = lite::MonitorObserver;

/// Z-score neighbor-table detector parameters (after arXiv 2505.09405).
///
/// The detector keeps, per first-hop neighbor, how many of its control
/// forwards announced a previous hop whose flow this node never overheard
/// at all ("anomalies"). A wormhole endpoint replaying tunneled control
/// traffic anomalizes nearly every forward; honest neighbors only do so on
/// rare collision losses. The per-neighbor anomaly RATE is then scored
/// against the other neighbors' rates (leave-one-out z-score): conviction
/// needs the neighbor to be a statistical outlier among its peers, not just
/// noisy in absolute terms.
struct ZScoreParams {
  /// Master switch; a disabled detector ignores everything.
  bool enabled = true;
  /// Convict when (rate - mean_others) / std_others reaches this.
  double z_threshold = 2.5;
  /// Judged forwards a neighbor needs before its rate is trusted (both as
  /// suspect and as a peer in the baseline).
  int min_samples = 8;
  /// Qualified neighbors (suspect included) needed before any conviction:
  /// a z-score against one or two peers is numerology.
  int min_peers = 3;
  /// Absolute floor on the suspect's anomaly rate. The z-score alone would
  /// convict a 2%-anomaly neighbor in a dead-quiet neighborhood; a real
  /// wormhole endpoint anomalizes most of what it forwards.
  double min_anomaly_rate = 0.3;
  /// Floor on the peer-rate standard deviation, so a perfectly clean
  /// neighborhood (std 0) does not make the first collision infinite-sigma.
  double std_floor = 0.05;
  /// TTL of transmit records backing the "never heard this flow" test.
  Duration transmit_record_ttl = 10.0;
  /// gamma: alerts from distinct accusers required to isolate (shared
  /// alert protocol with LITEWORP).
  int detection_confidence = 3;
  int alert_repeats = 3;
  Duration alert_repeat_gap = 4.0;
  int alert_ttl = 2;
  Duration realert_interval = 30.0;
};

/// Uniform per-node overhead snapshot, summed network-wide into RunResult.
/// CPU cost is reported as deterministic work counts (frames examined,
/// admission verdicts) rather than wall-clock, so sweeps stay comparable
/// across machines and thread counts.
struct CostSnapshot {
  /// Frames fed through the promiscuous observe() tap.
  std::uint64_t frames_observed = 0;
  /// Routed frames put through the admission verdict.
  std::uint64_t admission_checks = 0;
  std::uint64_t admission_rejects = 0;
  /// Defense-originated control frames (ALERTs) and their wire bytes.
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  /// Peak-independent live storage at snapshot time (paper cost model).
  std::uint64_t storage_bytes = 0;

  void accumulate(const CostSnapshot& other) {
    frames_observed += other.frames_observed;
    admission_checks += other.admission_checks;
    admission_rejects += other.admission_rejects;
    control_messages += other.control_messages;
    control_bytes += other.control_bytes;
    storage_bytes += other.storage_bytes;
  }
};

/// Defense selection plus every backend's parameter block. Exactly one
/// backend (named by `name`) is active per run; the inactive blocks ride
/// along untouched so sweeps can flip backends without losing tuning.
struct DefenseConfig {
  /// Registered backend name: "liteworp", "leash", "zscore", or "none".
  std::string name = "liteworp";
  lite::LiteworpParams liteworp;
  leash::LeashParams leash;
  ZScoreParams zscore;

  /// Syncs the per-backend master switches with the selection, so code
  /// that consults e.g. liteworp.enabled directly stays correct.
  void finalize();
  /// Rejects unknown backend names and out-of-range parameters of the
  /// SELECTED backend with actionable messages (std::invalid_argument).
  void validate() const;
};

/// Names of all registered backends, in registry order.
std::vector<std::string> registry();
/// True if `name` is a registered backend.
bool known(const std::string& name);
/// The trace tag of a registered backend; throws on unknown names.
obs::DefenseTag tag_for(const std::string& name);

/// Sets one backend parameter from its dotted CLI key, e.g.
/// "liteworp.detection_confidence", "zscore.z_threshold", "leash.mode".
/// Throws std::invalid_argument on unknown keys or unparsable values.
void set_option(DefenseConfig& config, const std::string& key,
                const std::string& value);

/// Everything a backend may wire into. The observer is optional (tests);
/// the table and routing references outlive the backend.
struct Wiring {
  node::NodeEnv& env;
  nbr::NeighborTable& table;
  routing::OnDemandRouting& routing;
  DetectionObserver* observer = nullptr;
};

class Defense {
 public:
  virtual ~Defense() = default;

  virtual obs::DefenseTag tag() const = 0;
  const char* name() const { return obs::to_string(tag()); }

  /// Node deployed (or redeployed after crash recovery).
  virtual void start() {}
  /// Node crashed: wipe all volatile detection state.
  virtual void reset() {}
  /// Own (GPS-style) location, needed by the geographical leash.
  virtual void set_own_position(double /*x*/, double /*y*/) {}

  /// Promiscuous tap: every frame the radio decoded, plus every watched
  /// control frame this node transmits itself.
  virtual void observe(const pkt::Packet& /*packet*/) {}
  /// Receiver-side verdict on a routed frame (REQ/REP/DATA) before the
  /// routing layer sees it. False = drop the frame.
  virtual bool admit(const pkt::Packet& /*packet*/) { return true; }
  /// An ALERT frame reached this node.
  virtual void handle_alert(const pkt::Packet& /*packet*/) {}
  /// Compromised-guard fault injection: accuse `victim` with no evidence.
  /// Backends without an accusation channel ignore it.
  virtual void emit_false_alert(NodeId /*victim*/) {}

  virtual CostSnapshot cost() const { return {}; }

  /// Admission outcome counters (all zeros for backends that admit
  /// unconditionally).
  virtual const nbr::AdmissionStats& admission_stats() const;

  /// The wrapped LITEWORP monitor, when this backend has one (cost probes
  /// and guard-level introspection in benches/tests); null otherwise.
  virtual lite::LocalMonitor* local_monitor() { return nullptr; }
  const lite::LocalMonitor* local_monitor() const {
    return const_cast<Defense*>(this)->local_monitor();
  }
};

/// Instantiates the backend named by config.name. Throws
/// std::invalid_argument on unknown names (listing the registry).
std::unique_ptr<Defense> make(const DefenseConfig& config,
                              const Wiring& wiring);

}  // namespace lw::defense
