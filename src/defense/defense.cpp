#include "defense/defense.h"

#include <stdexcept>

#include "defense/zscore.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::defense {

namespace {

// ---- LITEWORP backend: wraps the guard monitor plus the receiver-side
// admission checks that were previously inlined in the node dispatch. ----
class LiteworpDefense final : public Defense {
 public:
  LiteworpDefense(const DefenseConfig& config, const Wiring& wiring)
      : env_(wiring.env),
        table_(wiring.table),
        enabled_(config.liteworp.enabled),
        monitor_(wiring.env, wiring.table, wiring.routing, config.liteworp,
                 wiring.observer) {}

  obs::DefenseTag tag() const override { return obs::DefenseTag::kLiteworp; }
  void start() override { monitor_.start(); }
  void reset() override { monitor_.reset(); }

  void observe(const pkt::Packet& packet) override {
    ++frames_observed_;
    monitor_.on_overhear(packet);
  }

  bool admit(const pkt::Packet& packet) override {
    if (!enabled_) return true;
    obs::Recorder* recorder = env_.obs();
    obs::ScopedTimer timer(recorder ? recorder->profiler() : nullptr,
                           obs::Layer::kNeighbor);
    const nbr::Admission verdict = nbr::check_frame(table_, packet);
    admission_stats_.record(verdict);
    const bool accepted = verdict == nbr::Admission::kAccept;
    if (recorder && recorder->wants(obs::Layer::kNeighbor)) {
      recorder->emit({.t = env_.now(),
                      .kind = accepted ? obs::EventKind::kNbrAdmit
                                       : obs::EventKind::kNbrReject,
                      .node = env_.id(),
                      .peer = packet.claimed_tx,
                      .value = static_cast<double>(verdict),
                      .packet = &packet});
    }
    if (!accepted) {
      LW_DEBUG << "node " << env_.id() << ": rejected ("
               << nbr::to_string(verdict) << ") " << packet.describe();
      return false;
    }
    return true;
  }

  void handle_alert(const pkt::Packet& packet) override {
    monitor_.handle_alert(packet);
  }
  void emit_false_alert(NodeId victim) override {
    monitor_.emit_false_alert(victim);
  }

  CostSnapshot cost() const override {
    return {.frames_observed = frames_observed_,
            .admission_checks =
                admission_stats_.accepted + admission_stats_.total_rejected(),
            .admission_rejects = admission_stats_.total_rejected(),
            .control_messages = monitor_.alerts_transmitted(),
            .control_bytes = monitor_.alert_bytes(),
            .storage_bytes = monitor_.storage_bytes()};
  }

  const nbr::AdmissionStats& admission_stats() const override {
    return admission_stats_;
  }
  lite::LocalMonitor* local_monitor() override { return &monitor_; }

 private:
  node::NodeEnv& env_;
  nbr::NeighborTable& table_;
  bool enabled_;
  lite::LocalMonitor monitor_;
  nbr::AdmissionStats admission_stats_;
  std::uint64_t frames_observed_ = 0;
};

// ---- Packet-leash backend: pure receiver-side drop filter; never
// identifies or isolates anyone (the paper's Section 2 comparator). ----
class LeashDefense final : public Defense {
 public:
  LeashDefense(const DefenseConfig& config, const Wiring& wiring)
      : env_(wiring.env), checker_(config.leash) {}

  obs::DefenseTag tag() const override { return obs::DefenseTag::kLeash; }
  void set_own_position(double x, double y) override {
    checker_.set_own_position(x, y);
  }

  bool admit(const pkt::Packet& packet) override {
    return checker_.check(packet, env_.now());
  }

  CostSnapshot cost() const override {
    return {.admission_checks = checker_.stats().checked,
            .admission_rejects = checker_.stats().rejected};
  }

  const leash::LeashChecker& checker() const { return checker_; }

 private:
  node::NodeEnv& env_;
  leash::LeashChecker checker_;
};

// ---- Undefended baseline: every hook is the base-class no-op. ----
class NoneDefense final : public Defense {
 public:
  obs::DefenseTag tag() const override { return obs::DefenseTag::kNone; }
};

constexpr const char* kRegistry[] = {"liteworp", "leash", "zscore", "none"};

std::string registry_list() {
  std::string out;
  for (const char* name : kRegistry) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("DefenseConfig: " + what);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    reject("option " + key + ": '" + value + "' is not a number");
  }
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    reject("option " + key + ": '" + value + "' is not an integer");
  }
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  reject("option " + key + ": '" + value + "' is not a boolean");
}

}  // namespace

std::vector<std::string> registry() {
  return {std::begin(kRegistry), std::end(kRegistry)};
}

bool known(const std::string& name) {
  for (const char* candidate : kRegistry) {
    if (name == candidate) return true;
  }
  return false;
}

obs::DefenseTag tag_for(const std::string& name) {
  obs::DefenseTag tag;
  if (!obs::parse_defense_tag(name, &tag)) {
    reject("unknown defense \"" + name + "\" (registered: " +
           registry_list() + ")");
  }
  return tag;
}

void DefenseConfig::finalize() {
  // Selection is by name; the per-backend master switches are derived so
  // code consulting them directly (the monitor, the leash checker) agrees.
  liteworp.enabled = name == "liteworp";
  leash.enabled = name == "leash";
  zscore.enabled = name == "zscore";
}

void DefenseConfig::validate() const {
  if (!known(name)) {
    reject("unknown defense \"" + name + "\" (registered: " +
           registry_list() + ")");
  }
  if (name == "liteworp") {
    if (liteworp.detection_confidence < 1) {
      reject("liteworp.detection_confidence (gamma) must be at least 1");
    }
    if (liteworp.malc_threshold <= 0.0) {
      reject("liteworp.malc_threshold (C_t) must be positive");
    }
    if (liteworp.watch_timeout <= 0.0) {
      reject("liteworp.watch_timeout (delta) must be positive");
    }
    if (liteworp.alert_repeats < 1) {
      reject("liteworp.alert_repeats must be at least 1");
    }
  } else if (name == "zscore") {
    if (zscore.z_threshold <= 0.0) {
      reject("zscore.z_threshold must be positive");
    }
    if (zscore.min_samples < 1) {
      reject("zscore.min_samples must be at least 1");
    }
    if (zscore.min_peers < 2) {
      reject(
          "zscore.min_peers must be at least 2 (a z-score needs a peer "
          "baseline)");
    }
    if (zscore.min_anomaly_rate < 0.0 || zscore.min_anomaly_rate > 1.0) {
      reject("zscore.min_anomaly_rate must be within [0, 1]");
    }
    if (zscore.std_floor <= 0.0) {
      reject("zscore.std_floor must be positive");
    }
    if (zscore.detection_confidence < 1) {
      reject("zscore.detection_confidence (gamma) must be at least 1");
    }
  } else if (name == "leash") {
    if (leash.sync_error < 0.0) {
      reject("leash.sync_error must be non-negative");
    }
    if (leash.location_error < 0.0) {
      reject("leash.location_error must be non-negative");
    }
    if (leash.processing_slack < 0.0) {
      reject("leash.processing_slack must be non-negative");
    }
  }
}

void set_option(DefenseConfig& config, const std::string& key,
                const std::string& value) {
  lite::LiteworpParams& lw = config.liteworp;
  leash::LeashParams& ls = config.leash;
  ZScoreParams& zs = config.zscore;
  if (key == "liteworp.watch_timeout") {
    lw.watch_timeout = parse_double(key, value);
  } else if (key == "liteworp.transmit_record_ttl") {
    lw.transmit_record_ttl = parse_double(key, value);
  } else if (key == "liteworp.malc_fabrication") {
    lw.malc_fabrication = parse_double(key, value);
  } else if (key == "liteworp.malc_drop") {
    lw.malc_drop = parse_double(key, value);
  } else if (key == "liteworp.malc_threshold") {
    lw.malc_threshold = parse_double(key, value);
  } else if (key == "liteworp.corroborated_threshold") {
    lw.corroborated_threshold = parse_double(key, value);
  } else if (key == "liteworp.detection_confidence") {
    lw.detection_confidence = parse_int(key, value);
  } else if (key == "liteworp.alert_repeats") {
    lw.alert_repeats = parse_int(key, value);
  } else if (key == "liteworp.alert_repeat_gap") {
    lw.alert_repeat_gap = parse_double(key, value);
  } else if (key == "liteworp.alert_ttl") {
    lw.alert_ttl = parse_int(key, value);
  } else if (key == "liteworp.realert_interval") {
    lw.realert_interval = parse_double(key, value);
  } else if (key == "liteworp.window_packets") {
    lw.window_packets = parse_int(key, value);
  } else if (key == "liteworp.strict_link_check") {
    lw.strict_link_check = parse_bool(key, value);
  } else if (key == "leash.mode") {
    if (value == "temporal") {
      ls.mode = leash::LeashMode::kTemporal;
    } else if (value == "geographical") {
      ls.mode = leash::LeashMode::kGeographical;
    } else {
      reject("option " + key + ": '" + value +
             "' (expected temporal or geographical)");
    }
  } else if (key == "leash.location_error") {
    ls.location_error = parse_double(key, value);
  } else if (key == "leash.sync_error") {
    ls.sync_error = parse_double(key, value);
  } else if (key == "leash.processing_slack") {
    ls.processing_slack = parse_double(key, value);
  } else if (key == "zscore.z_threshold") {
    zs.z_threshold = parse_double(key, value);
  } else if (key == "zscore.min_samples") {
    zs.min_samples = parse_int(key, value);
  } else if (key == "zscore.min_peers") {
    zs.min_peers = parse_int(key, value);
  } else if (key == "zscore.min_anomaly_rate") {
    zs.min_anomaly_rate = parse_double(key, value);
  } else if (key == "zscore.std_floor") {
    zs.std_floor = parse_double(key, value);
  } else if (key == "zscore.transmit_record_ttl") {
    zs.transmit_record_ttl = parse_double(key, value);
  } else if (key == "zscore.detection_confidence") {
    zs.detection_confidence = parse_int(key, value);
  } else if (key == "zscore.alert_repeats") {
    zs.alert_repeats = parse_int(key, value);
  } else if (key == "zscore.alert_repeat_gap") {
    zs.alert_repeat_gap = parse_double(key, value);
  } else if (key == "zscore.alert_ttl") {
    zs.alert_ttl = parse_int(key, value);
  } else if (key == "zscore.realert_interval") {
    zs.realert_interval = parse_double(key, value);
  } else {
    reject("unknown option \"" + key +
           "\" (use <backend>.<param>, e.g. liteworp.detection_confidence, "
           "zscore.z_threshold, leash.mode)");
  }
}

const nbr::AdmissionStats& Defense::admission_stats() const {
  static const nbr::AdmissionStats kNoChecks;
  return kNoChecks;
}

std::unique_ptr<Defense> make(const DefenseConfig& config,
                              const Wiring& wiring) {
  if (config.name == "liteworp") {
    return std::make_unique<LiteworpDefense>(config, wiring);
  }
  if (config.name == "leash") {
    return std::make_unique<LeashDefense>(config, wiring);
  }
  if (config.name == "zscore") {
    return std::make_unique<ZScoreDefense>(config, wiring);
  }
  if (config.name == "none") {
    return std::make_unique<NoneDefense>();
  }
  reject("unknown defense \"" + config.name + "\" (registered: " +
         registry_list() + ")");
}

}  // namespace lw::defense
