// Perf-report rendering: the library behind the lw-report CLI.
//
// Input is the repo's own machine output — a bench row array
// (bench_hotpath --json) or a sweep JSON object (any sweep bench with
// --json) — normalized into CaseMetrics: one named case with its numeric
// metrics in document order. On top of that the library renders markdown
// reports, diffs two runs A/B with per-metric deltas and thresholds, and
// maintains BENCH_history.json (append / check), the regression ledger CI
// carries forward.
//
// Metric classes: a metric is WALL-CLOCK when its name says so
// (wall_seconds, *_per_second, cpu_seconds) and DETERMINISTIC otherwise.
// Deterministic metrics must match exactly between runs of the same seed —
// any delta is a correctness signal. Wall metrics are machine-dependent;
// diffs flag them only beyond a relative threshold, and the history file
// never stores them (so it stays byte-stable across machines).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace lw::report {

/// One benchmark case (bench row) or sweep point, flattened to numbers.
struct CaseMetrics {
  std::string name;
  /// Document order preserved: reports list metrics as the producer wrote
  /// them.
  std::vector<std::pair<std::string, double>> metrics;

  bool has(const std::string& key) const;
  double get(const std::string& key, double fallback) const;
};

/// True for machine-dependent metrics (wall_seconds, *_per_second, ...).
bool is_wall_metric(const std::string& name);

/// Normalizes either supported input shape:
///  - top-level array of flat objects with a "case" member (bench rows)
///  - top-level object with "points" (sweep JSON; each point's label +
///    aggregate scalars, prefixed counters, and profile totals)
/// Throws std::runtime_error on any other shape.
std::vector<CaseMetrics> parse_cases(const util::JsonValue& root);

/// Renders one run as a markdown report: a metrics table per case, wall
/// metrics segregated below the deterministic ones.
std::string render_markdown(const std::vector<CaseMetrics>& cases,
                            const std::string& title);

struct DiffOptions {
  /// Relative change beyond which a wall-clock metric is flagged
  /// (0.10 = 10%). Only slowdowns count as regressions; speedups are
  /// reported but never fail the diff.
  double wall_tolerance = 0.10;
};

struct DiffReport {
  std::string markdown;
  /// Deterministic mismatches + wall slowdowns beyond tolerance. The CLI
  /// exit code: 0 when zero, 1 otherwise.
  int regressions = 0;
};

/// Compares run B (candidate) against run A (reference), case by case.
/// Cases present in only one run are listed but not counted as
/// regressions.
DiffReport diff_cases(const std::vector<CaseMetrics>& a,
                      const std::vector<CaseMetrics>& b,
                      const DiffOptions& options);

/// Appends one labeled entry (deterministic metrics only) to a
/// BENCH_history.json document and returns the new document. `history_json`
/// may be empty (a fresh file). Throws std::runtime_error on a corrupt
/// document.
std::string history_append(const std::string& history_json,
                           const std::string& label,
                           const std::vector<CaseMetrics>& cases);

struct HistoryCheck {
  bool ok = true;
  /// Human-readable verdict: per-drift lines on failure, a one-line
  /// confirmation on success.
  std::string message;
};

/// Checks `cases` against the NEWEST entry of a BENCH_history.json
/// document: every deterministic metric recorded there must match exactly.
/// Cases or metrics absent from the history are noted but pass (they are
/// new coverage, not drift). An empty history passes.
HistoryCheck history_check(const std::string& history_json,
                           const std::vector<CaseMetrics>& cases);

}  // namespace lw::report
