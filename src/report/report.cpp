#include "report/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

namespace lw::report {
namespace {

/// Metric values are counters or seconds; %.10g prints both compactly and
/// round-trips every integer the benches emit.
std::string format_number(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string format_delta(double a, double b) {
  const double delta = b - a;
  std::string text = (delta > 0 ? "+" : "") + format_number(delta);
  if (a != 0.0) {
    char rel[32];
    std::snprintf(rel, sizeof(rel), " (%+.2f%%)", 100.0 * delta / a);
    text += rel;
  }
  return text;
}

void flatten_numbers(const util::JsonValue& object, const std::string& prefix,
                     CaseMetrics* out) {
  for (const auto& [key, value] : object.members()) {
    if (value.is_number()) {
      out->metrics.emplace_back(prefix + key, value.as_number());
    } else if (value.is_bool()) {
      out->metrics.emplace_back(prefix + key, value.as_bool() ? 1.0 : 0.0);
    }
  }
}

std::vector<CaseMetrics> parse_bench_rows(const util::JsonValue& root) {
  std::vector<CaseMetrics> cases;
  for (const util::JsonValue& row : root.items()) {
    if (!row.is_object()) {
      throw std::runtime_error("bench rows must be objects");
    }
    CaseMetrics metrics;
    metrics.name = row.string_or("case", "");
    if (metrics.name.empty()) {
      metrics.name = row.string_or("label", "");
    }
    if (metrics.name.empty()) {
      // ROC-style rows identify themselves by coordinates, not a label.
      const std::string mode = row.string_or("mode", "");
      const std::string defense = row.string_or("defense", "");
      if (!mode.empty() && !defense.empty()) {
        metrics.name = mode + " / " + defense;
        const std::string param = row.string_or("param", "");
        if (!param.empty() && param != "-") {
          metrics.name += " " + param + "=" +
                          format_number(row.number_or("value", 0.0));
        }
      }
    }
    if (metrics.name.empty()) {
      metrics.name = "row" + std::to_string(cases.size());
    }
    flatten_numbers(row, "", &metrics);
    cases.push_back(std::move(metrics));
  }
  return cases;
}

std::vector<CaseMetrics> parse_sweep(const util::JsonValue& root) {
  const util::JsonValue* points = root.find("points");
  if (points == nullptr || !points->is_array()) {
    throw std::runtime_error(
        "unrecognized input: expected a bench row array or a sweep object "
        "with \"points\"");
  }
  std::vector<CaseMetrics> cases;
  for (const util::JsonValue& point : points->items()) {
    CaseMetrics metrics;
    metrics.name = point.string_or("label", "");
    if (metrics.name.empty()) {
      metrics.name = "point" + std::to_string(cases.size());
    }
    if (const util::JsonValue* agg = point.find("aggregate")) {
      flatten_numbers(*agg, "", &metrics);
    }
    if (const util::JsonValue* counters = point.find("counters")) {
      flatten_numbers(*counters, "counter.", &metrics);
    }
    if (const util::JsonValue* profile = point.find("profile")) {
      flatten_numbers(*profile, "profile.", &metrics);
    }
    // Replica-level telemetry rolls up to per-point high-waters (max), the
    // figures a perf report compares.
    if (const util::JsonValue* replicas = point.find("replicas")) {
      double queue_hw = -1.0;
      CaseMetrics memory_hw;
      for (const util::JsonValue& replica : replicas->items()) {
        const util::JsonValue* series = replica.find("series");
        if (series == nullptr) continue;
        queue_hw = std::max(queue_hw,
                            series->number_or("queue_high_water", 0.0));
        if (const util::JsonValue* mem = series->find("memory_high_water")) {
          for (const auto& [key, value] : mem->members()) {
            if (!value.is_number()) continue;
            const std::string name = "series.mem_" + key;
            bool found = false;
            for (auto& [existing, current] : memory_hw.metrics) {
              if (existing == name) {
                current = std::max(current, value.as_number());
                found = true;
                break;
              }
            }
            if (!found) {
              memory_hw.metrics.emplace_back(name, value.as_number());
            }
          }
        }
      }
      if (queue_hw >= 0.0) {
        metrics.metrics.emplace_back("series.queue_high_water", queue_hw);
        for (auto& entry : memory_hw.metrics) {
          metrics.metrics.push_back(std::move(entry));
        }
      }
      // Span statistics roll up across replicas: counts sum, means pool
      // count-weighted (raw samples are not in the JSON, so percentiles
      // stay per-replica and are not aggregated here).
      struct Pool {
        double count = 0.0;
        double sum = 0.0;
      };
      std::map<std::string, Pool> kind_opened;
      std::map<std::string, Pool> kind_duration;
      std::map<std::string, Pool> phase_pool;
      Pool latency_pool;
      bool any_spans = false;
      for (const util::JsonValue& replica : replicas->items()) {
        const util::JsonValue* spans = replica.find("spans");
        if (spans == nullptr) continue;
        any_spans = true;
        if (const util::JsonValue* kinds = spans->find("kinds")) {
          for (const auto& [kind, stats] : kinds->members()) {
            kind_opened[kind].count += stats.number_or("opened", 0.0);
            kind_opened[kind].sum += stats.number_or("closed", 0.0);
            if (const util::JsonValue* dur = stats.find("duration")) {
              const double n = dur->number_or("count", 0.0);
              kind_duration[kind].count += n;
              kind_duration[kind].sum += n * dur->number_or("mean", 0.0);
            }
          }
        }
        if (const util::JsonValue* phases = spans->find("phases")) {
          for (const auto& [phase, stats] : phases->members()) {
            phase_pool[phase].sum += stats.number_or("sum", 0.0);
            if (const util::JsonValue* summary = stats.find("summary")) {
              phase_pool[phase].count += summary->number_or("count", 0.0);
            }
          }
        }
        if (const util::JsonValue* latency = spans->find("detection_latency")) {
          const double n = latency->number_or("count", 0.0);
          latency_pool.count += n;
          latency_pool.sum += n * latency->number_or("mean", 0.0);
        }
      }
      if (any_spans) {
        for (const auto& [kind, pool] : kind_opened) {
          metrics.metrics.emplace_back("spans." + kind + ".opened",
                                       pool.count);
          metrics.metrics.emplace_back("spans." + kind + ".closed", pool.sum);
        }
        for (const auto& [kind, pool] : kind_duration) {
          if (pool.count > 0.0) {
            metrics.metrics.emplace_back("spans." + kind + ".duration_mean",
                                         pool.sum / pool.count);
          }
        }
        for (const auto& [phase, pool] : phase_pool) {
          metrics.metrics.emplace_back("spans." + phase + ".rounds",
                                       pool.count);
          if (pool.count > 0.0) {
            metrics.metrics.emplace_back("spans." + phase + ".mean",
                                         pool.sum / pool.count);
          }
        }
        metrics.metrics.emplace_back("spans.detection_rounds",
                                     latency_pool.count);
        if (latency_pool.count > 0.0) {
          metrics.metrics.emplace_back(
              "spans.detection_latency_mean",
              latency_pool.sum / latency_pool.count);
        }
      }
    }
    cases.push_back(std::move(metrics));
  }
  return cases;
}

const CaseMetrics* find_case(const std::vector<CaseMetrics>& cases,
                             const std::string& name) {
  for (const CaseMetrics& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void escape_json_string(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

bool CaseMetrics::has(const std::string& key) const {
  for (const auto& [name, value] : metrics) {
    (void)value;
    if (name == key) return true;
  }
  return false;
}

double CaseMetrics::get(const std::string& key, double fallback) const {
  for (const auto& [name, value] : metrics) {
    if (name == key) return value;
  }
  return fallback;
}

bool is_wall_metric(const std::string& name) {
  return name == "wall_seconds" || name == "cpu_seconds" ||
         name.find("per_second") != std::string::npos ||
         name.find("wall_") != std::string::npos ||
         name.find(".wall") != std::string::npos ||
         name.find("self_seconds") != std::string::npos;
}

std::vector<CaseMetrics> parse_cases(const util::JsonValue& root) {
  if (root.is_array()) return parse_bench_rows(root);
  if (root.is_object()) return parse_sweep(root);
  throw std::runtime_error(
      "unrecognized input: expected a bench row array or a sweep object");
}

std::string render_markdown(const std::vector<CaseMetrics>& cases,
                            const std::string& title) {
  std::ostringstream out;
  out << "# " << title << "\n";
  // Runs carrying the span-derived latency decomposition (bench_defense_roc
  // --json) get a cross-case summary table up front: detection latency and
  // its observe/corroborate/isolate phases, p50/p95, one row per cell.
  bool any_latency = false;
  for (const CaseMetrics& c : cases) {
    if (c.has("latency_p50") && c.get("detection_rounds", 0.0) > 0.0) {
      any_latency = true;
      break;
    }
  }
  if (any_latency) {
    out << "\n## Detection latency (sim s, p50/p95 per cell)\n\n"
        << "| case | rounds | latency p50 | latency p95 | observe p50/p95 | "
           "corroborate p50/p95 | isolate p50/p95 |\n"
        << "|---|---:|---:|---:|---:|---:|---:|\n";
    for (const CaseMetrics& c : cases) {
      if (!c.has("latency_p50") || c.get("detection_rounds", 0.0) <= 0.0) {
        continue;
      }
      out << "| " << c.name << " | "
          << format_number(c.get("detection_rounds", 0.0)) << " | "
          << format_number(c.get("latency_p50", 0.0)) << " | "
          << format_number(c.get("latency_p95", 0.0)) << " | "
          << format_number(c.get("observe_p50", 0.0)) << " / "
          << format_number(c.get("observe_p95", 0.0)) << " | "
          << format_number(c.get("corroborate_p50", 0.0)) << " / "
          << format_number(c.get("corroborate_p95", 0.0)) << " | "
          << format_number(c.get("isolate_p50", 0.0)) << " / "
          << format_number(c.get("isolate_p95", 0.0)) << " |\n";
    }
  }
  for (const CaseMetrics& c : cases) {
    out << "\n## " << c.name << "\n\n";
    out << "| metric | value |\n|---|---:|\n";
    // Deterministic metrics first, wall-clock after: the stable half of
    // the report reads before the machine-dependent half.
    for (const bool wall_pass : {false, true}) {
      for (const auto& [name, value] : c.metrics) {
        if (is_wall_metric(name) != wall_pass) continue;
        out << "| " << (wall_pass ? "_" : "") << name
            << (wall_pass ? "_" : "") << " | " << format_number(value)
            << " |\n";
      }
    }
  }
  return out.str();
}

DiffReport diff_cases(const std::vector<CaseMetrics>& a,
                      const std::vector<CaseMetrics>& b,
                      const DiffOptions& options) {
  DiffReport report;
  std::ostringstream out;
  out << "# Perf diff (B vs A)\n";
  out << "\nDeterministic metrics must match exactly; wall-clock metrics "
         "are flagged beyond "
      << format_number(100.0 * options.wall_tolerance)
      << "% slowdown.\n";
  for (const CaseMetrics& cb : b) {
    const CaseMetrics* ca = find_case(a, cb.name);
    out << "\n## " << cb.name << "\n\n";
    if (ca == nullptr) {
      out << "_only in B (new case; not compared)_\n";
      continue;
    }
    out << "| metric | A | B | delta | verdict |\n|---|---:|---:|---:|---|\n";
    for (const auto& [name, value_b] : cb.metrics) {
      if (!ca->has(name)) {
        out << "| " << name << " | - | " << format_number(value_b)
            << " | - | new |\n";
        continue;
      }
      const double value_a = ca->get(name, 0.0);
      std::string verdict = "ok";
      if (is_wall_metric(name)) {
        // Higher wall_seconds is slower; higher *_per_second is faster.
        const bool higher_is_slower =
            name.find("per_second") == std::string::npos;
        const double rel =
            value_a != 0.0 ? (value_b - value_a) / value_a : 0.0;
        const double slowdown = higher_is_slower ? rel : -rel;
        if (slowdown > options.wall_tolerance) {
          verdict = "REGRESSION";
          ++report.regressions;
        } else if (slowdown < -options.wall_tolerance) {
          verdict = "improved";
        }
      } else if (value_a != value_b) {
        verdict = "DRIFT";
        ++report.regressions;
      }
      out << "| " << name << " | " << format_number(value_a) << " | "
          << format_number(value_b) << " | " << format_delta(value_a, value_b)
          << " | " << verdict << " |\n";
    }
    for (const auto& [name, value_a] : ca->metrics) {
      if (!cb.has(name)) {
        out << "| " << name << " | " << format_number(value_a)
            << " | - | - | removed |\n";
      }
    }
  }
  for (const CaseMetrics& ca : a) {
    if (find_case(b, ca.name) == nullptr) {
      out << "\n## " << ca.name << "\n\n_only in A (not compared)_\n";
    }
  }
  out << "\n**" << report.regressions << " regression(s)**\n";
  report.markdown = out.str();
  return report;
}

std::string history_append(const std::string& history_json,
                           const std::string& label,
                           const std::vector<CaseMetrics>& cases) {
  std::ostringstream out;
  out << "{\"entries\":[";
  bool first = true;
  if (!history_json.empty()) {
    // Existing entries are re-serialized through this same writer, so the
    // document converges to one canonical byte form regardless of how it
    // was first created.
    const util::JsonValue root = util::JsonValue::parse(history_json);
    const util::JsonValue* entries = root.find("entries");
    if (entries == nullptr || !entries->is_array()) {
      throw std::runtime_error("history: expected {\"entries\":[...]}");
    }
    for (const util::JsonValue& entry : entries->items()) {
      if (!first) out << ",";
      first = false;
      out << "{\"label\":";
      escape_json_string(out, entry.string_or("label", ""));
      out << ",\"cases\":[";
      const util::JsonValue* entry_cases = entry.find("cases");
      bool first_case = true;
      if (entry_cases != nullptr) {
        for (const util::JsonValue& c : entry_cases->items()) {
          if (!first_case) out << ",";
          first_case = false;
          out << "{\"case\":";
          escape_json_string(out, c.string_or("case", ""));
          for (const auto& [key, value] : c.members()) {
            if (key == "case" || !value.is_number()) continue;
            out << ",\"" << key << "\":" << format_number(value.as_number());
          }
          out << "}";
        }
      }
      out << "]}";
    }
  }
  if (!first) out << ",";
  out << "{\"label\":";
  escape_json_string(out, label);
  out << ",\"cases\":[";
  bool first_case = true;
  for (const CaseMetrics& c : cases) {
    if (!first_case) out << ",";
    first_case = false;
    out << "{\"case\":";
    escape_json_string(out, c.name);
    for (const auto& [name, value] : c.metrics) {
      // Wall metrics are machine-dependent; the ledger records only what
      // every machine must reproduce.
      if (is_wall_metric(name)) continue;
      out << ",\"" << name << "\":" << format_number(value);
    }
    out << "}";
  }
  out << "]}]}";
  return out.str();
}

HistoryCheck history_check(const std::string& history_json,
                           const std::vector<CaseMetrics>& cases) {
  HistoryCheck check;
  if (history_json.empty()) {
    check.message = "history empty: nothing to check against\n";
    return check;
  }
  const util::JsonValue root = util::JsonValue::parse(history_json);
  const util::JsonValue* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw std::runtime_error("history: expected {\"entries\":[...]}");
  }
  if (entries->items().empty()) {
    check.message = "history empty: nothing to check against\n";
    return check;
  }
  const util::JsonValue& newest = entries->items().back();
  std::ostringstream out;
  int drift = 0;
  int compared = 0;
  const util::JsonValue* newest_cases = newest.find("cases");
  for (const CaseMetrics& current : cases) {
    const util::JsonValue* recorded = nullptr;
    if (newest_cases != nullptr) {
      for (const util::JsonValue& c : newest_cases->items()) {
        if (c.string_or("case", "") == current.name) {
          recorded = &c;
          break;
        }
      }
    }
    if (recorded == nullptr) {
      out << "  " << current.name << ": not in history (new case, passes)\n";
      continue;
    }
    for (const auto& [key, value] : recorded->members()) {
      if (key == "case" || !value.is_number()) continue;
      if (!current.has(key)) {
        out << "  " << current.name << "." << key
            << ": recorded but absent from this run (passes)\n";
        continue;
      }
      ++compared;
      const double got = current.get(key, 0.0);
      if (got != value.as_number()) {
        ++drift;
        out << "  DRIFT " << current.name << "." << key << ": history "
            << format_number(value.as_number()) << ", run "
            << format_number(got) << "\n";
      }
    }
  }
  check.ok = drift == 0;
  std::ostringstream message;
  message << "history check vs entry \"" << newest.string_or("label", "")
          << "\": " << compared << " metric(s) compared, " << drift
          << " drifted\n"
          << out.str();
  check.message = message.str();
  return check;
}

}  // namespace lw::report
