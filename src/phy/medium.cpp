#include "phy/medium.h"

#include <cassert>
#include <stdexcept>

#include "obs/profiler.h"
#include "util/arena.h"

namespace lw::phy {

Medium::Medium(sim::Simulator& simulator, const topo::DiscGraph& graph,
               PhyParams params, Rng loss_rng)
    : simulator_(simulator),
      graph_(graph),
      params_(params),
      loss_rng_(loss_rng) {
  radios_.resize(graph.size(), nullptr);
  rx_range_multiplier_.resize(graph.size(), 1.0);
}

void Medium::enable_faults(Rng fault_rng) {
  faults_enabled_ = true;
  fault_rng_ = fault_rng;
  node_down_.assign(graph_.size(), 0);
  corrupt_prob_.assign(graph_.size(), 0.0);
}

void Medium::set_node_down(NodeId node, bool down) {
  assert(faults_enabled_ && "enable_faults first");
  node_down_.at(node) = down ? 1 : 0;
}

void Medium::set_link_fault(NodeId a, NodeId b, double extra_loss) {
  assert(faults_enabled_ && "enable_faults first");
  link_fault_[link_key(a, b)] = extra_loss;
}

void Medium::clear_link_fault(NodeId a, NodeId b) {
  link_fault_.erase(link_key(a, b));
}

void Medium::set_corruption(NodeId node, double probability) {
  assert(faults_enabled_ && "enable_faults first");
  corrupt_prob_.at(node) = probability;
}

void Medium::clear_corruption(NodeId node) {
  corrupt_prob_.at(node) = 0.0;
}

double Medium::link_fault_loss(NodeId a, NodeId b) const {
  if (link_fault_.empty()) return 0.0;
  auto it = link_fault_.find(link_key(a, b));
  return it == link_fault_.end() ? 0.0 : it->second;
}

void Medium::set_rx_range_multiplier(NodeId node, double multiplier) {
  rx_range_multiplier_.at(node) = multiplier;
  max_rx_multiplier_ = 1.0;
  for (double m : rx_range_multiplier_) {
    max_rx_multiplier_ = std::max(max_rx_multiplier_, m);
  }
}

void Medium::attach(Radio* radio) {
  assert(radio != nullptr);
  if (radio->id() >= radios_.size()) {
    throw std::out_of_range("radio id beyond topology size");
  }
  radios_[radio->id()] = radio;
}

Duration Medium::transmit_duration(const pkt::Packet& packet) const {
  return static_cast<double>(packet.wire_size()) * 8.0 / params_.bandwidth_bps;
}

bool Medium::channel_busy(NodeId node) const {
  const Radio* radio = radios_.at(node);
  assert(radio != nullptr);
  return radio->channel_busy(simulator_.now(), simulator_.current_seq());
}

void Medium::transmit(NodeId sender, pkt::Packet packet,
                      double range_multiplier) {
  obs::ScopedTimer obs_timer(recorder_ ? recorder_->profiler() : nullptr,
                             obs::Layer::kPhy);
  // A crashed node is silent: the gate sits before any stats or trace
  // emission so "no tx from a crashed node" holds at the byte level.
  if (faults_enabled_ && node_down_[sender]) return;
  Radio* tx_radio = radios_.at(sender);
  assert(tx_radio != nullptr && "transmit from unattached radio");

  packet.tx_node = sender;
  // Leash stamps: only the genuine keyholder can sign a fresh timestamp
  // or location, so spoofed replays keep the original (stale/far) values.
  if (packet.claimed_tx == sender || packet.claimed_tx == kInvalidNode) {
    packet.leash_timestamp = simulator_.now();
    const topo::Position& at = graph_.position(sender);
    packet.leash_x = at.x;
    packet.leash_y = at.y;
    packet.leash_located = true;
  }
  // Packet + shared_ptr control block in one pooled arena block: one of
  // these is built per frame, the hot-path allocation of the whole PHY.
  auto shared = std::allocate_shared<const pkt::Packet>(
      util::PoolAllocator<pkt::Packet>{}, std::move(packet));

  const Time now = simulator_.now();
  const Duration duration = transmit_duration(*shared);
  const bool collisions = collisions_active();

  tx_radio->begin_transmit(now, now + duration, collisions);
  simulator_.schedule(duration, [tx_radio] { tx_radio->finish_transmit(); });
  ++stats_.frames_transmitted;
  if (recorder_ && recorder_->wants(obs::Layer::kPhy)) {
    recorder_->emit({.t = now,
                     .kind = obs::EventKind::kPhyTx,
                     .node = sender,
                     .value = duration,
                     .packet = shared.get()});
  }
  const auto type_index = static_cast<std::size_t>(shared->type);
  if (type_index < stats_.tx_by_type.size()) {
    ++stats_.tx_by_type[type_index];
    stats_.airtime_by_type[type_index] += duration;
  }

  // Candidate receivers from the spatial index: only nodes inside the
  // widest disc any (tx, rx) multiplier pair could produce. The query
  // returns ascending NodeIds, preserving the schedule order (and hence
  // RNG draw order and trace bytes) of the old 0..N scan.
  const double query_radius =
      graph_.range() * std::max(range_multiplier, max_rx_multiplier_);
  graph_.spatial_index().query(graph_.position(sender), query_radius,
                               rx_candidates_);
  // The k delivery events of this broadcast become ONE fused fan-out
  // batch: each fanout_add reserves the same sequence number a plain
  // schedule_at would have, so reception registration, tie-breaking and
  // trace bytes are unchanged — only the k-fold heap churn goes away.
  simulator_.fanout_begin();
  for (NodeId receiver : rx_candidates_) {
    if (receiver == sender) continue;
    // A frame is decodable when the transmitter shouts far enough or the
    // receiver listens hard enough, whichever is stronger.
    const double dist = graph_.distance(sender, receiver);
    const double reach =
        graph_.range() *
        std::max(range_multiplier, rx_range_multiplier_[receiver]);
    if (dist > reach) continue;
    Radio* rx_radio = radios_[receiver];
    if (rx_radio == nullptr) continue;
    if (faults_enabled_) {
      if (node_down_[receiver]) continue;  // dead radios hear nothing
      if (link_fault_loss(sender, receiver) >= 1.0) {
        ++stats_.frames_fault_lost;  // hard link outage
        continue;
      }
    }

    const Duration propagation = dist / params_.propagation_speed;
    const Time rx_start = now + propagation;
    const Time rx_end = rx_start + duration;

    // Collision gate as the removed begin event would have evaluated it
    // at rx_start; the reception is registered with the radio right away
    // so only the delivery event needs scheduling.
    const bool rx_collisions = params_.collisions_enabled &&
                               rx_start >= params_.collision_free_until;
    // next_seq() is the slot the begin event would have occupied (it was
    // always pushed immediately before its end event).
    rx_radio->register_reception(shared, rx_start, rx_end, rx_collisions,
                                 simulator_.next_seq());

    // The secure-discovery grace window models the paper's assumption
    // that neighbor discovery completes reliably; injected random loss
    // honors it just like collisions do. The RNG draw stays inside the
    // delivery event to keep the global draw order unchanged.
    const bool maybe_loss = params_.extra_loss_prob > 0.0 &&
                            rx_end >= params_.collision_free_until;
    simulator_.fanout_add(rx_end, [this, rx_radio, shared, maybe_loss] {
      bool random_loss =
          maybe_loss && loss_rng_.chance(params_.extra_loss_prob);
      if (faults_enabled_) {
        const NodeId to = rx_radio->id();
        if (node_down_[to]) {
          // Receiver crashed while the frame was in flight: the pending
          // reception is drained quietly, no outcome is reported.
          rx_radio->drop_reception(shared->uid);
          return;
        }
        const double link_loss = link_fault_loss(shared->tx_node, to);
        if (link_loss > 0.0 && fault_rng_.chance(link_loss)) {
          ++stats_.frames_fault_lost;
          random_loss = true;  // surfaces as an ordinary phy.loss
        } else if (corrupt_prob_[to] > 0.0 &&
                   fault_rng_.chance(corrupt_prob_[to])) {
          // Flip the authentication-tag bytes: the frame still parses
          // (fixed-layout struct), but dies at HMAC verification in
          // whichever layer checks it.
          auto damaged = std::allocate_shared<pkt::Packet>(
              util::PoolAllocator<pkt::Packet>{}, *shared);
          for (auto& byte : damaged->tag) byte ^= 0xFF;
          for (auto& auth : damaged->alert_auth) {
            for (auto& byte : auth.tag) byte ^= 0xFF;
          }
          if (rx_radio->replace_pending(shared->uid, std::move(damaged))) {
            ++stats_.frames_corrupted;
            if (recorder_ && recorder_->wants(obs::Layer::kFault)) {
              recorder_->emit({.t = simulator_.now(),
                               .kind = obs::EventKind::kFltCorrupt,
                               .node = shared->tx_node,
                               .peer = to,
                               .packet = shared.get()});
            }
          }
        }
      }
      obs::EventKind rx_kind = obs::EventKind::kPhyRx;
      switch (rx_radio->finish_receive(*shared, random_loss)) {
        case RxOutcome::kDelivered:
          ++stats_.frames_delivered;
          break;
        case RxOutcome::kCollision: {
          ++stats_.frames_collided;
          rx_kind = obs::EventKind::kPhyCollision;
          const auto idx = static_cast<std::size_t>(shared->type);
          if (idx < stats_.collisions_by_type.size()) {
            ++stats_.collisions_by_type[idx];
          }
          break;
        }
        case RxOutcome::kRandomLoss:
          ++stats_.frames_random_lost;
          rx_kind = obs::EventKind::kPhyLoss;
          break;
      }
      if (recorder_ && recorder_->wants(obs::Layer::kPhy)) {
        recorder_->emit({.t = simulator_.now(),
                         .kind = rx_kind,
                         .node = shared->tx_node,
                         .peer = rx_radio->id(),
                         .packet = shared.get()});
      }
    });
  }
  simulator_.fanout_commit();
}

}  // namespace lw::phy
