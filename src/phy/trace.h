// Packet-event tracing.
//
// A TraceSink attached to the medium observes every transmission and every
// per-receiver outcome — the debugging view an ns-2 trace file provides.
// TextTrace renders one line per event; attach it to a file stream to get
// a replayable log of a run.
#pragma once

#include <ostream>

#include "packet/packet.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::phy {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_transmit(Time now, const pkt::Packet& packet,
                           NodeId sender) = 0;
  virtual void on_deliver(Time now, const pkt::Packet& packet,
                          NodeId receiver) = 0;
  virtual void on_collision(Time now, const pkt::Packet& packet,
                            NodeId receiver) = 0;
  virtual void on_random_loss(Time now, const pkt::Packet& packet,
                              NodeId receiver) = 0;
};

/// One line per event:  <time> <EVENT> node=<id> <packet description>
class TextTrace final : public TraceSink {
 public:
  /// The stream must outlive the trace. Set `verbose` for full packet
  /// descriptions instead of the compact type/flow form.
  explicit TextTrace(std::ostream& out, bool verbose = false)
      : out_(out), verbose_(verbose) {}

  void on_transmit(Time now, const pkt::Packet& packet,
                   NodeId sender) override {
    line(now, "TX  ", sender, packet);
  }
  void on_deliver(Time now, const pkt::Packet& packet,
                  NodeId receiver) override {
    line(now, "RX  ", receiver, packet);
  }
  void on_collision(Time now, const pkt::Packet& packet,
                    NodeId receiver) override {
    line(now, "COLL", receiver, packet);
  }
  void on_random_loss(Time now, const pkt::Packet& packet,
                      NodeId receiver) override {
    line(now, "LOSS", receiver, packet);
  }

 private:
  void line(Time now, const char* event, NodeId node,
            const pkt::Packet& packet);

  std::ostream& out_;
  bool verbose_;
};

}  // namespace lw::phy
