// Human-readable packet tracing, built on the obs event stream.
//
// TextTrace renders the PHY events (tx / rx / collision / loss) one line
// each — the debugging view an ns-2 trace file provides. It is an
// obs::EventSink rather than a bespoke medium hook, so it attaches to a
// run's Recorder like any other consumer:
//
//   lw::phy::TextTrace trace(file);
//   network.recorder().add_sink(&trace,
//                               lw::obs::layer_bit(lw::obs::Layer::kPhy));
#pragma once

#include <ostream>

#include "obs/event.h"
#include "obs/recorder.h"
#include "packet/packet.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::phy {

/// One line per event:  <time> <EVENT> node=<id> <packet description>
class TextTrace final : public obs::EventSink {
 public:
  /// The stream must outlive the trace. Set `verbose` for full packet
  /// descriptions instead of the compact type/flow form.
  explicit TextTrace(std::ostream& out, bool verbose = false)
      : out_(out), verbose_(verbose) {}

  void on_event(const obs::Event& event) override;

 private:
  void line(Time now, const char* label, NodeId node,
            const pkt::Packet& packet);

  std::ostream& out_;
  bool verbose_;
};

}  // namespace lw::phy
