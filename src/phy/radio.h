// Per-node radio: reception state, collision detection, carrier sense.
//
// The radio is promiscuous: every successfully decoded frame is handed to
// the frame sink regardless of its link-layer destination. Local monitoring
// depends on this (guards overhear their neighbors' traffic). Half-duplex:
// a node cannot decode while it is transmitting.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "packet/packet.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::phy {

/// Result of one reception attempt.
enum class RxOutcome {
  kDelivered,
  kCollision,   // overlapped with another frame or with own transmission
  kRandomLoss,  // independent loss (PhyParams::extra_loss_prob)
};

class Radio {
 public:
  using FrameSink = std::function<void(const pkt::Packet&)>;
  using DropSink = std::function<void(const pkt::Packet&, RxOutcome)>;
  using TxDoneSink = std::function<void()>;

  explicit Radio(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  /// Upcall for successfully decoded frames (MAC/promiscuous tap).
  void set_frame_sink(FrameSink sink) { frame_sink_ = std::move(sink); }
  /// Optional upcall for failed receptions.
  void set_drop_sink(DropSink sink) { drop_sink_ = std::move(sink); }
  /// Upcall when a transmission this node started finishes (MAC dequeue).
  void set_tx_done_sink(TxDoneSink sink) { tx_done_sink_ = std::move(sink); }

  /// Carrier sense: any energy on the channel at this node right now
  /// (own transmission or any ongoing reception, corrupted or not), or a
  /// NAV reservation set by an overheard RTS/CTS.
  bool channel_busy(Time now) const;

  /// Virtual carrier sense: defer until `until` (kept at the max of all
  /// overheard reservations).
  void set_nav(Time until) { nav_until_ = std::max(nav_until_, until); }
  Time nav_until() const { return nav_until_; }

  /// True while this node is transmitting.
  bool transmitting(Time now) const { return now < tx_busy_until_; }

  // --- Medium-facing interface ---

  /// A frame this node transmits occupies [now, until).
  void begin_transmit(Time until) { tx_busy_until_ = until; }

  /// Half-duplex enforcement when a transmission starts mid-reception:
  /// everything currently arriving at this node is lost.
  void corrupt_ongoing_receptions() {
    for (Reception& r : ongoing_) r.corrupted = true;
  }

  /// Notifies the MAC that this node's transmission completed.
  void finish_transmit();

  /// A frame begins arriving; `collisions` selects whether overlap corrupts.
  void begin_receive(std::shared_ptr<const pkt::Packet> packet, Time now,
                     Time end, bool collisions);

  /// The frame that started at `begin_receive` finishes. Delivers to the
  /// frame sink on success; reports the outcome either way.
  RxOutcome finish_receive(const pkt::Packet& packet, bool random_loss);

 private:
  struct Reception {
    std::shared_ptr<const pkt::Packet> packet;
    Time end;
    bool corrupted = false;
  };

  NodeId id_;
  FrameSink frame_sink_;
  DropSink drop_sink_;
  TxDoneSink tx_done_sink_;
  Time tx_busy_until_ = kTimeZero;
  Time nav_until_ = kTimeZero;
  std::vector<Reception> ongoing_;
};

}  // namespace lw::phy
