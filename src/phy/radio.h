// Per-node radio: reception state, collision detection, carrier sense.
//
// The radio is promiscuous: every successfully decoded frame is handed to
// the frame sink regardless of its link-layer destination. Local monitoring
// depends on this (guards overhear their neighbors' traffic). Half-duplex:
// a node cannot decode while it is transmitting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "packet/packet.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::phy {

/// Result of one reception attempt.
enum class RxOutcome {
  kDelivered,
  kCollision,   // overlapped with another frame or with own transmission
  kRandomLoss,  // independent loss (PhyParams::extra_loss_prob)
};

class Radio {
 public:
  using FrameSink = std::function<void(const pkt::Packet&)>;
  using DropSink = std::function<void(const pkt::Packet&, RxOutcome)>;
  using TxDoneSink = std::function<void()>;

  explicit Radio(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  /// Upcall for successfully decoded frames (MAC/promiscuous tap).
  void set_frame_sink(FrameSink sink) { frame_sink_ = std::move(sink); }
  /// Optional upcall for failed receptions.
  void set_drop_sink(DropSink sink) { drop_sink_ = std::move(sink); }
  /// Upcall when a transmission this node started finishes (MAC dequeue).
  void set_tx_done_sink(TxDoneSink sink) { tx_done_sink_ = std::move(sink); }

  /// Carrier sense: any energy on the channel at this node right now
  /// (own transmission or any ongoing reception, corrupted or not), or a
  /// NAV reservation set by an overheard RTS/CTS.
  ///
  /// `current_seq` is the event sequence number of the caller's executing
  /// event. A reception whose start equals `now` exactly counts as energy
  /// only if its (virtual) begin event would already have run — i.e. its
  /// begin_seq is below `current_seq`. This reproduces, tie for tie, the
  /// behavior of the begin-event model the fused delivery path replaced.
  /// The default treats all started receptions as audible (the outside-
  /// the-run-loop case, where every event at or before `now` has run).
  bool channel_busy(Time now,
                    std::uint64_t current_seq = ~std::uint64_t{0}) const;

  /// Virtual carrier sense: defer until `until` (kept at the max of all
  /// overheard reservations).
  void set_nav(Time until) { nav_until_ = std::max(nav_until_, until); }
  Time nav_until() const { return nav_until_; }

  /// True while this node is transmitting.
  bool transmitting(Time now) const { return now < tx_busy_until_; }

  // --- Medium-facing interface ---

  /// A frame this node transmits occupies [now, until). Half-duplex
  /// enforcement happens here: with `collisions` on, receptions in
  /// progress at `now` are corrupted (the old corrupt_ongoing_receptions),
  /// and already-registered receptions that will begin mid-transmission
  /// are corrupted under their own collision gate — exactly what their
  /// begin-time transmitting() check used to decide.
  void begin_transmit(Time now, Time until, bool collisions);

  /// Notifies the MAC that this node's transmission completed.
  void finish_transmit();

  /// Registers an arriving frame occupying [start, end) at this radio.
  /// Called at transmit time (start is in the future); the medium
  /// schedules only the single delivery event at `end`, so collision and
  /// half-duplex outcomes are resolved here from interval overlap instead
  /// of by a dedicated begin event. `collisions` is the collision gate
  /// evaluated at `start` (overlap corrupts only when it is set);
  /// `begin_seq` is the sequence number the begin event would have
  /// carried, used to break exact-time carrier-sense ties.
  void register_reception(std::shared_ptr<const pkt::Packet> packet,
                          Time start, Time end, bool collisions,
                          std::uint64_t begin_seq);

  /// The frame registered for [start, end) finishes at `end`. Delivers to
  /// the frame sink on success; reports the outcome either way.
  RxOutcome finish_receive(const pkt::Packet& packet, bool random_loss);

  // --- Fault-injection hooks (no-ops on the clean path) ---

  /// Quietly discards a registered reception (crashed receiver): no sink
  /// is called, no outcome reported. Safe when the uid is already gone.
  void drop_reception(PacketUid uid);

  /// Swaps the pending reception's payload for `packet` (same uid: a
  /// corrupted copy), so finish_receive delivers the damaged bytes.
  /// Returns false when the uid is not pending.
  bool replace_pending(PacketUid uid,
                       std::shared_ptr<const pkt::Packet> packet);

  /// Forgets carrier/NAV state across a crash. Pending receptions are NOT
  /// cleared here — their delivery events drain them via drop_reception.
  void reset_timing() {
    tx_busy_until_ = kTimeZero;
    nav_until_ = kTimeZero;
  }

 private:
  struct Reception {
    std::shared_ptr<const pkt::Packet> packet;
    Time start;
    Time end;
    std::uint64_t begin_seq;  // seq the begin event would have carried
    bool collisions;  // overlap corrupts (gate evaluated at start time)
    bool corrupted = false;
  };

  NodeId id_;
  FrameSink frame_sink_;
  DropSink drop_sink_;
  TxDoneSink tx_done_sink_;
  Time tx_busy_until_ = kTimeZero;
  Time nav_until_ = kTimeZero;
  util::PoolVector<Reception> ongoing_;
};

}  // namespace lw::phy
