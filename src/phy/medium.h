// The shared broadcast medium.
//
// Disc propagation model over the deployment geometry: every node within
// `range * range_multiplier` of the transmitter receives the frame after a
// distance-proportional propagation delay plus the serialization time at the
// channel bandwidth. Overlapping arrivals at a receiver corrupt each other
// (both are lost), matching the paper's "natural collisions".
//
// The high-power wormhole mode (Section 3.3) transmits with a multiplier
// > 1; honest nodes always use 1.0.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/recorder.h"
#include "packet/packet.h"
#include "phy/phy_params.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "topology/disc_graph.h"
#include "util/rng.h"

namespace lw::phy {

/// Channel-level counters for the metrics layer.
struct MediumStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_collided = 0;
  std::uint64_t frames_random_lost = 0;
  /// Transmission count and airtime (seconds) by packet type (index =
  /// PacketType value).
  std::array<std::uint64_t, 16> tx_by_type{};
  std::array<double, 16> airtime_by_type{};
  /// Receptions lost to collision, by packet type.
  std::array<std::uint64_t, 16> collisions_by_type{};
  /// Fault-injection outcomes; all zero unless a FaultPlan ran.
  std::uint64_t frames_fault_lost = 0;  // link outage / dead receiver
  std::uint64_t frames_corrupted = 0;   // bytes flipped in flight
};

class Medium {
 public:
  Medium(sim::Simulator& simulator, const topo::DiscGraph& graph,
         PhyParams params, Rng loss_rng);

  /// Registers the radio for `radio->id()`. All radios must be attached
  /// before the first transmission.
  void attach(Radio* radio);

  /// Starts transmitting `packet` from `sender` now. The packet's tx_node
  /// is stamped with the sender id. range_multiplier scales the disc radius
  /// (high-power attack mode); 1.0 for honest traffic.
  void transmit(NodeId sender, pkt::Packet packet,
                double range_multiplier = 1.0);

  /// Serialization time of a packet at the channel bandwidth.
  Duration transmit_duration(const pkt::Packet& packet) const;

  /// Carrier sense at a node.
  bool channel_busy(NodeId node) const;

  /// Gives one node a high-gain receiver: it decodes transmissions from up
  /// to `multiplier` times the nominal range. The high-power attacker needs
  /// this for the reverse path (its far "neighbors" answer at normal
  /// power). Honest nodes stay at 1.0.
  void set_rx_range_multiplier(NodeId node, double multiplier);

  /// Attaches the run's observability recorder; the medium emits typed
  /// phy.tx/rx/collision/loss events into it (per-frame tracing — e.g.
  /// phy::TextTrace — subscribes there). Must outlive the medium; nullptr
  /// (the default) disables emission entirely.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  const MediumStats& stats() const { return stats_; }
  const PhyParams& params() const { return params_; }
  const topo::DiscGraph& graph() const { return graph_; }

  // --- Fault-injection interface (scenario::Network as fault::FaultHost) ---
  //
  // Every check below hides behind faults_enabled_: a run without a
  // FaultPlan takes the exact same branches and draws the exact same RNG
  // sequence as before this interface existed. Fault randomness comes from
  // a dedicated stream so injected faults never shift loss_rng_'s draws.

  /// Turns the fault paths on and installs the dedicated fault RNG stream.
  void enable_faults(Rng fault_rng);

  /// Silences / revives a node: no transmissions leave it, no receptions
  /// are registered at it, frames already in the air toward it die quietly.
  void set_node_down(NodeId node, bool down);
  bool node_down(NodeId node) const {
    return faults_enabled_ && node_down_[node];
  }

  /// Per-link outage window: extra_loss >= 1 is a hard outage (frames are
  /// never registered); fractions are drawn per frame at delivery time.
  void set_link_fault(NodeId a, NodeId b, double extra_loss);
  void clear_link_fault(NodeId a, NodeId b);

  /// Inbound corruption window at `node`: each delivered frame's auth tag
  /// bytes are flipped with `probability`, so the frame dies at HMAC
  /// verification instead of in a parser.
  void set_corruption(NodeId node, double probability);
  void clear_corruption(NodeId node);

 private:
  static std::uint64_t link_key(NodeId a, NodeId b) {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  double link_fault_loss(NodeId a, NodeId b) const;
  bool collisions_active() const {
    return params_.collisions_enabled &&
           simulator_.now() >= params_.collision_free_until;
  }

  sim::Simulator& simulator_;
  const topo::DiscGraph& graph_;
  PhyParams params_;
  Rng loss_rng_;
  std::vector<Radio*> radios_;
  std::vector<double> rx_range_multiplier_;
  /// max over rx_range_multiplier_ — bounds the spatial-index query disc
  /// so transmit() only visits plausible receivers, never all N nodes.
  double max_rx_multiplier_ = 1.0;
  /// Reusable candidate buffer for the spatial-index query (transmit is
  /// the hot path; no per-frame allocation).
  std::vector<NodeId> rx_candidates_;
  obs::Recorder* recorder_ = nullptr;
  MediumStats stats_;

  // Fault-injection state; untouched (and unread beyond the bool) unless a
  // FaultPlan enabled it.
  bool faults_enabled_ = false;
  Rng fault_rng_{0};  // replaced by enable_faults' dedicated stream
  std::vector<char> node_down_;
  std::vector<double> corrupt_prob_;
  std::unordered_map<std::uint64_t, double> link_fault_;
};

}  // namespace lw::phy
