// The shared broadcast medium.
//
// Disc propagation model over the deployment geometry: every node within
// `range * range_multiplier` of the transmitter receives the frame after a
// distance-proportional propagation delay plus the serialization time at the
// channel bandwidth. Overlapping arrivals at a receiver corrupt each other
// (both are lost), matching the paper's "natural collisions".
//
// The high-power wormhole mode (Section 3.3) transmits with a multiplier
// > 1; honest nodes always use 1.0.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/recorder.h"
#include "packet/packet.h"
#include "phy/phy_params.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "topology/disc_graph.h"
#include "util/rng.h"

namespace lw::phy {

/// Channel-level counters for the metrics layer.
struct MediumStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_collided = 0;
  std::uint64_t frames_random_lost = 0;
  /// Transmission count and airtime (seconds) by packet type (index =
  /// PacketType value).
  std::array<std::uint64_t, 16> tx_by_type{};
  std::array<double, 16> airtime_by_type{};
  /// Receptions lost to collision, by packet type.
  std::array<std::uint64_t, 16> collisions_by_type{};
};

class Medium {
 public:
  Medium(sim::Simulator& simulator, const topo::DiscGraph& graph,
         PhyParams params, Rng loss_rng);

  /// Registers the radio for `radio->id()`. All radios must be attached
  /// before the first transmission.
  void attach(Radio* radio);

  /// Starts transmitting `packet` from `sender` now. The packet's tx_node
  /// is stamped with the sender id. range_multiplier scales the disc radius
  /// (high-power attack mode); 1.0 for honest traffic.
  void transmit(NodeId sender, pkt::Packet packet,
                double range_multiplier = 1.0);

  /// Serialization time of a packet at the channel bandwidth.
  Duration transmit_duration(const pkt::Packet& packet) const;

  /// Carrier sense at a node.
  bool channel_busy(NodeId node) const;

  /// Gives one node a high-gain receiver: it decodes transmissions from up
  /// to `multiplier` times the nominal range. The high-power attacker needs
  /// this for the reverse path (its far "neighbors" answer at normal
  /// power). Honest nodes stay at 1.0.
  void set_rx_range_multiplier(NodeId node, double multiplier);

  /// Attaches the run's observability recorder; the medium emits typed
  /// phy.tx/rx/collision/loss events into it (per-frame tracing — e.g.
  /// phy::TextTrace — subscribes there). Must outlive the medium; nullptr
  /// (the default) disables emission entirely.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  const MediumStats& stats() const { return stats_; }
  const PhyParams& params() const { return params_; }
  const topo::DiscGraph& graph() const { return graph_; }

 private:
  bool collisions_active() const {
    return params_.collisions_enabled &&
           simulator_.now() >= params_.collision_free_until;
  }

  sim::Simulator& simulator_;
  const topo::DiscGraph& graph_;
  PhyParams params_;
  Rng loss_rng_;
  std::vector<Radio*> radios_;
  std::vector<double> rx_range_multiplier_;
  /// max over rx_range_multiplier_ — bounds the spatial-index query disc
  /// so transmit() only visits plausible receivers, never all N nodes.
  double max_rx_multiplier_ = 1.0;
  /// Reusable candidate buffer for the spatial-index query (transmit is
  /// the hot path; no per-frame allocation).
  std::vector<NodeId> rx_candidates_;
  obs::Recorder* recorder_ = nullptr;
  MediumStats stats_;
};

}  // namespace lw::phy
