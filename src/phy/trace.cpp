#include "phy/trace.h"

#include <iomanip>

namespace lw::phy {

void TextTrace::line(Time now, const char* event, NodeId node,
                     const pkt::Packet& packet) {
  out_ << std::fixed << std::setprecision(6) << now << ' ' << event
       << " node=" << node << ' ';
  if (verbose_) {
    out_ << packet.describe();
  } else {
    out_ << pkt::to_string(packet.type) << " origin=" << packet.origin
         << " seq=" << packet.seq << " tx=" << packet.claimed_tx;
    if (packet.link_dst != kInvalidNode) out_ << " dst=" << packet.link_dst;
  }
  out_ << '\n';
}

}  // namespace lw::phy
