#include "phy/trace.h"

#include <iomanip>

namespace lw::phy {

void TextTrace::on_event(const obs::Event& event) {
  if (event.packet == nullptr) return;
  switch (event.kind) {
    case obs::EventKind::kPhyTx:
      line(event.t, "TX  ", event.node, *event.packet);
      break;
    case obs::EventKind::kPhyRx:
      line(event.t, "RX  ", event.peer, *event.packet);
      break;
    case obs::EventKind::kPhyCollision:
      line(event.t, "COLL", event.peer, *event.packet);
      break;
    case obs::EventKind::kPhyLoss:
      line(event.t, "LOSS", event.peer, *event.packet);
      break;
    default:
      break;  // subscribed beyond kPhy: not this sink's business
  }
}

void TextTrace::line(Time now, const char* label, NodeId node,
                     const pkt::Packet& packet) {
  out_ << std::fixed << std::setprecision(6) << now << ' ' << label
       << " node=" << node << ' ';
  if (verbose_) {
    out_ << packet.describe();
  } else {
    out_ << pkt::to_string(packet.type) << " origin=" << packet.origin
         << " seq=" << packet.seq << " tx=" << packet.claimed_tx;
    if (packet.link_dst != kInvalidNode) out_ << " dst=" << packet.link_dst;
  }
  out_ << '\n';
}

}  // namespace lw::phy
