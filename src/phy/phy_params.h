// Physical-layer parameters (Table 2 defaults).
#pragma once

#include "util/sim_time.h"

namespace lw::phy {

struct PhyParams {
  /// Channel bandwidth in bits/second (Table 2: 40 kbps).
  double bandwidth_bps = 40000.0;

  /// Signal propagation speed in m/s.
  double propagation_speed = 3.0e8;

  /// Independent per-reception loss probability, on top of real collisions.
  /// The coverage analysis models all channel loss as a constant P_C; this
  /// knob lets experiments reproduce that model exactly.
  double extra_loss_prob = 0.0;

  /// When false, overlapping transmissions do not corrupt each other
  /// (ideal channel; useful for protocol unit tests).
  bool collisions_enabled = true;

  /// Collisions are suppressed before this time. The paper assumes secure
  /// neighbor discovery completes within T_ND of deployment; giving the
  /// discovery window a clean channel models that assumption.
  Time collision_free_until = 0.0;
};

}  // namespace lw::phy
