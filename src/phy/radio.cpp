#include "phy/radio.h"

#include <algorithm>
#include <cassert>

namespace lw::phy {

bool Radio::channel_busy(Time now) const {
  return transmitting(now) || !ongoing_.empty() || now < nav_until_;
}

void Radio::finish_transmit() {
  if (tx_done_sink_) tx_done_sink_();
}

void Radio::begin_receive(std::shared_ptr<const pkt::Packet> packet, Time now,
                          Time end, bool collisions) {
  Reception reception{std::move(packet), end, false};
  if (collisions) {
    // Half-duplex: a transmitting node cannot decode.
    if (transmitting(now)) reception.corrupted = true;
    // Any temporal overlap with another arriving frame corrupts both.
    for (Reception& other : ongoing_) {
      other.corrupted = true;
      reception.corrupted = true;
    }
  }
  ongoing_.push_back(std::move(reception));
}

RxOutcome Radio::finish_receive(const pkt::Packet& packet, bool random_loss) {
  auto it = std::find_if(
      ongoing_.begin(), ongoing_.end(),
      [&](const Reception& r) { return r.packet->uid == packet.uid; });
  assert(it != ongoing_.end() && "finish_receive without begin_receive");
  bool corrupted = it->corrupted;
  std::shared_ptr<const pkt::Packet> held = std::move(it->packet);
  ongoing_.erase(it);

  RxOutcome outcome = corrupted        ? RxOutcome::kCollision
                      : random_loss    ? RxOutcome::kRandomLoss
                                       : RxOutcome::kDelivered;
  if (outcome == RxOutcome::kDelivered) {
    if (frame_sink_) frame_sink_(*held);
  } else if (drop_sink_) {
    drop_sink_(*held, outcome);
  }
  return outcome;
}

}  // namespace lw::phy
