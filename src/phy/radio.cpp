#include "phy/radio.h"

#include <algorithm>
#include <cassert>

namespace lw::phy {

bool Radio::channel_busy(Time now, std::uint64_t current_seq) const {
  if (transmitting(now) || now < nav_until_) return true;
  // Receptions are registered at transmit time, so a record only means
  // energy on the channel once its start has passed (records self-remove
  // at finish_receive). A start exactly at `now` counts only when the
  // virtual begin event precedes the caller's event in the schedule.
  for (const Reception& r : ongoing_) {
    if (r.start < now || (r.start == now && r.begin_seq < current_seq)) {
      return true;
    }
  }
  return false;
}

void Radio::begin_transmit(Time now, Time until, bool collisions) {
  tx_busy_until_ = until;
  for (Reception& r : ongoing_) {
    if (r.start <= now) {
      // Half-duplex: a transmitting node cannot decode what is already
      // arriving. Gate evaluated at transmit time, as before.
      if (collisions) r.corrupted = true;
    } else if (r.collisions && r.start < until) {
      // A frame that will begin arriving while we are still on air; its
      // own begin-time gate decides, matching the transmitting() check
      // the dedicated begin event used to perform.
      r.corrupted = true;
    }
  }
}

void Radio::finish_transmit() {
  if (tx_done_sink_) tx_done_sink_();
}

void Radio::register_reception(std::shared_ptr<const pkt::Packet> packet,
                               Time start, Time end, bool collisions,
                               std::uint64_t begin_seq) {
  Reception reception{std::move(packet), start, end, begin_seq, collisions,
                      false};
  // Half-duplex against a transmission already under way at `start`.
  // Transmissions that begin between now and `start` are handled by
  // begin_transmit when they happen.
  if (reception.collisions && start < tx_busy_until_) {
    reception.corrupted = true;
  }
  // Pairwise overlap with every other registered arrival. The frame that
  // starts later is the one whose begin event used to observe the overlap,
  // so its collision gate decides for the pair; when it fires, both frames
  // are lost. Equal starts carry equal gates (the gate is a function of
  // start time only), so the choice is immaterial for ties.
  for (Reception& other : ongoing_) {
    if (std::max(start, other.start) >= std::min(end, other.end)) continue;
    const bool gate =
        start >= other.start ? reception.collisions : other.collisions;
    if (gate) {
      other.corrupted = true;
      reception.corrupted = true;
    }
  }
  ongoing_.push_back(std::move(reception));
}

RxOutcome Radio::finish_receive(const pkt::Packet& packet, bool random_loss) {
  auto it = std::find_if(
      ongoing_.begin(), ongoing_.end(),
      [&](const Reception& r) { return r.packet->uid == packet.uid; });
  assert(it != ongoing_.end() && "finish_receive without register_reception");
  bool corrupted = it->corrupted;
  std::shared_ptr<const pkt::Packet> held = std::move(it->packet);
  ongoing_.erase(it);

  RxOutcome outcome = corrupted        ? RxOutcome::kCollision
                      : random_loss    ? RxOutcome::kRandomLoss
                                       : RxOutcome::kDelivered;
  if (outcome == RxOutcome::kDelivered) {
    if (frame_sink_) frame_sink_(*held);
  } else if (drop_sink_) {
    drop_sink_(*held, outcome);
  }
  return outcome;
}

void Radio::drop_reception(PacketUid uid) {
  auto it = std::find_if(
      ongoing_.begin(), ongoing_.end(),
      [&](const Reception& r) { return r.packet->uid == uid; });
  if (it != ongoing_.end()) ongoing_.erase(it);
}

bool Radio::replace_pending(PacketUid uid,
                            std::shared_ptr<const pkt::Packet> packet) {
  auto it = std::find_if(
      ongoing_.begin(), ongoing_.end(),
      [&](const Reception& r) { return r.packet->uid == uid; });
  if (it == ongoing_.end()) return false;
  it->packet = std::move(packet);
  return true;
}

}  // namespace lw::phy
