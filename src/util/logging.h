// Leveled logging with a process-global sink.
//
// Each simulator is single-threaded, but the sweep engine runs several of
// them concurrently, so emitted lines are serialized under a mutex (whole
// lines only — LogLine accumulates before writing), and the level/sink
// configuration is atomic: a set_level or set_sink racing with worker
// threads is a benign reconfiguration, not undefined behavior. The level
// filter is a relaxed load plus integer compare when the message is
// suppressed.
#pragma once

#include <atomic>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace lw {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* to_string(LogLevel level);

/// Process-global logging configuration.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Redirect output (default std::clog). The stream must outlive use.
  void set_sink(std::ostream* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<std::ostream*> sink_{nullptr};
  std::mutex write_mutex_;
};

/// RAII line builder: accumulates a message and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace lw

#define LW_LOG(level)                                  \
  if (!::lw::Logger::instance().enabled(level)) {      \
  } else                                               \
    ::lw::LogLine(level)

#define LW_TRACE LW_LOG(::lw::LogLevel::kTrace)
#define LW_DEBUG LW_LOG(::lw::LogLevel::kDebug)
#define LW_INFO LW_LOG(::lw::LogLevel::kInfo)
#define LW_WARN LW_LOG(::lw::LogLevel::kWarn)
#define LW_ERROR LW_LOG(::lw::LogLevel::kError)
