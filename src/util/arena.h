// Size-class pool arena for the simulator's steady-state allocations.
//
// Profiling at N=500 shows ~1.5 mallocs per executed event: shared packets,
// packet route/neighbor vectors, SmallFn heap spills, MAC queue chunks, and
// cancellation flags. All of these are small, short-lived, and recur with
// the same handful of sizes, which is the textbook pool-allocator shape.
//
// Arena carves blocks from geometrically grown chunks obtained once from
// the system allocator; freed blocks go on per-size-class freelists and
// are recycled without ever touching ::operator new again. After warm-up
// every steady-state allocation is a freelist pop — the zero-allocation
// property the LW_COUNT_ALLOCS tier-1 test asserts.
//
// Threading: each thread owns one arena (thread_arena()). A replica runs
// wholly on one worker thread, so pooled memory never outlives its thread.
// PoolAllocator is stateless (all instances compare equal) so swapping it
// into a container is a type alias, not a plumbing change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace lw::util {

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Pool-or-passthrough allocation. Sizes up to kMaxPooled bytes (and
  /// natural alignment) come from the size-class freelists; anything
  /// larger or over-aligned falls through to ::operator new.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));
  void deallocate(void* ptr, std::size_t bytes,
                  std::size_t align = alignof(std::max_align_t)) noexcept;

  struct Stats {
    std::size_t chunk_bytes = 0;      ///< total carved from the system
    std::size_t chunks = 0;           ///< system allocations made for pools
    std::uint64_t pool_allocs = 0;    ///< served from freelist or chunk bump
    std::uint64_t direct_allocs = 0;  ///< fell through to ::operator new
  };
  const Stats& stats() const { return stats_; }

  /// Largest pooled block. Must cover the bucket arrays of the watch and
  /// dedup hash tables at their clamp sizes (~8k entries, rehashed to
  /// prime bucket counts well past 64 KiB of pointers) — a bucket array
  /// that falls through to ::operator new would show up as steady-state
  /// heap traffic every time a guard's table cycles.
  static constexpr std::size_t kMaxPooled = std::size_t{1} << 20;

 private:
  static constexpr std::size_t kMinShift = 4;  // smallest class: 16 bytes
  static constexpr std::size_t kMaxShift = 20;
  static constexpr std::size_t kClasses = kMaxShift - kMinShift + 1;

  struct FreeBlock {
    FreeBlock* next;
  };
  struct Chunk {
    Chunk* next;
  };

  /// Power-of-two size class; bytes must be <= kMaxPooled.
  static std::size_t class_index(std::size_t bytes);
  /// Carves a fresh block of class `cls` from the current chunk, growing
  /// the chunk list when exhausted.
  void* carve(std::size_t cls);

  FreeBlock* free_[kClasses] = {};
  Chunk* chunks_ = nullptr;
  unsigned char* bump_ = nullptr;
  unsigned char* bump_end_ = nullptr;
  std::size_t next_chunk_bytes_ = std::size_t{1} << 16;  // doubles to 4 MiB
  Stats stats_;
};

/// The calling thread's pool. Pooled memory must not outlive the thread
/// that allocated it (true for all simulator state: a replica lives and
/// dies on one worker).
Arena& thread_arena();

/// Stateless std-allocator over thread_arena(). All instances are equal,
/// so containers swap in with a type alias and no constructor plumbing.
template <typename T>
struct PoolAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT: converting

  T* allocate(std::size_t n) {
    return static_cast<T*>(thread_arena().allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* ptr, std::size_t n) noexcept {
    thread_arena().deallocate(ptr, n * sizeof(T), alignof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

/// std::vector on the thread pool arena.
template <typename T>
using PoolVector = std::vector<T, PoolAllocator<T>>;

/// std::string on the thread pool arena (reusable serialization buffers).
using PoolString =
    std::basic_string<char, std::char_traits<char>, PoolAllocator<char>>;

/// std::unordered_map whose nodes and bucket array recycle through the
/// thread pool arena.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
using PoolUnorderedMap =
    std::unordered_map<K, V, Hash, Eq, PoolAllocator<std::pair<const K, V>>>;

template <typename K, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
using PoolUnorderedSet = std::unordered_set<K, Hash, Eq, PoolAllocator<K>>;

}  // namespace lw::util
