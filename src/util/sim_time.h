// Virtual simulation time.
//
// Time is a double in seconds, matching ns-2 conventions. All protocol
// parameters (timeouts, rates) are expressed in these units.
#pragma once

namespace lw {

/// Virtual time in seconds since simulation start.
using Time = double;

/// A span of virtual time in seconds.
using Duration = double;

inline constexpr Time kTimeZero = 0.0;

/// Sentinel for "never" / unset deadlines.
inline constexpr Time kTimeNever = 1e300;

}  // namespace lw
