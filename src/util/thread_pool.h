// Reusable fixed-size worker pool for embarrassingly parallel jobs.
//
// The simulator itself stays single-threaded; parallelism lives one level
// up, where independent Simulator instances (one per sweep job) run on
// separate workers. submit() enqueues a job, wait_idle() blocks until every
// submitted job has finished; the pool is reusable across submit/wait
// cycles. Jobs must not throw — wrap the body and stash the exception if
// the work can fail (see scenario/sweep.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lw {

class ThreadPool {
 public:
  /// Spawns `threads` workers (floored at 1).
  explicit ThreadPool(std::size_t threads);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and no job is executing.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lw
