// Small math helpers shared by the geometry and analysis code.
#pragma once

#include <cmath>
#include <numbers>

namespace lw {

inline constexpr double kPi = std::numbers::pi;

/// x^2 without repeating the expression.
constexpr double sq(double x) { return x * x; }

/// Euclidean distance between (x1,y1) and (x2,y2).
inline double dist2d(double x1, double y1, double x2, double y2) {
  return std::hypot(x1 - x2, y1 - y2);
}

/// Clamp a probability into [0, 1]; analysis formulas can stray slightly
/// outside due to floating error.
inline double clamp01(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

/// True if |a-b| <= tol (absolute tolerance comparison for doubles).
inline bool near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

}  // namespace lw
