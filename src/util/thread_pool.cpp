#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace lw {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ with nothing left to drain
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    job();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace lw
