// Single version constant shared by every CLI surface (lw-trace,
// lw-report, benches): one place to bump, one answer to --version.
#pragma once

namespace lw {

/// Simulator/tooling version. Bumped when the machine-readable output
/// formats (trace JSONL, sweep JSON, series schema, BENCH_history.json)
/// gain fields; existing fields never change meaning within a major
/// version.
inline constexpr const char* kVersionString = "0.7.0";

}  // namespace lw
