// Minimal typed key/value configuration with command-line parsing.
//
// Benches and examples accept "--key=value" flags; scenario code reads
// typed values with defaults. Unknown keys are kept so callers can reject
// typos explicitly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lw {

class Config {
 public:
  Config() = default;

  /// Parses argv entries of the form --key=value or --flag (value "true").
  /// Non-flag entries are collected as positionals.
  static Config from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;

  /// Typed getters return the default when the key is absent, and throw
  /// std::invalid_argument when the value does not parse.
  std::string get_string(const std::string& key, std::string def) const;
  double get_double(const std::string& key, double def) const;
  int get_int(const std::string& key, int def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Keys that were set but never read through a getter; used by mains to
  /// diagnose mistyped flags.
  std::vector<std::string> unread_keys() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positionals_;
};

}  // namespace lw
