// Minimal JSON reader for the repo's own machine output (sweep JSON,
// bench rows, BENCH_history.json).
//
// The emitters in this codebase produce a small, predictable dialect —
// objects, arrays, strings with basic escapes, finite numbers, booleans,
// null — and this parser covers exactly that (no comments, no NaN/Inf
// literals, UTF-8 passed through verbatim). Objects preserve insertion
// order so rendered reports list fields the way the producer wrote them.
//
// Parse errors throw JsonParseError with a byte offset, which the CLI
// tools translate into "file:offset: message" diagnostics.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lw::util {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message), offset_(offset) {}
  /// Byte offset into the parsed text where the error was detected.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value; a tagged tree. Cheap enough for the report
/// tooling's file-sized inputs (this is not a streaming parser).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Throws JsonParseError.
  static JsonValue parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  /// Numbers are doubles: exact for every counter below 2^53, which covers
  /// all emitted values by a wide margin.
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Member lookup; null when absent or when this is not an object.
  const JsonValue* find(const std::string& key) const;
  /// find() that also requires the member to be a number; `fallback` when
  /// absent. The report tooling's main accessor.
  double number_or(const std::string& key, double fallback) const;
  /// find() for strings; `fallback` when absent.
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace lw::util
