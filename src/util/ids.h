// Strongly-typed identifiers used across the library.
//
// A NodeId is a small integer handle assigned densely at network-build time;
// kInvalidNode marks "no node" (e.g. an empty previous-hop announcement).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace lw {

/// Dense handle for a node in the simulated network.
using NodeId = std::uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Monotonic per-origin packet sequence number.
using SeqNo = std::uint64_t;

/// Globally unique packet instance id (assigned by the packet factory).
using PacketUid = std::uint64_t;

/// Causal lineage id: assigned when a packet is first created and inherited
/// by every forwarded/tunneled/replayed copy, so a packet's full hop-by-hop
/// journey is reconstructible from the event trace alone. Distinct from
/// PacketUid, which is fresh per physical frame.
using LineageId = std::uint64_t;

/// Key that identifies one end-to-end control packet for watch-buffer
/// matching: (origin, sequence number, packet type tag).
struct FlowKey {
  NodeId origin = kInvalidNode;
  SeqNo seq = 0;
  std::uint8_t type_tag = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

}  // namespace lw

template <>
struct std::hash<lw::FlowKey> {
  std::size_t operator()(const lw::FlowKey& k) const noexcept {
    std::uint64_t h = k.origin;
    h = h * 0x9E3779B97F4A7C15ull + k.seq;
    h = h * 0x9E3779B97F4A7C15ull + k.type_tag;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};
