#include "util/alloc_count.h"

#include <execinfo.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace lw::util {

#if defined(LW_ALLOC_COUNT_DISABLED)

bool alloc_counting_active() { return false; }
AllocCounts alloc_counts() { return {}; }
void alloc_trace_arm(int) {}

#else

namespace {
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<int> g_trace_remaining{0};
}  // namespace

void alloc_trace_arm(int count) {
  g_trace_remaining.store(count, std::memory_order_relaxed);
}

bool alloc_counting_active() { return true; }

AllocCounts alloc_counts() {
  return {g_news.load(std::memory_order_relaxed),
          g_deletes.load(std::memory_order_relaxed)};
}

namespace detail {

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (g_trace_remaining.load(std::memory_order_relaxed) > 0 &&
      g_trace_remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
    void* frames[32];
    int n = backtrace(frames, 32);
    std::fprintf(stderr, "--- alloc %zu bytes ---\n", size);
    backtrace_symbols_fd(frames, n, 2);
  }
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* ptr = std::aligned_alloc(align, rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace detail

#endif  // LW_ALLOC_COUNT_DISABLED

}  // namespace lw::util

#if !defined(LW_ALLOC_COUNT_DISABLED)

// Global replacement operator new/delete (all required forms). These are
// the strong definitions the whole binary uses once this TU is linked in —
// which happens exactly when something references alloc_counts().

void* operator new(std::size_t size) {
  return lw::util::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return lw::util::detail::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return lw::util::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return lw::util::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return lw::util::detail::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return lw::util::detail::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { lw::util::detail::counted_free(ptr); }
void operator delete[](void* ptr) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::size_t) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  lw::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  lw::util::detail::counted_free(ptr);
}

#endif  // !LW_ALLOC_COUNT_DISABLED
