#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace lw::util {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string_text();
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string_text() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // Our emitters never write \u escapes; decode the BMP subset so
          // foreign files at least round-trip ASCII-range escapes.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) fail("bad \\u escape");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kString;
    value.string_ = parse_string_text();
    return value;
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kBool;
    if (consume_literal("true")) {
      value.bool_ = true;
    } else if (consume_literal("false")) {
      value.bool_ = false;
    } else {
      fail("bad literal");
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("bad number");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.number_ = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : fallback;
}

}  // namespace lw::util
