#include "util/config.h"

#include <stdexcept>

namespace lw {

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      config.positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      config.set(arg, "true");
    } else {
      config.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  return config;
}

void Config::set(std::string key, std::string value) {
  read_[key] = false;
  values_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_[key] = true;
  return it->second;
}

std::string Config::get_string(const std::string& key, std::string def) const {
  auto v = raw(key);
  return v ? *v : def;
}

double Config::get_double(const std::string& key, double def) const {
  auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t used = 0;
    double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument(*v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not a number: " + *v);
  }
}

int Config::get_int(const std::string& key, int def) const {
  auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t used = 0;
    int parsed = std::stoi(*v, &used);
    if (used != v->size()) throw std::invalid_argument(*v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not an integer: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto v = raw(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("config key '" + key +
                              "' is not a boolean: " + *v);
}

std::vector<std::string> Config::unread_keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, was_read] : read_) {
    if (!was_read) keys.push_back(key);
  }
  return keys;
}

}  // namespace lw
