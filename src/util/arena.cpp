#include "util/arena.h"

#include <cassert>
#include <cstdlib>
#include <new>

namespace lw::util {
namespace {

/// Smallest power of two >= bytes, as a shift. bytes > 0.
std::size_t ceil_shift(std::size_t bytes) {
  std::size_t shift = 0;
  std::size_t size = 1;
  while (size < bytes) {
    size <<= 1;
    ++shift;
  }
  return shift;
}

}  // namespace

Arena::~Arena() {
  Chunk* chunk = chunks_;
  while (chunk != nullptr) {
    Chunk* next = chunk->next;
    std::free(static_cast<void*>(chunk));
    chunk = next;
  }
}

std::size_t Arena::class_index(std::size_t bytes) {
  const std::size_t shift = ceil_shift(bytes);
  return shift <= kMinShift ? 0 : shift - kMinShift;
}

void* Arena::carve(std::size_t cls) {
  const std::size_t block = std::size_t{1} << (cls + kMinShift);
  if (static_cast<std::size_t>(bump_end_ - bump_) < block) {
    // The leftover tail (if any) is smaller than this block; park it on
    // the freelist of the largest class it still fits so it is not lost.
    while (bump_end_ - bump_ >= static_cast<std::ptrdiff_t>(1) << kMinShift) {
      std::size_t tail_shift = kMinShift;
      while (static_cast<std::size_t>(bump_end_ - bump_) >=
             (std::size_t{2} << tail_shift)) {
        ++tail_shift;
      }
      if (tail_shift > kMaxShift) tail_shift = kMaxShift;
      auto* tail = reinterpret_cast<FreeBlock*>(bump_);
      tail->next = free_[tail_shift - kMinShift];
      free_[tail_shift - kMinShift] = tail;
      bump_ += std::size_t{1} << tail_shift;
    }
    const std::size_t want = block + sizeof(Chunk);
    std::size_t chunk_bytes = next_chunk_bytes_;
    while (chunk_bytes < want) chunk_bytes <<= 1;
    if (next_chunk_bytes_ < (std::size_t{1} << 22)) next_chunk_bytes_ <<= 1;
    // Chunks come from malloc, not ::operator new: the LW_COUNT_ALLOCS
    // replacement counts C++ allocations, and amortized pool growth is
    // infrastructure, not per-event churn. malloc also keeps the arena
    // reentrancy-free with respect to the replaced global new.
    auto* raw = static_cast<unsigned char*>(std::malloc(chunk_bytes));
    if (raw == nullptr) throw std::bad_alloc();
    auto* chunk = reinterpret_cast<Chunk*>(raw);
    chunk->next = chunks_;
    chunks_ = chunk;
    // Chunk header is 8 bytes; start the bump pointer at the next 16-byte
    // boundary so every carved block is max_align-aligned.
    bump_ = raw + (std::size_t{1} << kMinShift);
    bump_end_ = raw + chunk_bytes;
    stats_.chunk_bytes += chunk_bytes;
    ++stats_.chunks;
  }
  void* out = bump_;
  bump_ += block;
  return out;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    ++stats_.direct_allocs;
    if (align > alignof(std::max_align_t)) {
      return ::operator new(bytes, std::align_val_t{align});
    }
    return ::operator new(bytes);
  }
  ++stats_.pool_allocs;
  const std::size_t cls = class_index(bytes);
  if (FreeBlock* head = free_[cls]) {
    free_[cls] = head->next;
    return head;
  }
  return carve(cls);
}

void Arena::deallocate(void* ptr, std::size_t bytes,
                       std::size_t align) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled || align > alignof(std::max_align_t)) {
    if (align > alignof(std::max_align_t)) {
      ::operator delete(ptr, std::align_val_t{align});
    } else {
      ::operator delete(ptr);
    }
    return;
  }
  const std::size_t cls = class_index(bytes);
  auto* block = static_cast<FreeBlock*>(ptr);
  block->next = free_[cls];
  free_[cls] = block;
}

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace lw::util
