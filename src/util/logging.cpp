#include "util/logging.h"

#include <iostream>

namespace lw {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::ostream* sink = sink_.load(std::memory_order_acquire);
  std::ostream& out = sink ? *sink : std::clog;
  out << '[' << to_string(level) << "] " << message << '\n';
}

}  // namespace lw
