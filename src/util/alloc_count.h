// Opt-in global allocation counters (the LW_COUNT_ALLOCS test hook).
//
// When active, every ::operator new / delete in the process bumps a relaxed
// atomic counter. The zero-steady-state-allocation tier-1 test snapshots the
// counters around a post-warm-up simulation window and asserts the delta is
// zero — proving the arena/pool conversions, not eyeballing them.
//
// The replacement allocator is compiled out under the sanitizer builds
// (ASan/TSan own the allocator there); alloc_counting_active() then reports
// false and the test skips.
#pragma once

#include <cstdint>

namespace lw::util {

struct AllocCounts {
  std::uint64_t news = 0;
  std::uint64_t deletes = 0;
};

/// True when the counting operator new/delete replacement is linked into
/// this binary and not disabled for the build.
bool alloc_counting_active();

/// Snapshot of the process-wide counters (zeros when inactive).
AllocCounts alloc_counts();

/// Debug aid: dumps a backtrace to stderr for the next `count` allocations.
/// No-op when counting is inactive.
void alloc_trace_arm(int count);

}  // namespace lw::util
