// Seeded random-number streams.
//
// Every stochastic component of the simulator draws from its own named
// stream derived from the run's master seed, so that (a) runs are exactly
// reproducible given a seed, and (b) adding draws to one component does not
// perturb another component's sequence (independent-stream discipline).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace lw {

/// One independent random stream. Thin wrapper over std::mt19937_64 with
/// the distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed interarrival with the given rate (1/mean).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return uniform01() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Derives per-component seeds from a master seed and a component name, via
/// SplitMix64 over a FNV-1a hash of the name. Streams for distinct names are
/// decorrelated; the same (master, name) pair always yields the same stream.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_(master_seed) {}

  std::uint64_t master_seed() const { return master_; }

  /// Stream seed for a named component.
  std::uint64_t derive(std::string_view name) const;

  /// Stream seed for a named component with an integer discriminator
  /// (e.g. per-node streams).
  std::uint64_t derive(std::string_view name, std::uint64_t index) const;

  Rng stream(std::string_view name) const { return Rng(derive(name)); }
  Rng stream(std::string_view name, std::uint64_t index) const {
    return Rng(derive(name, index));
  }

 private:
  std::uint64_t master_;
};

}  // namespace lw
