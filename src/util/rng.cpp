#include "util/rng.h"

namespace lw {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t RngFactory::derive(std::string_view name) const {
  return splitmix64(fnv1a(name, kFnvOffset ^ master_));
}

std::uint64_t RngFactory::derive(std::string_view name,
                                 std::uint64_t index) const {
  return splitmix64(derive(name) ^ splitmix64(index + 1));
}

}  // namespace lw
