// Pairwise key pre-distribution.
//
// LITEWORP assumes a pairwise key-management substrate (the paper cites
// probabilistic pre-distribution schemes). For the simulation we model the
// *outcome* of such a scheme: every ordered pair of nodes can derive the
// same symmetric key, rooted in a per-deployment master secret. Deriving
// K(a,b) = HMAC(master, min(a,b) || max(a,b)) gives each unordered pair a
// distinct key without any per-node state, which matches the paper's claim
// that key management costs nothing during failure-free operation.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "util/arena.h"
#include "util/ids.h"

namespace lw::crypto {

class KeyManager {
 public:
  /// master_secret seeds the whole deployment; nodes sharing the same
  /// KeyManager (same deployment) agree on all pairwise keys.
  explicit KeyManager(std::uint64_t master_secret);

  /// Pre-sizes the dense pair table for node ids < `count` (the deployment
  /// size, late joiners included). Ids beyond the reservation still work
  /// through a hash-map fallback; the dense path is an O(1) array index
  /// with no hashing and no per-pair node allocation. Keys themselves are
  /// still derived lazily — the reservation is 4 bytes per unordered pair.
  void reserve_nodes(std::size_t count);

  /// Symmetric key shared by the unordered pair {a, b}. pairwise_key(a,b)
  /// == pairwise_key(b,a).
  Key pairwise_key(NodeId a, NodeId b) const;

  /// Tags message with the key shared by {self, peer}.
  AuthTag sign(NodeId self, NodeId peer, std::string_view message) const;

  /// Tags one message under the pairwise key of every peer in one
  /// multi-buffer sweep: out[i] = sign(self, peers[i], message). The
  /// fan-out shape of alert multicast and neighbor-list broadcast.
  void sign_batch(NodeId self, std::span<const NodeId> peers,
                  std::string_view message, AuthTag* out) const;

  /// Verifies tags[i] against sign(self, peers[i], message) in one sweep.
  /// Returns true iff every tag matches.
  bool verify_batch(NodeId self, std::span<const NodeId> peers,
                    std::string_view message, const AuthTag* tags) const;

  /// Verifies a tag allegedly produced with the key shared by {a, b}.
  bool verify(NodeId a, NodeId b, std::string_view message,
              const AuthTag& tag) const;

  /// Prepared HMAC state for the key shared by {a, b}. Derived once per
  /// unordered pair and cached; sign/verify reuse it so every tag costs
  /// two SHA-256 finishes instead of a key derivation plus pad rehashing.
  /// References stay valid for the KeyManager's lifetime (deque-backed).
  /// Safe without locking: each simulated deployment owns its KeyManager.
  const HmacKey& pairwise_state(NodeId a, NodeId b) const;

 private:
  /// Heap-free K(lo, hi) derivation + pad absorption.
  HmacKey derive_state(NodeId lo, NodeId hi) const;

  HmacKey master_state_;
  /// Dense triangular index for ids < reserved_nodes_: pair (lo, hi) maps
  /// to slot_index_[hi*(hi+1)/2 + lo], which is -1 or an index into
  /// states_. states_ is a deque so cached HmacKey references are stable
  /// across growth (batch verification holds several at once).
  std::size_t reserved_nodes_ = 0;
  mutable std::vector<std::int32_t> slot_index_;
  mutable std::deque<HmacKey, util::PoolAllocator<HmacKey>> states_;
  /// Fallback for ids outside the reservation (tests, ad-hoc tools).
  mutable util::PoolUnorderedMap<std::uint64_t, HmacKey> overflow_;
  /// Scratch for the batch paths (pool-backed, recycled per call).
  mutable HmacBatch batch_;
};

/// An external attacker: has no valid keys, so every tag it forges is an
/// 8-byte guess. Used by tests to show outsider packets are rejected.
AuthTag forge_tag(std::uint64_t attacker_state);

}  // namespace lw::crypto
