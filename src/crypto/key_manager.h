// Pairwise key pre-distribution.
//
// LITEWORP assumes a pairwise key-management substrate (the paper cites
// probabilistic pre-distribution schemes). For the simulation we model the
// *outcome* of such a scheme: every ordered pair of nodes can derive the
// same symmetric key, rooted in a per-deployment master secret. Deriving
// K(a,b) = HMAC(master, min(a,b) || max(a,b)) gives each unordered pair a
// distinct key without any per-node state, which matches the paper's claim
// that key management costs nothing during failure-free operation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "crypto/hmac.h"
#include "util/ids.h"

namespace lw::crypto {

class KeyManager {
 public:
  /// master_secret seeds the whole deployment; nodes sharing the same
  /// KeyManager (same deployment) agree on all pairwise keys.
  explicit KeyManager(std::uint64_t master_secret);

  /// Symmetric key shared by the unordered pair {a, b}. pairwise_key(a,b)
  /// == pairwise_key(b,a).
  Key pairwise_key(NodeId a, NodeId b) const;

  /// Tags message with the key shared by {self, peer}.
  AuthTag sign(NodeId self, NodeId peer, std::string_view message) const;

  /// Verifies a tag allegedly produced with the key shared by {a, b}.
  bool verify(NodeId a, NodeId b, std::string_view message,
              const AuthTag& tag) const;

  /// Prepared HMAC state for the key shared by {a, b}. Derived once per
  /// unordered pair and cached; sign/verify reuse it so every tag costs
  /// two SHA-256 finishes instead of a key derivation plus pad rehashing.
  /// Safe without locking: each simulated deployment owns its KeyManager.
  const HmacKey& pairwise_state(NodeId a, NodeId b) const;

 private:
  HmacKey master_state_;
  mutable std::unordered_map<std::uint64_t, HmacKey> pair_cache_;
};

/// An external attacker: has no valid keys, so every tag it forges is an
/// 8-byte guess. Used by tests to show outsider packets are rejected.
AuthTag forge_tag(std::uint64_t attacker_state);

}  // namespace lw::crypto
