// Multi-buffer SHA-256: finish many same-length messages in one sweep.
//
// The simulator's crypto cost is dominated by fan-out signing and
// verification: one payload tagged under N pairwise keys (alert multicast,
// neighbor-list broadcast) and N accumulated tags checked against one
// payload. Each HMAC costs two SHA-256 finishes from cached midstates;
// those finishes are independent per key, which is the textbook shape for
// lane-parallel ("multi-buffer") hashing — 8 independent message streams
// occupy the 8 32-bit lanes of one AVX2 register through the 64 rounds.
//
// The engine is runtime-dispatched: an AVX2 8-lane kernel when the CPU has
// it, a portable scalar loop otherwise. Both produce bit-identical digests
// to the incremental Sha256 class (asserted by randomized equivalence
// tests under ASan/UBSan).
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/sha256.h"

namespace lw::crypto {

/// Lane width of the selected engine: 8 on AVX2 hardware, 1 for the
/// scalar fallback. Calls with any `count` work either way; the width only
/// matters for throughput expectations.
std::size_t sha256_multi_lanes();

/// True when the AVX2 kernel was selected at runtime.
bool sha256_multi_simd();

/// Finalizes `count` messages in one call:
///   out[i] = SHA-256( prefix(starts[i]) || data[i][0 .. len) )
/// where starts[i] is a block-aligned midstate (Sha256::save) whose
/// absorbed prefix is starts[i].bytes long. All messages share the same
/// suffix length `len`, so every lane runs the same block/padding
/// schedule. data[i] pointers may alias (the same payload hashed under
/// different midstates — the fan-out signing shape).
void sha256_many(const Sha256State* starts, const std::uint8_t* const* data,
                 std::size_t len, std::size_t count, Digest* out);

}  // namespace lw::crypto
