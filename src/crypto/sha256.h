// SHA-256 per FIPS 180-4.
//
// LITEWORP assumes a pair-wise shared-key infrastructure and authenticated
// messages (neighbor-discovery replies, neighbor-list broadcasts, alerts).
// We implement the hash from scratch so the library is self-contained; it is
// validated against the NIST short-message test vectors in the test suite.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace lw::crypto {

/// 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Compression state captured at a block boundary (Sha256::save). Lets a
/// fixed prefix — e.g. the HMAC ipad/opad block — be absorbed once and
/// replayed for every message instead of being rehashed each time.
struct Sha256State {
  std::array<std::uint32_t, 8> h;
  std::uint64_t bytes;
};

/// Incremental SHA-256 context. Usage: update(...) any number of times,
/// then finalize() exactly once.
class Sha256 {
 public:
  Sha256();

  /// Absorb a span of bytes.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Pads, finishes, and returns the digest. The context must not be
  /// updated afterwards (reset() starts a new message).
  Digest finalize();

  /// Reinitializes for a new message.
  void reset();

  /// Snapshots the compression state. Only valid at a block boundary
  /// (total bytes absorbed must be a multiple of 64) before finalize().
  Sha256State save() const;

  /// Resumes hashing as if the saved prefix had just been absorbed.
  void restore(const Sha256State& state);

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// Lowercase hex encoding of a digest (for logs and tests).
std::string to_hex(const Digest& digest);

}  // namespace lw::crypto
