#include "crypto/sha256_multi.h"

#include <cassert>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define LW_SHA_MULTI_X86 1
#include <immintrin.h>
#endif

namespace lw::crypto {
namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

/// One lane at a time through the incremental implementation — the
/// reference the SIMD kernel must match bit for bit.
void sha256_many_scalar(const Sha256State* starts,
                        const std::uint8_t* const* data, std::size_t len,
                        std::size_t count, Digest* out) {
  for (std::size_t i = 0; i < count; ++i) {
    Sha256 ctx;
    ctx.restore(starts[i]);
    ctx.update(std::span<const std::uint8_t>(data[i], len));
    out[i] = ctx.finalize();
  }
}

#if defined(LW_SHA_MULTI_X86)

constexpr std::size_t kLanes = 8;

__attribute__((target("avx2"))) inline __m256i rotr8(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

/// Transposes an 8x8 matrix of dwords held one row per register.
__attribute__((target("avx2"))) inline void transpose8(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/// Compresses one 64-byte block per lane into the transposed state
/// (state[j] holds word j of all 8 lanes).
__attribute__((target("avx2"))) void sha256_block8(
    __m256i state[8], const std::uint8_t* const blocks[kLanes]) {
  // Big-endian dword byteswap within each lane row.
  const __m256i bswap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,  //
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  // Message schedule, transposed: w[t] = word t of every lane. Each lane's
  // 64-byte block is two 32-byte rows; two 8x8 transposes produce w[0..7]
  // and w[8..15].
  __m256i w[64];
  for (int half = 0; half < 2; ++half) {
    __m256i rows[8];
    for (int l = 0; l < 8; ++l) {
      rows[l] = _mm256_shuffle_epi8(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
              blocks[l] + 32 * half)),
          bswap);
    }
    transpose8(rows);
    for (int t = 0; t < 8; ++t) w[8 * half + t] = rows[t];
  }
  for (int t = 16; t < 64; ++t) {
    __m256i w15 = w[t - 15];
    __m256i w2 = w[t - 2];
    __m256i s0 = _mm256_xor_si256(_mm256_xor_si256(rotr8(w15, 7), rotr8(w15, 18)),
                                  _mm256_srli_epi32(w15, 3));
    __m256i s1 = _mm256_xor_si256(_mm256_xor_si256(rotr8(w2, 17), rotr8(w2, 19)),
                                  _mm256_srli_epi32(w2, 10));
    w[t] = _mm256_add_epi32(_mm256_add_epi32(w[t - 16], s0),
                            _mm256_add_epi32(w[t - 7], s1));
  }

  __m256i a = state[0], b = state[1], c = state[2], d = state[3];
  __m256i e = state[4], f = state[5], g = state[6], h = state[7];
  for (int t = 0; t < 64; ++t) {
    __m256i big_s1 =
        _mm256_xor_si256(_mm256_xor_si256(rotr8(e, 6), rotr8(e, 11)),
                         rotr8(e, 25));
    __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                  _mm256_andnot_si256(e, g));
    __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, big_s1), ch),
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(kK[t])), w[t]));
    __m256i big_s0 =
        _mm256_xor_si256(_mm256_xor_si256(rotr8(a, 2), rotr8(a, 13)),
                         rotr8(a, 22));
    __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    __m256i temp2 = _mm256_add_epi32(big_s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }
  state[0] = _mm256_add_epi32(state[0], a);
  state[1] = _mm256_add_epi32(state[1], b);
  state[2] = _mm256_add_epi32(state[2], c);
  state[3] = _mm256_add_epi32(state[3], d);
  state[4] = _mm256_add_epi32(state[4], e);
  state[5] = _mm256_add_epi32(state[5], f);
  state[6] = _mm256_add_epi32(state[6], g);
  state[7] = _mm256_add_epi32(state[7], h);
}

/// Full 8-lane group: same suffix length, same prefix length (asserted by
/// the caller), arbitrary midstates and data pointers.
__attribute__((target("avx2"))) void sha256_group8(
    const Sha256State* starts, const std::uint8_t* const* data,
    std::size_t len, Digest* out) {
  __m256i state[8];
  for (int j = 0; j < 8; ++j) {
    alignas(32) std::uint32_t lane[8];
    for (int l = 0; l < 8; ++l) lane[l] = starts[l].h[j];
    state[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane));
  }

  const std::size_t full_blocks = len / 64;
  const std::size_t rem = len % 64;
  const std::uint8_t* blocks[kLanes];
  for (std::size_t b = 0; b < full_blocks; ++b) {
    for (int l = 0; l < 8; ++l) blocks[l] = data[l] + 64 * b;
    sha256_block8(state, blocks);
  }

  // Padded tail: rem bytes, 0x80, zeros, 64-bit big-endian bit length.
  // Identical layout across lanes because prefix and suffix lengths match.
  const std::uint64_t bit_len = (starts[0].bytes + len) * 8;
  const std::size_t tail_blocks = (rem + 1 + 8 <= 64) ? 1 : 2;
  alignas(32) std::uint8_t tail[kLanes][128];
  for (int l = 0; l < 8; ++l) {
    std::memset(tail[l], 0, sizeof(tail[l]));
    std::memcpy(tail[l], data[l] + 64 * full_blocks, rem);
    tail[l][rem] = 0x80;
    std::uint8_t* lenp = tail[l] + 64 * tail_blocks - 8;
    for (int i = 0; i < 8; ++i) {
      lenp[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
  }
  for (std::size_t b = 0; b < tail_blocks; ++b) {
    for (int l = 0; l < 8; ++l) blocks[l] = tail[l] + 64 * b;
    sha256_block8(state, blocks);
  }

  for (int j = 0; j < 8; ++j) {
    alignas(32) std::uint32_t lane[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), state[j]);
    for (int l = 0; l < 8; ++l) {
      out[l][4 * j + 0] = static_cast<std::uint8_t>(lane[l] >> 24);
      out[l][4 * j + 1] = static_cast<std::uint8_t>(lane[l] >> 16);
      out[l][4 * j + 2] = static_cast<std::uint8_t>(lane[l] >> 8);
      out[l][4 * j + 3] = static_cast<std::uint8_t>(lane[l]);
    }
  }
}

void sha256_many_avx2(const Sha256State* starts,
                      const std::uint8_t* const* data, std::size_t len,
                      std::size_t count, Digest* out) {
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    // Lanes of one SIMD group must share the prefix length (they always
    // do in practice: HMAC midstates are one block deep). A mixed group
    // falls back to the scalar loop for those lanes.
    bool same_prefix = true;
    for (std::size_t l = 1; l < kLanes; ++l) {
      same_prefix &= starts[i + l].bytes == starts[i].bytes;
    }
    if (!same_prefix) {
      sha256_many_scalar(starts + i, data + i, len, kLanes, out + i);
      continue;
    }
    sha256_group8(starts + i, data + i, len, out + i);
  }
  if (i < count) sha256_many_scalar(starts + i, data + i, len, count - i, out + i);
}

#endif  // LW_SHA_MULTI_X86

using ManyFn = void (*)(const Sha256State*, const std::uint8_t* const*,
                        std::size_t, std::size_t, Digest*);

ManyFn resolve_engine() {
#if defined(LW_SHA_MULTI_X86)
  if (__builtin_cpu_supports("avx2")) return sha256_many_avx2;
#endif
  return sha256_many_scalar;
}

ManyFn engine() {
  static const ManyFn fn = resolve_engine();
  return fn;
}

}  // namespace

std::size_t sha256_multi_lanes() {
#if defined(LW_SHA_MULTI_X86)
  if (engine() == sha256_many_avx2) return kLanes;
#endif
  return 1;
}

bool sha256_multi_simd() { return sha256_multi_lanes() > 1; }

void sha256_many(const Sha256State* starts, const std::uint8_t* const* data,
                 std::size_t len, std::size_t count, Digest* out) {
  if (count == 0) return;
  engine()(starts, data, len, count, out);
}

}  // namespace lw::crypto
