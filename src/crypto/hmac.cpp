#include "crypto/hmac.h"

#include <algorithm>
#include <array>

namespace lw::crypto {
namespace {

constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(
    std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, kBlockSize> block{};
  if (key.size() > kBlockSize) {
    Digest digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  return block;
}

}  // namespace

HmacKey::HmacKey(std::span<const std::uint8_t> key) {
  auto block = normalize_key(key);

  std::array<std::uint8_t, kBlockSize> pad;
  Sha256 ctx;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
  }
  ctx.update(pad);
  inner_ = ctx.save();

  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }
  ctx.reset();
  ctx.update(pad);
  outer_ = ctx.save();
}

Digest HmacKey::digest(std::span<const std::uint8_t> message) const {
  Sha256 ctx;
  ctx.restore(inner_);
  ctx.update(message);
  Digest inner_digest = ctx.finalize();

  ctx.restore(outer_);
  ctx.update(inner_digest);
  return ctx.finalize();
}

Digest HmacKey::digest(std::string_view message) const {
  return digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

AuthTag HmacKey::tag(std::string_view message) const {
  Digest full = digest(message);
  AuthTag out;
  std::copy_n(full.begin(), out.size(), out.begin());
  return out;
}

bool HmacKey::verify(std::string_view message, const AuthTag& tag) const {
  AuthTag expected = this->tag(message);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= tag[i] ^ expected[i];
  return diff == 0;
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  return HmacKey(key).digest(message);
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

bool digests_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

AuthTag make_tag(std::span<const std::uint8_t> key, std::string_view message) {
  Digest digest = hmac_sha256(key, message);
  AuthTag tag;
  std::copy_n(digest.begin(), tag.size(), tag.begin());
  return tag;
}

bool verify_tag(std::span<const std::uint8_t> key, std::string_view message,
                const AuthTag& tag) {
  AuthTag expected = make_tag(key, message);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= tag[i] ^ expected[i];
  return diff == 0;
}

}  // namespace lw::crypto
