#include "crypto/hmac.h"

#include <algorithm>
#include <array>

#include "crypto/sha256_multi.h"

namespace lw::crypto {
namespace {

constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(
    std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, kBlockSize> block{};
  if (key.size() > kBlockSize) {
    Digest digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  return block;
}

}  // namespace

HmacKey::HmacKey(std::span<const std::uint8_t> key) {
  auto block = normalize_key(key);

  std::array<std::uint8_t, kBlockSize> pad;
  Sha256 ctx;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
  }
  ctx.update(pad);
  inner_ = ctx.save();

  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }
  ctx.reset();
  ctx.update(pad);
  outer_ = ctx.save();
}

Digest HmacKey::digest(std::span<const std::uint8_t> message) const {
  Sha256 ctx;
  ctx.restore(inner_);
  ctx.update(message);
  Digest inner_digest = ctx.finalize();

  ctx.restore(outer_);
  ctx.update(inner_digest);
  return ctx.finalize();
}

Digest HmacKey::digest(std::string_view message) const {
  return digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

AuthTag HmacKey::tag(std::string_view message) const {
  Digest full = digest(message);
  AuthTag out;
  std::copy_n(full.begin(), out.size(), out.begin());
  return out;
}

bool HmacKey::verify(std::string_view message, const AuthTag& tag) const {
  AuthTag expected = this->tag(message);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= tag[i] ^ expected[i];
  return diff == 0;
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  return HmacKey(key).digest(message);
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

void HmacBatch::push(const HmacKey& key) {
  inner_.push_back(key.inner_state());
  outer_.push_back(key.outer_state());
  expected_.emplace_back();  // keeps the two queues index-aligned
}

void HmacBatch::push(const HmacKey& key, const AuthTag& tag) {
  inner_.push_back(key.inner_state());
  outer_.push_back(key.outer_state());
  expected_.push_back(tag);
}

void HmacBatch::clear() {
  inner_.clear();
  outer_.clear();
  expected_.clear();
}

void HmacBatch::run(std::string_view message) {
  const std::size_t n = inner_.size();
  inner_digests_.resize(n);
  digests_.resize(n);
  ptrs_.resize(n);

  // Inner pass: every lane hashes the same message bytes after its own
  // ipad midstate.
  const auto* msg = reinterpret_cast<const std::uint8_t*>(message.data());
  for (std::size_t i = 0; i < n; ++i) ptrs_[i] = msg;
  sha256_many(inner_.data(), ptrs_.data(), message.size(), n,
              inner_digests_.data());

  // Outer pass: each lane hashes its 32-byte inner digest after its opad
  // midstate.
  for (std::size_t i = 0; i < n; ++i) ptrs_[i] = inner_digests_[i].data();
  sha256_many(outer_.data(), ptrs_.data(), sizeof(Digest), n,
              digests_.data());
}

void HmacBatch::sign_into(std::string_view message, AuthTag* out) {
  run(message);
  for (std::size_t i = 0; i < digests_.size(); ++i) {
    std::copy_n(digests_[i].begin(), out[i].size(), out[i].begin());
  }
}

bool HmacBatch::verify_all(std::string_view message) {
  run(message);
  results_.resize(digests_.size());
  bool all = true;
  for (std::size_t i = 0; i < digests_.size(); ++i) {
    std::uint8_t diff = 0;
    for (std::size_t b = 0; b < expected_[i].size(); ++b) {
      diff |= expected_[i][b] ^ digests_[i][b];
    }
    results_[i] = diff == 0 ? 1 : 0;
    all &= results_[i] != 0;
  }
  return all;
}

bool digests_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

AuthTag make_tag(std::span<const std::uint8_t> key, std::string_view message) {
  Digest digest = hmac_sha256(key, message);
  AuthTag tag;
  std::copy_n(digest.begin(), tag.size(), tag.begin());
  return tag;
}

bool verify_tag(std::span<const std::uint8_t> key, std::string_view message,
                const AuthTag& tag) {
  AuthTag expected = make_tag(key, message);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= tag[i] ^ expected[i];
  return diff == 0;
}

}  // namespace lw::crypto
