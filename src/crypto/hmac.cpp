#include "crypto/hmac.h"

#include <algorithm>
#include <array>

namespace lw::crypto {
namespace {

constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(
    std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, kBlockSize> block{};
  if (key.size() > kBlockSize) {
    Digest digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  return block;
}

}  // namespace

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  auto block = normalize_key(key);

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

bool digests_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

AuthTag make_tag(std::span<const std::uint8_t> key, std::string_view message) {
  Digest digest = hmac_sha256(key, message);
  AuthTag tag;
  std::copy_n(digest.begin(), tag.size(), tag.begin());
  return tag;
}

bool verify_tag(std::span<const std::uint8_t> key, std::string_view message,
                const AuthTag& tag) {
  AuthTag expected = make_tag(key, message);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= tag[i] ^ expected[i];
  return diff == 0;
}

}  // namespace lw::crypto
