#include "crypto/key_manager.h"

#include <algorithm>

namespace lw::crypto {
namespace {

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_u64(Key& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

namespace {

HmacKey make_master_state(std::uint64_t master_secret) {
  Key master;
  append_u64(master, master_secret);
  return HmacKey(master);
}

}  // namespace

KeyManager::KeyManager(std::uint64_t master_secret)
    : master_state_(make_master_state(master_secret)) {}

Key KeyManager::pairwise_key(NodeId a, NodeId b) const {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  std::string label = "pairwise:";
  append_u32(label, lo);
  append_u32(label, hi);
  Digest digest = master_state_.digest(label);
  return Key(digest.begin(), digest.end());
}

const HmacKey& KeyManager::pairwise_state(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  auto it = pair_cache_.find(pair);
  if (it == pair_cache_.end()) {
    const Key key = pairwise_key(lo, hi);
    it = pair_cache_.emplace(pair, HmacKey(key)).first;
  }
  return it->second;
}

AuthTag KeyManager::sign(NodeId self, NodeId peer,
                         std::string_view message) const {
  return pairwise_state(self, peer).tag(message);
}

bool KeyManager::verify(NodeId a, NodeId b, std::string_view message,
                        const AuthTag& tag) const {
  return pairwise_state(a, b).verify(message, tag);
}

AuthTag forge_tag(std::uint64_t attacker_state) {
  AuthTag tag;
  for (std::size_t i = 0; i < tag.size(); ++i) {
    attacker_state = attacker_state * 6364136223846793005ull + 1442695040888963407ull;
    tag[i] = static_cast<std::uint8_t>(attacker_state >> 56);
  }
  return tag;
}

}  // namespace lw::crypto
