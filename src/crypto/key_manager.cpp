#include "crypto/key_manager.h"

#include <algorithm>
#include <array>

namespace lw::crypto {
namespace {

void append_u64(Key& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

HmacKey make_master_state(std::uint64_t master_secret) {
  Key master;
  append_u64(master, master_secret);
  return HmacKey(master);
}

/// "pairwise:" || u32(lo) || u32(hi), in a stack buffer — the derivation
/// label never touches the heap.
constexpr std::size_t kLabelBytes = 9 + 4 + 4;

std::array<std::uint8_t, kLabelBytes> pair_label(NodeId lo, NodeId hi) {
  std::array<std::uint8_t, kLabelBytes> label{'p', 'a', 'i', 'r', 'w',
                                              'i', 's', 'e', ':'};
  for (int i = 0; i < 4; ++i) {
    label[9 + i] = static_cast<std::uint8_t>((lo >> (8 * (3 - i))) & 0xFF);
    label[13 + i] = static_cast<std::uint8_t>((hi >> (8 * (3 - i))) & 0xFF);
  }
  return label;
}

}  // namespace

KeyManager::KeyManager(std::uint64_t master_secret)
    : master_state_(make_master_state(master_secret)) {}

void KeyManager::reserve_nodes(std::size_t count) {
  if (count <= reserved_nodes_) return;
  // Growing an existing reservation would need an index remap; no caller
  // grows the deployment after wiring, so rebuild from scratch (cached
  // states re-derive on demand).
  reserved_nodes_ = count;
  slot_index_.assign(count * (count + 1) / 2, -1);
  states_.clear();
}

Key KeyManager::pairwise_key(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const auto label = pair_label(lo, hi);
  Digest digest = master_state_.digest(std::span<const std::uint8_t>(label));
  return Key(digest.begin(), digest.end());
}

HmacKey KeyManager::derive_state(NodeId lo, NodeId hi) const {
  const auto label = pair_label(lo, hi);
  const Digest digest =
      master_state_.digest(std::span<const std::uint8_t>(label));
  return HmacKey(std::span<const std::uint8_t>(digest));
}

const HmacKey& KeyManager::pairwise_state(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  if (hi < reserved_nodes_) {
    const std::size_t idx = static_cast<std::size_t>(hi) * (hi + 1) / 2 + lo;
    std::int32_t slot = slot_index_[idx];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(states_.size());
      states_.push_back(derive_state(lo, hi));
      slot_index_[idx] = slot;
    }
    return states_[static_cast<std::size_t>(slot)];
  }
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  auto it = overflow_.find(pair);
  if (it == overflow_.end()) {
    it = overflow_.emplace(pair, derive_state(lo, hi)).first;
  }
  return it->second;
}

AuthTag KeyManager::sign(NodeId self, NodeId peer,
                         std::string_view message) const {
  return pairwise_state(self, peer).tag(message);
}

void KeyManager::sign_batch(NodeId self, std::span<const NodeId> peers,
                            std::string_view message, AuthTag* out) const {
  batch_.clear();
  for (NodeId peer : peers) batch_.push(pairwise_state(self, peer));
  batch_.sign_into(message, out);
}

bool KeyManager::verify_batch(NodeId self, std::span<const NodeId> peers,
                              std::string_view message,
                              const AuthTag* tags) const {
  batch_.clear();
  for (std::size_t i = 0; i < peers.size(); ++i) {
    batch_.push(pairwise_state(self, peers[i]), tags[i]);
  }
  return batch_.verify_all(message);
}

bool KeyManager::verify(NodeId a, NodeId b, std::string_view message,
                        const AuthTag& tag) const {
  return pairwise_state(a, b).verify(message, tag);
}

AuthTag forge_tag(std::uint64_t attacker_state) {
  AuthTag tag;
  for (std::size_t i = 0; i < tag.size(); ++i) {
    attacker_state =
        attacker_state * 6364136223846793005ull + 1442695040888963407ull;
    tag[i] = static_cast<std::uint8_t>(attacker_state >> 56);
  }
  return tag;
}

}  // namespace lw::crypto
