// HMAC-SHA-256 per RFC 2104 / FIPS 198-1.
//
// Used to authenticate neighbor-discovery replies, neighbor-list broadcasts,
// and wormhole alert messages under pairwise shared keys.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace lw::crypto {

/// A symmetric key (arbitrary length; keys longer than the SHA-256 block
/// size are hashed down per the HMAC definition).
using Key = std::vector<std::uint8_t>;

/// Truncated authentication tag carried in packets. The paper's cost model
/// budgets a few bytes per authenticated field, so packets carry 8-byte tags.
using AuthTag = std::array<std::uint8_t, 8>;

/// A prepared HMAC-SHA-256 key: the ipad and opad blocks are absorbed once
/// at construction and their compression midstates cached, so each tag
/// costs only the message blocks plus two finishes instead of rebuilding
/// and rehashing both pads. Produces bit-identical digests to hmac_sha256.
class HmacKey {
 public:
  explicit HmacKey(std::span<const std::uint8_t> key);

  /// HMAC-SHA-256(key, message).
  Digest digest(std::span<const std::uint8_t> message) const;
  Digest digest(std::string_view message) const;

  /// First 8 bytes of the digest (the packet tag format).
  AuthTag tag(std::string_view message) const;

  /// Verifies a truncated tag (constant time over the tag bytes).
  bool verify(std::string_view message, const AuthTag& tag) const;

 private:
  Sha256State inner_;
  Sha256State outer_;
};

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);
Digest hmac_sha256(std::span<const std::uint8_t> key, std::string_view message);

/// Constant-time digest comparison (avoids early-exit timing leaks; the
/// simulation does not need this property, but a credible crypto substrate
/// should have it).
bool digests_equal(const Digest& a, const Digest& b);

/// First 8 bytes of the HMAC digest.
AuthTag make_tag(std::span<const std::uint8_t> key, std::string_view message);

/// Verifies a truncated tag (constant time over the tag bytes).
bool verify_tag(std::span<const std::uint8_t> key, std::string_view message,
                const AuthTag& tag);

}  // namespace lw::crypto
