// HMAC-SHA-256 per RFC 2104 / FIPS 198-1.
//
// Used to authenticate neighbor-discovery replies, neighbor-list broadcasts,
// and wormhole alert messages under pairwise shared keys.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"
#include "util/arena.h"

namespace lw::crypto {

/// A symmetric key (arbitrary length; keys longer than the SHA-256 block
/// size are hashed down per the HMAC definition).
using Key = std::vector<std::uint8_t>;

/// Truncated authentication tag carried in packets. The paper's cost model
/// budgets a few bytes per authenticated field, so packets carry 8-byte tags.
using AuthTag = std::array<std::uint8_t, 8>;

/// A prepared HMAC-SHA-256 key: the ipad and opad blocks are absorbed once
/// at construction and their compression midstates cached, so each tag
/// costs only the message blocks plus two finishes instead of rebuilding
/// and rehashing both pads. Produces bit-identical digests to hmac_sha256.
class HmacKey {
 public:
  explicit HmacKey(std::span<const std::uint8_t> key);

  /// HMAC-SHA-256(key, message).
  Digest digest(std::span<const std::uint8_t> message) const;
  Digest digest(std::string_view message) const;

  /// First 8 bytes of the digest (the packet tag format).
  AuthTag tag(std::string_view message) const;

  /// Verifies a truncated tag (constant time over the tag bytes).
  bool verify(std::string_view message, const AuthTag& tag) const;

  /// Cached pad midstates, exposed so HmacBatch can run many keys through
  /// the multi-buffer SHA-256 engine. Not part of the signing API.
  const Sha256State& inner_state() const { return inner_; }
  const Sha256State& outer_state() const { return outer_; }

 private:
  Sha256State inner_;
  Sha256State outer_;
};

/// Batched HMAC over one shared message and many prepared keys.
///
/// The simulator's hot crypto shapes are fan-outs: one alert payload
/// tagged under a pairwise key per recipient, one neighbor list signed for
/// every neighbor. Each HMAC is two SHA-256 finishes from cached
/// midstates, independent across keys — so a batch of k keys becomes two
/// k-lane sha256_many sweeps (inner pass over the message, outer pass
/// over the 32-byte inner digests) instead of 2k serial hashes.
///
/// Reuse one instance and clear() between batches: all scratch lives in
/// pool-arena vectors, so steady-state batches allocate nothing.
class HmacBatch {
 public:
  /// Queues a key; tags come out of sign_into in queue order.
  void push(const HmacKey& key);
  /// Queues a key plus the tag to check against (verification batches).
  void push(const HmacKey& key, const AuthTag& tag);

  void clear();
  std::size_t size() const { return inner_.size(); }
  bool empty() const { return inner_.empty(); }

  /// One sweep: out[i] = HMAC tag of `message` under queued key i.
  /// `out` must hold size() tags. The queue is left intact (clear() to
  /// start the next batch).
  void sign_into(std::string_view message, AuthTag* out);

  /// One sweep verifying every queued (key, tag) pair against `message`.
  /// Returns true iff all tags match (constant-time per-tag compare);
  /// per-entry results are in results()[i] (1 = match) until the next
  /// batch operation.
  bool verify_all(std::string_view message);
  const util::PoolVector<std::uint8_t>& results() const { return results_; }

 private:
  /// Runs the two sweeps; digests_ holds the final digests afterwards.
  void run(std::string_view message);

  util::PoolVector<Sha256State> inner_;
  util::PoolVector<Sha256State> outer_;
  util::PoolVector<AuthTag> expected_;
  // Scratch recycled across batches.
  util::PoolVector<Digest> digests_;
  util::PoolVector<Digest> inner_digests_;
  util::PoolVector<const std::uint8_t*> ptrs_;
  util::PoolVector<std::uint8_t> results_;
};

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);
Digest hmac_sha256(std::span<const std::uint8_t> key, std::string_view message);

/// Constant-time digest comparison (avoids early-exit timing leaks; the
/// simulation does not need this property, but a credible crypto substrate
/// should have it).
bool digests_equal(const Digest& a, const Digest& b);

/// First 8 bytes of the HMAC digest.
AuthTag make_tag(std::span<const std::uint8_t> key, std::string_view message);

/// Verifies a truncated tag (constant time over the tag bytes).
bool verify_tag(std::span<const std::uint8_t> key, std::string_view message,
                const AuthTag& tag);

}  // namespace lw::crypto
