// Cost analysis (Section 5.2): memory, computation, and bandwidth overhead
// of LITEWORP as closed-form estimates. The micro-benchmarks measure the
// same quantities on the live data structures.
#pragma once

#include <cstddef>

namespace lw::analysis {

struct CostParams {
  double radio_range = 30.0;          // r, meters
  double node_density = 0.0;          // d, nodes per m^2
  double average_neighbors = 8.0;     // N_B = pi r^2 d (used when d == 0)
  double average_route_hops = 4.0;    // h
  double route_establishment_rate = 0.25;  // f, routes per time unit
  std::size_t network_size = 100;     // N
};

/// N_B = pi r^2 d.
double neighbors_from_density(double radio_range, double node_density);

/// d = N_B / (pi r^2).
double density_from_neighbors(double radio_range, double average_neighbors);

/// Neighbor-list storage (NBLS): 5 bytes per first-hop entry (4 id + 1
/// MalC) plus the stored second-hop lists at 4 bytes per entry:
/// NBLS ~= 5 N_B + 4 N_B^2, which the paper rounds to 5 (pi r^2 d)^2.
std::size_t neighbor_list_bytes(double average_neighbors);

/// The paper's rounded form 5 (pi r^2 d)^2 for comparison.
std::size_t neighbor_list_bytes_paper(double average_neighbors);

/// Expected number of nodes that watch one REP traversal: the 2r x (h+1)r
/// bounding box around the route, times density (paper's overestimate).
double nodes_watching_rep(const CostParams& params);

/// Route replies each node watches per time unit:
/// (N_REP / N) * f.
double reps_watched_per_node(const CostParams& params);

/// Expected live watch-buffer entries per node given the watch timeout.
double watch_buffer_entries(const CostParams& params, double watch_timeout);

/// Watch-buffer bytes: 20 bytes per entry (paper's layout: 3 ids + 8-byte
/// sequence number).
std::size_t watch_buffer_bytes(double entries);

/// Alert-buffer bytes: 4 bytes per stored guard id, gamma entries.
std::size_t alert_buffer_bytes(int detection_confidence);

/// Total LITEWORP state per node, in bytes.
std::size_t total_state_bytes(const CostParams& params, double watch_timeout,
                              int detection_confidence);

/// One-time neighbor-discovery bandwidth per node, in bytes: HELLO +
/// replies + the R_A broadcast with per-member tags.
std::size_t discovery_bandwidth_bytes(double average_neighbors);

/// Bandwidth spent when one wormhole endpoint is detected: the alert frame
/// (per-recipient tags) plus one relay rebroadcast per receiving neighbor.
std::size_t detection_bandwidth_bytes(double average_neighbors);

}  // namespace lw::analysis
