// Special functions for the coverage analysis (Section 5.1).
//
// The paper expresses "at least gamma of g guards alert" through the
// regularized incomplete beta function — deliberately, because the expected
// guard count g = 0.51 N_B is not an integer. We implement I_x(a, b) with
// the standard continued-fraction expansion and validate it against exact
// binomial tails at integer parameters.
#pragma once

#include <cstdint>

namespace lw::analysis {

/// Natural log of the complete beta function B(a, b).
double log_beta(double a, double b);

/// Regularized incomplete beta function I_x(a, b), x in [0, 1], a, b > 0.
/// Continued-fraction evaluation (Lentz's algorithm), accurate to ~1e-12.
double regularized_incomplete_beta(double x, double a, double b);

/// Binomial coefficient C(n, k) as a double (exact for the small n used
/// in the analysis).
double binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// P(X >= k) for X ~ Binomial(n, p): the upper tail, computed by direct
/// summation.
double binomial_tail_at_least(std::uint64_t n, std::uint64_t k, double p);

/// P(at least `threshold` of `count` independent events with probability
/// `p` occur), allowing non-integer `count` via the beta identity
/// P = I_p(threshold, count - threshold + 1). Falls back to the obvious
/// degenerate answers when threshold <= 0 or threshold > count.
double at_least_k_of_n(double threshold, double count, double p);

}  // namespace lw::analysis
