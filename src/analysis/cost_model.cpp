#include "analysis/cost_model.h"

#include <cmath>

#include "util/math_util.h"

namespace lw::analysis {
namespace {

double effective_neighbors(const CostParams& params) {
  if (params.node_density > 0.0) {
    return neighbors_from_density(params.radio_range, params.node_density);
  }
  return params.average_neighbors;
}

double effective_density(const CostParams& params) {
  if (params.node_density > 0.0) return params.node_density;
  return density_from_neighbors(params.radio_range,
                                params.average_neighbors);
}

}  // namespace

double neighbors_from_density(double radio_range, double node_density) {
  return kPi * radio_range * radio_range * node_density;
}

double density_from_neighbors(double radio_range, double average_neighbors) {
  return average_neighbors / (kPi * radio_range * radio_range);
}

std::size_t neighbor_list_bytes(double average_neighbors) {
  const double bytes =
      5.0 * average_neighbors + 4.0 * average_neighbors * average_neighbors;
  return static_cast<std::size_t>(std::ceil(bytes));
}

std::size_t neighbor_list_bytes_paper(double average_neighbors) {
  return static_cast<std::size_t>(
      std::ceil(5.0 * average_neighbors * average_neighbors));
}

double nodes_watching_rep(const CostParams& params) {
  const double r = params.radio_range;
  return 2.0 * r * (params.average_route_hops + 1.0) * r *
         effective_density(params);
}

double reps_watched_per_node(const CostParams& params) {
  return nodes_watching_rep(params) /
         static_cast<double>(params.network_size) *
         params.route_establishment_rate;
}

double watch_buffer_entries(const CostParams& params, double watch_timeout) {
  // Little's law: arrival rate of watched packets times their residence.
  return reps_watched_per_node(params) * watch_timeout;
}

std::size_t watch_buffer_bytes(double entries) {
  return static_cast<std::size_t>(std::ceil(20.0 * entries));
}

std::size_t alert_buffer_bytes(int detection_confidence) {
  return 4u * static_cast<std::size_t>(detection_confidence);
}

std::size_t total_state_bytes(const CostParams& params, double watch_timeout,
                              int detection_confidence) {
  const double nb = effective_neighbors(params);
  // Watch buffers are sized for the worst observed occupancy; give the
  // Little's-law estimate a 4x headroom as the paper's example does
  // ("a watch buffer size of 4 entries is more than enough").
  const double watch_entries =
      std::max(4.0, 4.0 * watch_buffer_entries(params, watch_timeout));
  return neighbor_list_bytes(nb) + watch_buffer_bytes(watch_entries) +
         alert_buffer_bytes(detection_confidence);
}

std::size_t discovery_bandwidth_bytes(double average_neighbors) {
  // Mirrors pkt::WireSizes: 29-byte base header, 8-byte tag on replies,
  // 4 bytes per listed neighbor and 12 bytes per per-member tag on the
  // R_A broadcast.
  const double hello = 29.0;
  const double replies = average_neighbors * (29.0 + 8.0);
  const double list = 29.0 + average_neighbors * (4.0 + 12.0);
  return static_cast<std::size_t>(std::ceil(hello + replies + list));
}

std::size_t detection_bandwidth_bytes(double average_neighbors) {
  const double alert = 29.0 + average_neighbors * 12.0;
  const double relays = average_neighbors * alert;
  return static_cast<std::size_t>(std::ceil(alert + relays));
}

}  // namespace lw::analysis
