// Closed-form coverage analysis (Section 5.1): guard geometry, detection
// probability, and false-alarm probability as functions of network density
// and the detection confidence index gamma.
#pragma once

#include <vector>

namespace lw::analysis {

// ---------- Guard geometry ----------

/// Area of the lens where two discs of radius r with centers x apart
/// overlap: the region from which a node can guard the link S -> D.
/// A(x) = 2 r^2 acos(x / 2r) - (x/2) sqrt(4 r^2 - x^2).
double lens_area(double x, double r);

/// E[A(X)] where the link length X has pdf f(x) = 2x/r^2 on (0, r).
/// Exactly 1.8426 r^2 (the paper quotes "1.6 r^2", an approximation).
double expected_lens_area(double r);

/// Minimum guard-region area, attained at x = r: ~1.228 r^2 = 0.391 pi r^2
/// (the paper quotes "0.36").
double min_lens_area(double r);

/// Expected number of guards of a random link given average neighbor count
/// N_B = pi r^2 d:  g = E[A] * d = 0.5865 N_B (paper: 0.51 N_B).
double expected_guards(double average_neighbors);

/// Minimum expected number of guards (worst-case link length x = r).
double min_guards(double average_neighbors);

// ---------- Detection / false alarm ----------

struct CoverageParams {
  /// kappa: malicious control-packet events within the window T.
  int window_events = 7;
  /// k: events a single guard must catch before its MalC crosses C_t.
  int per_guard_threshold = 5;
  /// gamma: guards that must alert before neighbors isolate.
  int detection_confidence = 3;
  /// Collision probability P_C at the reference density...
  double pc_reference = 0.05;
  /// ...which is this average neighbor count.
  double pc_reference_neighbors = 3.0;
  /// P_C ceiling (a probability).
  double pc_max = 0.95;
};

/// P_C as a function of density: linear growth with the number of
/// neighbors through the reference point, clamped to pc_max.
double collision_probability(const CoverageParams& params,
                             double average_neighbors);

/// Probability that one guard's MalC crosses C_t within the window:
/// it must catch >= k of the kappa malicious events, each seen with
/// probability (1 - P_C).
double guard_alert_probability(const CoverageParams& params, double pc);

/// Network-level detection probability: at least gamma of the g expected
/// guards alert (regularized incomplete beta in g, which is non-integer).
double detection_probability(const CoverageParams& params,
                             double average_neighbors);

/// Per-packet false-suspicion probability: the guard misses the handoff to
/// the forwarder but hears the forward, P_FA = P_C (1 - P_C).
double false_suspicion_probability(double pc);

/// Probability one guard falsely accuses an honest neighbor within a
/// window of kappa legitimate forwards.
double guard_false_alarm_probability(const CoverageParams& params, double pc);

/// Network-level false-alarm probability: at least gamma guards falsely
/// accuse the same honest node.
double false_alarm_probability(const CoverageParams& params,
                               double average_neighbors);

// ---------- Figure series ----------

struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

/// Figure 6(a): detection probability vs number of neighbors.
std::vector<CurvePoint> detection_vs_neighbors(const CoverageParams& params,
                                               double nb_min, double nb_max,
                                               double nb_step);

/// Figure 6(b): false-alarm probability vs number of neighbors.
std::vector<CurvePoint> false_alarm_vs_neighbors(const CoverageParams& params,
                                                 double nb_min, double nb_max,
                                                 double nb_step);

/// Figure 10 (analytical curve): detection probability vs gamma at fixed
/// density.
std::vector<CurvePoint> detection_vs_gamma(CoverageParams params,
                                           double average_neighbors,
                                           int gamma_min, int gamma_max);

/// Density d (nodes per square meter) required for detection probability
/// >= target at the given parameters; returns the smallest average
/// neighbor count in [nb_min, nb_max] achieving it, or a negative value if
/// unattainable (the "required density for p% coverage" design question).
double neighbors_for_detection(const CoverageParams& params, double target,
                               double nb_min, double nb_max);

}  // namespace lw::analysis
