#include "analysis/coverage.h"

#include <cmath>
#include <stdexcept>

#include "analysis/special_functions.h"
#include "util/math_util.h"

namespace lw::analysis {

double lens_area(double x, double r) {
  if (r <= 0.0) throw std::invalid_argument("radius must be positive");
  if (x <= 0.0) return kPi * r * r;  // coincident discs
  if (x >= 2.0 * r) return 0.0;
  return 2.0 * r * r * std::acos(x / (2.0 * r)) -
         (x / 2.0) * std::sqrt(4.0 * r * r - x * x);
}

double expected_lens_area(double r) {
  // E[A] = Integral_0^r A(x) 2x/r^2 dx, via composite Simpson.
  constexpr int kIntervals = 2048;  // even
  const double h = r / kIntervals;
  double sum = 0.0;
  for (int i = 0; i <= kIntervals; ++i) {
    const double x = i * h;
    const double fx = lens_area(x, r) * 2.0 * x / (r * r);
    const double weight = (i == 0 || i == kIntervals) ? 1.0
                          : (i % 2 == 1)              ? 4.0
                                                      : 2.0;
    sum += weight * fx;
  }
  return sum * h / 3.0;
}

double min_lens_area(double r) { return lens_area(r, r); }

double expected_guards(double average_neighbors) {
  // g = E[A] d and N_B = pi r^2 d  =>  g = (E[A]/(pi r^2)) N_B; the ratio
  // is scale-free, so evaluate at r = 1.
  static const double kRatio = expected_lens_area(1.0) / kPi;
  return kRatio * average_neighbors;
}

double min_guards(double average_neighbors) {
  static const double kRatio = min_lens_area(1.0) / kPi;
  return kRatio * average_neighbors;
}

double collision_probability(const CoverageParams& params,
                             double average_neighbors) {
  const double pc = params.pc_reference * average_neighbors /
                    params.pc_reference_neighbors;
  return std::min(pc, params.pc_max);
}

double guard_alert_probability(const CoverageParams& params, double pc) {
  return binomial_tail_at_least(
      static_cast<std::uint64_t>(params.window_events),
      static_cast<std::uint64_t>(params.per_guard_threshold), 1.0 - pc);
}

double detection_probability(const CoverageParams& params,
                             double average_neighbors) {
  const double pc = collision_probability(params, average_neighbors);
  const double p_alert = guard_alert_probability(params, pc);
  const double g = expected_guards(average_neighbors);
  return at_least_k_of_n(params.detection_confidence, g, p_alert);
}

double false_suspicion_probability(double pc) { return pc * (1.0 - pc); }

double guard_false_alarm_probability(const CoverageParams& params,
                                     double pc) {
  return binomial_tail_at_least(
      static_cast<std::uint64_t>(params.window_events),
      static_cast<std::uint64_t>(params.per_guard_threshold),
      false_suspicion_probability(pc));
}

double false_alarm_probability(const CoverageParams& params,
                               double average_neighbors) {
  const double pc = collision_probability(params, average_neighbors);
  const double p_guard = guard_false_alarm_probability(params, pc);
  const double g = expected_guards(average_neighbors);
  return at_least_k_of_n(params.detection_confidence, g, p_guard);
}

std::vector<CurvePoint> detection_vs_neighbors(const CoverageParams& params,
                                               double nb_min, double nb_max,
                                               double nb_step) {
  std::vector<CurvePoint> curve;
  for (double nb = nb_min; nb <= nb_max + nb_step / 2; nb += nb_step) {
    curve.push_back({nb, detection_probability(params, nb)});
  }
  return curve;
}

std::vector<CurvePoint> false_alarm_vs_neighbors(const CoverageParams& params,
                                                 double nb_min, double nb_max,
                                                 double nb_step) {
  std::vector<CurvePoint> curve;
  for (double nb = nb_min; nb <= nb_max + nb_step / 2; nb += nb_step) {
    curve.push_back({nb, false_alarm_probability(params, nb)});
  }
  return curve;
}

std::vector<CurvePoint> detection_vs_gamma(CoverageParams params,
                                           double average_neighbors,
                                           int gamma_min, int gamma_max) {
  std::vector<CurvePoint> curve;
  for (int gamma = gamma_min; gamma <= gamma_max; ++gamma) {
    params.detection_confidence = gamma;
    curve.push_back({static_cast<double>(gamma),
                     detection_probability(params, average_neighbors)});
  }
  return curve;
}

double neighbors_for_detection(const CoverageParams& params, double target,
                               double nb_min, double nb_max) {
  constexpr double kStep = 0.1;
  for (double nb = nb_min; nb <= nb_max; nb += kStep) {
    if (detection_probability(params, nb) >= target) return nb;
  }
  return -1.0;
}

}  // namespace lw::analysis
