#include "analysis/special_functions.h"

#include <cmath>
#include <stdexcept>

#include "util/math_util.h"

namespace lw::analysis {
namespace {

/// Continued fraction for the incomplete beta function (modified Lentz).
double beta_continued_fraction(double x, double a, double b) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;

  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;

    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) return h;
  }
  return h;  // converged to working precision in practice
}

}  // namespace

double log_beta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double regularized_incomplete_beta(double x, double a, double b) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("incomplete beta requires a, b > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;

  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * beta_continued_fraction(x, a, b) / a;
  }
  return 1.0 -
         std::exp(log_front) * beta_continued_fraction(1.0 - x, b, a) / b;
}

double binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

double binomial_tail_at_least(std::uint64_t n, std::uint64_t k, double p) {
  p = clamp01(p);
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  double tail = 0.0;
  for (std::uint64_t i = k; i <= n; ++i) {
    tail += binomial_coefficient(n, i) * std::pow(p, static_cast<double>(i)) *
            std::pow(1.0 - p, static_cast<double>(n - i));
  }
  return clamp01(tail);
}

double at_least_k_of_n(double threshold, double count, double p) {
  p = clamp01(p);
  if (threshold <= 0.0) return 1.0;
  if (threshold > count) return 0.0;
  // P(X >= k), X ~ Bin(n, p)  ==  I_p(k, n - k + 1); valid for real n.
  return regularized_incomplete_beta(p, threshold, count - threshold + 1.0);
}

}  // namespace lw::analysis
