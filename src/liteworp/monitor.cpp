#include "liteworp/monitor.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::lite {

LocalMonitor::LocalMonitor(node::NodeEnv& env, nbr::NeighborTable& table,
                           routing::OnDemandRouting& routing,
                           LiteworpParams params, MonitorObserver* observer)
    : env_(env),
      table_(table),
      routing_(routing),
      params_(params),
      observer_(observer) {
  // The per-window dedupe set reaches thousands of (flow, forwarder)
  // entries on busy guards; growing it through a dozen rehashes per
  // monitor is pure waste. Bucket count does not affect semantics.
  if (params_.enabled) suspected_.reserve(4096);
}

void LocalMonitor::start() {}

void LocalMonitor::on_overhear(const pkt::Packet& packet) {
  if (!params_.enabled) return;
  if (pkt::is_watched_control(packet.type)) {
    observe_control(packet);
    return;
  }
  if (packet.type == pkt::PacketType::kRouteError &&
      packet.claimed_tx != env_.id()) {
    // The transmitter is audibly refusing a broken route; whatever
    // forwards we were timing from it are not silent drops. (An attacker
    // spamming RERRs to dodge drop watches tears down its own wormhole
    // routes — receivers evict them — and fabrication checks still catch
    // its control replays.)
    watch_.clear_drop_watches_to(packet.claimed_tx);
  }
}

void LocalMonitor::observe_control(const pkt::Packet& packet) {
  const NodeId sender = packet.claimed_tx;
  if (detected_.count(sender) != 0) {
    // A node we convicted is still pushing control traffic: some of its
    // neighbors have evidently not isolated it yet (our alerts may have
    // died on the air). Re-send, rate-limited.
    Time& last = last_alert_[sender];
    if (env_.now() - last >= params_.realert_interval) {
      last = env_.now();
      send_alert(sender);
    }
    return;
  }
  const bool sender_known =
      sender == env_.id() || table_.is_active_neighbor(sender);
  if (!sender_known) return;  // can only guard links of known neighbors

  // Judge the forward BEFORE recording it: the fabrication check must see
  // the watch buffer as it stood when this frame hit the air (recording
  // first would make every replay its own alibi for has_any_transmit).
  check_fabrication(packet);
  watch_.record_transmit(packet.flow_key(), sender, env_.now(),
                         params_.transmit_record_ttl);
  maybe_add_drop_watch(packet);
}

void LocalMonitor::check_fabrication(const pkt::Packet& packet) {
  const NodeId sender = packet.claimed_tx;
  const NodeId prev = packet.announced_prev_hop;
  if (prev == kInvalidNode) return;
  if (sender == env_.id()) return;  // we do not accuse ourselves
  // Guard predicate: we must be able to hear both ends of the claimed link.
  const bool prev_known = prev == env_.id() || table_.is_active_neighbor(prev);
  if (!prev_known || !table_.is_active_neighbor(sender)) return;

  // One packet incriminates (or exonerates) a forwarder once per guard,
  // however many link-layer retransmissions of the forward we overhear.
  if (suspected_.size() > 8192) suspected_.clear();  // bound stale flows
  if (!suspected_.insert(FlowNodeKey{packet.flow_key(), sender}).second) {
    return;
  }

  if (watch_.has_transmit(packet.flow_key(), prev, env_.now())) {
    // Legitimate forward; if we were timing this handoff, the obligation
    // is met.
    if (watch_.clear_drop_watch(packet.flow_key(), prev, sender)) {
      if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
        r->emit({.t = env_.now(),
                 .kind = obs::EventKind::kMonWatchClear,
                 .node = env_.id(),
                 .peer = sender,
                 .packet = &packet});
      }
    }
    observe(sender, /*suspicious=*/false, Suspicion::kFabrication);
    return;
  }
  if (!params_.strict_link_check &&
      watch_.has_any_transmit(packet.flow_key(), env_.now())) {
    // We heard this packet from someone, just not from the announced
    // previous hop — almost certainly our own collision, not a replay. A
    // wormhole only profits by injecting a packet into a region it has
    // NOT physically reached (a tunneled REQ must win the duplicate-
    // suppression race; a tunneled REP materializes on the far side of
    // the tunnel), and there the flow is genuinely unheard.
    observe(sender, /*suspicious=*/false, Suspicion::kFabrication);
    return;
  }
  LW_DEBUG << "guard " << env_.id() << ": " << to_string(packet.type)
           << " fabrication by " << sender << " (claimed prev " << prev
           << ")";
  observe(sender, /*suspicious=*/true, Suspicion::kFabrication);
}

void LocalMonitor::maybe_add_drop_watch(const pkt::Packet& packet) {
  if (packet.type != pkt::PacketType::kRouteReply) return;
  const NodeId from = packet.claimed_tx;
  const NodeId to = packet.link_dst;
  if (to == kInvalidNode || to == env_.id()) return;
  if (!table_.is_active_neighbor(to)) return;  // not a guard of this link
  if (!packet.route.empty() && to == packet.route.front()) {
    return;  // the REP's final recipient has nothing to forward
  }
  // The REP carries its route: if the hop AFTER `to` is someone we have
  // revoked, `to` is expected to refuse the forward ("never send to a
  // revoked node") — timing that handoff would convict it for complying.
  auto to_pos = std::find(packet.route.begin(), packet.route.end(), to);
  if (to_pos != packet.route.end() && to_pos != packet.route.begin()) {
    const NodeId onward = *(to_pos - 1);  // REPs travel toward route.front()
    if (table_.is_revoked(onward)) return;
  }

  const FlowKey flow = packet.flow_key();
  // If we already overheard the intended forwarder transmit this flow, the
  // obligation is met; a handoff we are seeing again (link-layer
  // retransmission after a lost ACK) must not re-arm the timer.
  if (watch_.has_transmit(flow, to, env_.now())) return;
  const Time deadline = env_.now() + params_.watch_timeout;
  sim::EventHandle expiry = env_.simulator().schedule_cancellable(
      params_.watch_timeout, [this, flow, from, to, lin = packet.lineage] {
        if (watch_.take_expired_drop_watch(flow, from, to)) {
          LW_DEBUG << "guard " << env_.id() << ": REP drop by " << to
                   << " (handed over by " << from << ")";
          if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
            r->emit({.t = env_.now(),
                     .kind = obs::EventKind::kMonWatchExpire,
                     .node = env_.id(),
                     .peer = to,
                     .lineage_hint = lin});
          }
          observe(to, /*suspicious=*/true, Suspicion::kDrop);
        }
      });
  if (watch_.add_drop_watch(flow, from, to, deadline, expiry)) {
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kMonWatchAdd,
               .node = env_.id(),
               .peer = to,
               .packet = &packet});
    }
  }
}

void LocalMonitor::observe(NodeId suspect, bool suspicious, Suspicion kind) {
  if (suspicious && observer_) {
    observer_->on_suspicion(env_.id(), suspect, kind);
  }
  if (suspicious) {
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kMonSuspicion,
               .node = env_.id(),
               .peer = suspect,
               .value = malc(suspect),
               .detail = kind == Suspicion::kDrop ? obs::kSuspicionDrop
                                                  : obs::kSuspicionFabrication});
    }
  }
  if (detected_.count(suspect) != 0) return;
  SuspectState& state = malc_[suspect];
  ++state.observed;
  if (suspicious) {
    state.malc += kind == Suspicion::kFabrication ? params_.malc_fabrication
                                                  : params_.malc_drop;
    if (state.malc >= local_threshold(suspect)) {
      detect_and_alert(suspect);
      return;
    }
  }
  if (params_.window_packets > 0 &&
      state.observed >= params_.window_packets) {
    // Block over without crossing C_t: clean slate (the analysis' window).
    state = SuspectState{};
  }
}

void LocalMonitor::detect_and_alert(NodeId suspect) {
  detected_.insert(suspect);
  isolated_.insert(suspect);
  table_.revoke(suspect);
  routing_.on_revoked(suspect);
  if (observer_) observer_->on_local_detection(env_.id(), suspect);
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kMonDetection,
             .node = env_.id(),
             .peer = suspect,
             .value = malc(suspect)});
  }
  LW_INFO << "guard " << env_.id() << " detected node " << suspect
          << " at t=" << env_.now();

  if (observer_) observer_->on_alert_sent(env_.id(), suspect);
  last_alert_[suspect] = env_.now();
  send_alert(suspect);
  for (int repeat = 1; repeat < params_.alert_repeats; ++repeat) {
    env_.simulator().schedule(repeat * params_.alert_repeat_gap,
                              [this, suspect, epoch = epoch_] {
                                if (epoch == epoch_) send_alert(suspect);
                              });
  }
}

void LocalMonitor::send_alert(NodeId suspect) {
  const util::PoolVector<NodeId>* recipients = table_.list_of(suspect);
  pkt::Packet alert = env_.packet_factory().make(pkt::PacketType::kAlert);
  alert.origin = env_.id();
  // Each (re)transmission is a fresh flow so relays propagate it again;
  // receivers count distinct guards, so repeats never double-count.
  alert.seq = ++alert_seq_;
  alert.accused = suspect;
  alert.accusing_guard = env_.id();
  alert.ttl = static_cast<std::uint8_t>(params_.alert_ttl);
  alert.auth_payload_into(auth_buf_);
  const util::PoolString& payload = auth_buf_;
  if (recipients != nullptr) {
    sign_peers_.clear();
    for (NodeId recipient : *recipients) {
      if (recipient == env_.id() || recipient == suspect) continue;
      sign_peers_.push_back(recipient);
    }
    // One multi-buffer sweep tags the payload for every recipient at once.
    sign_tags_.resize(sign_peers_.size());
    env_.keys().sign_batch(env_.id(), sign_peers_, payload,
                           sign_tags_.data());
    alert.alert_auth.reserve(sign_peers_.size());
    for (std::size_t i = 0; i < sign_peers_.size(); ++i) {
      alert.alert_auth.push_back({sign_peers_[i], sign_tags_[i]});
    }
  }
  seen_alerts_.insert(alert.flow_key());  // do not re-process our own
  ++alerts_transmitted_;
  alert_bytes_ += alert.wire_size();
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kMonAlert,
             .node = env_.id(),
             .peer = suspect});
  }
  env_.send(std::move(alert), {.flood_jitter = true});
}

void LocalMonitor::emit_false_alert(NodeId victim) {
  if (!params_.enabled) return;
  // The framing guard behaves exactly like a detecting guard on the wire —
  // same recipients, same per-recipient tags, same flooding — just without
  // any evidence. It does NOT revoke the victim locally: a lone framer
  // keeps routing through its victim, hoping gamma-1 peers join in.
  send_alert(victim);
}

void LocalMonitor::reset() {
  ++epoch_;
  watch_.clear();
  malc_.clear();
  detected_.clear();
  isolated_.clear();
  alert_buffer_.clear();
  suspected_.clear();
  seen_alerts_.clear();
  last_alert_.clear();
}

void LocalMonitor::handle_alert(const pkt::Packet& packet) {
  if (!params_.enabled) return;
  if (packet.origin == env_.id()) return;
  if (!seen_alerts_.insert(packet.flow_key()).second) return;
  relay_alert(packet);

  const NodeId guard = packet.accusing_guard;
  const NodeId accused = packet.accused;
  if (guard != packet.origin) return;  // malformed
  if (!table_.knows_neighbor(accused)) return;  // not my concern
  // The guard must itself be a neighbor of the accused; we hold R_accused
  // because the accused is our neighbor.
  if (!table_.in_list_of(accused, guard)) return;

  auto entry = std::find_if(
      packet.alert_auth.begin(), packet.alert_auth.end(),
      [this](const pkt::AlertAuth& a) { return a.recipient == env_.id(); });
  if (entry == packet.alert_auth.end()) return;
  packet.auth_payload_into(auth_buf_);
  if (!env_.keys().verify(guard, env_.id(), auth_buf_, entry->tag)) {
    LW_WARN << "node " << env_.id() << ": unauthentic alert claiming guard "
            << guard;
    return;
  }

  auto& guards = alert_buffer_[accused];
  guards.insert(guard);
  if (isolated_.count(accused) != 0) return;
  if (static_cast<int>(guards.size()) >= params_.detection_confidence) {
    isolate(accused, static_cast<int>(guards.size()));
    return;
  }
  // Corroboration: the circulating accusation lowers our own bar; our
  // partial evidence may now suffice for a detection of our own.
  auto state = malc_.find(accused);
  if (detected_.count(accused) == 0 && state != malc_.end() &&
      state->second.malc >= params_.corroborated_threshold) {
    detect_and_alert(accused);
  }
}

double LocalMonitor::local_threshold(NodeId suspect) const {
  const auto it = alert_buffer_.find(suspect);
  const bool corroborated = it != alert_buffer_.end() && !it->second.empty();
  return corroborated ? params_.corroborated_threshold
                      : params_.malc_threshold;
}

void LocalMonitor::isolate(NodeId suspect, int alerts) {
  isolated_.insert(suspect);
  table_.revoke(suspect);
  routing_.on_revoked(suspect);
  if (observer_) observer_->on_isolation(env_.id(), suspect, alerts);
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kMonitor)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kMonIsolation,
             .node = env_.id(),
             .peer = suspect,
             .value = static_cast<double>(alerts)});
  }
  LW_INFO << "node " << env_.id() << " isolated " << suspect
          << " after " << alerts << " alerts at t=" << env_.now();
}

void LocalMonitor::relay_alert(const pkt::Packet& packet) {
  if (packet.ttl == 0) return;
  pkt::Packet relay = env_.packet_factory().forward_copy(packet);
  relay.ttl = packet.ttl - 1;
  relay.announced_prev_hop = packet.claimed_tx;
  relay.claimed_tx = kInvalidNode;
  env_.send(std::move(relay), {.flood_jitter = true});
}

double LocalMonitor::malc(NodeId suspect) const {
  auto it = malc_.find(suspect);
  return it == malc_.end() ? 0.0 : it->second.malc;
}

int LocalMonitor::alert_count(NodeId suspect) const {
  auto it = alert_buffer_.find(suspect);
  return it == alert_buffer_.end() ? 0 : static_cast<int>(it->second.size());
}

std::size_t LocalMonitor::storage_bytes() const {
  std::size_t alert_entries = 0;
  for (const auto& [accused, guards] : alert_buffer_) {
    (void)accused;
    alert_entries += guards.size();
  }
  return watch_.storage_bytes() + 4 * alert_entries;
}

}  // namespace lw::lite
