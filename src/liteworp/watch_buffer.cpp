#include "liteworp/watch_buffer.h"

#include <algorithm>

namespace lw::lite {

void WatchBuffer::record_transmit(const FlowKey& flow, NodeId node, Time now,
                                  Duration ttl) {
  purge_transmits(now);
  FlowRecord& rec = transmits_[flow];
  const Time expiry = now + ttl;
  bool found = false;
  for (TransmitRecord& entry : rec.nodes) {
    if (entry.node == node) {
      entry.expiry = std::max(entry.expiry, expiry);
      found = true;
      break;
    }
  }
  if (!found) {
    rec.nodes.push_back({node, expiry});
    ++transmit_pairs_;
  }
  rec.flow_expiry = std::max(rec.flow_expiry, expiry);
  note_size();
}

bool WatchBuffer::has_any_transmit(const FlowKey& flow, Time now) {
  auto it = transmits_.find(flow);
  if (it == transmits_.end()) return false;
  return it->second.flow_expiry > now;
}

bool WatchBuffer::has_transmit(const FlowKey& flow, NodeId node, Time now) {
  auto it = transmits_.find(flow);
  if (it == transmits_.end()) return false;
  auto& nodes = it->second.nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].node != node) continue;
    if (nodes[i].expiry <= now) {
      nodes[i] = nodes.back();
      nodes.pop_back();
      --transmit_pairs_;
      return false;
    }
    return true;
  }
  return false;
}

bool WatchBuffer::add_drop_watch(const FlowKey& flow, NodeId from, NodeId to,
                                 Time deadline, sim::EventHandle expiry) {
  auto [it, inserted] = watches_.try_emplace(LinkWatchKey{flow, from, to},
                                             DropWatch{deadline, expiry});
  if (!inserted) {
    expiry.cancel();  // duplicate watch; keep the original timer
    return false;
  }
  note_size();
  return true;
}

bool WatchBuffer::clear_drop_watch(const FlowKey& flow, NodeId from,
                                   NodeId to) {
  auto it = watches_.find(LinkWatchKey{flow, from, to});
  if (it == watches_.end()) return false;
  it->second.expiry.cancel();
  watches_.erase(it);
  return true;
}

bool WatchBuffer::take_expired_drop_watch(const FlowKey& flow, NodeId from,
                                          NodeId to) {
  return watches_.erase(LinkWatchKey{flow, from, to}) > 0;
}

std::size_t WatchBuffer::clear_drop_watches_to(NodeId to) {
  std::size_t cleared = 0;
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->first.to == to) {
      it->second.expiry.cancel();
      it = watches_.erase(it);
      ++cleared;
    } else {
      ++it;
    }
  }
  return cleared;
}

void WatchBuffer::clear() {
  for (auto& [key, watch] : watches_) {
    (void)key;
    watch.expiry.cancel();
  }
  watches_.clear();
  transmits_.clear();
  transmit_pairs_ = 0;
  purge_tick_ = 0;
}

void WatchBuffer::purge_transmits(Time now) {
  // Amortized: full sweep every 256 insertions once the table is non-tiny.
  // The cadence only bounds stale-entry memory (records are expiry-checked
  // on every lookup), so it trades a few seconds of garbage for sweep cost.
  if (++purge_tick_ % 256 != 0 || transmit_pairs_ < 128) return;
  for (auto it = transmits_.begin(); it != transmits_.end();) {
    auto& nodes = it->second.nodes;
    for (std::size_t i = 0; i < nodes.size();) {
      if (nodes[i].expiry <= now) {
        nodes[i] = nodes.back();
        nodes.pop_back();
        --transmit_pairs_;
      } else {
        ++i;
      }
    }
    // flow_expiry is the max per-node expiry, so an expired flow has no
    // surviving nodes; dropping the record then matches the old per-map
    // erase exactly.
    if (it->second.flow_expiry <= now && nodes.empty()) {
      it = transmits_.erase(it);
    } else {
      ++it;
    }
  }
}

void WatchBuffer::note_size() {
  peak_entries_ = std::max(peak_entries_, transmit_pairs_ + watches_.size());
}

}  // namespace lw::lite
