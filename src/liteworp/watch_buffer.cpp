#include "liteworp/watch_buffer.h"

#include <algorithm>

namespace lw::lite {

void WatchBuffer::record_transmit(const FlowKey& flow, NodeId node, Time now,
                                  Duration ttl) {
  purge_transmits(now);
  Time& expiry = transmits_[FlowNodeKey{flow, node}];
  expiry = std::max(expiry, now + ttl);
  Time& flow_expiry = flow_transmits_[flow];
  flow_expiry = std::max(flow_expiry, now + ttl);
  note_size();
}

bool WatchBuffer::has_any_transmit(const FlowKey& flow, Time now) {
  auto it = flow_transmits_.find(flow);
  if (it == flow_transmits_.end()) return false;
  if (it->second <= now) {
    flow_transmits_.erase(it);
    return false;
  }
  return true;
}

bool WatchBuffer::has_transmit(const FlowKey& flow, NodeId node, Time now) {
  auto it = transmits_.find(FlowNodeKey{flow, node});
  if (it == transmits_.end()) return false;
  if (it->second <= now) {
    transmits_.erase(it);
    return false;
  }
  return true;
}

bool WatchBuffer::add_drop_watch(const FlowKey& flow, NodeId from, NodeId to,
                                 Time deadline, sim::EventHandle expiry) {
  auto [it, inserted] = watches_.try_emplace(LinkWatchKey{flow, from, to},
                                             DropWatch{deadline, expiry});
  if (!inserted) {
    expiry.cancel();  // duplicate watch; keep the original timer
    return false;
  }
  note_size();
  return true;
}

bool WatchBuffer::clear_drop_watch(const FlowKey& flow, NodeId from,
                                   NodeId to) {
  auto it = watches_.find(LinkWatchKey{flow, from, to});
  if (it == watches_.end()) return false;
  it->second.expiry.cancel();
  watches_.erase(it);
  return true;
}

bool WatchBuffer::take_expired_drop_watch(const FlowKey& flow, NodeId from,
                                          NodeId to) {
  return watches_.erase(LinkWatchKey{flow, from, to}) > 0;
}

std::size_t WatchBuffer::clear_drop_watches_to(NodeId to) {
  std::size_t cleared = 0;
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->first.to == to) {
      it->second.expiry.cancel();
      it = watches_.erase(it);
      ++cleared;
    } else {
      ++it;
    }
  }
  return cleared;
}

void WatchBuffer::purge_transmits(Time now) {
  // Amortized: full sweep every 64 insertions once the table is non-tiny.
  if (++purge_tick_ % 64 != 0 || transmits_.size() < 128) return;
  std::erase_if(transmits_,
                [now](const auto& entry) { return entry.second <= now; });
  std::erase_if(flow_transmits_,
                [now](const auto& entry) { return entry.second <= now; });
}

void WatchBuffer::note_size() {
  peak_entries_ = std::max(peak_entries_, transmits_.size() + watches_.size());
}

}  // namespace lw::lite
