// LITEWORP local monitor: guard logic, MalC accounting, alert/isolation.
//
// Every node runs one of these (Section 4.2). The monitor taps every frame
// the radio decodes — including frames the node itself transmits (a node is
// a guard of its own outgoing links). It maintains:
//   * the watch buffer (transmit records + REP drop watches),
//   * MalC(i, j): this guard's malicious-activity counter for neighbor j,
//   * the alert buffer: which guards accused which neighbor.
//
// When MalC crosses C_t the guard revokes the neighbor locally and sends a
// two-hop-scoped ALERT, individually authenticated for every neighbor of
// the accused (the paper's "multiple unicasts" realized as one frame with
// per-recipient tags plus a single rebroadcast). A node isolates a neighbor
// once gamma distinct guards (the detection confidence index) accused it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "crypto/hmac.h"
#include "liteworp/watch_buffer.h"
#include "neighbor/neighbor_table.h"
#include "node/node_env.h"
#include "routing/routing.h"

namespace lw::lite {

struct LiteworpParams {
  /// Master switch; a disabled monitor ignores everything (baseline runs).
  bool enabled = true;
  /// delta: how long a REP may sit at the next hop before it counts as
  /// dropped. Must cover worst-case MAC queueing plus the full
  /// ARQ-retransmission window (backoffs included) at 40 kbps — including
  /// the queue bursts around an isolation event (alert storm plus the
  /// re-discovery floods it triggers).
  Duration watch_timeout = 5.0;
  /// TTL of transmit records used by the fabrication check. Must exceed
  /// watch_timeout plus worst-case forwarding latency: if the record of
  /// the handoff expires before the (honestly delayed) forward is
  /// overheard, the forward reads as a fabrication.
  Duration transmit_record_ttl = 10.0;
  /// V_f: MalC increment for fabricating a control packet.
  double malc_fabrication = 4.0;
  /// V_d: MalC increment for dropping a REP.
  double malc_drop = 4.0;
  /// C_t: local-detection threshold on MalC. With the kappa = 7
  /// observation window below, a guard must find 6 of 7 watched packets
  /// fabricated or dropped (6 * V = 24 >= C_t) before raising the FIRST
  /// alert about a node — conservative enough to ride out the correlated
  /// misses of congestion bursts (the analysis' k = 5-of-7 example assumes
  /// a calmer P_C = 0.05).
  double malc_threshold = 24.0;
  /// Corroborated threshold: once a guard holds at least one VERIFIED
  /// alert about a node, its own bar for that node drops to this value
  /// (3 events) — independent partial evidence confirming a circulating
  /// accusation. Accelerates the isolation cascade after the first
  /// detection without weakening the first detection itself; a lone
  /// framing guard still cannot isolate anyone (gamma distinct guards,
  /// each with local evidence, remain necessary).
  double corroborated_threshold = 12.0;
  /// gamma: alerts from distinct guards required to isolate.
  int detection_confidence = 3;
  /// A detecting guard transmits its alert this many times (fresh sequence
  /// numbers, spaced below), because a single broadcast plus one relay can
  /// die to collisions and alerts are never re-triggered; receivers count
  /// each guard once regardless.
  int alert_repeats = 3;
  Duration alert_repeat_gap = 4.0;
  /// Relay budget on alert frames. 1 covers two hops — enough when the
  /// accused's neighborhood is well-meshed — but the shortest guard-to-
  /// neighbor path can run THROUGH the accused (who will not relay), so
  /// the default allows one extra ring.
  int alert_ttl = 2;
  /// While a locally-detected node keeps transmitting watched control
  /// traffic (i.e. the threat persists because some neighbors have not
  /// isolated it yet), the guard re-sends its alert at most once per this
  /// interval. Converges lossy neighborhoods to complete isolation.
  Duration realert_interval = 30.0;
  /// kappa: MalC is evaluated over blocks of this many watched packets per
  /// suspect (the analysis' "fabrications occur within a window of kappa
  /// packets"); the counter resets after each block that stays below C_t.
  /// Count-based windows normalize for traffic rate, which is what the
  /// paper's time window T achieves at its (lower) watch rates.
  /// <= 0 disables the reset entirely (ablation: evidence accumulates
  /// forever and channel noise eventually convicts honest nodes).
  int window_packets = 7;
  /// Ablation switch: accuse on the strict per-link check alone ("did the
  /// announced previous hop transmit this flow?") without the flow-wide
  /// relaxation. Faithful to the paper's literal wording but misfires on
  /// every collision at the guard; the default flow-wide check (see
  /// DESIGN.md) only fires on flows the guard never heard at all — the
  /// actual wormhole signature.
  bool strict_link_check = false;
};

/// Why a guard incremented its counter against a neighbor. kFabrication
/// and kDrop are LITEWORP's two evidence kinds (Section 4.2); kAnomaly is
/// the statistical evidence of the Z-score backend (defense/zscore.h),
/// which shares this vocabulary so one observer serves every backend.
enum class Suspicion : std::uint8_t { kFabrication, kDrop, kAnomaly };

/// Metrics hooks. The scenario layer implements these with access to
/// ground truth (who is actually malicious).
class MonitorObserver {
 public:
  virtual ~MonitorObserver() = default;
  virtual void on_suspicion(NodeId /*guard*/, NodeId /*suspect*/,
                            Suspicion /*kind*/) {}
  virtual void on_local_detection(NodeId /*guard*/, NodeId /*suspect*/) {}
  virtual void on_alert_sent(NodeId /*guard*/, NodeId /*suspect*/) {}
  virtual void on_isolation(NodeId /*node*/, NodeId /*suspect*/,
                            int /*alert_count*/) {}
};

class LocalMonitor {
 public:
  LocalMonitor(node::NodeEnv& env, nbr::NeighborTable& table,
               routing::OnDemandRouting& routing, LiteworpParams params,
               MonitorObserver* observer);

  /// No-op placeholder kept for wiring symmetry (the count-based MalC
  /// window needs no timers).
  void start();

  /// Feed for every frame the radio decoded (promiscuous tap), and for
  /// every control frame this node transmits itself.
  void on_overhear(const pkt::Packet& packet);

  /// Handles an ALERT frame (verification, counting, isolation, relay).
  void handle_alert(const pkt::Packet& packet);

  /// Compromised-guard behavior (fault injection): emits one authenticated
  /// ALERT accusing `victim` with NO local evidence behind it. The tags
  /// are genuine — the guard's keys really are compromised — so receivers
  /// verify it; the gamma threshold is what must hold the line.
  void emit_false_alert(NodeId victim);

  /// Wipes all monitoring state (node crash): watch buffer, MalC, alert
  /// buffer, dedupe sets. Pending alert-repeat events are disarmed via an
  /// epoch check so a rebooted guard never accuses from pre-crash memory.
  void reset();

  double malc(NodeId suspect) const;
  bool locally_detected(NodeId suspect) const {
    return detected_.count(suspect) != 0;
  }
  int alert_count(NodeId suspect) const;
  const WatchBuffer& watch_buffer() const { return watch_; }
  const LiteworpParams& params() const { return params_; }

  /// Storage per the paper's cost model: watch buffer + 4-byte alert
  /// entries (MalC bytes are accounted inside the neighbor list).
  std::size_t storage_bytes() const;

  /// Control-plane cost: ALERT frames this monitor put on the air (every
  /// transmission counted, repeats and re-alerts included) and their wire
  /// bytes.
  std::uint64_t alerts_transmitted() const { return alerts_transmitted_; }
  std::uint64_t alert_bytes() const { return alert_bytes_; }

 private:
  void observe_control(const pkt::Packet& packet);
  void check_fabrication(const pkt::Packet& packet);
  void maybe_add_drop_watch(const pkt::Packet& packet);
  /// Records one resolved observation of `suspect` (a checked forward or
  /// an expired/cleared drop watch), suspicious or benign, and applies the
  /// kappa-block window discipline.
  void observe(NodeId suspect, bool suspicious, Suspicion kind);
  void detect_and_alert(NodeId suspect);
  /// One authenticated two-hop alert transmission about `suspect`.
  void send_alert(NodeId suspect);
  /// C_t, or the corroborated bar once alerts about `suspect` circulate.
  double local_threshold(NodeId suspect) const;
  void isolate(NodeId suspect, int alerts);
  void relay_alert(const pkt::Packet& packet);

  node::NodeEnv& env_;
  nbr::NeighborTable& table_;
  routing::OnDemandRouting& routing_;
  LiteworpParams params_;
  /// Reusable serialization buffer for alert auth payloads.
  util::PoolString auth_buf_;
  /// Scratch for the batched alert-signing fan-out (recycled per alert).
  util::PoolVector<NodeId> sign_peers_;
  util::PoolVector<crypto::AuthTag> sign_tags_;
  MonitorObserver* observer_;

  struct SuspectState {
    double malc = 0.0;
    int observed = 0;  // watched packets in the current kappa block
  };

  WatchBuffer watch_;
  util::PoolUnorderedMap<NodeId, SuspectState> malc_;
  util::PoolUnorderedSet<NodeId> detected_;   // crossed C_t locally
  util::PoolUnorderedSet<NodeId> isolated_;   // revoked (locally or by alerts)
  util::PoolUnorderedMap<NodeId, util::PoolUnorderedSet<NodeId>> alert_buffer_;
  /// (flow, forwarder) pairs already counted as fabrications this window —
  /// one insert per overheard control frame, so pool-arena backed.
  util::PoolUnorderedSet<FlowNodeKey, FlowNodeKeyHash> suspected_;
  util::PoolUnorderedSet<FlowKey> seen_alerts_;
  /// Last (re)alert time per detected node (rate limiting).
  util::PoolUnorderedMap<NodeId, Time> last_alert_;
  SeqNo alert_seq_ = 0;
  std::uint64_t alerts_transmitted_ = 0;
  std::uint64_t alert_bytes_ = 0;
  /// Bumped by reset(); disarms scheduled alert repeats from before a crash.
  int epoch_ = 0;
};

}  // namespace lw::lite
